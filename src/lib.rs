//! Umbrella package for the ASMCap reproduction workspace.
//!
//! This crate carries no code of its own — it exists so the repo-root
//! `tests/` (the nine cross-crate integration suites) and `examples/`
//! directories belong to a Cargo package and run under plain
//! `cargo test` / `cargo run --example`. The implementation lives in the
//! `crates/` packages:
//!
//! * [`asmcap_genome`] — sequences, synthetic genomes, reads, datasets;
//! * [`asmcap_metrics`] — Hamming/edit/ED\* distances and statistics;
//! * [`asmcap_circuit`] — charge/current-domain CAM sensing models;
//! * [`asmcap_arch`] — the simulated multi-array device;
//! * [`asmcap`] — matching engines (ED\* + HDAC + TASR) and the mapper;
//! * [`asmcap_baselines`] — ReSMA, SAVI, Kraken-style, and CPU baselines;
//! * [`asmcap_eval`] — paper figure/table evaluation binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use asmcap;
pub use asmcap_arch;
pub use asmcap_baselines;
pub use asmcap_circuit;
pub use asmcap_eval;
pub use asmcap_genome;
pub use asmcap_metrics;
