//! Vendored minimal `rand_chacha`: the [`ChaCha8Rng`] generator.
//!
//! The keystream is the genuine ChaCha permutation with 8 rounds (RFC 8439
//! quarter-round, 4 column/diagonal double-rounds), a 256-bit key taken from
//! the seed, and a 64-bit block counter. Output words are consumed
//! little-endian, one 32-bit lane at a time. Because the stream is fully
//! specified here — independent of platform, toolchain, or crates.io — the
//! workspace's seeded experiments are byte-for-byte reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;
/// "expand 32-byte k", the ChaCha constant.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// A cryptographically-derived deterministic RNG: ChaCha with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 0..8 of the initial state (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14); nonce words are zero.
    counter: u64,
    /// Keystream words of the current block.
    buffer: [u32; WORDS_PER_BLOCK],
    /// Next unconsumed index into `buffer`; `WORDS_PER_BLOCK` = exhausted.
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn initial_state(&self) -> [u32; WORDS_PER_BLOCK] {
        let mut state = [0u32; WORDS_PER_BLOCK];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] (nonce) stays zero.
        state
    }

    fn refill(&mut self) {
        let initial = self.initial_state();
        let mut working = initial;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, i)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(initial.iter()))
        {
            *out = w.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut bytes = [0u8; 8];
        a.fill_bytes(&mut bytes);
        let expected = [b.next_u32().to_le_bytes(), b.next_u32().to_le_bytes()].concat();
        assert_eq!(&bytes[..], &expected[..]);
    }
}
