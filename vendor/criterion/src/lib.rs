//! Vendored minimal `criterion`: a compact wall-clock benchmark harness.
//!
//! Implements the criterion 0.5 API subset the ASMCap benches use. Each
//! benchmark runs a short warm-up, then `sample_size` timed samples with an
//! auto-calibrated iteration count, and prints the median time per
//! iteration (plus throughput when configured). Use `cargo bench` to run,
//! `cargo bench --no-run` to only compile.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time for one sample, used to calibrate iteration counts.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// The benchmark harness handle passed to every bench function.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Upstream-compatible no-op (CLI args are ignored by this harness).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            throughput: None,
        }
    }

    /// Benchmarks one function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.default_sample_size, None, f);
        self
    }
}

/// A set of related benchmarks sharing sample-size/throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the target measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Benchmarks one function.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks one function against a borrowed input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A parameterised benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A name with a parameter suffix, e.g. `search/64`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// A name that is only the parameter, e.g. `64`.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark label.
pub trait IntoBenchmarkId {
    /// The label shown in reports.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. base pairs, reads) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the iteration count until one sample is long enough
    // to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = (0..sample_size.max(1))
        .map(|_| {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            bencher.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12}/s", si(n as f64 / median)),
        Some(Throughput::Bytes(n)) => format!("  {:>10}B/s", si(n as f64 / median)),
        None => String::new(),
    };
    println!("{label:<48} {:>12}/iter{rate}", fmt_time(median));
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

fn si(value: f64) -> String {
    if value >= 1e9 {
        format!("{:.2} G", value / 1e9)
    } else if value >= 1e6 {
        format!("{:.2} M", value / 1e6)
    } else if value >= 1e3 {
        format!("{:.2} k", value / 1e3)
    } else {
        format!("{value:.1} ")
    }
}

/// Bundles bench functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
