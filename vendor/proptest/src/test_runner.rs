//! Configuration and per-test state for property runs.

use rand::SeedableRng as _;

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
    /// Seed of the deterministic generation stream.
    pub rng_seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            rng_seed: 0x5EED_CA5E,
        }
    }
}

impl ProptestConfig {
    /// Overrides only the number of cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// The deterministic generation stream handed to strategies.
pub struct TestRunner {
    rng: rand_chacha::ChaCha8Rng,
}

impl TestRunner {
    /// Creates the runner for one property, seeded from the config.
    #[must_use]
    pub fn new(config: &ProptestConfig) -> Self {
        Self {
            rng: rand_chacha::ChaCha8Rng::seed_from_u64(config.rng_seed),
        }
    }

    /// The underlying RNG strategies draw from.
    pub fn rng(&mut self) -> &mut rand_chacha::ChaCha8Rng {
        &mut self.rng
    }
}

/// A failed property case (from `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        Self { message }
    }

    /// Upstream-compatible alias of [`TestCaseError::fail`].
    #[must_use]
    pub fn reject(message: String) -> Self {
        Self { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
