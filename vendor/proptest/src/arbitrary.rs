//! The [`Arbitrary`] trait and [`any`] entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use rand::Rng as _;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen()
    }
}

macro_rules! arbitrary_prim {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(runner: &mut TestRunner) -> Self {
                    runner.rng().gen()
                }
            }
        )+
    };
}

arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// The canonical strategy for `T`'s whole domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}
