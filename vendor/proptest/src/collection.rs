//! Collection strategies: random-length vectors.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use core::ops::{Range, RangeInclusive};
use rand::Rng as _;

/// A range of collection sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Inclusive upper bound.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (min, max) = r.into_inner();
        assert!(min <= max, "empty size range");
        Self { min, max }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        let len = runner.rng().gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}
