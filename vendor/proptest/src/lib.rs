//! Vendored minimal `proptest`: deterministic property-based testing.
//!
//! Implements exactly the subset the ASMCap workspace uses:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header); as with upstream proptest, each property fn carries its own
//!   `#[test]` attribute inside the macro — omitting it means the property
//!   never runs under `cargo test`;
//! * strategies: integer/float ranges, tuples of strategies,
//!   [`collection::vec`], [`strategy::Strategy::prop_map`], and
//!   [`arbitrary::any`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! panics with the case number, and the generation stream is a fixed
//! ChaCha8 seed, so every failure reproduces exactly under `cargo test`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything a property test needs in scope.
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes(); // in a real suite, write `#[test]` on the fn
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(&config);
                for case in 0..config.cases {
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut runner);)+
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        ::core::panic!(
                            "property {} failed at case {}/{}: {}",
                            ::core::stringify!($name), case + 1, config.cases, err,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the enclosing property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!(
            $cond,
            "assertion failed: {}",
            ::core::stringify!($cond)
        )
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the enclosing property case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            ::core::stringify!($left), ::core::stringify!($right), left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the enclosing property case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            ::core::stringify!($left),
            ::core::stringify!($right),
            left,
        );
    }};
}
