//! The [`Strategy`] trait and its core implementations.

use crate::test_runner::TestRunner;
use core::ops::{Range, RangeInclusive};
use rand::Rng as _;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the runner's deterministic stream.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).generate(runner)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.source.generate(runner))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, runner: &mut TestRunner) -> $ty {
                    runner.rng().gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, runner: &mut TestRunner) -> $ty {
                    runner.rng().gen_range(self.clone())
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(runner),)+)
                }
            }
        )+
    };
}

tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));
