//! Vendored minimal subset of the `rand` 0.8 API.
//!
//! The build container has no crates.io access, so this crate re-implements
//! exactly the surface the ASMCap workspace uses — nothing more:
//!
//! * [`RngCore`] / [`SeedableRng`] (including the SplitMix64-based
//!   [`SeedableRng::seed_from_u64`] default, so `seed_from_u64` is stable
//!   across toolchains);
//! * the [`Rng`] extension trait with `gen`, `gen_range`, `gen_bool`, and
//!   `sample`;
//! * [`distributions::Distribution`], [`distributions::Standard`] for the
//!   primitive types, and [`distributions::WeightedIndex`] over `f64`
//!   weights.
//!
//! All algorithms are deterministic and self-contained; the workspace's
//! byte-for-byte reproducibility guarantee (`tests/determinism.rs`) is
//! anchored on this crate plus the vendored `rand_chacha`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;

/// The core of a random number generator: raw word and byte output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it with SplitMix64.
    ///
    /// This matches the spirit of `rand` 0.8: a fixed, documented expansion
    /// so the same `u64` seed always produces the same stream.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used only to expand `u64` seeds into full seed buffers.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must lie in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Provided for API familiarity: namespaced generator types.
pub mod rngs {}
