//! Distributions over random values: `Standard`, uniform ranges, and
//! `WeightedIndex`.

use crate::Rng;
use core::borrow::Borrow as _;

/// Types that can produce values of type `T` from a generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "standard" distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, the full range for integers, fair coin for `bool`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_uint {
    ($($ty:ty => $method:ident),+ $(,)?) => {
        $(
            impl Distribution<$ty> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.$method() as $ty
                }
            }
        )+
    };
}

standard_uint!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        let lo = rng.next_u64() as u128;
        let hi = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1), matching rand 0.8's precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform sampling from ranges.

    use super::Standard;
    use crate::{Rng, RngCore};
    use core::ops::{Range, RangeInclusive};

    /// Types that support uniform sampling over a sub-range.
    pub trait SampleUniform: Sized {
        /// Samples uniformly from `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

        /// Samples uniformly from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    /// Range types usable with [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "gen_range: empty inclusive range");
            T::sample_single_inclusive(low, high, rng)
        }
    }

    /// Draws a `u64` uniform over `[0, n)` by rejection, bias-free.
    fn uniform_u64_below<R: RngCore + ?Sized>(n: u64, rng: &mut R) -> u64 {
        debug_assert!(n > 0);
        // Largest multiple of n that fits in 2^64 is 2^64 - rem.
        let rem = (u64::MAX % n + 1) % n;
        let limit = u64::MAX - rem;
        loop {
            let v = rng.next_u64();
            if v <= limit {
                return v % n;
            }
        }
    }

    macro_rules! uniform_int {
        ($($ty:ty),+ $(,)?) => {
            $(
                impl SampleUniform for $ty {
                    fn sample_single<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        let span = (high as i128 - low as i128) as u64;
                        let offset = uniform_u64_below(span, rng);
                        (low as i128 + offset as i128) as $ty
                    }

                    fn sample_single_inclusive<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        let span = (high as i128 - low as i128) as u128 + 1;
                        if span > u64::MAX as u128 {
                            // Only reachable for the full u64/i64 domain.
                            return Standard.sample_int(rng);
                        }
                        let offset = uniform_u64_below(span as u64, rng);
                        (low as i128 + offset as i128) as $ty
                    }
                }
            )+
        };
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Standard {
        fn sample_int<T, R: RngCore + ?Sized>(&self, rng: &mut R) -> T
        where
            Standard: super::Distribution<T>,
        {
            use super::Distribution as _;
            self.sample(rng)
        }
    }

    impl SampleUniform for f64 {
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            let unit: f64 = rng.gen();
            low + (high - low) * unit
        }

        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            rng: &mut R,
        ) -> Self {
            Self::sample_single(low, high, rng)
        }
    }

    impl SampleUniform for f32 {
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            let unit: f32 = rng.gen();
            low + (high - low) * unit
        }

        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            rng: &mut R,
        ) -> Self {
            Self::sample_single(low, high, rng)
        }
    }
}

/// Errors from [`WeightedIndex::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedError {
    /// The iterator of weights was empty.
    NoItem,
    /// A weight was negative, NaN, or infinite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl core::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NoItem => write!(f, "no weights provided"),
            Self::InvalidWeight => write!(f, "a weight is invalid"),
            Self::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..n` proportionally to a list of `n` weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex<X> {
    cumulative: Vec<X>,
}

impl WeightedIndex<f64> {
    /// Builds the distribution from non-negative finite weights.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError`] if the list is empty, a weight is invalid,
    /// or every weight is zero.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: core::borrow::Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0_f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(Self { cumulative })
    }
}

impl Distribution<usize> for WeightedIndex<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("validated in new");
        let target: f64 = rng.gen::<f64>() * total;
        // First index whose cumulative weight exceeds the target; zero-weight
        // entries (equal adjacent cumulative values) are never selected.
        self.cumulative
            .iter()
            .position(|&c| target < c)
            .unwrap_or_else(|| {
                // Rounding can land `target` exactly on `total`; step back
                // over any trailing zero-weight entries so the fallback also
                // never selects an index declared impossible.
                let mut i = self.cumulative.len() - 1;
                while i > 0 && self.cumulative[i - 1] >= self.cumulative[i] {
                    i -= 1;
                }
                i
            })
    }
}
