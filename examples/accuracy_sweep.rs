//! Accuracy sweep: a compact Fig. 7 — F1 vs threshold for EDAM and ASMCap
//! under both error conditions — plus an end-to-end origin-recovery check
//! mapping the same dataset through two pipeline backends.
//!
//! Run with: `cargo run --release -p asmcap-workspace --example accuracy_sweep`

use asmcap::BackendKind;
use asmcap_eval::{Condition, EvalDataset, Fig7Config};

fn main() {
    let config = Fig7Config {
        reads: 150,
        decoys: 12,
        read_len: 256,
        genome_len: 200_000,
        seed: 0xACC,
    };
    for condition in [Condition::A, Condition::B] {
        let result = asmcap_eval::fig7::run(condition, &config);
        println!("== {} ==\n", condition.label());
        println!("{}", result.f1_table());
        let edam = result.series("EDAM").unwrap().mean_f1();
        let with = result.series("ASMCap w/ H&T").unwrap().mean_f1();
        println!(
            "ASMCap w/ H&T improves mean F1 by {:.2}x over EDAM\n",
            with / edam
        );
        assert!(with > edam, "ASMCap should beat EDAM on mean F1");
    }

    // End-to-end mapping on the same harness: the hardware-faithful device
    // backend and the per-pair fast path must both recover read origins.
    let ds = EvalDataset::build(Condition::A, 40, 4, 256, 60_000, 0xACC);
    for backend in [BackendKind::Device, BackendKind::Pair] {
        let pipeline = ds.pipeline(8, backend, 1).expect("pipeline builds");
        let recovery = ds.mapping_recovery(&pipeline);
        println!(
            "{} backend: {}/{} read origins recovered at T=8",
            pipeline.backend_name(),
            recovery.recovered,
            recovery.reads
        );
        assert!(
            recovery.recovered * 10 >= recovery.reads * 9,
            "origin recovery too low on the {} backend",
            pipeline.backend_name()
        );
    }
    println!("accuracy sweep OK");
}
