//! Accuracy sweep: a compact Fig. 7 — F1 vs threshold for EDAM and ASMCap
//! under both error conditions, printed as tables.
//!
//! Run with: `cargo run --release -p asmcap-eval --example accuracy_sweep`

use asmcap_eval::{Condition, Fig7Config};

fn main() {
    let config = Fig7Config {
        reads: 150,
        decoys: 12,
        read_len: 256,
        genome_len: 200_000,
        seed: 0xACC,
    };
    for condition in [Condition::A, Condition::B] {
        let result = asmcap_eval::fig7::run(condition, &config);
        println!("== {} ==\n", condition.label());
        println!("{}", result.f1_table());
        let edam = result.series("EDAM").unwrap().mean_f1();
        let with = result.series("ASMCap w/ H&T").unwrap().mean_f1();
        println!(
            "ASMCap w/ H&T improves mean F1 by {:.2}x over EDAM\n",
            with / edam
        );
        assert!(with > edam, "ASMCap should beat EDAM on mean F1");
    }
    println!("accuracy sweep OK");
}
