//! Read mapping: map a batch of erroneous reads through the pipeline in one
//! call and report candidate positions plus a CIGAR-style alignment at the
//! best hit.
//!
//! Run with: `cargo run --release -p asmcap-workspace --example read_mapping`

use asmcap::{AsmcapPipeline, PipelineConfig};
use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, ReadSampler};
use asmcap_metrics::edit::align;

fn main() {
    let genome = GenomeModel::human_like().generate(100_000, 5);
    let profile = ErrorProfile::condition_a();
    let width = 256usize;

    let pipeline = AsmcapPipeline::builder()
        .reference(genome.clone())
        .config(PipelineConfig {
            row_width: width,
            seed: 4,
            ..PipelineConfig::paper(8, profile)
        })
        .build()
        .expect("pipeline builds for this genome");

    let sampler = ReadSampler::new(width, profile);
    let reads = sampler.sample_many(&genome, 25, 21);
    let batch: Vec<DnaSeq> = reads.iter().map(|r| r.bases.clone()).collect();

    // One call: the whole batch, sharded across worker threads. Results are
    // identical for any worker count (per-read seeds come from the read
    // index, not from shared RNG state).
    let records = pipeline.map_batch(&batch);

    let mut recovered = 0usize;
    let mut candidate_total = 0usize;
    for (i, (read, record)) in reads.iter().zip(&records).enumerate() {
        let hit = record.positions.contains(&read.origin);
        recovered += usize::from(hit);
        candidate_total += record.positions.len();
        if i < 5 {
            // Show an alignment against the best (closest) candidate.
            let best = record
                .positions
                .iter()
                .min_by_key(|&&p| p.abs_diff(read.origin))
                .copied();
            match best {
                Some(p) => {
                    let segment = genome.window(p..p + width);
                    let alignment = align(read.bases.as_slice(), segment.as_slice());
                    println!(
                        "read {i}: origin {} -> {} candidate(s), best {} (ED {}), CIGAR {}",
                        read.origin,
                        record.positions.len(),
                        p,
                        alignment.distance,
                        alignment.cigar()
                    );
                }
                None => println!("read {i}: origin {} -> {}", read.origin, record.status),
            }
        }
    }
    println!(
        "\nmapped {recovered}/{} reads to their true origin ({:.1} candidates/read avg)",
        reads.len(),
        candidate_total as f64 / reads.len() as f64
    );
    let stats = pipeline.stats();
    println!(
        "pipeline activity: {} cycles, {:.2} uJ, {:.1} ms wall across {} workers",
        stats.cycles,
        stats.energy_j * 1e6,
        stats.wall_s * 1e3,
        pipeline.workers()
    );
    assert!(recovered >= reads.len() * 9 / 10, "mapping rate too low");
    println!("read mapping OK");
}
