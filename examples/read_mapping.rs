//! Read mapping: map a batch of erroneous reads against a reference and
//! report candidate positions plus a CIGAR-style alignment at the best hit.
//!
//! Run with: `cargo run --release -p asmcap-eval --example read_mapping`

use asmcap::{MapperConfig, ReadMapper};
use asmcap_arch::DeviceBuilder;
use asmcap_genome::{ErrorProfile, GenomeModel, ReadSampler};
use asmcap_metrics::edit::align;

fn main() {
    let genome = GenomeModel::human_like().generate(100_000, 5);
    let profile = ErrorProfile::condition_a();
    let width = 256usize;

    let positions = genome.len() - width + 1;
    let mut device = DeviceBuilder::new()
        .arrays(positions.div_ceil(256))
        .rows_per_array(256)
        .row_width(width)
        .build_asmcap();
    device.store_reference(&genome, 1).expect("device fits genome");

    let sampler = ReadSampler::new(width, profile);
    let reads = sampler.sample_many(&genome, 25, 21);
    let mut mapper = ReadMapper::new(device, MapperConfig::paper(8, profile), 4);

    let mut recovered = 0usize;
    let mut candidate_total = 0usize;
    for (i, read) in reads.iter().enumerate() {
        let mapped = mapper.map_read(&read.bases);
        let hit = mapped.positions.contains(&read.origin);
        recovered += usize::from(hit);
        candidate_total += mapped.positions.len();
        if i < 5 {
            // Show an alignment against the best (closest) candidate.
            let best = mapped
                .positions
                .iter()
                .min_by_key(|&&p| p.abs_diff(read.origin))
                .copied();
            match best {
                Some(p) => {
                    let segment = genome.window(p..p + width);
                    let alignment = align(read.bases.as_slice(), segment.as_slice());
                    println!(
                        "read {i}: origin {} -> {} candidate(s), best {} (ED {}), CIGAR {}",
                        read.origin,
                        mapped.positions.len(),
                        p,
                        alignment.distance,
                        alignment.cigar()
                    );
                }
                None => println!("read {i}: origin {} -> unmapped", read.origin),
            }
        }
    }
    println!(
        "\nmapped {recovered}/{} reads to their true origin ({:.1} candidates/read avg)",
        reads.len(),
        candidate_total as f64 / reads.len() as f64
    );
    let stats = mapper.stats();
    println!(
        "device activity: {} cycles, {:.2} uJ",
        stats.cycles,
        stats.energy_j * 1e6
    );
    assert!(recovered >= reads.len() * 9 / 10, "mapping rate too low");
    println!("read mapping OK");
}
