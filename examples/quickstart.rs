//! Quickstart: build an `AsmcapPipeline` over a reference, map an erroneous
//! read, and inspect the structured result.
//!
//! Run with: `cargo run -p asmcap-workspace --example quickstart`

use asmcap::{AsmMatcher, AsmcapEngine, AsmcapPipeline, PipelineConfig};
use asmcap_genome::{ErrorProfile, GenomeModel, ReadSampler};

fn main() {
    // 1. A synthetic reference genome (stand-in for an NCBI sequence).
    let genome = GenomeModel::human_like().generate(50_000, 42);
    println!(
        "reference: {} bases, GC content {:.1}%",
        genome.len(),
        genome.gc_content() * 100.0
    );

    // 2. A 256-base read sampled with Condition-A sequencing errors.
    let profile = ErrorProfile::condition_a();
    let sampler = ReadSampler::new(256, profile);
    let read = sampler.sample(&genome, 7);
    println!(
        "read: origin {}, injected edits: {}",
        read.origin, read.edits
    );

    // 3. Pair-level decision with the full ASMCap engine (the layer the
    //    pipeline's PairBackend wraps).
    let segment = read.aligned_segment(&genome);
    let mut engine = AsmcapEngine::paper(profile, 1);
    let outcome = engine.matches(segment.as_slice(), read.bases.as_slice(), 8);
    println!(
        "engine decision vs true segment at T=8: {} ({} cycles)",
        if outcome.matched { "match" } else { "no match" },
        outcome.cycles
    );

    // 4. The pipeline: reference stored once at stride 1, then any number
    //    of reads mapped through the simulated device.
    let pipeline = AsmcapPipeline::builder()
        .reference(genome.clone())
        .config(PipelineConfig {
            seed: 2,
            ..PipelineConfig::paper(8, profile)
        })
        .build()
        .expect("pipeline builds for this genome");
    let record = pipeline.map(&read.bases);
    println!(
        "pipeline mapping at T=8: status {}, {} candidate position(s), {:?} (true origin {}), {} search cycles",
        record.status,
        record.positions.len(),
        &record.positions[..record.positions.len().min(5)],
        read.origin,
        record.cycles
    );
    assert!(
        record.positions.contains(&read.origin),
        "the true origin must be recovered"
    );
    let stats = pipeline.stats();
    println!(
        "pipeline stats: {} read(s), {} cycles, {:.2} uJ, {:.1} ms wall",
        stats.reads,
        stats.cycles,
        stats.energy_j * 1e6,
        stats.wall_s * 1e3
    );
    println!("quickstart OK");
}
