//! Quickstart: store a reference in a simulated ASMCap device, map an
//! erroneous read, and inspect the result.
//!
//! Run with: `cargo run -p asmcap-eval --example quickstart`

use asmcap::{AsmMatcher, AsmcapEngine, MapperConfig, ReadMapper};
use asmcap_arch::DeviceBuilder;
use asmcap_genome::{ErrorProfile, GenomeModel, ReadSampler};

fn main() {
    // 1. A synthetic reference genome (stand-in for an NCBI sequence).
    let genome = GenomeModel::human_like().generate(50_000, 42);
    println!(
        "reference: {} bases, GC content {:.1}%",
        genome.len(),
        genome.gc_content() * 100.0
    );

    // 2. A 256-base read sampled with Condition-A sequencing errors.
    let profile = ErrorProfile::condition_a();
    let sampler = ReadSampler::new(256, profile);
    let read = sampler.sample(&genome, 7);
    println!(
        "read: origin {}, injected edits: {}",
        read.origin, read.edits
    );

    // 3a. Pair-level decision with the full ASMCap engine.
    let segment = read.aligned_segment(&genome);
    let mut engine = AsmcapEngine::paper(profile, 1);
    let outcome = engine.matches(segment.as_slice(), read.bases.as_slice(), 8);
    println!(
        "engine decision vs true segment at T=8: {} ({} cycles)",
        if outcome.matched { "match" } else { "no match" },
        outcome.cycles
    );

    // 4. Device-level mapping: store the genome at stride 1 across arrays
    //    (small device: 256-row arrays, enough rows for 50k positions).
    let positions = genome.len() - 256 + 1;
    let mut device = DeviceBuilder::new()
        .arrays(positions.div_ceil(256))
        .rows_per_array(256)
        .row_width(256)
        .build_asmcap();
    device
        .store_reference(&genome, 1)
        .expect("device sized for the genome");
    let mut mapper = ReadMapper::new(device, MapperConfig::paper(8, profile), 2);
    let mapped = mapper.map_read(&read.bases);
    println!(
        "device mapping at T=8: {} candidate position(s), {:?} (true origin {}), {} search cycles",
        mapped.positions.len(),
        &mapped.positions[..mapped.positions.len().min(5)],
        read.origin,
        mapped.cycles
    );
    assert!(
        mapped.positions.contains(&read.origin),
        "the true origin must be recovered"
    );
    println!("quickstart OK");
}
