//! Virus screening: the paper's motivating "fast testing" scenario (§V-E).
//!
//! A SARS-CoV-2-scale genome is stored *entirely* in the device (the paper
//! notes 512 arrays = 64 Mb "can entirely store some small virus
//! sequences"); a metagenomic stream of reads — some viral, some host
//! background — is screened through the pipeline's streaming interface.
//!
//! Run with: `cargo run --release -p asmcap-workspace --example virus_screening`

use asmcap::{AsmcapPipeline, PipelineConfig};
use asmcap_genome::{synth, DnaSeq, ErrorProfile, GenomeModel, ReadSampler};
use asmcap_metrics::ConfusionMatrix;

fn main() {
    // The target: a 29.9 kb coronavirus-like genome, stored at stride 1 so
    // every alignment offset is a row.
    let virus = synth::sars_cov_2_like(2024);
    let profile = ErrorProfile::condition_b();
    let pipeline = AsmcapPipeline::builder()
        .reference(virus.clone())
        .config(PipelineConfig {
            seed: 3,
            ..PipelineConfig::paper(12, profile)
        })
        .build()
        .expect("virus fits the device");
    println!(
        "stored {}-base viral reference at stride 1 ({} backend, {} workers)",
        virus.len(),
        pipeline.backend_name(),
        pipeline.workers()
    );

    // The sample: viral reads (TGS-like, indel-heavy Condition B) mixed
    // with human-like background reads.
    let sampler = ReadSampler::new(256, profile);
    let viral_reads = sampler.sample_many(&virus, 60, 11);
    let host = GenomeModel::human_like().generate(200_000, 99);
    let host_reads = sampler.sample_many(&host, 60, 13);
    let labelled: Vec<(bool, DnaSeq)> = viral_reads
        .iter()
        .map(|r| (true, r.bases.clone()))
        .chain(host_reads.iter().map(|r| (false, r.bases.clone())))
        .collect();

    // Screen the metagenomic stream: map_iter pulls reads in chunks, maps
    // each chunk as a parallel batch, and yields records in input order.
    let mut cm = ConfusionMatrix::new();
    let stream = labelled.iter().map(|(_, read)| read.clone());
    for ((is_viral, _), record) in labelled.iter().zip(pipeline.map_iter(stream)) {
        cm.record(*is_viral, record.status.is_mapped());
    }

    println!("screening result at T=12: {cm}");
    println!(
        "sensitivity {:.1}%, precision {:.1}%, F1 {:.1}%",
        cm.sensitivity() * 100.0,
        cm.precision() * 100.0,
        cm.f1() * 100.0
    );

    let stats = pipeline.stats();
    println!(
        "pipeline activity: {} reads, {} searches, {} cycles, {:.2} uJ total ({:.1} nJ/read)",
        stats.reads,
        stats.searches,
        stats.cycles,
        stats.energy_j * 1e6,
        stats.energy_j * 1e9 / stats.reads as f64
    );
    assert!(cm.f1() > 0.8, "screening F1 unexpectedly low");
    println!("virus screening OK");
}
