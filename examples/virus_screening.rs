//! Virus screening: the paper's motivating "fast testing" scenario (§V-E).
//!
//! A SARS-CoV-2-scale genome is stored *entirely* in the device (the paper
//! notes 512 arrays = 64 Mb "can entirely store some small virus
//! sequences"); a metagenomic stream of reads — some viral, some host
//! background — is screened in one search operation per read.
//!
//! Run with: `cargo run --release -p asmcap-eval --example virus_screening`

use asmcap::{MapperConfig, ReadMapper};
use asmcap_arch::DeviceBuilder;
use asmcap_genome::{synth, ErrorProfile, GenomeModel, ReadSampler};
use asmcap_metrics::ConfusionMatrix;

fn main() {
    // The target: a 29.9 kb coronavirus-like genome, stored at stride 1 so
    // every alignment offset is a row.
    let virus = synth::sars_cov_2_like(2024);
    let rows_needed = virus.len() - 256 + 1;
    let mut device = DeviceBuilder::new()
        .arrays(rows_needed.div_ceil(256))
        .rows_per_array(256)
        .row_width(256)
        .build_asmcap();
    let stored = device.store_reference(&virus, 1).expect("virus fits");
    println!(
        "stored {} viral rows across {} arrays ({}x{} each)",
        stored,
        device.arrays().len(),
        256,
        256
    );

    // The sample: viral reads (TGS-like, indel-heavy Condition B) mixed
    // with human-like background reads.
    let profile = ErrorProfile::condition_b();
    let sampler = ReadSampler::new(256, profile);
    let viral_reads = sampler.sample_many(&virus, 60, 11);
    let host = GenomeModel::human_like().generate(200_000, 99);
    let host_reads = sampler.sample_many(&host, 60, 13);

    let mut mapper = ReadMapper::new(device, MapperConfig::paper(12, profile), 3);
    let mut cm = ConfusionMatrix::new();
    for read in &viral_reads {
        let mapped = mapper.map_read(&read.bases);
        cm.record(true, !mapped.positions.is_empty());
    }
    for read in &host_reads {
        let mapped = mapper.map_read(&read.bases);
        cm.record(false, !mapped.positions.is_empty());
    }

    println!("screening result at T=12: {cm}");
    println!(
        "sensitivity {:.1}%, precision {:.1}%, F1 {:.1}%",
        cm.sensitivity() * 100.0,
        cm.precision() * 100.0,
        cm.f1() * 100.0
    );

    let stats = mapper.stats();
    println!(
        "device activity: {} searches, {} cycles, {:.2} uJ total ({:.1} nJ/read)",
        stats.searches,
        stats.cycles,
        stats.energy_j * 1e6,
        stats.energy_j * 1e9 / (viral_reads.len() + host_reads.len()) as f64
    );
    assert!(cm.f1() > 0.8, "screening F1 unexpectedly low");
    println!("virus screening OK");
}
