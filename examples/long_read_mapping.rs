//! Long-read mapping: reads longer than the CAM row are split into
//! row-width fragments ("the global buffer can fetch the entire reads or
//! k-mers … according to the read length", paper §III-A) and mapped by
//! fragment voting — the TGS-flavoured use case from the paper's intro.
//!
//! Run with: `cargo run --release -p asmcap-eval --example long_read_mapping`

use asmcap::fragment::{FragmentConfig, LongReadMapper};
use asmcap::MapperConfig;
use asmcap_arch::DeviceBuilder;
use asmcap_genome::{ErrorModel, ErrorProfile, GenomeModel, ReadSampler};

fn main() {
    let genome = GenomeModel::human_like().generate(60_000, 77);
    let width = 256usize;
    let positions = genome.len() - width + 1;
    let mut device = DeviceBuilder::new()
        .arrays(positions.div_ceil(256))
        .rows_per_array(256)
        .row_width(width)
        .build_asmcap();
    device.store_reference(&genome, 1).expect("genome fits");

    // TGS-flavoured long reads: 1.5 kb, 4% mixed errors with bursty indels.
    let profile = ErrorProfile::new(0.02, 0.01, 0.01);
    let model = ErrorModel::Bursty {
        profile,
        mean_burst_len: 2.0,
    };
    let sampler = ReadSampler::with_model(1_536, model);
    let reads = sampler.sample_many(&genome, 12, 5);

    let config = FragmentConfig {
        mapper: MapperConfig::paper(24, profile),
        stride: width,
        min_vote_fraction: 0.5,
        origin_tolerance: 48,
    };
    let mut mapper = LongReadMapper::new(device, config, 9);

    let mut mapped_ok = 0usize;
    for (i, read) in reads.iter().enumerate() {
        match mapper.map_long_read(&read.bases) {
            Some(mapping) => {
                let ok = mapping.origin.abs_diff(read.origin) <= 48;
                mapped_ok += usize::from(ok);
                println!(
                    "read {i}: {} edits, true origin {}, called {} ({}/{} fragment votes){}",
                    read.edits.total(),
                    read.origin,
                    mapping.origin,
                    mapping.votes,
                    mapping.fragments,
                    if ok { "" } else { "  <-- WRONG" }
                );
            }
            None => println!("read {i}: true origin {} -> unmapped", read.origin),
        }
    }
    println!("\nmapped {mapped_ok}/{} long reads to their origin", reads.len());
    let stats = mapper.stats();
    println!(
        "device activity: {} cycles, {:.2} uJ",
        stats.cycles,
        stats.energy_j * 1e6
    );
    assert!(mapped_ok >= reads.len() - 2, "long-read mapping rate too low");
    println!("long read mapping OK");
}
