//! Long-read mapping: reads longer than the CAM row are split into
//! row-width fragments ("the global buffer can fetch the entire reads or
//! k-mers … according to the read length", paper §III-A) and mapped by
//! fragment voting over an `AsmcapPipeline` — the TGS-flavoured use case
//! from the paper's intro.
//!
//! Run with: `cargo run --release -p asmcap-workspace --example long_read_mapping`

use asmcap::fragment::{FragmentConfig, LongReadMapper};
use asmcap::{AsmcapPipeline, PipelineConfig};
use asmcap_genome::{ErrorModel, ErrorProfile, GenomeModel, ReadSampler};

fn main() {
    let genome = GenomeModel::human_like().generate(60_000, 77);
    let width = 256usize;

    // TGS-flavoured long reads: 1.5 kb, 4% mixed errors with bursty indels.
    let profile = ErrorProfile::new(0.02, 0.01, 0.01);
    let model = ErrorModel::Bursty {
        profile,
        mean_burst_len: 2.0,
    };
    let sampler = ReadSampler::with_model(1_536, model);
    let reads = sampler.sample_many(&genome, 12, 5);

    let pipeline = AsmcapPipeline::builder()
        .reference(genome.clone())
        .config(PipelineConfig {
            row_width: width,
            seed: 9,
            ..PipelineConfig::paper(24, profile)
        })
        .build()
        .expect("pipeline builds for this genome");
    let config = FragmentConfig {
        stride: width,
        min_vote_fraction: 0.5,
        origin_tolerance: 48,
    };
    let mapper = LongReadMapper::new(pipeline, config);

    let mut mapped_ok = 0usize;
    for (i, read) in reads.iter().enumerate() {
        match mapper.map_long_read(&read.bases) {
            Some(mapping) => {
                let ok = mapping.origin.abs_diff(read.origin) <= 48;
                mapped_ok += usize::from(ok);
                println!(
                    "read {i}: {} edits, true origin {}, called {} ({}/{} fragment votes){}",
                    read.edits.total(),
                    read.origin,
                    mapping.origin,
                    mapping.votes,
                    mapping.fragments,
                    if ok { "" } else { "  <-- WRONG" }
                );
            }
            None => println!("read {i}: true origin {} -> unmapped", read.origin),
        }
    }
    println!(
        "\nmapped {mapped_ok}/{} long reads to their origin",
        reads.len()
    );
    let stats = mapper.stats();
    println!(
        "pipeline activity: {} fragments, {} cycles, {:.2} uJ",
        stats.reads,
        stats.cycles,
        stats.energy_j * 1e6
    );
    assert!(
        mapped_ok >= reads.len() - 2,
        "long-read mapping rate too low"
    );
    println!("long read mapping OK");
}
