//! Design-space exploration: how sensitive are the HDAC and TASR gains to
//! their constants? (The paper calls both spaces "huge"; §IV.) Plus the
//! pipeline's determinism contract: worker count never changes results.
//!
//! Run with: `cargo run --release -p asmcap-workspace --example design_space`

use asmcap_eval::{Condition, EvalDataset};

fn main() {
    let reads = 80;
    let decoys = 8;
    let ds_a = EvalDataset::build(Condition::A, reads, decoys, 256, 120_000, 0xD51A);
    println!("HDAC (alpha, beta) sweep — mean F1 (%), Condition A\n");
    println!(
        "{}",
        asmcap_eval::ablation::hdac_sweep(&ds_a, &[50.0, 200.0, 400.0], &[0.25, 0.5, 1.0], 1)
    );

    let ds_b = EvalDataset::build(Condition::B, reads, decoys, 256, 120_000, 0xD51B);
    println!("TASR (gamma, N_R) sweep — mean F1 (%), Condition B\n");
    println!(
        "{}",
        asmcap_eval::ablation::tasr_sweep(&ds_b, &[1e-4, 2e-4, 4e-4], &[0, 2, 4], 2)
    );

    println!("Rotation schedule comparison, Condition B\n");
    println!("{}", asmcap_eval::ablation::schedule_sweep(&ds_b, 3));

    // One axis the old per-read API could not even express: shard the
    // mapping batch across worker threads. Per-read seeds derive from the
    // read index, so recovery is bit-identical at every worker count.
    let ds = EvalDataset::build(Condition::A, 30, 4, 256, 40_000, 0xD51C);
    let baseline = ds
        .mapping_recovery(&ds.pipeline(8, asmcap::BackendKind::Pair, 4).unwrap())
        .recovered;
    for workers in [1usize, 2, 8] {
        let pipeline = asmcap::AsmcapPipeline::builder()
            .reference(ds.genome().clone())
            .config(asmcap::PipelineConfig {
                row_width: 256,
                seed: 4,
                ..asmcap::PipelineConfig::paper(8, Condition::A.profile())
            })
            .backend(asmcap::BackendKind::Pair)
            .workers(workers)
            .build()
            .unwrap();
        let recovery = ds.mapping_recovery(&pipeline);
        println!(
            "{workers} worker(s): {}/{} origins recovered",
            recovery.recovered, recovery.reads
        );
        assert_eq!(recovery.recovered, baseline, "worker count changed results");
    }
    println!("design space exploration OK");
}
