//! Design-space exploration: how sensitive are the HDAC and TASR gains to
//! their constants? (The paper calls both spaces "huge"; §IV.)
//!
//! Run with: `cargo run --release -p asmcap-eval --example design_space`

use asmcap_eval::{Condition, EvalDataset};

fn main() {
    let reads = 80;
    let decoys = 8;
    let ds_a = EvalDataset::build(Condition::A, reads, decoys, 256, 120_000, 0xD51A);
    println!("HDAC (alpha, beta) sweep — mean F1 (%), Condition A\n");
    println!(
        "{}",
        asmcap_eval::ablation::hdac_sweep(&ds_a, &[50.0, 200.0, 400.0], &[0.25, 0.5, 1.0], 1)
    );

    let ds_b = EvalDataset::build(Condition::B, reads, decoys, 256, 120_000, 0xD51B);
    println!("TASR (gamma, N_R) sweep — mean F1 (%), Condition B\n");
    println!(
        "{}",
        asmcap_eval::ablation::tasr_sweep(&ds_b, &[1e-4, 2e-4, 4e-4], &[0, 2, 4], 2)
    );

    println!("Rotation schedule comparison, Condition B\n");
    println!("{}", asmcap_eval::ablation::schedule_sweep(&ds_b, 3));
    println!("design space exploration OK");
}
