//! Batch-dispatch capacity check: reads/s through the pipeline's batch
//! entry point (the path `asmcap-serve`'s executor drains) vs the
//! per-read entry point, on the ref-8k serving configuration.
//!
//! ```text
//! cargo run --release --example serve_capacity [workers] [reads] [batch] [aligned|random]
//! ```
//!
//! `aligned` (the default) samples read origins on the stride-8
//! segmentation grid — the serving workload, where most reads map.
//! `random` samples unaligned origins, where most reads miss and take
//! the fallback path.

use asmcap::{AsmcapPipeline, BackendKind, PipelineConfig, PrefilterConfig};
use asmcap_genome::{ErrorProfile, GenomeModel, PackedSeq, ReadSampler};
use rand::Rng as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(4);
    let n_reads: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(16_384);
    let batch: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(256);
    let aligned = args.get(3).map(String::as_str) != Some("random");

    let reference = GenomeModel::uniform().generate(8_192, 7);
    let sampler = ReadSampler::new(128, ErrorProfile::condition_a());
    let reads: Vec<PackedSeq> = if aligned {
        let mut rng = asmcap_genome::rng(11);
        let n_origins = sampler.max_origin(reference.len()).unwrap() / 8 + 1;
        (0..n_reads)
            .map(|_| {
                let origin = (rng.gen::<u64>() as usize % n_origins) * 8;
                PackedSeq::from_seq(&sampler.sample_at(&reference, origin, &mut rng).bases)
            })
            .collect()
    } else {
        sampler
            .sample_many(&reference, n_reads, 11)
            .into_iter()
            .map(|r| PackedSeq::from_seq(&r.bases))
            .collect()
    };
    let pipeline = AsmcapPipeline::builder()
        .reference(reference)
        .config(PipelineConfig {
            threshold: 6,
            stride: 8,
            row_width: 128,
            prefilter: Some(PrefilterConfig::default()),
            ..PipelineConfig::default()
        })
        .backend(BackendKind::Device)
        .workers(workers)
        .build()
        .expect("valid capacity-check pipeline");

    // Batch dispatch (the serving path).
    let start = Instant::now();
    let mut mapped = 0usize;
    for chunk in reads.chunks(batch) {
        mapped += pipeline
            .map_batch_packed(chunk)
            .iter()
            .filter(|r| r.status.is_mapped())
            .count();
    }
    let batch_s = start.elapsed().as_secs_f64();

    // Per-read dispatch (the pre-batch baseline).
    let start = Instant::now();
    let mut mapped_per_read = 0usize;
    for read in &reads {
        if pipeline.map_packed(read).status.is_mapped() {
            mapped_per_read += 1;
        }
    }
    let per_read_s = start.elapsed().as_secs_f64();

    // Mapped counts differ slightly between passes: the running read
    // counter gives the two passes different indices, hence different
    // sensing seeds. Byte-identity at equal indices is pinned by
    // tests/packed_equivalence.rs.
    let mode = if aligned { "aligned" } else { "random" };
    println!(
        "workers {workers}  reads {n_reads}  batch {batch}  origins {mode}  mapped {mapped}/{mapped_per_read}\n\
         batch dispatch:    {:>10.0} reads/s ({batch_s:.3}s)\n\
         per-read dispatch: {:>10.0} reads/s ({per_read_s:.3}s)",
        n_reads as f64 / batch_s,
        n_reads as f64 / per_read_s,
    );
}
