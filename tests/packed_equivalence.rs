//! The packed matchplane is a pure representation change: every path that
//! runs on 2-bit packed words must produce **byte-identical** results — same
//! candidate positions, same cycle/energy accounting, same RNG draw order —
//! as the byte-per-base walk it replaced. These tests pin that contract
//! across the pipeline, the backends, the engine, and the array.

use asmcap::{AsmMatcher as _, MappingBackend as _};
use asmcap::{
    AsmcapPipeline, BackendKind, ExtensionConfig, FaultPlan, MapRecord, MapStatus, PipelineConfig,
};
use asmcap_arch::{CamArray, MatchMode};
use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, PackedRef, PackedSeq, ReadSampler};

const WIDTH: usize = 128;

/// Golden fingerprints of `map_batch` over the canonical equivalence
/// workload, captured from the PR 7 tree before the extension stage landed
/// (same constants `tests/prefilter_equivalence.rs` pins for the prefilter).
const GOLDEN: [(BackendKind, &str, u64); 6] = [
    (BackendKind::Device, "A", 0x111F_C2D0_7E2B_41E9),
    (BackendKind::Pair, "A", 0xE448_E745_FEF2_98CE),
    (BackendKind::Software, "A", 0xA122_42E8_F8A1_40C9),
    (BackendKind::Device, "B", 0xAFB6_E0B4_4D6A_517B),
    (BackendKind::Pair, "B", 0x6B96_3025_4F05_D529),
    (BackendKind::Software, "B", 0x633A_8911_6649_4693),
];

/// FNV-1a over every *matching* field of every record. The enumeration is
/// deliberately explicit — adding the `alignment` field to `MapRecord` must
/// not perturb the hash of a run that never arms the extension stage.
fn fingerprint(records: &[MapRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for r in records {
        mix(r.index);
        mix(match r.status {
            MapStatus::Mapped => 1,
            MapStatus::Unmapped => 2,
            MapStatus::Truncated => 3,
            MapStatus::Rejected => 4,
        });
        mix(r.positions.len() as u64);
        for &p in &r.positions {
            mix(p as u64);
        }
        mix(r.cycles);
        mix(r.searches);
        mix(r.energy_j.to_bits());
    }
    h
}

fn workload(genome: &DnaSeq, profile: ErrorProfile) -> Vec<DnaSeq> {
    let sampler = ReadSampler::new(WIDTH, profile);
    let mut reads: Vec<DnaSeq> = sampler
        .sample_many(genome, 12, 31)
        .into_iter()
        .map(|r| r.bases)
        .collect();
    let foreign = GenomeModel::uniform().generate(4 * WIDTH, 777);
    for i in 0..4 {
        reads.push(foreign.window(i * WIDTH..(i + 1) * WIDTH));
    }
    reads
}

fn pipeline(
    genome: &DnaSeq,
    backend: BackendKind,
    profile: ErrorProfile,
    threshold: usize,
) -> AsmcapPipeline {
    AsmcapPipeline::builder()
        .reference(genome.clone())
        .config(PipelineConfig {
            row_width: WIDTH,
            seed: 0xA5,
            ..PipelineConfig::paper(threshold, profile)
        })
        .backend(backend)
        .workers(2)
        .build()
        .expect("pipeline builds")
}

/// `map_batch` (packs internally) and `map_batch_packed` (caller packs)
/// yield byte-identical records on every backend, in both error regimes —
/// condition A arms HDAC, condition B arms TASR's rotated searches.
#[test]
fn packed_batch_entry_point_is_byte_identical() {
    let genome = GenomeModel::uniform().generate(16_384, 21);
    for (profile, threshold) in [
        (ErrorProfile::condition_a(), 6usize),
        (ErrorProfile::condition_b(), 8usize),
    ] {
        let reads = workload(&genome, profile);
        let packed: Vec<PackedSeq> = reads.iter().map(PackedSeq::from_seq).collect();
        for kind in [
            BackendKind::Device,
            BackendKind::Pair,
            BackendKind::Software,
        ] {
            let unpacked_records = pipeline(&genome, kind, profile, threshold).map_batch(&reads);
            let packed_records =
                pipeline(&genome, kind, profile, threshold).map_batch_packed(&packed);
            assert_eq!(
                unpacked_records, packed_records,
                "{kind:?} diverged between packed and unpacked batch entry points"
            );
        }
    }
}

/// Batch dispatch is the default device path: a whole tile drains
/// through `MappingBackend::map_batch_shortlisted` and the device's
/// array-by-array batch kernel. This pins it byte-identical to per-read
/// dispatch — same records, same aggregated stats, same RNG draw order —
/// at workers 1, 2, and 8, with and without the prefilter.
#[test]
fn batch_dispatch_matches_per_read_dispatch() {
    use asmcap_genome::PrefilterConfig;
    let genome = GenomeModel::uniform().generate(16_384, 29);
    let reads = workload(&genome, ErrorProfile::condition_a());
    let packed: Vec<PackedSeq> = reads.iter().map(PackedSeq::from_seq).collect();
    for prefilter in [None, Some(PrefilterConfig::default())] {
        let build = |workers: usize| {
            let mut builder = AsmcapPipeline::builder()
                .reference(genome.clone())
                .config(PipelineConfig {
                    row_width: WIDTH,
                    seed: 0xA5,
                    ..PipelineConfig::paper(6, ErrorProfile::condition_a())
                })
                .backend(BackendKind::Device)
                .workers(workers);
            if let Some(config) = prefilter {
                builder = builder.prefilter(config);
            }
            builder.build().expect("pipeline builds")
        };
        // Per-read dispatch on a fresh pipeline: the running counter
        // hands out indices 0..n exactly as one batch would.
        let per_read_pipeline = build(1);
        let per_read: Vec<MapRecord> = packed
            .iter()
            .map(|read| per_read_pipeline.map_packed(read))
            .collect();
        let per_read_stats = per_read_pipeline.stats();
        for workers in [1usize, 2, 8] {
            let batch_pipeline = build(workers);
            let batched = batch_pipeline.map_batch_packed(&packed);
            assert_eq!(
                batched,
                per_read,
                "batch dispatch diverged from per-read dispatch at \
                 {workers} workers (prefilter: {})",
                prefilter.is_some()
            );
            let mut stats = batch_pipeline.stats();
            // Wall-clock is the one legitimately dispatch-dependent field.
            stats.wall_s = per_read_stats.wall_s;
            assert_eq!(
                stats,
                per_read_stats,
                "batch stats diverged from per-read stats at {workers} \
                 workers (prefilter: {})",
                prefilter.is_some()
            );
        }
    }
}

/// Extension off (the default) ⇒ byte-identical to the PR 7 golden capture,
/// across all three backends and both error conditions. The config spells
/// `extension: None` out so the pin survives a future default change.
#[test]
fn extension_off_matches_pr7_golden_capture() {
    let genome = GenomeModel::uniform().generate(16_384, 21);
    for (kind, condition, golden) in GOLDEN {
        let (profile, threshold) = match condition {
            "A" => (ErrorProfile::condition_a(), 6),
            _ => (ErrorProfile::condition_b(), 8),
        };
        let reads = workload(&genome, profile);
        let p = AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(PipelineConfig {
                row_width: WIDTH,
                seed: 0xA5,
                extension: None,
                ..PipelineConfig::paper(threshold, profile)
            })
            .backend(kind)
            .workers(2)
            .build()
            .expect("pipeline builds");
        assert!(!p.extension_armed());
        assert_eq!(
            fingerprint(&p.map_batch(&reads)),
            golden,
            "{kind:?}/condition {condition} drifted from the PR 7 capture"
        );
    }
}

/// Arming the extension stage changes **only** the `alignment` field:
/// stripping it restores records byte-identical to an extension-off run
/// (whose matching fields still hash to the PR 7 golden capture), the
/// alignments land on reported positions, and every transcript replays at
/// exactly its claimed cost against the packed reference segment.
#[test]
fn extension_changes_only_the_alignment_field_and_replays_exactly() {
    let genome = GenomeModel::uniform().generate(16_384, 21);
    let packed_ref = PackedRef::new(&genome);
    for (kind, condition, golden) in GOLDEN {
        let (profile, threshold) = match condition {
            "A" => (ErrorProfile::condition_a(), 6),
            _ => (ErrorProfile::condition_b(), 8),
        };
        let reads = workload(&genome, profile);
        let plain = pipeline(&genome, kind, profile, threshold).map_batch(&reads);
        let extended = AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(PipelineConfig {
                row_width: WIDTH,
                seed: 0xA5,
                ..PipelineConfig::paper(threshold, profile)
            })
            .backend(kind)
            .workers(2)
            .extension(ExtensionConfig::default())
            .build()
            .expect("pipeline builds")
            .map_batch(&reads);
        assert_eq!(
            fingerprint(&extended),
            golden,
            "{kind:?}/condition {condition}: extension perturbed a matching field"
        );
        let mut aligned = 0usize;
        for ((read, p), e) in reads.iter().zip(&plain).zip(&extended) {
            let mut stripped = e.clone();
            stripped.alignment = None;
            assert_eq!(
                &stripped, p,
                "{kind:?}/condition {condition}: extension changed more than `alignment`"
            );
            if let Some(alignment) = &e.alignment {
                aligned += 1;
                assert!(
                    e.positions.contains(&alignment.origin),
                    "{kind:?}/condition {condition}: aligned at unreported origin {}",
                    alignment.origin
                );
                let segment = packed_ref.segment(alignment.origin, WIDTH);
                assert_eq!(
                    alignment
                        .cigar
                        .check_replay(&PackedSeq::from_seq(read), &segment),
                    Some(alignment.score),
                    "{kind:?}/condition {condition}: CIGAR does not replay at origin {}",
                    alignment.origin
                );
            }
        }
        assert!(
            aligned >= 12,
            "{kind:?}/condition {condition}: only {aligned} of the planted reads aligned"
        );
    }
}

/// `FaultPlan::none()` is a true no-op: carrying an empty plan through the
/// builder produces records byte-identical to the PR 7 golden capture on
/// all three backends and both error conditions — the fault hooks on the
/// sense path cost zero draws and zero decisions when the plan is inert.
#[test]
fn fault_off_matches_pr7_golden_capture() {
    let genome = GenomeModel::uniform().generate(16_384, 21);
    for (kind, condition, golden) in GOLDEN {
        let (profile, threshold) = match condition {
            "A" => (ErrorProfile::condition_a(), 6),
            _ => (ErrorProfile::condition_b(), 8),
        };
        let reads = workload(&genome, profile);
        let p = AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(PipelineConfig {
                row_width: WIDTH,
                seed: 0xA5,
                ..PipelineConfig::paper(threshold, profile)
            })
            .backend(kind)
            .workers(2)
            .fault(FaultPlan::none())
            .build()
            .expect("an inert fault plan builds on every backend");
        assert!(!p.fault_armed());
        assert_eq!(
            fingerprint(&p.map_batch(&reads)),
            golden,
            "{kind:?}/condition {condition}: FaultPlan::none() perturbed results"
        );
    }
}

/// Faults on: the same seed and plan reproduce identical records at
/// workers 1, 2, and 8 — fault draws key off the per-read seed, never off
/// scheduling — and a different fault seed really does change the fabric.
#[test]
fn fault_on_is_deterministic_across_worker_counts() {
    let genome = GenomeModel::uniform().generate(16_384, 21);
    let reads = workload(&genome, ErrorProfile::condition_a());
    let run = |workers: usize, fault_seed: u64| {
        let p = AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(PipelineConfig {
                row_width: WIDTH,
                seed: 0xA5,
                ..PipelineConfig::paper(6, ErrorProfile::condition_a())
            })
            .backend(BackendKind::Device)
            .workers(workers)
            .fault(FaultPlan::paper_corner(fault_seed))
            .build()
            .expect("pipeline builds");
        assert!(p.fault_armed());
        p.map_batch(&reads)
    };
    let baseline = run(1, 0xFA17);
    for workers in [2usize, 8] {
        assert_eq!(
            run(workers, 0xFA17),
            baseline,
            "faulted records diverged at {workers} workers"
        );
    }
    assert_ne!(
        run(1, 0xFA17 + 1),
        baseline,
        "a different fault seed left every record untouched — the plan is not landing"
    );
}

/// The trait's mutual defaults: a backend reached through `map_seeded`
/// (slice) and through `map_packed` (words) makes identical decisions and
/// draws identical noise.
#[test]
fn backend_entry_points_agree() {
    let genome = GenomeModel::uniform().generate(4_096, 5);
    let backend = asmcap::PairBackend::new(
        genome.clone(),
        1,
        WIDTH,
        asmcap::MapperConfig::paper(8, ErrorProfile::condition_b()),
    );
    let read = genome.window(900..900 + WIDTH);
    let via_slice = backend.map_seeded(&read, 42);
    let via_words = backend.map_packed(&PackedSeq::from_seq(&read), 42);
    assert_eq!(via_slice, via_words);
    assert!(via_slice.positions.contains(&900));
}

/// The engine's scalar `matches` delegates to `matches_packed`; a fresh
/// engine fed slices and a fresh engine fed packed segment views of the
/// same reference walk identical RNG streams and return identical outcomes.
#[test]
fn engine_scalar_and_packed_paths_are_interchangeable() {
    let genome = GenomeModel::uniform().generate(4_096, 7);
    let packed_ref = PackedRef::new(&genome);
    let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_b());
    for (i, read) in sampler.sample_many(&genome, 6, 13).into_iter().enumerate() {
        let seed = 1000 + i as u64;
        let mut scalar = asmcap::AsmcapEngine::paper(ErrorProfile::condition_b(), seed);
        let mut packed = asmcap::AsmcapEngine::paper(ErrorProfile::condition_b(), seed);
        let packed_read = PackedSeq::from_seq(&read.bases);
        for start in (0..=genome.len() - WIDTH).step_by(197) {
            let slice = &genome.as_slice()[start..start + WIDTH];
            let view = packed_ref.segment(start, WIDTH);
            for t in [2usize, 8] {
                assert_eq!(
                    scalar.matches(slice, read.bases.as_slice(), t),
                    packed.matches_packed(&view, &packed_read, t),
                    "engine diverged at segment {start}, T={t}"
                );
            }
        }
    }
}

/// `CamArray::search` packs and forwards to `search_packed`: same rows,
/// same n_mis, same sense decisions, same energy.
#[test]
fn array_search_entry_points_agree() {
    let genome = GenomeModel::uniform().generate(4_096, 3);
    let mut array = CamArray::asmcap(16, WIDTH);
    for i in 0..16 {
        array
            .store_row(&genome.as_slice()[i * 200..i * 200 + WIDTH])
            .unwrap();
    }
    let read = genome.window(1_000..1_000 + WIDTH);
    let packed_read = PackedSeq::from_seq(&read);
    for mode in [MatchMode::EdStar, MatchMode::Hamming] {
        let mut rng_a = asmcap_circuit::rng(11);
        let mut rng_b = asmcap_circuit::rng(11);
        assert_eq!(
            array.search(read.as_slice(), 4, mode, &mut rng_a),
            array.search_packed(&packed_read, 4, mode, &mut rng_b),
            "array diverged in {mode} mode"
        );
    }
}

/// Truncation and rejection statuses are decided on packed lengths exactly
/// as they were on sequence lengths.
#[test]
fn statuses_survive_the_packed_path() {
    let genome = GenomeModel::uniform().generate(4_096, 24);
    let p = pipeline(
        &genome,
        BackendKind::Software,
        ErrorProfile::condition_a(),
        2,
    );
    let long = PackedSeq::from_seq(&genome.window(200..200 + WIDTH + 40));
    let short = PackedSeq::from_seq(&genome.window(0..WIDTH / 2));
    let long_record = p.map_packed(&long);
    assert_eq!(long_record.status, asmcap::MapStatus::Truncated);
    assert!(
        long_record.positions.contains(&200),
        "truncated prefix still maps"
    );
    let short_record = p.map_packed(&short);
    assert_eq!(short_record.status, asmcap::MapStatus::Rejected);
}

/// The long-read mapper's packed fragment extraction sees exactly the
/// windows `fragments()` reports, so voting is unchanged.
#[test]
fn long_read_mapper_votes_identically_over_packed_fragments() {
    let genome = GenomeModel::uniform().generate(8_192, 2);
    let make = || {
        asmcap::LongReadMapper::new(
            AsmcapPipeline::builder()
                .reference(genome.clone())
                .config(PipelineConfig {
                    row_width: WIDTH,
                    seed: 7,
                    ..PipelineConfig::plain(2)
                })
                .build()
                .unwrap(),
            asmcap::FragmentConfig::new(WIDTH),
        )
    };
    let read = genome.window(2_345..2_345 + 500); // non-multiple of the width
    let mapper = make();
    let mapping = mapper.map_long_read(&read).expect("maps");
    assert_eq!(mapping.origin, 2_345);
    // Replaying the unpacked fragments through a fresh pipeline produces
    // the same records the packed path voted over.
    let replay = make();
    let fragments = replay.fragments(&read);
    let records: Vec<MapRecord> = replay
        .pipeline()
        .map_batch(&fragments.iter().map(|(_, f)| f.clone()).collect::<Vec<_>>());
    assert_eq!(mapping.fragments, fragments.len());
    assert!(records.iter().all(|r| r.status.is_mapped()));
}
