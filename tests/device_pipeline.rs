//! Integration test: the end-to-end device path — genome → arrays →
//! pipeline → strategies — is consistent with the metrics layer and
//! recovers read origins.

use asmcap::{AsmcapPipeline, PipelineConfig};
use asmcap_arch::{CamArray, MatchMode};
use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, ReadSampler};

fn device_pipeline(genome: &DnaSeq, config: PipelineConfig) -> AsmcapPipeline {
    AsmcapPipeline::builder()
        .reference(genome.clone())
        .config(config)
        .build()
        .expect("pipeline builds")
}

#[test]
fn array_mismatch_counts_equal_metrics_distances() {
    let genome = GenomeModel::human_like().generate(5_000, 1);
    let mut array = CamArray::asmcap(16, 128);
    for i in 0..16 {
        array
            .store_row(&genome.as_slice()[i * 200..i * 200 + 128])
            .unwrap();
    }
    let read = genome.window(1_000..1_128);
    for row in 0..16 {
        let stored = array.stored_row(row).unwrap();
        assert_eq!(
            array.row_mismatches(row, read.as_slice(), MatchMode::EdStar),
            asmcap_metrics::ed_star(&stored, read.as_slice())
        );
        assert_eq!(
            array.row_mismatches(row, read.as_slice(), MatchMode::Hamming),
            asmcap_metrics::hamming(&stored, read.as_slice())
        );
    }
}

#[test]
fn device_recovers_origins_for_erroneous_reads() {
    let genome = GenomeModel::uniform().generate(20_000, 2);
    let profile = ErrorProfile::condition_a();
    let width = 256usize;
    let pipeline = device_pipeline(
        &genome,
        PipelineConfig {
            row_width: width,
            seed: 4,
            ..PipelineConfig::paper(8, profile)
        },
    );

    let sampler = ReadSampler::new(width, profile);
    let (origins, reads): (Vec<usize>, Vec<DnaSeq>) = sampler
        .sample_many(&genome, 15, 3)
        .into_iter()
        .map(|r| (r.origin, r.bases))
        .unzip();
    let records = pipeline.map_batch(&reads);
    let recovered = records
        .iter()
        .zip(&origins)
        .filter(|(record, origin)| record.positions.contains(origin))
        .count();
    assert!(
        recovered >= 14,
        "only {recovered}/15 origins recovered at T=8"
    );
}

#[test]
fn consecutive_deletions_need_tasr_on_device() {
    let genome = GenomeModel::uniform().generate(8_192, 3);
    let width = 256usize;
    // A read with two consecutive deletions relative to its origin at 512.
    let mut bases = genome.window(512..512 + width).into_bases();
    bases.drain(64..66);
    bases.extend_from_slice(&genome.as_slice()[512 + width..512 + width + 2]);
    let read = DnaSeq::from_bases(bases);

    let plain = device_pipeline(
        &genome,
        PipelineConfig {
            row_width: width,
            seed: 5,
            ..PipelineConfig::plain(8)
        },
    );
    let with_tasr = device_pipeline(
        &genome,
        PipelineConfig {
            row_width: width,
            seed: 6,
            ..PipelineConfig::paper(8, ErrorProfile::condition_b())
        },
    );
    let before = plain.map(&read);
    let after = with_tasr.map(&read);
    assert!(!before.positions.contains(&512), "plain ED* should miss");
    assert!(after.positions.contains(&512), "TASR should recover");
    assert!(after.cycles > before.cycles, "rotations must cost cycles");
}

#[test]
fn engine_and_pipeline_agree_on_clean_decisions() {
    // Far from the threshold boundary, the pair engine and the device path
    // must agree (noise only matters near the boundary).
    use asmcap::{AsmMatcher, AsmcapEngine};
    let genome = GenomeModel::uniform().generate(4_096, 7);
    let width = 128usize;
    let segment = genome.window(100..100 + width);
    let mut engine = AsmcapEngine::paper(ErrorProfile::condition_a(), 8);

    let pipeline = device_pipeline(
        &genome,
        PipelineConfig {
            row_width: width,
            seed: 9,
            ..PipelineConfig::paper(4, ErrorProfile::condition_a())
        },
    );

    // Exact copy: both must match at T=4.
    let outcome = engine.matches(segment.as_slice(), segment.as_slice(), 4);
    assert!(outcome.matched);
    let record = pipeline.map(&segment);
    assert!(record.positions.contains(&100));

    // Unrelated read: both must reject.
    let decoy = GenomeModel::uniform().generate(width, 99);
    let outcome = engine.matches(segment.as_slice(), decoy.as_slice(), 4);
    assert!(!outcome.matched);
    let record = pipeline.map(&decoy);
    assert!(record.positions.is_empty());
}
