//! Cross-crate property tests: invariants that must hold across the whole
//! stack, from random inputs.

use asmcap::{AsmMatcher, AsmcapEngine, ExactEdMatcher, NoiselessEdStarMatcher};
use asmcap_arch::{CamArray, MatchMode};
use asmcap_genome::{Base, DnaSeq, ErrorProfile};
use proptest::prelude::*;

fn arbitrary_seq(len: std::ops::Range<usize>) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, len)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

fn equal_length_pair(max_len: usize) -> impl Strategy<Value = (DnaSeq, DnaSeq)> {
    proptest::collection::vec((0u8..4, 0u8..4), 8..max_len).prop_map(|pairs| {
        (
            pairs.iter().map(|&(a, _)| Base::from_code(a)).collect(),
            pairs.iter().map(|&(_, b)| Base::from_code(b)).collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CAM array's mismatch counts are bit-exact with the metrics
    /// crate, in both MUX modes, for arbitrary stored/read pairs.
    #[test]
    fn array_counts_equal_metrics((stored, read) in equal_length_pair(120)) {
        let mut array = CamArray::asmcap(1, stored.len());
        array.store_row(stored.as_slice()).unwrap();
        prop_assert_eq!(
            array.row_mismatches(0, read.as_slice(), MatchMode::EdStar),
            asmcap_metrics::ed_star(stored.as_slice(), read.as_slice())
        );
        prop_assert_eq!(
            array.row_mismatches(0, read.as_slice(), MatchMode::Hamming),
            asmcap_metrics::hamming(stored.as_slice(), read.as_slice())
        );
    }

    /// Engine cycle accounting: cycles = 1 + HD search + rotations, always.
    #[test]
    fn engine_cycles_decompose(
        (segment, read) in equal_length_pair(120),
        t in 0usize..16,
        seed in 0u64..100
    ) {
        let mut engine = AsmcapEngine::paper(ErrorProfile::condition_a(), seed);
        let outcome = engine.matches(segment.as_slice(), read.as_slice(), t);
        prop_assert_eq!(
            u64::from(outcome.cycles),
            1 + u64::from(outcome.used_hd) + u64::from(outcome.rotations)
        );
        let mut engine_b = AsmcapEngine::paper(ErrorProfile::condition_b(), seed);
        let outcome = engine_b.matches(segment.as_slice(), read.as_slice(), t);
        prop_assert_eq!(
            u64::from(outcome.cycles),
            1 + u64::from(outcome.used_hd) + u64::from(outcome.rotations)
        );
    }

    /// The noiseless ED* matcher is monotone in the threshold: once a pair
    /// matches at T it matches at every T' >= T.
    #[test]
    fn noiseless_decisions_monotone_in_threshold((segment, read) in equal_length_pair(100)) {
        let mut matcher = NoiselessEdStarMatcher::new();
        let mut previous = false;
        for t in 0..segment.len() {
            let matched = matcher.matches(segment.as_slice(), read.as_slice(), t).matched;
            prop_assert!(!previous || matched, "match lost when raising T to {t}");
            previous = matched;
        }
        // At T = len the pair always matches (ED* <= len).
        prop_assert!(matcher.matches(segment.as_slice(), read.as_slice(), segment.len()).matched);
    }

    /// The exact-ED oracle agrees with the ReSMA wavefront and the CM-CPU
    /// banded DP on every pair and threshold.
    #[test]
    fn exact_matchers_agree((segment, read) in equal_length_pair(80), t in 0usize..12) {
        let mut oracle = ExactEdMatcher::new();
        let mut resma = asmcap_baselines::ResmaAccelerator::with_filter_k(4);
        let mut cpu = asmcap_baselines::CmCpuAligner::new();
        let expected = oracle.matches(segment.as_slice(), read.as_slice(), t).matched;
        prop_assert_eq!(
            cpu.matches(segment.as_slice(), read.as_slice(), t).matched,
            expected
        );
        // ReSMA's wavefront is exact whenever the filter passes; with a
        // 4-base filter at these lengths a filter miss implies a large
        // distance, so disagreement is only allowed in the no-match
        // direction.
        let resma_says = resma.matches(segment.as_slice(), read.as_slice(), t).matched;
        if resma_says != expected {
            prop_assert!(!resma_says, "ReSMA may only under-match via its filter");
            prop_assert!(
                !resma.filter_passes(segment.as_slice(), read.as_slice(), t),
                "wavefront disagreed with the oracle despite a filter hit"
            );
        }
    }

    /// Every matcher's packed entry point makes the same decision as its
    /// slice path: the baselines' overrides (SaVI's packed seed votes,
    /// ReSMA's packed filter, CM-CPU's packed banded DP, Kraken's word
    /// compare) and the reference matchers' overrides are all pure
    /// representation changes.
    #[test]
    fn packed_matcher_overrides_agree_with_slice_paths(
        (segment, read) in equal_length_pair(200),
        t in 0usize..10
    ) {
        let ps = asmcap_genome::PackedSeq::from_seq(&segment);
        let pr = asmcap_genome::PackedSeq::from_seq(&read);
        let mut matchers: Vec<Box<dyn AsmMatcher>> = vec![
            Box::new(ExactEdMatcher::new()),
            Box::new(NoiselessEdStarMatcher::new()),
            Box::new(asmcap_baselines::CmCpuAligner::new()),
            Box::new(asmcap_baselines::ResmaAccelerator::with_filter_k(4)),
            Box::new(asmcap_baselines::SaviAccelerator::with_seed_len(8)),
            Box::new(asmcap_baselines::KrakenClassifier::new(
                asmcap_baselines::KrakenMode::Exact,
            )),
        ];
        for matcher in &mut matchers {
            prop_assert_eq!(
                matcher.matches(segment.as_slice(), read.as_slice(), t),
                matcher.matches_packed(&ps, &pr, t),
                "{} diverged between slice and packed paths",
                matcher.name()
            );
        }
    }

    /// ED* is invariant under the engine's own rotation round-trip: rotating
    /// a read right then left restores the original decision inputs.
    #[test]
    fn rotation_round_trip(read in arbitrary_seq(8..100), amount in 1usize..5) {
        let rotated = read.rotated_right(amount).rotated_left(amount);
        prop_assert_eq!(rotated, read);
    }

    /// The word-parallel kernels equal the scalar walks on arbitrary pairs,
    /// at every length 1..=256 the generator produces — including the
    /// non-word-aligned ones — and the SIMD-dispatched lane kernels equal
    /// the retained single-word scalar kernels, so lane dispatch (AVX2 on
    /// or off) can never change a distance.
    #[test]
    fn packed_kernels_equal_scalar_metrics((stored, read) in equal_length_pair(256)) {
        let ps = asmcap_genome::PackedSeq::from_seq(&stored);
        let pr = asmcap_genome::PackedSeq::from_seq(&read);
        let star = asmcap_metrics::ed_star(stored.as_slice(), read.as_slice());
        let hd = asmcap_metrics::hamming(stored.as_slice(), read.as_slice());
        prop_assert_eq!(asmcap_metrics::ed_star_packed(&ps, &pr), star);
        prop_assert_eq!(asmcap_metrics::ed_star_packed_scalar(&ps, &pr), star);
        prop_assert_eq!(asmcap_metrics::hamming_packed(&ps, &pr), hd);
        prop_assert_eq!(asmcap_metrics::hamming_packed_scalar(&ps, &pr), hd);
        prop_assert_eq!(asmcap_metrics::ed_star_hamming_packed(&ps, &pr), (star, hd));
        prop_assert_eq!(
            asmcap_metrics::ed_star_hamming_packed_scalar(&ps, &pr),
            (star, hd)
        );
    }

    /// A zero-copy segment view at any offset — word-aligned or straddling
    /// word boundaries — feeds the kernels the same bases the reference
    /// slice holds, through both the dispatched lane kernels and the
    /// retained scalar kernels (widths up to 256 cover the vector-block
    /// boundary at 128 bases).
    #[test]
    fn segment_views_equal_reference_slices(
        reference in arbitrary_seq(260..600),
        read in arbitrary_seq(1..257),
        offset_frac in 0.0f64..1.0
    ) {
        let width = read.len();
        let offset = (((reference.len() - width) as f64) * offset_frac) as usize;
        let packed_ref = asmcap_genome::PackedRef::new(&reference);
        let view = packed_ref.segment(offset, width);
        let slice = &reference.as_slice()[offset..offset + width];
        let packed_read = asmcap_genome::PackedSeq::from_seq(&read);
        let star = asmcap_metrics::ed_star(slice, read.as_slice());
        let hd = asmcap_metrics::hamming(slice, read.as_slice());
        prop_assert_eq!(asmcap_metrics::ed_star_packed(&view, &packed_read), star);
        prop_assert_eq!(asmcap_metrics::ed_star_packed_scalar(&view, &packed_read), star);
        prop_assert_eq!(asmcap_metrics::hamming_packed(&view, &packed_read), hd);
        prop_assert_eq!(asmcap_metrics::hamming_packed_scalar(&view, &packed_read), hd);
        prop_assert_eq!(
            asmcap_metrics::ed_star_hamming_packed(&view, &packed_read),
            (star, hd)
        );
    }

    /// The single-cell functional model (`AsmcapCell` + `SlDriver`, paper
    /// Fig. 4b/4c) and the word-parallel kernels are the same comparison
    /// logic at different granularities: walking the searchline windows
    /// cell-by-cell must count exactly the mismatches the packed kernels
    /// report, in both MUX modes.
    #[test]
    fn cell_model_agrees_with_packed_kernels((stored, read) in equal_length_pair(150)) {
        let driver = asmcap_arch::SlDriver::latch(read.as_slice());
        let cells: Vec<asmcap_arch::AsmcapCell> = stored
            .iter()
            .map(asmcap_arch::AsmcapCell::new)
            .collect();
        let count = |mode: MatchMode| {
            cells
                .iter()
                .zip(driver.windows())
                .filter(|(cell, (left, centre, right))| {
                    !cell.output(cell.compare(*left, *centre, *right), mode)
                })
                .count()
        };
        let ps = asmcap_genome::PackedSeq::from_seq(&stored);
        let pr = asmcap_genome::PackedSeq::from_seq(&read);
        prop_assert_eq!(count(MatchMode::EdStar), asmcap_metrics::ed_star_packed(&ps, &pr));
        prop_assert_eq!(count(MatchMode::Hamming), asmcap_metrics::hamming_packed(&ps, &pr));
    }

    /// The engine makes the same noisy decision whether it is handed slices
    /// or packed operands: the packed path preserves the RNG draw order.
    #[test]
    fn engine_packed_path_preserves_decisions(
        (segment, read) in equal_length_pair(150),
        t in 0usize..12,
        seed in 0u64..50
    ) {
        let mut scalar = AsmcapEngine::paper(ErrorProfile::condition_b(), seed);
        let mut packed = AsmcapEngine::paper(ErrorProfile::condition_b(), seed);
        prop_assert_eq!(
            scalar.matches(segment.as_slice(), read.as_slice(), t),
            packed.matches_packed(
                &asmcap_genome::PackedSeq::from_seq(&segment),
                &asmcap_genome::PackedSeq::from_seq(&read),
                t
            )
        );
    }

    /// Packed k-mer extraction is a pure representation change: rolling the
    /// codes straight out of the 2-bit words yields exactly the scalar
    /// `kmers()` walk — every position, every code, every length 1..=200.
    #[test]
    fn packed_kmer_extraction_equals_scalar_walk(
        seq in arbitrary_seq(1..200),
        k in 1usize..=32
    ) {
        use asmcap_genome::kmer::{kmers, packed_kmers};
        let packed = asmcap_genome::PackedSeq::from_seq(&seq);
        let scalar: Vec<(usize, u64)> = kmers(seq.as_slice(), k).collect();
        let rolled: Vec<(usize, u64)> = packed_kmers(&packed, k).collect();
        prop_assert_eq!(&rolled, &scalar);
        // And the indexes built from each agree on every lookup shape.
        let a = asmcap_genome::KmerIndex::build(seq.as_slice(), k).unwrap();
        let b = asmcap_genome::KmerIndex::build_packed(&packed, k).unwrap();
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.distinct(), b.distinct());
        for &(pos, code) in &scalar {
            prop_assert!(b.positions_of_code(code).contains(&pos));
        }
    }

    /// Packed k-mer extraction over zero-copy segment views: a view at any
    /// offset — word-aligned or straddling word boundaries — rolls the same
    /// k-mers as the unpacked reference window.
    #[test]
    fn packed_kmers_over_views_equal_window_walk(
        reference in arbitrary_seq(40..300),
        k in 1usize..=16,
        offset_frac in 0.0f64..1.0,
        width_frac in 0.0f64..1.0
    ) {
        use asmcap_genome::kmer::{kmers, packed_kmers};
        let offset = ((reference.len() as f64) * offset_frac) as usize;
        let width = 1 + (((reference.len() - offset - 1) as f64) * width_frac) as usize;
        let packed_ref = asmcap_genome::PackedRef::new(&reference);
        let view = packed_ref.segment(offset, width);
        let window = reference.window(offset..offset + width);
        let from_view: Vec<(usize, u64)> = packed_kmers(&view, k).collect();
        let from_window: Vec<(usize, u64)> = kmers(window.as_slice(), k).collect();
        prop_assert_eq!(from_view, from_window, "segment({}, {})", offset, width);
    }

    /// The banded bit-vector alignment over zero-copy segment views — at
    /// any offset, word-aligned or straddling word boundaries — scores
    /// exactly like the scalar DP over the unpacked window, and the CIGAR
    /// it traces back replays against the view at exactly that score.
    #[test]
    fn packed_alignment_over_views_equals_scalar_dp(
        reference in arbitrary_seq(140..400),
        read in arbitrary_seq(1..129),
        offset_frac in 0.0f64..1.0,
        limit in 0usize..20
    ) {
        let width = read.len();
        let offset = (((reference.len() - width) as f64) * offset_frac) as usize;
        let packed_ref = asmcap_genome::PackedRef::new(&reference);
        let view = packed_ref.segment(offset, width);
        let window = reference.window(offset..offset + width);
        let packed_read = asmcap_genome::PackedSeq::from_seq(&read);
        let (distance, _) = asmcap_metrics::align_bases(read.as_slice(), window.as_slice());
        match asmcap_metrics::align_packed(&packed_read, &view, limit) {
            Some((score, cigar)) => {
                prop_assert_eq!(score, distance, "segment({}, {})", offset, width);
                prop_assert_eq!(cigar.check_replay(&packed_read, &view), Some(score));
            }
            None => prop_assert!(distance > limit, "segment({}, {})", offset, width),
        }
    }

    /// Device search finds an exact stored row at T=1 regardless of where
    /// it lands across arrays. (T=0 is a knife-edge by design: the V_ref
    /// boundary sits only ~3.3σ of SA offset above a perfect row, so a
    /// ~4e-4 miss rate is *expected* there — searching at T ≥ 1 restores a
    /// 10σ margin.)
    #[test]
    fn device_always_finds_exact_rows(seed in 0u64..50, row in 0usize..24) {
        let width = 32usize;
        let genome = asmcap_genome::GenomeModel::uniform().generate(24 * width, seed);
        let mut device = asmcap_arch::DeviceBuilder::new()
            .arrays(3)
            .rows_per_array(8)
            .row_width(width)
            .build_asmcap();
        device.store_reference(&genome, width).unwrap();
        let mut rng = asmcap_circuit::rng(seed ^ 0xF00D);
        let read = genome.window(row * width..(row + 1) * width);
        let result = device.search(read.as_slice(), 1, MatchMode::EdStar, &mut rng);
        prop_assert!(
            result.matches.iter().any(|m| m.origin == row * width && m.n_mis == 0),
            "row {row} not found"
        );
    }
}
