//! Integration test: the Fig. 8 performance model reproduces the paper's
//! ratios (within calibration tolerance) and its internal mechanics are
//! consistent.

use asmcap_baselines::perf::{PerfReport, Workload};

fn report() -> PerfReport {
    PerfReport::fig8(&Workload::paper(1.07, 0.42 * 256.0))
}

#[test]
fn speedup_bars_match_paper() {
    let report = report();
    let s = |n: &str| report.row(n).unwrap().speedup;
    // Paper (normalised to CM-CPU): 9.7e4, 4.7e4, ~3.46e4, 770, 268, 1.
    assert!((s("ASMCap w/o H&T") / 9.7e4 - 1.0).abs() < 0.15);
    assert!((s("ASMCap w/ H&T") / 4.7e4 - 1.0).abs() < 0.20);
    assert!((s("EDAM") / 3.46e4 - 1.0).abs() < 0.15);
    assert!((s("SaVI") / 770.0 - 1.0).abs() < 0.15);
    assert!((s("ReSMA") / 268.0 - 1.0).abs() < 0.15);
}

#[test]
fn energy_bars_keep_paper_ordering_and_scale() {
    let report = report();
    let e = |n: &str| report.row(n).unwrap().energy_efficiency;
    // Ordering of Fig. 8's right panel.
    assert!(e("ASMCap w/o H&T") > e("ASMCap w/ H&T"));
    assert!(e("ASMCap w/ H&T") > e("EDAM"));
    assert!(e("EDAM") > e("SaVI"));
    assert!(e("SaVI") > e("ReSMA"));
    assert!(e("ReSMA") > 1.0);
    // Scale: ASMCap w/o sits in the 1e6 decade (paper: 5.1e6; our Eq.-1
    // energy is calibrated to Table I instead, landing ~3e6 — same decade).
    assert!(e("ASMCap w/o H&T") > 1e6 && e("ASMCap w/o H&T") < 2e7);
}

#[test]
fn headline_ratios_vs_edam() {
    let report = report();
    let with = report.row("ASMCap w/ H&T").unwrap();
    let edam = report.row("EDAM").unwrap();
    // Paper: 1.4x speedup and 10.8x energy efficiency over EDAM.
    let speedup = with.speedup / edam.speedup;
    let ee = with.energy_efficiency / edam.energy_efficiency;
    assert!(
        (1.1..1.8).contains(&speedup),
        "speedup vs EDAM {speedup:.2}"
    );
    assert!(
        (7.0..16.0).contains(&ee),
        "energy efficiency vs EDAM {ee:.1}"
    );
}

#[test]
fn strategies_scale_latency_linearly() {
    let plain = PerfReport::fig8(&Workload::paper(0.0, 107.0));
    let heavy = PerfReport::fig8(&Workload::paper(2.0, 107.0));
    let p = plain.row("ASMCap w/ H&T").unwrap().latency_s;
    let h = heavy.row("ASMCap w/ H&T").unwrap().latency_s;
    assert!((h / p - 3.0).abs() < 1e-9, "3 cycles vs 1 cycle");
}

#[test]
fn host_dp_rate_is_measured_not_assumed() {
    // The calibrated i9 constant is documented; the harness can also
    // measure the actual host. Sanity: the measured rate is positive and
    // the calibration constant is within a plausible CPU range.
    let measured = asmcap_baselines::CmCpuAligner::new().measured_cell_rate(256, 50);
    assert!(measured > 1e7);
    let calibrated = asmcap_baselines::perf::calib::CM_CPU_CELL_RATE;
    assert!(calibrated > 1e9 && calibrated < 1e12);
}
