//! Integration tests for the batch-first `AsmcapPipeline` API: the
//! determinism rule (results independent of worker count and batching
//! shape) and backend equivalence (device vs per-pair engine agree on
//! match/no-match over a seeded dataset).

use asmcap::{AsmcapPipeline, BackendKind, MapRecord, MapStatus, PipelineConfig};
use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, ReadSampler};

const WIDTH: usize = 128;

fn config(threshold: usize) -> PipelineConfig {
    PipelineConfig {
        row_width: WIDTH,
        seed: 0xA5,
        ..PipelineConfig::paper(threshold, ErrorProfile::condition_a())
    }
}

fn pipeline(genome: &DnaSeq, backend: BackendKind, workers: usize) -> AsmcapPipeline {
    AsmcapPipeline::builder()
        .reference(genome.clone())
        .config(config(6))
        .backend(backend)
        .workers(workers)
        .build()
        .expect("pipeline builds")
}

/// A mixed workload: erroneous reads from the reference plus foreign decoys.
fn workload(genome: &DnaSeq) -> Vec<DnaSeq> {
    let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
    let mut reads: Vec<DnaSeq> = sampler
        .sample_many(genome, 12, 31)
        .into_iter()
        .map(|r| r.bases)
        .collect();
    let foreign = GenomeModel::uniform().generate(4 * WIDTH, 777);
    for i in 0..4 {
        reads.push(foreign.window(i * WIDTH..(i + 1) * WIDTH));
    }
    reads
}

#[test]
fn map_batch_is_worker_count_independent() {
    let genome = GenomeModel::uniform().generate(16_384, 21);
    let reads = workload(&genome);

    // Sequential reference: read-by-read through `map` on a fresh pipeline.
    let sequential_pipeline = pipeline(&genome, BackendKind::Device, 1);
    let sequential: Vec<MapRecord> = reads
        .iter()
        .map(|read| sequential_pipeline.map(read))
        .collect();

    for workers in [1usize, 2, 8] {
        let batched = pipeline(&genome, BackendKind::Device, workers).map_batch(&reads);
        assert_eq!(
            batched, sequential,
            "map_batch with {workers} workers diverged from sequential map"
        );
    }
}

#[test]
fn prefiltered_map_batch_is_worker_count_independent() {
    // The prefilter's shortlist is computed per read from the read alone
    // (seedless minimizer hash), so arming it must not perturb the
    // determinism rule: identical records AND identical aggregated stats
    // at every worker count, on every backend, through the packed batch
    // entry point.
    use asmcap_genome::{PackedSeq, PrefilterConfig};
    let genome = GenomeModel::uniform().generate(16_384, 25);
    let reads = workload(&genome);
    let packed: Vec<PackedSeq> = reads.iter().map(PackedSeq::from_seq).collect();
    let build = |backend: BackendKind, workers: usize| {
        AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(config(6))
            .prefilter(PrefilterConfig::default())
            .backend(backend)
            .workers(workers)
            .build()
            .expect("pipeline builds")
    };
    for backend in [
        BackendKind::Device,
        BackendKind::Pair,
        BackendKind::Software,
    ] {
        let reference_pipeline = build(backend, 1);
        let reference_records = reference_pipeline.map_batch_packed(&packed);
        let reference_stats = reference_pipeline.stats();
        for workers in [2usize, 8] {
            let pipeline = build(backend, workers);
            let records = pipeline.map_batch_packed(&packed);
            assert_eq!(
                records, reference_records,
                "{backend:?} records diverged at {workers} workers with prefilter on"
            );
            let mut stats = pipeline.stats();
            // Wall-clock is the one legitimately worker-dependent field.
            stats.wall_s = reference_stats.wall_s;
            assert_eq!(
                stats, reference_stats,
                "{backend:?} stats diverged at {workers} workers with prefilter on"
            );
        }
    }
}

#[test]
fn extended_map_batch_is_worker_count_independent() {
    // The extension stage is pure DP over the packed reference — no RNG, no
    // accounting — so arming it must preserve the determinism rule:
    // identical records (alignments included) AND identical aggregated
    // stats at workers 1, 2, and 8, on every backend.
    use asmcap::ExtensionConfig;
    use asmcap_genome::PackedSeq;
    let genome = GenomeModel::uniform().generate(16_384, 25);
    let reads = workload(&genome);
    let packed: Vec<PackedSeq> = reads.iter().map(PackedSeq::from_seq).collect();
    let build = |backend: BackendKind, workers: usize| {
        AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(config(6))
            .extension(ExtensionConfig::default())
            .backend(backend)
            .workers(workers)
            .build()
            .expect("pipeline builds")
    };
    for backend in [
        BackendKind::Device,
        BackendKind::Pair,
        BackendKind::Software,
    ] {
        let reference_pipeline = build(backend, 1);
        let reference_records = reference_pipeline.map_batch_packed(&packed);
        let reference_stats = reference_pipeline.stats();
        assert!(
            reference_stats.aligned > 0,
            "{backend:?}: extension armed but nothing aligned"
        );
        for workers in [2usize, 8] {
            let pipeline = build(backend, workers);
            let records = pipeline.map_batch_packed(&packed);
            assert_eq!(
                records, reference_records,
                "{backend:?} records diverged at {workers} workers with extension on"
            );
            let mut stats = pipeline.stats();
            // Wall-clock is the one legitimately worker-dependent field.
            stats.wall_s = reference_stats.wall_s;
            assert_eq!(
                stats, reference_stats,
                "{backend:?} stats diverged at {workers} workers with extension on"
            );
        }
    }
}

#[test]
fn skewed_shortlists_stay_worker_count_invariant() {
    // Adversarial skew for the work-stealing executor: the batch front-loads
    // a block of foreign reads whose shortlists come up empty, so (with the
    // fallback open) each takes a full O(reference) scan, while the
    // remaining reads shortlist to a handful of segments. Under PR 2's
    // fixed equal chunking all the expensive reads landed on worker 0; the
    // tile queue spreads them — and either way the records AND aggregated
    // stats must be byte-identical at every worker count, on every backend.
    use asmcap_genome::{PackedSeq, PrefilterConfig};
    let genome = GenomeModel::uniform().generate(16_384, 77);
    let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
    let foreign = GenomeModel::uniform().generate(16 * WIDTH, 4_242);
    let mut reads: Vec<DnaSeq> = (0..16)
        .map(|i| foreign.window(i * WIDTH..(i + 1) * WIDTH))
        .collect();
    reads.extend(
        sampler
            .sample_many(&genome, 48, 31)
            .into_iter()
            .map(|r| r.bases),
    );
    let packed: Vec<PackedSeq> = reads.iter().map(PackedSeq::from_seq).collect();
    let build = |backend: BackendKind, workers: usize| {
        AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(config(6))
            .prefilter(PrefilterConfig::default())
            .backend(backend)
            .workers(workers)
            .build()
            .expect("pipeline builds")
    };
    for backend in [
        BackendKind::Device,
        BackendKind::Pair,
        BackendKind::Software,
    ] {
        let reference_pipeline = build(backend, 1);
        let reference_records = reference_pipeline.map_batch_packed(&packed);
        let reference_stats = reference_pipeline.stats();
        for workers in [2usize, 8] {
            let pipeline = build(backend, workers);
            let records = pipeline.map_batch_packed(&packed);
            assert_eq!(
                records, reference_records,
                "{backend:?} records diverged at {workers} workers under skew"
            );
            let mut stats = pipeline.stats();
            stats.wall_s = reference_stats.wall_s;
            assert_eq!(
                stats, reference_stats,
                "{backend:?} stats diverged at {workers} workers under skew"
            );
        }
    }
}

#[test]
fn indexed_batch_with_sequential_indices_matches_counter_dispatch() {
    // `map_batch_packed_indexed` with indices 0..n is exactly what the
    // running counter hands a fresh pipeline's first batch — records and
    // stats must agree at every worker count.
    use asmcap_genome::{PackedSeq, PrefilterConfig};
    let genome = GenomeModel::uniform().generate(16_384, 33);
    let packed: Vec<PackedSeq> = workload(&genome).iter().map(PackedSeq::from_seq).collect();
    let indices: Vec<u64> = (0..packed.len() as u64).collect();
    let build = |workers: usize| {
        AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(config(6))
            .prefilter(PrefilterConfig::default())
            .backend(BackendKind::Device)
            .workers(workers)
            .build()
            .expect("pipeline builds")
    };
    let counter_pipeline = build(1);
    let counter_records = counter_pipeline.map_batch_packed(&packed);
    let counter_stats = counter_pipeline.stats();
    for workers in [1usize, 2, 8] {
        let indexed_pipeline = build(workers);
        let indexed = indexed_pipeline.map_batch_packed_indexed(&packed, &indices);
        assert_eq!(
            indexed, counter_records,
            "explicit indices 0..n diverged from counter dispatch at {workers} workers"
        );
        let mut stats = indexed_pipeline.stats();
        stats.wall_s = counter_stats.wall_s;
        assert_eq!(stats, counter_stats);
        // The running counter was not consumed: the next counter-indexed
        // read still starts at index 0.
        let next = indexed_pipeline.map_packed(&packed[0]);
        assert_eq!(next.index, 0, "indexed dispatch consumed the counter");
    }
}

#[test]
fn indexed_batch_records_depend_only_on_read_and_index() {
    // The serving determinism rule: a record is a function of (read,
    // index) alone — not of batch composition, position within the
    // batch, or worker count. Map a workload in arrival order, then
    // remap it reversed and split across two batches with the same
    // indices, and compare record-by-record.
    use asmcap_genome::{PackedSeq, PrefilterConfig};
    let genome = GenomeModel::uniform().generate(16_384, 37);
    let packed: Vec<PackedSeq> = workload(&genome).iter().map(PackedSeq::from_seq).collect();
    // Sparse, out-of-order indices, as client request ids would be.
    let indices: Vec<u64> = (0..packed.len() as u64).map(|i| 1_000 + 7 * i).collect();
    let build = |workers: usize| {
        AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(config(6))
            .prefilter(PrefilterConfig::default())
            .backend(BackendKind::Device)
            .workers(workers)
            .build()
            .expect("pipeline builds")
    };
    let forward = build(1).map_batch_packed_indexed(&packed, &indices);
    for workers in [1usize, 2, 8] {
        let pipeline = build(workers);
        let reversed_reads: Vec<PackedSeq> = packed.iter().rev().cloned().collect();
        let reversed_indices: Vec<u64> = indices.iter().rev().copied().collect();
        let split = reversed_reads.len() / 3;
        let mut reordered =
            pipeline.map_batch_packed_indexed(&reversed_reads[..split], &reversed_indices[..split]);
        reordered.extend(
            pipeline.map_batch_packed_indexed(&reversed_reads[split..], &reversed_indices[split..]),
        );
        reordered.reverse();
        assert_eq!(
            reordered, forward,
            "records changed with batch composition at {workers} workers"
        );
    }
}

#[test]
fn map_iter_streams_the_same_records() {
    let genome = GenomeModel::uniform().generate(8_192, 22);
    let reads = workload(&genome);
    let batched = pipeline(&genome, BackendKind::Device, 4).map_batch(&reads);
    let streamed: Vec<MapRecord> = pipeline(&genome, BackendKind::Device, 4)
        .map_iter(reads.clone())
        .collect();
    assert_eq!(batched, streamed);
}

#[test]
fn device_and_pair_backends_agree_on_match_no_match() {
    // Clear-margin dataset: exact-copy reads (must map at their origin) and
    // unrelated decoys (must not map at all) — far enough from the decision
    // boundary that sensing noise cannot flip either backend.
    let genome = GenomeModel::uniform().generate(8_192, 23);
    let mut reads = Vec::new();
    let mut origins = Vec::new();
    for i in 0..8 {
        let start = 97 + i * 731;
        reads.push(genome.window(start..start + WIDTH));
        origins.push(Some(start));
    }
    let foreign = GenomeModel::uniform().generate(8 * WIDTH, 555);
    for i in 0..8 {
        reads.push(foreign.window(i * WIDTH..(i + 1) * WIDTH));
        origins.push(None);
    }

    let device = pipeline(&genome, BackendKind::Device, 2).map_batch(&reads);
    let pair = pipeline(&genome, BackendKind::Pair, 2).map_batch(&reads);
    let software = pipeline(&genome, BackendKind::Software, 2).map_batch(&reads);

    for (i, origin) in origins.iter().enumerate() {
        for (name, records) in [
            ("device", &device),
            ("pair", &pair),
            ("software", &software),
        ] {
            let record = &records[i];
            match origin {
                Some(start) => {
                    assert_eq!(
                        record.status,
                        MapStatus::Mapped,
                        "{name} backend missed exact read {i}"
                    );
                    assert!(
                        record.positions.contains(start),
                        "{name} backend lost origin {start} for read {i}: {:?}",
                        record.positions
                    );
                }
                None => assert_eq!(
                    record.status,
                    MapStatus::Unmapped,
                    "{name} backend hallucinated a match for decoy {i}: {:?}",
                    record.positions
                ),
            }
        }
    }
}

#[test]
fn pipeline_stats_aggregate_the_batch() {
    let genome = GenomeModel::uniform().generate(4_096, 24);
    let p = pipeline(&genome, BackendKind::Device, 2);
    let mut reads = workload(&genome);
    reads.push(genome.window(0..WIDTH + 40)); // truncated
    reads.push(genome.window(0..WIDTH / 2)); // rejected
    let records = p.map_batch(&reads);
    let stats = p.stats();
    assert_eq!(stats.reads, reads.len() as u64);
    assert_eq!(stats.truncated, 1);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.cycles, records.iter().map(|r| r.cycles).sum::<u64>());
    assert_eq!(
        stats.searches,
        records.iter().map(|r| r.searches).sum::<u64>()
    );
    assert!(stats.energy_j > 0.0);
    assert!(stats.wall_s > 0.0);
    // Indices are the batch order.
    assert!(records.iter().enumerate().all(|(i, r)| r.index == i as u64));
}

#[test]
fn custom_backends_plug_in() {
    /// A trivial backend that "maps" every read to position 0.
    struct Always;
    impl asmcap::MappingBackend for Always {
        fn name(&self) -> &'static str {
            "always"
        }
        fn row_width(&self) -> usize {
            WIDTH
        }
        fn map_seeded(&self, _read: &DnaSeq, _seed: u64) -> asmcap::BackendOutcome {
            asmcap::BackendOutcome {
                positions: vec![0],
                cycles: 2,
                searches: 1,
                energy_j: 0.0,
                resensed: 0,
                requarried: 0,
            }
        }
    }
    let pipeline = AsmcapPipeline::builder()
        .custom_backend(Always)
        .config(config(6))
        .build()
        .expect("custom backends need no reference");
    assert_eq!(pipeline.backend_name(), "always");
    let read = GenomeModel::uniform().generate(WIDTH, 1);
    assert_eq!(pipeline.map(&read).positions, vec![0]);
}
