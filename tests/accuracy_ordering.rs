//! Integration test: the Fig. 7 accuracy ordering holds on a reduced
//! dataset — ASMCap w/ strategies ≥ ASMCap w/o ≥ EDAM (mean F1), with the
//! strategy gains appearing in the conditions they target.

use asmcap_eval::{Condition, Fig7Config};

fn config() -> Fig7Config {
    Fig7Config {
        reads: 120,
        decoys: 10,
        read_len: 256,
        genome_len: 150_000,
        seed: 0x0D3, // overridden per test
    }
}

#[test]
fn condition_a_ordering() {
    let mut cfg = config();
    cfg.seed = 0xA11CE;
    let result = asmcap_eval::fig7::run(Condition::A, &cfg);
    let edam = result.series("EDAM").unwrap().mean_f1();
    let without = result.series("ASMCap w/o H&T").unwrap().mean_f1();
    let with = result.series("ASMCap w/ H&T").unwrap().mean_f1();
    assert!(
        without > edam,
        "charge-domain sensing alone should beat EDAM: {without:.3} vs {edam:.3}"
    );
    assert!(
        with > without,
        "HDAC should add accuracy in Condition A: {with:.3} vs {without:.3}"
    );
}

#[test]
fn condition_b_ordering() {
    let mut cfg = config();
    cfg.seed = 0xB0B;
    let result = asmcap_eval::fig7::run(Condition::B, &cfg);
    let edam = result.series("EDAM").unwrap().mean_f1();
    let without = result.series("ASMCap w/o H&T").unwrap().mean_f1();
    let with = result.series("ASMCap w/ H&T").unwrap().mean_f1();
    assert!(without > edam);
    assert!(
        with > without,
        "TASR should add accuracy in Condition B: {with:.3} vs {without:.3}"
    );
}

#[test]
fn normalized_f1_is_well_above_kraken() {
    let mut cfg = config();
    cfg.seed = 0xCAFE;
    let result = asmcap_eval::fig7::run(Condition::A, &cfg);
    let with = result.series("ASMCap w/ H&T").unwrap();
    let mean_norm: f64 =
        with.points.iter().map(|p| p.normalized).sum::<f64>() / with.points.len() as f64;
    // Paper: 4.5x over Kraken2 in Condition A on average.
    assert!(
        mean_norm > 2.0,
        "normalized F1 should be well above 1, got {mean_norm:.2}"
    );
}

#[test]
fn biggest_gain_is_at_small_t_in_condition_a() {
    // Paper: up to 1.8x at T=1 (46.3% -> 81.2%).
    let mut cfg = config();
    cfg.seed = 0x71;
    let result = asmcap_eval::fig7::run(Condition::A, &cfg);
    let edam = &result.series("EDAM").unwrap().points;
    let with = &result.series("ASMCap w/ H&T").unwrap().points;
    let gain_t1 = with[0].f1 / edam[0].f1.max(1e-9);
    assert!(
        gain_t1 > 1.2,
        "expected a large gain at T=1, got {gain_t1:.2}x"
    );
}
