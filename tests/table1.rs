//! Integration test: Table I values and ratios, plus the §V-B breakdowns.

use asmcap_circuit::area::asmcap_array_area_mm2;
use asmcap_circuit::params::{AsmcapParams, EdamParams, ARRAY_COLS, ARRAY_ROWS};

#[test]
fn table1_ratios() {
    let asmcap = AsmcapParams::paper();
    let edam = EdamParams::paper();
    assert!((edam.cell_area_um2 / asmcap.cell_area_um2 - 1.392).abs() < 0.01);
    assert!((edam.search_time_ns / asmcap.search_time_ns - 2.667).abs() < 0.01);
    assert!((edam.avg_power_per_cell_uw / asmcap.avg_power_per_cell_uw - 8.333).abs() < 0.01);
}

#[test]
fn array_area_matches_section_v_b() {
    let area = asmcap_array_area_mm2(&AsmcapParams::paper(), ARRAY_ROWS, ARRAY_COLS);
    assert!((area - 1.58).abs() < 0.02, "array area {area} mm²");
}

#[test]
fn rendered_tables_are_nonempty() {
    assert!(!asmcap_eval::table1::table().is_empty());
    assert!(!asmcap_eval::breakdown::area_table().is_empty());
    assert!(!asmcap_eval::breakdown::power_table().is_empty());
}
