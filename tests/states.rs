//! Integration test: §V-D distinguishable-state claims (44 vs 566).

use asmcap_circuit::{ChargeDomainCam, CurrentDomainCam};

#[test]
fn analytic_state_counts_match_paper() {
    assert_eq!(ChargeDomainCam::paper().distinguishable_states(), 566);
    assert_eq!(CurrentDomainCam::paper().distinguishable_states(), 44);
}

#[test]
fn empirical_states_bracket_the_claims() {
    let counts = asmcap_eval::states::analyze(256, 4_000, 0xD15C);
    assert_eq!(
        counts.asmcap_empirical, 256,
        "charge domain must resolve a full row"
    );
    assert!(
        (25..70).contains(&counts.edam_empirical),
        "current domain should collapse near 44, got {}",
        counts.edam_empirical
    );
}

#[test]
fn asmcap_worst_case_covers_256_wide_rows() {
    // 566 > 2 * 256: the paper's "even with the worst case" claim.
    let states = ChargeDomainCam::paper().distinguishable_states();
    assert!(states > 2 * 256);
}
