//! Integration test: the paper's Fig. 2 examples reproduce exactly across
//! the metrics crate and the evaluation harness.

use asmcap_eval::fig2;

#[test]
fn fig2_values_match_the_paper() {
    for (i, example) in fig2::examples().iter().enumerate() {
        let measured = fig2::measure(example);
        assert_eq!(
            measured,
            example.paper,
            "Fig. 2 example {} disagrees",
            i + 1
        );
    }
}

#[test]
fn edstar_is_never_above_hamming_on_fig2_pairs() {
    for example in fig2::examples() {
        let (hd, star, _) = fig2::measure(&example);
        assert!(star <= hd);
    }
}

#[test]
fn array_level_search_agrees_with_fig2() {
    use asmcap_arch::{CamArray, MatchMode};

    for example in fig2::examples() {
        let width = example.s2.len();
        let mut array = CamArray::asmcap(1, width);
        array.store_row(example.s2.as_slice()).unwrap();
        let ed_star = array.row_mismatches(0, example.s1.as_slice(), MatchMode::EdStar);
        let hd = array.row_mismatches(0, example.s1.as_slice(), MatchMode::Hamming);
        assert_eq!(ed_star, example.paper.1, "array ED* disagrees with Fig. 2");
        assert_eq!(hd, example.paper.0, "array HD disagrees with Fig. 2");
    }
}
