//! Fault-injection soak: the paper-corner fault plan (stuck cells, dead
//! rows, capacitance drift, transient sense flips) degrades the device
//! but the mitigation stack — N-way re-sense voting plus install-time row
//! quarantine — holds recall at ≥ 0.95, and every bit of degradation is
//! accounted for in the per-read records and aggregated stats.

use asmcap::{AsmcapPipeline, BackendKind, FaultPlan, PipelineConfig, PipelineError};
use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, ReadSampler};

const WIDTH: usize = 128;

fn soak_pipeline(genome: &DnaSeq, plan: FaultPlan, workers: usize) -> AsmcapPipeline {
    AsmcapPipeline::builder()
        .reference(genome.clone())
        .config(PipelineConfig {
            row_width: WIDTH,
            seed: 0xA5,
            ..PipelineConfig::paper(6, ErrorProfile::condition_a())
        })
        .backend(BackendKind::Device)
        .workers(workers)
        .fault(plan)
        .build()
        .expect("faulted pipeline builds on the device backend")
}

/// Paper-corner fault rates, 200 planted reads: recall stays ≥ 0.95 and
/// the degradation accounting balances — `stats.degraded` counts exactly
/// the records flagged degraded, and each flagged record carries at least
/// one re-sense or quarantined-row hit.
#[test]
fn paper_corner_soak_holds_recall_with_full_accounting() {
    let genome = GenomeModel::uniform().generate(16_384, 21);
    let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
    let reads = sampler.sample_many(&genome, 200, 31);
    let bases: Vec<DnaSeq> = reads.iter().map(|r| r.bases.clone()).collect();

    let pipeline = soak_pipeline(&genome, FaultPlan::paper_corner(0xFA17), 4);
    assert!(pipeline.fault_armed());
    let records = pipeline.map_batch(&bases);
    let stats = pipeline.stats();

    let recalled = reads
        .iter()
        .zip(&records)
        .filter(|(read, record)| record.positions.contains(&read.origin))
        .count();
    let recall = recalled as f64 / reads.len() as f64;
    assert!(
        recall >= 0.95,
        "soak recall {recall:.3} fell below 0.95 ({recalled}/{} reads)",
        reads.len()
    );

    // Accounting: the aggregate mirrors the records exactly.
    let flagged = records.iter().filter(|r| r.degraded).count() as u64;
    assert_eq!(stats.degraded, flagged, "stats.degraded != flagged records");
    assert_eq!(
        stats.resensed,
        records.iter().map(|r| r.resensed).sum::<u64>(),
        "stats.resensed != sum of record re-senses"
    );
    assert_eq!(
        stats.requarried,
        records.iter().map(|r| r.requarried).sum::<u64>(),
        "stats.requarried != sum of record quarantined-row hits"
    );
    for record in &records {
        assert_eq!(
            record.degraded,
            record.resensed + record.requarried > 0,
            "read {}: degraded flag disagrees with its counters",
            record.index
        );
    }
    // The corner rates are high enough that the plan must actually bite.
    assert!(
        stats.degraded > 0,
        "paper-corner plan produced zero degradation — faults are not landing"
    );
    assert!(
        pipeline.quarantined_rows() > 0,
        "self-test quarantined no rows"
    );
}

/// Two independent pipelines with the same seed and plan produce identical
/// records and identical degradation accounting — the soak itself is
/// reproducible evidence, not a one-off observation.
#[test]
fn soak_runs_are_reproducible() {
    let genome = GenomeModel::uniform().generate(8_192, 5);
    let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_b());
    let bases: Vec<DnaSeq> = sampler
        .sample_many(&genome, 64, 17)
        .into_iter()
        .map(|r| r.bases)
        .collect();
    let run = || {
        let p = soak_pipeline(&genome, FaultPlan::paper_corner(0x0DD5), 2);
        let records = p.map_batch(&bases);
        let mut stats = p.stats();
        stats.wall_s = 0.0; // the one legitimately run-dependent field
        (records, stats, p.quarantined_rows())
    };
    assert_eq!(run(), run(), "identical seed + plan diverged between runs");
}

/// An active plan on a backend with no simulated device to inject into is
/// a configuration error, not a silent no-op.
#[test]
fn active_faults_reject_deviceless_backends() {
    let genome = GenomeModel::uniform().generate(4_096, 3);
    for kind in [BackendKind::Pair, BackendKind::Software] {
        let err = AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(PipelineConfig {
                row_width: WIDTH,
                ..PipelineConfig::plain(4)
            })
            .backend(kind)
            .fault(FaultPlan::paper_corner(1))
            .build()
            .expect_err("active plan must be rejected off-device");
        assert!(
            matches!(err, PipelineError::FaultUnsupported { .. }),
            "{kind:?}: wrong error {err:?}"
        );
    }
}
