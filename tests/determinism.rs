//! Integration test: every experiment is bit-reproducible from its seed.

use asmcap_eval::{Condition, EvalDataset, Fig7Config};

#[test]
fn datasets_are_reproducible() {
    let a = EvalDataset::build(Condition::A, 20, 4, 128, 30_000, 42);
    let b = EvalDataset::build(Condition::A, 20, 4, 128, 30_000, 42);
    assert_eq!(a.pairs().pairs(), b.pairs().pairs());
    for i in 0..a.pairs().pairs().len() {
        assert_eq!(a.distance(i), b.distance(i));
    }
    let c = EvalDataset::build(Condition::A, 20, 4, 128, 30_000, 43);
    assert_ne!(a.pairs().pairs(), c.pairs().pairs());
}

#[test]
fn fig7_runs_are_reproducible() {
    let config = Fig7Config {
        reads: 30,
        decoys: 4,
        read_len: 128,
        genome_len: 40_000,
        seed: 7,
    };
    let x = asmcap_eval::fig7::run(Condition::B, &config);
    let y = asmcap_eval::fig7::run(Condition::B, &config);
    for (sx, sy) in x.series.iter().zip(&y.series) {
        assert_eq!(sx.system, sy.system);
        for (px, py) in sx.points.iter().zip(&sy.points) {
            assert_eq!(px.f1, py.f1, "series {} diverged", sx.system);
        }
    }
}

#[test]
fn pipelines_are_reproducible_per_seed() {
    use asmcap::{AsmcapPipeline, PipelineConfig};
    use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, ReadSampler};
    let genome = GenomeModel::uniform().generate(6_000, 17);
    let sampler = ReadSampler::new(128, ErrorProfile::condition_a());
    let reads: Vec<DnaSeq> = sampler
        .sample_many(&genome, 8, 3)
        .into_iter()
        .map(|r| r.bases)
        .collect();
    let run = |seed: u64| {
        let pipeline = AsmcapPipeline::builder()
            .reference(genome.clone())
            .config(PipelineConfig {
                row_width: 128,
                seed,
                ..PipelineConfig::paper(6, ErrorProfile::condition_a())
            })
            .build()
            .unwrap();
        pipeline.map_batch(&reads)
    };
    assert_eq!(run(9), run(9));
}

#[test]
fn engines_are_reproducible_per_seed() {
    use asmcap::{AsmMatcher, AsmcapEngine};
    use asmcap_genome::{ErrorProfile, GenomeModel};
    let s = GenomeModel::uniform().generate(256, 1);
    let d = GenomeModel::uniform().generate(256, 2);
    let run = |seed: u64| {
        let mut engine = AsmcapEngine::paper(ErrorProfile::condition_b(), seed);
        (0..50)
            .map(|t| engine.matches(s.as_slice(), d.as_slice(), t % 16).matched)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(5), run(5));
}
