//! Integration test: the full user path — write a reference as FASTA and
//! reads as FASTQ, read both back, and map through the simulated device.

use asmcap::{BackendKind, PipelineConfig};
use asmcap_eval::cli::map_records;
use asmcap_genome::{fasta, fastq, ErrorProfile, GenomeModel, ReadSampler};

#[test]
fn fasta_fastq_to_mapping_roundtrip() {
    // 1. Reference genome, serialised as FASTA and parsed back.
    let genome = GenomeModel::human_like().generate(10_000, 21);
    let mut fasta_bytes = Vec::new();
    fasta::write_fasta(
        &mut fasta_bytes,
        &[fasta::FastaRecord {
            id: "ref1 synthetic".to_owned(),
            seq: genome.clone(),
        }],
        70,
    )
    .unwrap();
    let parsed = fasta::read_fasta(&fasta_bytes[..]).unwrap();
    assert_eq!(parsed[0].seq, genome);

    // 2. Reads with condition-A errors, serialised as FASTQ and parsed back.
    let sampler = ReadSampler::new(128, ErrorProfile::condition_a());
    let sampled = sampler.sample_many(&genome, 8, 31);
    let records: Vec<fastq::FastqRecord> = sampled
        .iter()
        .enumerate()
        .map(|(i, r)| fastq::FastqRecord {
            id: format!("r{i}_origin_{}", r.origin),
            seq: r.bases.clone(),
            quals: vec![37; r.bases.len()],
        })
        .collect();
    let mut fastq_bytes = Vec::new();
    fastq::write_fastq(&mut fastq_bytes, &records).unwrap();
    let parsed_reads = fastq::read_fastq(&fastq_bytes[..]).unwrap();
    assert_eq!(parsed_reads, records);

    // 3. Map the parsed reads against the parsed reference.
    let config = PipelineConfig {
        row_width: 128,
        threshold: 8,
        ..PipelineConfig::default()
    };
    let run = map_records(
        &parsed[0].seq,
        &parsed_reads,
        &config,
        BackendKind::Device,
        None,
    )
    .unwrap();
    assert_eq!(run.rows.len(), records.len());
    assert_eq!(run.stats.mapped, records.len() as u64);
    for (row, read) in run.rows.iter().zip(&sampled) {
        assert!(
            row.positions.contains(&read.origin),
            "{} did not map to origin {}: {:?}",
            row.read_id,
            read.origin,
            row.positions
        );
    }
}

#[test]
fn sanitized_real_world_reference_loads() {
    // References with ambiguity codes must be loadable after sanitising.
    let dirty = b">chrN\nACGTNNNNRYACGT\n";
    assert!(fasta::read_fasta(&dirty[..]).is_err());
    let mut clean_bytes = Vec::new();
    // Sanitise sequence lines one at a time, threading the running record
    // offset so the replacement bases match whole-record sanitising.
    let text = String::from_utf8_lossy(dirty);
    let mut record_offset = 0usize;
    for line in text.lines() {
        if line.starts_with('>') {
            clean_bytes.extend_from_slice(line.as_bytes());
            record_offset = 0;
        } else {
            clean_bytes.extend_from_slice(&fasta::sanitize_at(line.as_bytes(), record_offset));
            record_offset += line.len();
        }
        clean_bytes.push(b'\n');
    }
    let parsed = fasta::read_fasta(&clean_bytes[..]).unwrap();
    assert_eq!(parsed[0].seq.len(), 14);
    // Line-by-line with offsets equals sanitising the record in one call.
    assert_eq!(
        parsed[0].seq,
        fasta::read_fasta(
            format!(
                ">chrN\n{}\n",
                String::from_utf8(fasta::sanitize(b"ACGTNNNNRYACGT")).unwrap()
            )
            .as_bytes()
        )
        .unwrap()[0]
            .seq
    );
}
