//! The k-mer prefilter contract, pinned from both sides:
//!
//! * **Off** — a pipeline with `prefilter: None` (the default) is
//!   byte-identical to the pre-prefilter stack: the fingerprints below were
//!   captured from the PR 3 matchplane (device/pair/software × condition
//!   A/B, TASR armed) *before* the shortlist plumbing landed, and the
//!   refactored backends must still reproduce them bit for bit.
//! * **On** — correctness becomes statistical (recall), so the pin is a
//!   property: every read the full scan maps at an offset the seed-hit
//!   floor supports is still mapped at that offset, over synthetic genomes
//!   with planted mutations at the paper's condition-A/B error rates. The
//!   noiseless software backend is held to the exact property; the noisy
//!   device/pair backends are held to it on clear-margin reads (sensing
//!   noise only matters at the decision boundary).

use asmcap::{AsmcapPipeline, BackendKind, MapRecord, MapStatus, PipelineConfig, PrefilterConfig};
use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, PackedSeq, ReadSampler};

const WIDTH: usize = 128;

/// Golden fingerprints of `map_batch` over the canonical equivalence
/// workload (same genome/reads/config as `tests/packed_equivalence.rs`),
/// captured from the PR 3 tree before the prefilter refactor.
const GOLDEN: [(BackendKind, &str, u64); 6] = [
    (BackendKind::Device, "A", 0x111F_C2D0_7E2B_41E9),
    (BackendKind::Pair, "A", 0xE448_E745_FEF2_98CE),
    (BackendKind::Software, "A", 0xA122_42E8_F8A1_40C9),
    (BackendKind::Device, "B", 0xAFB6_E0B4_4D6A_517B),
    (BackendKind::Pair, "B", 0x6B96_3025_4F05_D529),
    (BackendKind::Software, "B", 0x633A_8911_6649_4693),
];

fn profile_for(name: &str) -> (ErrorProfile, usize) {
    match name {
        "A" => (ErrorProfile::condition_a(), 6),
        "B" => (ErrorProfile::condition_b(), 8),
        other => panic!("unknown condition {other}"),
    }
}

fn workload(genome: &DnaSeq, profile: ErrorProfile) -> Vec<DnaSeq> {
    let sampler = ReadSampler::new(WIDTH, profile);
    let mut reads: Vec<DnaSeq> = sampler
        .sample_many(genome, 12, 31)
        .into_iter()
        .map(|r| r.bases)
        .collect();
    let foreign = GenomeModel::uniform().generate(4 * WIDTH, 777);
    for i in 0..4 {
        reads.push(foreign.window(i * WIDTH..(i + 1) * WIDTH));
    }
    reads
}

/// FNV-1a over every field of every record — any drift in positions,
/// statuses, cycle/search counts, or energy flips the fingerprint.
fn fingerprint(records: &[MapRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for r in records {
        mix(r.index);
        mix(match r.status {
            MapStatus::Mapped => 1,
            MapStatus::Unmapped => 2,
            MapStatus::Truncated => 3,
            MapStatus::Rejected => 4,
        });
        mix(r.positions.len() as u64);
        for &p in &r.positions {
            mix(p as u64);
        }
        mix(r.cycles);
        mix(r.searches);
        mix(r.energy_j.to_bits());
    }
    h
}

fn pipeline(
    genome: &DnaSeq,
    backend: BackendKind,
    condition: &str,
    prefilter: Option<PrefilterConfig>,
) -> AsmcapPipeline {
    let (profile, threshold) = profile_for(condition);
    AsmcapPipeline::builder()
        .reference(genome.clone())
        .config(PipelineConfig {
            row_width: WIDTH,
            seed: 0xA5,
            prefilter,
            ..PipelineConfig::paper(threshold, profile)
        })
        .backend(backend)
        .workers(2)
        .build()
        .expect("pipeline builds")
}

/// Prefilter off ⇒ byte-identical to the PR 3 golden capture, across all
/// three backends and both error conditions.
#[test]
fn prefilter_off_matches_pr3_golden_capture() {
    let genome = GenomeModel::uniform().generate(16_384, 21);
    for (kind, condition, golden) in GOLDEN {
        let (profile, _) = profile_for(condition);
        let reads = workload(&genome, profile);
        let records = pipeline(&genome, kind, condition, None).map_batch(&reads);
        assert_eq!(
            fingerprint(&records),
            golden,
            "{kind:?}/condition {condition} drifted from the PR 3 capture"
        );
    }
}

/// A shortlist naming every stored segment start degenerates to the full
/// scan, byte-identically — RNG draws included — on all three backends.
#[test]
fn full_shortlist_is_byte_identical_to_full_scan() {
    let genome = GenomeModel::uniform().generate(4_096, 33);
    let all_starts: Vec<usize> = (0..=genome.len() - WIDTH).collect();
    let config = asmcap::MapperConfig::paper(6, ErrorProfile::condition_a());

    let device = {
        let rows = all_starts.len();
        let mut device = asmcap_arch::DeviceBuilder::new()
            .arrays(rows.div_ceil(256))
            .rows_per_array(256)
            .row_width(WIDTH)
            .build_asmcap();
        device.store_reference(&genome, 1).unwrap();
        asmcap::DeviceBackend::new(device, config.clone())
    };
    let pair = asmcap::PairBackend::new(genome.clone(), 1, WIDTH, config);
    let software = asmcap::SoftwareBackend::new(genome.clone(), 1, WIDTH, 6);

    let backends: [&dyn asmcap::MappingBackend; 3] = [&device, &pair, &software];
    let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
    for (i, read) in sampler.sample_many(&genome, 4, 91).into_iter().enumerate() {
        let packed = PackedSeq::from_seq(&read.bases);
        let seed = 400 + i as u64;
        for backend in backends {
            assert_eq!(
                backend.map_packed(&packed, seed),
                backend.map_shortlisted(&packed, seed, &all_starts),
                "{} diverged under a full shortlist",
                backend.name()
            );
        }
    }
}

/// On the noiseless software backend the prefilter property is exact, for
/// both error conditions: prefilter-on positions are a subset of the full
/// scan's, and every full-scan position supported by at least
/// `min_seed_hits` seed votes survives (unless the candidate cap pushed it
/// out — ruled out here by an effectively unbounded cap).
#[test]
fn software_prefilter_loses_no_supported_mapping() {
    let genome = GenomeModel::uniform().generate(16_384, 55);
    let prefilter = PrefilterConfig {
        max_candidates: usize::MAX >> 1,
        ..PrefilterConfig::default()
    };
    for condition in ["A", "B"] {
        let (profile, _) = profile_for(condition);
        let reads = workload(&genome, profile);
        let full = pipeline(&genome, BackendKind::Software, condition, None);
        let pre = pipeline(&genome, BackendKind::Software, condition, Some(prefilter));
        let index = pre.prefilter().expect("prefilter armed").clone();
        let full_records = full.map_batch(&reads);
        let pre_records = pre.map_batch(&reads);
        for (read, (f, p)) in reads.iter().zip(full_records.iter().zip(&pre_records)) {
            // Never hallucinate: shortlisting can only remove candidates.
            for pos in &p.positions {
                assert!(
                    f.positions.contains(pos),
                    "condition {condition}: prefilter invented position {pos}"
                );
            }
            // Never lose a supported mapping.
            let packed = PackedSeq::from_seq(read);
            for pos in &f.positions {
                if index.support(&packed, *pos) >= index.config().min_seed_hits {
                    assert!(
                        p.positions.contains(pos),
                        "condition {condition}: lost supported offset {pos} \
                         (support {})",
                        index.support(&packed, *pos)
                    );
                }
            }
        }
    }
}

/// The noisy backends keep every clear-margin mapping: reads planted with
/// condition-A/B errors whose noiseless ED* sits well inside the threshold
/// must still map at their origin with the prefilter on, and foreign
/// decoys must stay unmapped.
#[test]
fn noisy_backends_keep_clear_margin_reads_with_prefilter_on() {
    let genome = GenomeModel::uniform().generate(16_384, 68);
    for condition in ["A", "B"] {
        let (profile, threshold) = profile_for(condition);
        let sampler = ReadSampler::new(WIDTH, profile);
        // Keep planted reads whose noiseless ED* distance to their origin
        // segment leaves ≥3 of margin under the threshold: sensing noise
        // cannot flip those, so the assertion is deterministic in spirit
        // and reproducible in fact (fixed seeds).
        let planted: Vec<(usize, DnaSeq)> = sampler
            .sample_many(&genome, 24, 101)
            .into_iter()
            .filter(|r| {
                let segment = genome.window(r.origin..r.origin + WIDTH);
                asmcap_metrics::ed_star(segment.as_slice(), r.bases.as_slice()) + 3 <= threshold
            })
            .map(|r| (r.origin, r.bases))
            .collect();
        assert!(
            planted.len() >= 8,
            "condition {condition}: margin filter left too few reads"
        );
        let decoys: Vec<DnaSeq> = {
            let foreign = GenomeModel::uniform().generate(4 * WIDTH, 912);
            (0..4)
                .map(|i| foreign.window(i * WIDTH..(i + 1) * WIDTH))
                .collect()
        };
        for kind in [BackendKind::Device, BackendKind::Pair] {
            let pre = pipeline(&genome, kind, condition, Some(PrefilterConfig::default()));
            let reads: Vec<DnaSeq> = planted
                .iter()
                .map(|(_, r)| r.clone())
                .chain(decoys.iter().cloned())
                .collect();
            let records = pre.map_batch(&reads);
            for ((origin, _), record) in planted.iter().zip(&records) {
                assert_eq!(
                    record.status,
                    MapStatus::Mapped,
                    "{kind:?}/condition {condition}: lost planted read at {origin}"
                );
                assert!(
                    record.positions.contains(origin),
                    "{kind:?}/condition {condition}: origin {origin} missing from {:?}",
                    record.positions
                );
            }
            for record in &records[planted.len()..] {
                assert_eq!(
                    record.status,
                    MapStatus::Unmapped,
                    "{kind:?}/condition {condition}: decoy mapped at {:?}",
                    record.positions
                );
            }
        }
    }
}

/// The escape hatch is explicit: with the fallback disabled and an
/// unreachable seed floor, nothing is scanned and every read comes back
/// unmapped; with the fallback enabled the same configuration degenerates
/// to the full scan and loses nothing.
#[test]
fn fallback_escape_hatch_is_explicit() {
    let genome = GenomeModel::uniform().generate(8_192, 77);
    let read = genome.window(3_000..3_000 + WIDTH);
    let unreachable = PrefilterConfig {
        min_seed_hits: 1_000_000,
        ..PrefilterConfig::default()
    };
    let closed = pipeline(
        &genome,
        BackendKind::Software,
        "A",
        Some(PrefilterConfig {
            full_scan_fallback: false,
            ..unreachable
        }),
    );
    let record = closed.map(&read);
    assert_eq!(record.status, MapStatus::Unmapped, "hatch closed: no scan");

    let open = pipeline(&genome, BackendKind::Software, "A", Some(unreachable));
    let record = open.map(&read);
    assert_eq!(record.status, MapStatus::Mapped, "hatch open: full scan");
    assert!(record.positions.contains(&3_000));
}

/// Statistical recall at condition A (the CI `--ignored` job runs this in
/// release): among planted-mutation reads the full scan maps at their true
/// origin, the default prefilter configuration must keep ≥ 99%.
#[test]
#[ignore = "statistical recall sweep; run via cargo test --release -- --ignored"]
fn planted_mutation_recall_at_condition_a_is_high() {
    let genome = GenomeModel::uniform().generate(131_072, 424_242);
    let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
    let reads: Vec<(usize, DnaSeq)> = sampler
        .sample_many(&genome, 400, 7_331)
        .into_iter()
        .map(|r| (r.origin, r.bases))
        .collect();
    let full = pipeline(&genome, BackendKind::Software, "A", None);
    let pre = pipeline(
        &genome,
        BackendKind::Software,
        "A",
        Some(PrefilterConfig::default()),
    );
    let bases: Vec<DnaSeq> = reads.iter().map(|(_, r)| r.clone()).collect();
    let full_records = full.map_batch(&bases);
    let pre_records = pre.map_batch(&bases);
    let mut eligible = 0usize;
    let mut kept = 0usize;
    for ((origin, _), (f, p)) in reads.iter().zip(full_records.iter().zip(&pre_records)) {
        if f.positions.contains(origin) {
            eligible += 1;
            if p.positions.contains(origin) {
                kept += 1;
            }
        }
    }
    assert!(eligible >= 300, "workload too easy: {eligible} eligible");
    let recall = kept as f64 / eligible as f64;
    assert!(
        recall >= 0.99,
        "prefilter recall {recall:.4} below 0.99 ({kept}/{eligible})"
    );
}
