//! Seeded, deterministic device fault injection.
//!
//! An analog CAM's accuracy story is only as good as its worst cells: HD-CAM
//! style approximate-match arrays must tolerate manufacturing defects, and a
//! serving deployment must *measure* the degradation they cause instead of
//! silently returning wrong positions. This module defines the fault
//! taxonomy as data — a [`FaultPlan`] — and the per-array instantiation
//! ([`ArrayFaults`]) the [`crate::CamArray`] search path consults:
//!
//! * **stuck-at-match / stuck-at-mismatch cells** — a cell whose comparison
//!   output is welded high or low, perturbing the matchline count (`n_mis`)
//!   the digital pre-pass and the analog sense both see;
//! * **dead rows** — a matchline that never discharges: the row can never
//!   match, silently dropping its origin from every search;
//! * **per-array capacitance drift** — a Gaussian offset (in state units)
//!   added to every measurement in the array, eroding the sense margin
//!   exactly where `V_ref` placement assumed it;
//! * **transient sense flips** — a per-sense Bernoulli event inverting the
//!   sense amplifier's decision, drawn from a **dedicated** seeded fault
//!   stream so the existing sensing-noise draw order is untouched.
//!
//! Two mitigations ride in the same plan:
//!
//! * **N-way re-sense majority voting** ([`FaultPlan::resense_votes`]) —
//!   when the analog decision disagrees with the matchline's digital
//!   expectation, the row is re-sensed and the majority wins; every voting
//!   event is counted (`resensed`) so mitigation is observable.
//! * **row quarantine via self-test** ([`FaultPlan::selftest_trials`]) — at
//!   install time each row is sensed against its own stored word (expected
//!   mismatch count ≈ 0); rows failing a majority of trials (dead rows
//!   always do) are quarantined, and searches answer them with an exact
//!   digital fallback over the controller's pristine stored copy, counted
//!   as `requarried`.
//!
//! Everything is a pure function of `(plan, array index)` or of the
//! per-read fault RNG stream the caller supplies, so a seeded plan
//! reproduces bit-identical faults across runs, batch shapes, and worker
//! counts. [`FaultPlan::none`] is inert by construction: no fault state is
//! installed and every golden fingerprint stays byte-identical.

use asmcap_circuit::{noise, Rng};
use asmcap_genome::PackedSeq;
use std::fmt;

use crate::array::MatchMode;

/// The fault taxonomy and mitigation knobs, as data. All rates are
/// probabilities in `[0, 1]`; the plan's `seed` drives every static draw.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault streams (static instantiation and self-test).
    /// Independent of the pipeline's sensing seed.
    pub seed: u64,
    /// Per-cell probability of a stuck-at-match cell (comparison output
    /// welded to "match").
    pub stuck_match_rate: f64,
    /// Per-cell probability of a stuck-at-mismatch cell (welded to
    /// "mismatch").
    pub stuck_mismatch_rate: f64,
    /// Per-row probability of a dead matchline (the row never matches).
    pub dead_row_rate: f64,
    /// Standard deviation (state units) of the per-array capacitance-drift
    /// offset added to every measurement in that array.
    pub drift_sigma_states: f64,
    /// Per-sense probability of a transient decision flip, drawn from the
    /// dedicated per-read fault stream.
    pub transient_flip_rate: f64,
    /// Re-sense majority votes on analog/digital disagreement. `0` or `1`
    /// disables voting; even values round up to the next odd count.
    pub resense_votes: u32,
    /// Self-test senses per row at install time; `0` disables the
    /// self-test scan (and therefore quarantine).
    pub selftest_trials: u32,
}

impl FaultPlan {
    /// The inert plan: every rate zero, no drift, no voting, no self-test.
    /// Installing it is a no-op and perturbs nothing.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            stuck_match_rate: 0.0,
            stuck_mismatch_rate: 0.0,
            dead_row_rate: 0.0,
            drift_sigma_states: 0.0,
            transient_flip_rate: 0.0,
            resense_votes: 1,
            selftest_trials: 0,
        }
    }

    /// The paper-corner preset: defect rates at the pessimistic end of the
    /// corners the circuit models quantify, with both mitigations armed.
    /// The soak test pins recall ≥ 0.95 under this plan.
    #[must_use]
    pub fn paper_corner(seed: u64) -> Self {
        Self {
            seed,
            stuck_match_rate: 5e-4,
            stuck_mismatch_rate: 1e-3,
            dead_row_rate: 2e-3,
            drift_sigma_states: 0.2,
            transient_flip_rate: 5e-3,
            resense_votes: 3,
            selftest_trials: 5,
        }
    }

    /// Whether the plan can perturb any search at all. Inactive plans
    /// (e.g. [`FaultPlan::none`]) are never installed, so the fault-free
    /// path stays byte-identical.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.stuck_match_rate > 0.0
            || self.stuck_mismatch_rate > 0.0
            || self.dead_row_rate > 0.0
            || self.drift_sigma_states > 0.0
            || self.transient_flip_rate > 0.0
    }

    /// The majority-voting count actually used: odd, at least 1.
    #[must_use]
    pub fn effective_votes(&self) -> u32 {
        let v = self.resense_votes.max(1);
        if v.is_multiple_of(2) {
            v + 1
        } else {
            v
        }
    }

    /// The dedicated install-time RNG for one array's static faults. A
    /// distinct SplitMix-style mix keeps it disjoint from the sensing and
    /// host streams for every `(seed, array)` pair.
    #[must_use]
    pub fn install_rng(&self, array_index: usize) -> Rng {
        asmcap_circuit::rng(mix(self.seed, 0x5AFE_FA17, array_index as u64))
    }

    /// The dedicated self-test RNG for one array (separate from the
    /// install stream so adding rows does not reshuffle the trials).
    #[must_use]
    pub fn selftest_rng(&self, array_index: usize) -> Rng {
        asmcap_circuit::rng(mix(self.seed, 0x7E57_0BAD, array_index as u64))
    }

    /// The per-read transient/voting fault stream. Derived from the
    /// read's sensing seed and the plan seed with its own multiplier, so
    /// it never collides with the sensing stream (`rng(seed)`) or the
    /// host stream — the existing draw order is left untouched.
    #[must_use]
    pub fn read_fault_rng(&self, read_seed: u64) -> Rng {
        asmcap_circuit::rng(mix(self.seed, 0xFA_u64, read_seed))
    }

    /// Instantiates this plan's static faults for one array: per-cell
    /// stuck faults, per-row dead matchlines, and the array's drift
    /// offset. Pure in `(self, array_index, rows, width)`.
    #[must_use]
    pub fn instantiate(&self, array_index: usize, rows: usize, width: usize) -> ArrayFaults {
        let mut rng = self.install_rng(array_index);
        let drift_states = if self.drift_sigma_states > 0.0 {
            noise::normal(0.0, self.drift_sigma_states, &mut rng)
        } else {
            0.0
        };
        let stuck_any = self.stuck_match_rate > 0.0 || self.stuck_mismatch_rate > 0.0;
        let rows = (0..rows)
            .map(|_| {
                let dead =
                    self.dead_row_rate > 0.0 && noise::uniform(&mut rng) < self.dead_row_rate;
                let mut stuck = Vec::new();
                if stuck_any {
                    for col in 0..width {
                        let u = noise::uniform(&mut rng);
                        if u < self.stuck_match_rate {
                            stuck.push(StuckCell {
                                col: col as u32,
                                forced_match: true,
                            });
                        } else if u < self.stuck_match_rate + self.stuck_mismatch_rate {
                            stuck.push(StuckCell {
                                col: col as u32,
                                forced_match: false,
                            });
                        }
                    }
                }
                RowFaults {
                    dead,
                    quarantined: false,
                    stuck,
                }
            })
            .collect();
        ArrayFaults {
            drift_states,
            transient_flip_rate: self.transient_flip_rate,
            resense_votes: self.effective_votes(),
            rows,
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FaultPlan(seed={}, stuck={}/{}, dead={}, drift={}, flip={}, votes={}, selftest={})",
            self.seed,
            self.stuck_match_rate,
            self.stuck_mismatch_rate,
            self.dead_row_rate,
            self.drift_sigma_states,
            self.transient_flip_rate,
            self.effective_votes(),
            self.selftest_trials,
        )
    }
}

/// One welded comparison cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckCell {
    /// Column (cell index) within the row.
    pub col: u32,
    /// `true` = stuck-at-match, `false` = stuck-at-mismatch.
    pub forced_match: bool,
}

/// Static fault state of one row.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowFaults {
    /// The matchline never discharges; the row can never match.
    pub dead: bool,
    /// Set by the self-test scan: searches answer this row with the exact
    /// digital fallback instead of the analog sense.
    pub quarantined: bool,
    /// Welded cells, ascending by column (usually empty).
    pub stuck: Vec<StuckCell>,
}

impl RowFaults {
    /// Whether this row perturbs a search at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.dead && !self.quarantined && self.stuck.is_empty()
    }

    /// The row's mismatch count against its **own** stored word — what the
    /// self-test scan senses. Only stuck-at-mismatch cells contribute.
    #[must_use]
    pub fn self_mismatches(&self) -> usize {
        self.stuck.iter().filter(|c| !c.forced_match).count()
    }
}

/// One array's instantiated faults, consulted by the search path.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayFaults {
    /// The array's capacitance-drift offset in state units.
    pub drift_states: f64,
    /// Copied from the plan: per-sense transient flip probability.
    pub transient_flip_rate: f64,
    /// Copied from the plan: odd majority-vote count (1 = off).
    pub resense_votes: u32,
    /// Per-row fault state, indexed by row.
    pub rows: Vec<RowFaults>,
}

impl ArrayFaults {
    /// Number of quarantined rows.
    #[must_use]
    pub fn quarantined_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.quarantined).count()
    }

    /// The effective matchline count of a row whose welded cells perturb
    /// the true count `n_true`: a stuck-at-match cell erases a genuine
    /// mismatch, a stuck-at-mismatch cell forges one.
    #[must_use]
    pub fn effective_n_mis(
        row: &RowFaults,
        stored: &PackedSeq,
        read: &PackedSeq,
        n_true: usize,
        mode: MatchMode,
    ) -> usize {
        let mut n_eff = n_true;
        for cell in &row.stuck {
            let genuine = cell_matches(stored, read, cell.col as usize, mode);
            if cell.forced_match && !genuine {
                n_eff = n_eff.saturating_sub(1);
            } else if !cell.forced_match && genuine {
                n_eff += 1;
            }
        }
        n_eff
    }
}

/// Per-search mitigation accounting, bubbled up through
/// [`crate::SearchStats`] into the pipeline's degradation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTally {
    /// Rows where re-sense majority voting fired.
    pub resensed: u64,
    /// Quarantined rows answered by the exact digital fallback.
    pub requarried: u64,
}

impl FaultTally {
    /// Accumulates another tally.
    pub fn absorb(&mut self, other: FaultTally) {
        self.resensed += other.resensed;
        self.requarried += other.requarried;
    }
}

/// Whether one ED\*/HD cell genuinely matches: the per-cell three-way
/// window semantics of [`crate::cell::AsmcapCell`] / [`crate::SlDriver`],
/// evaluated for a single column.
#[must_use]
pub fn cell_matches(stored: &PackedSeq, read: &PackedSeq, col: usize, mode: MatchMode) -> bool {
    let Some(s) = stored.get(col) else {
        return true; // out-of-range cells hold nothing and cannot mismatch
    };
    match mode {
        MatchMode::Hamming => read.get(col) == Some(s),
        MatchMode::EdStar => {
            (col > 0 && read.get(col - 1) == Some(s))
                || read.get(col) == Some(s)
                || read.get(col + 1) == Some(s)
        }
    }
}

/// SplitMix64-style mix of a plan seed, a stream tag, and an index —
/// the same avalanche construction as the pipeline's `read_seed`, with
/// distinct stream tags keeping fault streams disjoint from each other
/// and from the sensing/host streams.
fn mix(seed: u64, tag: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(tag)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::DnaSeq;

    fn packed(s: &str) -> PackedSeq {
        PackedSeq::from_seq(&s.parse::<DnaSeq>().expect("valid test sequence"))
    }

    #[test]
    fn none_plan_is_inactive_and_instantiates_clean() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        let faults = plan.instantiate(3, 16, 64);
        assert_eq!(faults.drift_states, 0.0);
        assert!(faults.rows.iter().all(RowFaults::is_clean));
    }

    #[test]
    fn paper_corner_is_active_and_deterministic() {
        let plan = FaultPlan::paper_corner(99);
        assert!(plan.is_active());
        let a = plan.instantiate(7, 256, 128);
        let b = plan.instantiate(7, 256, 128);
        assert_eq!(a, b, "same (plan, array) must instantiate identically");
        let c = plan.instantiate(8, 256, 128);
        assert_ne!(a.drift_states, c.drift_states, "arrays drift independently");
    }

    #[test]
    fn effective_votes_rounds_to_odd() {
        let mut plan = FaultPlan::none();
        for (raw, expect) in [(0u32, 1u32), (1, 1), (2, 3), (3, 3), (4, 5), (5, 5)] {
            plan.resense_votes = raw;
            assert_eq!(plan.effective_votes(), expect);
        }
    }

    #[test]
    fn corner_rates_instantiate_plausible_fault_density() {
        let plan = FaultPlan::paper_corner(5);
        let rows = 512usize;
        let width = 128usize;
        let faults = plan.instantiate(0, rows, width);
        let stuck: usize = faults.rows.iter().map(|r| r.stuck.len()).sum();
        let dead = faults.rows.iter().filter(|r| r.dead).count();
        let cells = (rows * width) as f64;
        let expect_stuck = cells * (plan.stuck_match_rate + plan.stuck_mismatch_rate);
        assert!(
            (stuck as f64) > expect_stuck * 0.4 && (stuck as f64) < expect_stuck * 2.5,
            "stuck cells {stuck} vs expectation {expect_stuck}"
        );
        assert!(dead <= rows / 50, "dead rows {dead} out of {rows}");
    }

    #[test]
    fn stuck_cells_shift_the_effective_count_both_ways() {
        let stored = packed("ACGTACGT");
        let read = packed("ACGTACGT"); // n_true = 0 in both modes
        let mut row = RowFaults::default();
        row.stuck.push(StuckCell {
            col: 2,
            forced_match: false,
        });
        assert_eq!(
            ArrayFaults::effective_n_mis(&row, &stored, &read, 0, MatchMode::Hamming),
            1,
            "a forced mismatch on a matching cell forges a count"
        );
        row.stuck[0].forced_match = true;
        assert_eq!(
            ArrayFaults::effective_n_mis(&row, &stored, &read, 0, MatchMode::Hamming),
            0,
            "a forced match on a matching cell changes nothing"
        );
        // A genuinely mismatching cell: stored T vs read G at column 3.
        let far = packed("ACGGACGT");
        row.stuck[0] = StuckCell {
            col: 3,
            forced_match: true,
        };
        assert_eq!(
            ArrayFaults::effective_n_mis(&row, &stored, &far, 1, MatchMode::Hamming),
            0,
            "a forced match erases the genuine mismatch"
        );
    }

    #[test]
    fn cell_matches_uses_the_ed_star_window() {
        // stored[2] = G; read has G only at position 1 — ED* sees the
        // neighbour, Hamming does not.
        let stored = packed("AAGA");
        let read = packed("AGAA");
        assert!(cell_matches(&stored, &read, 2, MatchMode::EdStar));
        assert!(!cell_matches(&stored, &read, 2, MatchMode::Hamming));
        // Out-of-range columns never mismatch.
        assert!(cell_matches(&stored, &read, 64, MatchMode::EdStar));
    }

    #[test]
    fn fault_streams_are_disjoint_from_sensing_streams() {
        use rand::Rng as _;
        let plan = FaultPlan::paper_corner(0);
        // The per-read fault stream for seed s must differ from rng(s)
        // (sensing) and from the host stream derivation.
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut fault = plan.read_fault_rng(seed);
            let mut sense = asmcap_circuit::rng(seed);
            let mut host = asmcap_circuit::rng(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
            let f: u64 = fault.gen();
            assert_ne!(f, sense.gen::<u64>(), "fault stream collides with sensing");
            assert_ne!(f, host.gen::<u64>(), "fault stream collides with host");
        }
    }

    #[test]
    fn self_mismatches_counts_only_forced_mismatch_cells() {
        let mut row = RowFaults::default();
        row.stuck.push(StuckCell {
            col: 0,
            forced_match: true,
        });
        row.stuck.push(StuckCell {
            col: 5,
            forced_match: false,
        });
        row.stuck.push(StuckCell {
            col: 9,
            forced_match: false,
        });
        assert_eq!(row.self_mismatches(), 2);
    }

    #[test]
    fn tally_absorbs() {
        let mut a = FaultTally {
            resensed: 1,
            requarried: 2,
        };
        a.absorb(FaultTally {
            resensed: 3,
            requarried: 4,
        });
        assert_eq!(
            a,
            FaultTally {
                resensed: 4,
                requarried: 6,
            }
        );
    }
}
