//! The `M×N` CAM array (paper Fig. 4b).
//!
//! Each row stores a reference segment as wide as the incoming read; a
//! search drives the read onto the searchlines, every cell compares in
//! parallel, the per-row mismatch counts land on the matchlines, and the
//! sense amplifiers compare against `V_ref`. The sensing path is pluggable:
//! [`CamArray::asmcap`] uses the charge-domain model,
//! [`CamArray::edam`] the current-domain model.
//!
//! Rows are held 2-bit packed — one base per two SRAM bits, as in the
//! silicon — and a search runs in two stages mirroring the hardware split:
//! a **digital pre-pass** computes every row's exact mismatch count
//! `n_mis` with the word-parallel kernels (32 cells per instruction; what
//! the cell comparison logic encodes on the matchline), then the **analog
//! stage** senses each count against `V_ref(threshold)` through the noisy
//! sense-amplifier model, in row order. The per-cell functional model the
//! pre-pass vectorises lives in [`crate::cell`] / [`crate::driver`].

use crate::fault::{ArrayFaults, FaultPlan, FaultTally};
use asmcap_circuit::energy::{asmcap_array_search_energy, edam_array_search_energy};
use asmcap_circuit::{ChargeDomainCam, CurrentDomainCam, MlCam, Rng, SenseAmp, VrefPolicy};
use asmcap_genome::{Base, PackedSeq};
use asmcap_metrics::{ed_star_packed, hamming_packed};
use std::fmt;

/// The shared MUX select signal `S`: which distance the array evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MatchMode {
    /// `S = 1`: cell matches if any of `O_L`, `O_C`, `O_R` matched (ED\*).
    #[default]
    EdStar,
    /// `S = 0`: only the co-located comparison counts (Hamming distance).
    Hamming,
}

impl fmt::Display for MatchMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchMode::EdStar => write!(f, "ED*"),
            MatchMode::Hamming => write!(f, "HD"),
        }
    }
}

/// Per-search energy model of a sensing domain; implemented for the two CAM
/// models so the array can account energy without knowing its domain.
pub trait SearchEnergy {
    /// Energy in joules of one search over a `rows × width` array whose
    /// rows average `mean_n_mis` mismatched cells.
    fn search_energy_j(&self, rows: usize, width: usize, mean_n_mis: f64) -> f64;
}

impl SearchEnergy for ChargeDomainCam {
    fn search_energy_j(&self, rows: usize, width: usize, mean_n_mis: f64) -> f64 {
        asmcap_array_search_energy(self.params(), rows, width, mean_n_mis)
    }
}

impl SearchEnergy for CurrentDomainCam {
    fn search_energy_j(&self, rows: usize, width: usize, mean_n_mis: f64) -> f64 {
        let _ = mean_n_mis; // EDAM pre-charges and discharges regardless
        edam_array_search_energy(self.params(), rows, width)
    }
}

/// Error returned by [`CamArray::store_row`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreRowError {
    /// All `M` rows are occupied.
    ArrayFull,
    /// The segment length differs from the array width.
    WidthMismatch {
        /// Configured array width.
        expected: usize,
        /// Length of the rejected segment.
        actual: usize,
    },
}

impl fmt::Display for StoreRowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreRowError::ArrayFull => write!(f, "array is full"),
            StoreRowError::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "segment of {actual} bases does not fit {expected}-wide rows"
                )
            }
        }
    }
}

impl std::error::Error for StoreRowError {}

/// Result of sensing one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowSearchOutcome {
    /// Row index within the array.
    pub row: usize,
    /// Mismatch count the matchline encodes: the exact digital count, or
    /// the stuck-cell-perturbed effective count when faults are installed.
    pub n_mis: usize,
    /// The sense amplifier's (noisy) decision.
    pub matched: bool,
}

/// Result of one array search operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Per-row outcomes, in row order.
    pub rows: Vec<RowSearchOutcome>,
    /// The mode the search ran in.
    pub mode: MatchMode,
    /// The threshold `T` encoded on `V_ref`.
    pub threshold: usize,
    /// Energy consumed by this search, in joules.
    pub energy_j: f64,
}

impl SearchOutcome {
    /// Indices of rows the SAs declared matching.
    #[must_use]
    pub fn matched_rows(&self) -> Vec<usize> {
        self.rows
            .iter()
            .filter(|r| r.matched)
            .map(|r| r.row)
            .collect()
    }

    /// Mean mismatch count across the searched rows.
    #[must_use]
    pub fn mean_n_mis(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.n_mis as f64).sum::<f64>() / self.rows.len() as f64
    }
}

/// An `M×N` content-addressable array over sensing model `M`.
///
/// # Examples
///
/// ```
/// use asmcap_arch::{CamArray, MatchMode};
/// use asmcap_genome::DnaSeq;
///
/// let mut array = CamArray::asmcap(4, 8);
/// array.store_row("ACGTACGT".parse::<DnaSeq>()?.as_slice())?;
/// array.store_row("TTTTTTTT".parse::<DnaSeq>()?.as_slice())?;
/// let mut rng = asmcap_circuit::rng(1);
/// let read: DnaSeq = "ACGTACGA".parse()?;
/// let outcome = array.search(read.as_slice(), 2, MatchMode::EdStar, &mut rng);
/// assert_eq!(outcome.matched_rows(), vec![0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CamArray<M> {
    rows: Vec<PackedSeq>,
    width: usize,
    max_rows: usize,
    sense: SenseAmp<M>,
    supports_hd: bool,
    faults: Option<ArrayFaults>,
}

impl CamArray<ChargeDomainCam> {
    /// An ASMCap array with the paper's charge-domain sensing and centred
    /// `V_ref` placement.
    ///
    /// # Panics
    ///
    /// Panics if `max_rows` or `width` is zero.
    #[must_use]
    pub fn asmcap(max_rows: usize, width: usize) -> Self {
        Self::with_sense(
            max_rows,
            width,
            SenseAmp::new(ChargeDomainCam::paper(), VrefPolicy::Centered),
            true,
        )
    }
}

impl CamArray<CurrentDomainCam> {
    /// An EDAM array with current-domain sensing. EDAM hardware has no HD
    /// MUX, so [`MatchMode::Hamming`] searches panic.
    ///
    /// # Panics
    ///
    /// Panics if `max_rows` or `width` is zero.
    #[must_use]
    pub fn edam(max_rows: usize, width: usize) -> Self {
        Self::with_sense(
            max_rows,
            width,
            SenseAmp::new(CurrentDomainCam::paper(), VrefPolicy::Centered),
            false,
        )
    }
}

impl<M: MlCam + SearchEnergy> CamArray<M> {
    /// An array with a custom sense amplifier configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_rows` or `width` is zero.
    #[must_use]
    pub fn with_sense(
        max_rows: usize,
        width: usize,
        sense: SenseAmp<M>,
        supports_hd: bool,
    ) -> Self {
        assert!(
            max_rows > 0 && width > 0,
            "array dimensions must be positive"
        );
        Self {
            rows: Vec::new(),
            width,
            max_rows,
            sense,
            supports_hd,
            faults: None,
        }
    }

    /// Row width `N` in cells.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Occupied row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Maximum row count `M`.
    #[must_use]
    pub fn max_rows(&self) -> usize {
        self.max_rows
    }

    /// Whether every row is occupied.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.rows.len() == self.max_rows
    }

    /// The sense amplifier (and through it, the sensing model).
    #[must_use]
    pub fn sense(&self) -> &SenseAmp<M> {
        &self.sense
    }

    /// Writes `segment` into the next free row and returns its row index.
    ///
    /// # Errors
    ///
    /// [`StoreRowError::ArrayFull`] when all rows are occupied, and
    /// [`StoreRowError::WidthMismatch`] when the segment length differs from
    /// the array width.
    pub fn store_row(&mut self, segment: &[Base]) -> Result<usize, StoreRowError> {
        if segment.len() != self.width {
            return Err(StoreRowError::WidthMismatch {
                expected: self.width,
                actual: segment.len(),
            });
        }
        self.store_row_packed(PackedSeq::from_bases(segment))
    }

    /// Writes an already packed `segment` into the next free row — the
    /// zero-repack path [`crate::AsmcapDevice::store_reference`] uses when
    /// segmenting a packed reference.
    ///
    /// # Errors
    ///
    /// Same contract as [`CamArray::store_row`].
    pub fn store_row_packed(&mut self, segment: PackedSeq) -> Result<usize, StoreRowError> {
        if segment.len() != self.width {
            return Err(StoreRowError::WidthMismatch {
                expected: self.width,
                actual: segment.len(),
            });
        }
        if self.is_full() {
            return Err(StoreRowError::ArrayFull);
        }
        self.rows.push(segment);
        Ok(self.rows.len() - 1)
    }

    /// The segment stored in `row`, or `None` for an unoccupied row.
    #[must_use]
    pub fn stored_row(&self, row: usize) -> Option<Vec<Base>> {
        self.rows
            .get(row)
            .map(|packed| packed.to_seq().into_bases())
    }

    /// The noiseless mismatch count of `read` against `row` in `mode`
    /// (exactly what the matchline encodes before sensing noise).
    ///
    /// # Panics
    ///
    /// Panics if the row does not exist, the read width differs, or HD mode
    /// is requested on hardware without the HD MUX.
    #[must_use]
    pub fn row_mismatches(&self, row: usize, read: &[Base], mode: MatchMode) -> usize {
        assert_eq!(read.len(), self.width, "read must match the array width");
        self.row_mismatches_packed(row, &PackedSeq::from_bases(read), mode)
    }

    /// [`CamArray::row_mismatches`] over an already packed read: the
    /// word-parallel digital pre-pass for one row.
    ///
    /// # Panics
    ///
    /// Same contract as [`CamArray::row_mismatches`].
    #[must_use]
    pub fn row_mismatches_packed(&self, row: usize, read: &PackedSeq, mode: MatchMode) -> usize {
        assert_eq!(read.len(), self.width, "read must match the array width");
        self.check_mode(mode);
        match mode {
            MatchMode::EdStar => ed_star_packed(&self.rows[row], read),
            MatchMode::Hamming => hamming_packed(&self.rows[row], read),
        }
    }

    /// One in-array search: all occupied rows compare against `read` in
    /// parallel; each matchline is sensed against `V_ref(threshold)`.
    ///
    /// Packs the read once and forwards to [`CamArray::search_packed`].
    ///
    /// # Panics
    ///
    /// Panics if the read width differs from the array width or HD mode is
    /// requested on hardware without the HD MUX.
    #[must_use]
    pub fn search(
        &self,
        read: &[Base],
        threshold: usize,
        mode: MatchMode,
        rng: &mut Rng,
    ) -> SearchOutcome {
        assert_eq!(read.len(), self.width, "read must match the array width");
        self.search_packed(&PackedSeq::from_bases(read), threshold, mode, rng)
    }

    /// [`CamArray::search`] over an already packed read: the digital
    /// pre-pass computes every row's exact `n_mis` word-parallel, then the
    /// analog stage senses each count in row order (so the noise stream
    /// consumes RNG draws exactly as the per-cell walk did).
    ///
    /// # Panics
    ///
    /// Same contract as [`CamArray::search`].
    #[must_use]
    pub fn search_packed(
        &self,
        read: &PackedSeq,
        threshold: usize,
        mode: MatchMode,
        rng: &mut Rng,
    ) -> SearchOutcome {
        assert_eq!(read.len(), self.width, "read must match the array width");
        self.check_mode(mode);
        // Per row: the digital comparison (exact matchline encoding, no
        // noise involved) followed by the analog sense against
        // V_ref(threshold). Counting draws nothing from the RNG, so fusing
        // the two stages row-by-row keeps the noise stream identical to a
        // separate pre-pass while avoiding an intermediate counts buffer.
        let rows: Vec<RowSearchOutcome> = self
            .rows
            .iter()
            .enumerate()
            .map(|(row, stored)| {
                let n_mis = match mode {
                    MatchMode::EdStar => ed_star_packed(stored, read),
                    MatchMode::Hamming => hamming_packed(stored, read),
                };
                let matched = self.sense.decide(n_mis, self.width, threshold, rng);
                RowSearchOutcome {
                    row,
                    n_mis,
                    matched,
                }
            })
            .collect();
        let mean = if rows.is_empty() {
            0.0
        } else {
            rows.iter().map(|r| r.n_mis as f64).sum::<f64>() / rows.len() as f64
        };
        let energy_j = self
            .sense
            .cam()
            .search_energy_j(self.rows.len(), self.width, mean);
        SearchOutcome {
            rows,
            mode,
            threshold,
            energy_j,
        }
    }

    /// [`CamArray::search_packed`] over a **batch** of reads in one array
    /// pass: the software model of the paper's pipelined global buffer,
    /// which drains a queue of latched reads against this array's rows
    /// while the buffer stages the next array — so a multi-array device
    /// touches each array's row store once per batch instead of once per
    /// read (see [`crate::AsmcapDevice::search_packed_batch`]).
    ///
    /// Every read draws its sensing noise from its **own** RNG stream
    /// `rngs[i]`, visiting rows in exactly the order
    /// [`CamArray::search_packed`] would — so the outcome for read `i` is
    /// byte-identical to `search_packed(&reads[i], …, &mut rngs[i])` run
    /// on its own.
    ///
    /// # Panics
    ///
    /// Panics if `reads` and `rngs` lengths differ, any read width differs
    /// from the array width, or HD mode is requested on hardware without
    /// the HD MUX.
    #[must_use]
    pub fn search_packed_batch(
        &self,
        reads: &[PackedSeq],
        threshold: usize,
        mode: MatchMode,
        rngs: &mut [Rng],
    ) -> Vec<SearchOutcome> {
        assert_eq!(
            reads.len(),
            rngs.len(),
            "one sensing RNG stream per batched read"
        );
        // Read-major over one array keeps this array's (small) row store
        // cache-hot across the whole queue while each read's outcome rows
        // fill contiguously; the per-read row order — and therefore the
        // noise stream — is exactly the sequential search's.
        reads
            .iter()
            .zip(rngs.iter_mut())
            .map(|(read, rng)| self.search_packed(read, threshold, mode, rng))
            .collect()
    }

    /// [`CamArray::search_packed`] restricted to a shortlist of rows: the
    /// controller's row-mask gating. Only the listed rows run the digital
    /// pre-pass and draw sensing noise (in ascending row order, exactly the
    /// order a full search would reach them), and the energy model is
    /// charged for the sensed rows only — unlisted matchlines stay
    /// pre-charged and untouched.
    ///
    /// Searching with every row listed is byte-identical to
    /// [`CamArray::search_packed`], RNG draws included.
    ///
    /// # Panics
    ///
    /// Panics if the read width differs from the array width, HD mode is
    /// requested on hardware without the HD MUX, `rows` is not strictly
    /// ascending, or a listed row is unoccupied.
    #[must_use]
    pub fn search_packed_rows(
        &self,
        read: &PackedSeq,
        threshold: usize,
        mode: MatchMode,
        rows: &[usize],
        rng: &mut Rng,
    ) -> SearchOutcome {
        assert_eq!(read.len(), self.width, "read must match the array width");
        self.check_mode(mode);
        assert!(
            rows.windows(2).all(|pair| pair[0] < pair[1]),
            "row shortlist must be strictly ascending"
        );
        let rows: Vec<RowSearchOutcome> = rows
            .iter()
            .map(|&row| {
                let stored = &self.rows[row];
                let n_mis = match mode {
                    MatchMode::EdStar => ed_star_packed(stored, read),
                    MatchMode::Hamming => hamming_packed(stored, read),
                };
                let matched = self.sense.decide(n_mis, self.width, threshold, rng);
                RowSearchOutcome {
                    row,
                    n_mis,
                    matched,
                }
            })
            .collect();
        let mean = if rows.is_empty() {
            0.0
        } else {
            rows.iter().map(|r| r.n_mis as f64).sum::<f64>() / rows.len() as f64
        };
        let energy_j = self
            .sense
            .cam()
            .search_energy_j(rows.len(), self.width, mean);
        SearchOutcome {
            rows,
            mode,
            threshold,
            energy_j,
        }
    }

    /// Instantiates and installs `plan`'s faults for this array (as array
    /// number `array_index` of the device), then runs the self-test
    /// quarantine scan: each row is sensed `selftest_trials` times against
    /// its own stored word (expected mismatch count = the row's welded
    /// stuck-at-mismatch cells) from the dedicated self-test stream; rows
    /// failing a strict majority of trials — dead rows always do — are
    /// quarantined. An inactive plan uninstalls any fault state.
    ///
    /// Call after the rows are stored: faults are instantiated for the
    /// occupied rows only.
    pub fn install_faults(&mut self, plan: &FaultPlan, array_index: usize, threshold: usize) {
        if !plan.is_active() {
            self.faults = None;
            return;
        }
        let mut faults = plan.instantiate(array_index, self.rows.len(), self.width);
        if plan.selftest_trials > 0 {
            let mut rng = plan.selftest_rng(array_index);
            let drift = faults.drift_states;
            for rf in &mut faults.rows {
                let self_mis = rf.self_mismatches();
                let mut fails = 0u32;
                for _ in 0..plan.selftest_trials {
                    // A dead matchline fails every trial without sensing;
                    // live rows burn one self-test draw per trial.
                    let pass = !rf.dead
                        && self
                            .sense
                            .decide_with_offset(self_mis, self.width, threshold, drift, &mut rng);
                    fails += u32::from(!pass);
                }
                rf.quarantined = fails * 2 > plan.selftest_trials;
            }
        }
        self.faults = Some(faults);
    }

    /// The installed fault state, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&ArrayFaults> {
        self.faults.as_ref()
    }

    /// Number of quarantined rows (0 when no faults are installed).
    #[must_use]
    pub fn quarantined_rows(&self) -> usize {
        self.faults
            .as_ref()
            .map_or(0, ArrayFaults::quarantined_rows)
    }

    /// One row's fault-aware decision: `(n_reported, matched)`.
    ///
    /// Draw discipline — the invariant the determinism pins rely on:
    /// exactly **one** draw from the main sensing stream `rng` per live,
    /// non-quarantined row (quarantined and dead rows draw nothing), and
    /// every transient-flip or re-sense draw comes from the dedicated
    /// per-read `fault_rng`, so the sensing stream's order matches the
    /// fault-free path row for row.
    #[allow(clippy::too_many_arguments)]
    fn sense_row_faulty(
        &self,
        faults: &ArrayFaults,
        row: usize,
        stored: &PackedSeq,
        read: &PackedSeq,
        n_true: usize,
        threshold: usize,
        mode: MatchMode,
        rng: &mut Rng,
        fault_rng: &mut Rng,
        tally: &mut FaultTally,
    ) -> (usize, bool) {
        // Rows stored after the plan was installed have no fault entry and
        // sense cleanly.
        let Some(rf) = faults.rows.get(row) else {
            return (
                n_true,
                self.sense.decide(n_true, self.width, threshold, rng),
            );
        };
        if rf.quarantined {
            // The controller answers from its pristine stored copy: exact
            // digital comparison, no analog sense, no draws.
            tally.requarried += 1;
            return (n_true, n_true <= threshold);
        }
        let n_eff = if rf.stuck.is_empty() {
            n_true
        } else {
            ArrayFaults::effective_n_mis(rf, stored, read, n_true, mode)
        };
        if rf.dead {
            // The matchline never discharges; the SA reads "no match".
            return (n_eff, false);
        }
        let drift = faults.drift_states;
        let flip_rate = faults.transient_flip_rate;
        let mut decision = self
            .sense
            .decide_with_offset(n_eff, self.width, threshold, drift, rng);
        if flip_rate > 0.0 && asmcap_circuit::noise::uniform(fault_rng) < flip_rate {
            decision = !decision;
        }
        // Re-sense voting: when the analog decision disagrees with the
        // matchline's digital expectation, sense again and let the
        // majority win. Extra senses draw from the fault stream so the
        // main stream stays in lockstep with the unvoted path.
        let expected = n_eff <= threshold;
        if faults.resense_votes > 1 && decision != expected {
            tally.resensed += 1;
            let mut yes = u32::from(decision);
            for _ in 1..faults.resense_votes {
                let mut vote = self
                    .sense
                    .decide_with_offset(n_eff, self.width, threshold, drift, fault_rng);
                if flip_rate > 0.0 && asmcap_circuit::noise::uniform(fault_rng) < flip_rate {
                    vote = !vote;
                }
                yes += u32::from(vote);
            }
            decision = yes * 2 > faults.resense_votes;
        }
        (n_eff, decision)
    }

    /// [`CamArray::search_packed`] through the installed fault model.
    /// With no faults installed this forwards to the fault-free path and
    /// is byte-identical to it; `fault_rng` is the read's dedicated fault
    /// stream and `tally` accumulates the mitigation counters.
    ///
    /// # Panics
    ///
    /// Same contract as [`CamArray::search_packed`].
    #[must_use]
    pub fn search_packed_with_faults(
        &self,
        read: &PackedSeq,
        threshold: usize,
        mode: MatchMode,
        rng: &mut Rng,
        fault_rng: &mut Rng,
        tally: &mut FaultTally,
    ) -> SearchOutcome {
        let Some(faults) = &self.faults else {
            return self.search_packed(read, threshold, mode, rng);
        };
        assert_eq!(read.len(), self.width, "read must match the array width");
        self.check_mode(mode);
        let rows: Vec<RowSearchOutcome> = self
            .rows
            .iter()
            .enumerate()
            .map(|(row, stored)| {
                let n_true = match mode {
                    MatchMode::EdStar => ed_star_packed(stored, read),
                    MatchMode::Hamming => hamming_packed(stored, read),
                };
                let (n_mis, matched) = self.sense_row_faulty(
                    faults, row, stored, read, n_true, threshold, mode, rng, fault_rng, tally,
                );
                RowSearchOutcome {
                    row,
                    n_mis,
                    matched,
                }
            })
            .collect();
        self.finish_outcome(rows, mode, threshold)
    }

    /// [`CamArray::search_packed_rows`] through the installed fault model
    /// (see [`CamArray::search_packed_with_faults`]).
    ///
    /// # Panics
    ///
    /// Same contract as [`CamArray::search_packed_rows`].
    #[must_use]
    #[allow(clippy::too_many_arguments)] // mirrors search_packed_rows + the fault triple
    pub fn search_packed_rows_with_faults(
        &self,
        read: &PackedSeq,
        threshold: usize,
        mode: MatchMode,
        rows: &[usize],
        rng: &mut Rng,
        fault_rng: &mut Rng,
        tally: &mut FaultTally,
    ) -> SearchOutcome {
        let Some(faults) = &self.faults else {
            return self.search_packed_rows(read, threshold, mode, rows, rng);
        };
        assert_eq!(read.len(), self.width, "read must match the array width");
        self.check_mode(mode);
        assert!(
            rows.windows(2).all(|pair| pair[0] < pair[1]),
            "row shortlist must be strictly ascending"
        );
        let rows: Vec<RowSearchOutcome> = rows
            .iter()
            .map(|&row| {
                let stored = &self.rows[row];
                let n_true = match mode {
                    MatchMode::EdStar => ed_star_packed(stored, read),
                    MatchMode::Hamming => hamming_packed(stored, read),
                };
                let (n_mis, matched) = self.sense_row_faulty(
                    faults, row, stored, read, n_true, threshold, mode, rng, fault_rng, tally,
                );
                RowSearchOutcome {
                    row,
                    n_mis,
                    matched,
                }
            })
            .collect();
        self.finish_outcome(rows, mode, threshold)
    }

    fn finish_outcome(
        &self,
        rows: Vec<RowSearchOutcome>,
        mode: MatchMode,
        threshold: usize,
    ) -> SearchOutcome {
        let mean = if rows.is_empty() {
            0.0
        } else {
            rows.iter().map(|r| r.n_mis as f64).sum::<f64>() / rows.len() as f64
        };
        let energy_j = self
            .sense
            .cam()
            .search_energy_j(rows.len(), self.width, mean);
        SearchOutcome {
            rows,
            mode,
            threshold,
            energy_j,
        }
    }

    fn check_mode(&self, mode: MatchMode) {
        assert!(
            self.supports_hd || mode == MatchMode::EdStar,
            "this CAM has no HD-mode MUX (EDAM hardware)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_circuit::rng;
    use asmcap_genome::{DnaSeq, GenomeModel};

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    #[test]
    fn store_and_read_back() {
        let mut array = CamArray::asmcap(2, 4);
        let row = array.store_row(seq("ACGT").as_slice()).unwrap();
        assert_eq!(row, 0);
        assert_eq!(array.stored_row(0).unwrap(), seq("ACGT").into_bases());
        assert!(array.stored_row(1).is_none());
    }

    #[test]
    fn store_rejects_bad_width_and_overflow() {
        let mut array = CamArray::asmcap(1, 4);
        assert_eq!(
            array.store_row(seq("ACG").as_slice()),
            Err(StoreRowError::WidthMismatch {
                expected: 4,
                actual: 3
            })
        );
        array.store_row(seq("ACGT").as_slice()).unwrap();
        assert_eq!(
            array.store_row(seq("TTTT").as_slice()),
            Err(StoreRowError::ArrayFull)
        );
    }

    #[test]
    fn mismatch_counts_agree_with_metrics() {
        let genome = GenomeModel::uniform().generate(4_000, 5);
        let mut array = CamArray::asmcap(8, 64);
        for i in 0..8 {
            array
                .store_row(&genome.as_slice()[i * 100..i * 100 + 64])
                .unwrap();
        }
        let read = &genome.as_slice()[1234..1298];
        for row in 0..8 {
            let stored = array.stored_row(row).unwrap();
            assert_eq!(
                array.row_mismatches(row, read, MatchMode::EdStar),
                asmcap_metrics::ed_star(&stored, read),
                "ED* mismatch on row {row}"
            );
            assert_eq!(
                array.row_mismatches(row, read, MatchMode::Hamming),
                asmcap_metrics::hamming(&stored, read),
                "HD mismatch on row {row}"
            );
        }
    }

    #[test]
    fn search_finds_exact_row() {
        let mut array = CamArray::asmcap(4, 32);
        let genome = GenomeModel::uniform().generate(400, 9);
        for i in 0..4 {
            array
                .store_row(&genome.as_slice()[i * 40..i * 40 + 32])
                .unwrap();
        }
        let mut rng = rng(2);
        let read = &genome.as_slice()[80..112]; // row 2's segment
        let outcome = array.search(read, 0, MatchMode::EdStar, &mut rng);
        assert_eq!(outcome.matched_rows(), vec![2]);
        assert_eq!(outcome.rows[2].n_mis, 0);
    }

    #[test]
    fn edam_array_rejects_hd_mode() {
        let mut array = CamArray::edam(2, 8);
        array.store_row(seq("ACGTACGT").as_slice()).unwrap();
        let mut rng = rng(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            array.search(seq("ACGTACGT").as_slice(), 1, MatchMode::Hamming, &mut rng)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn search_reports_energy() {
        let mut asmcap = CamArray::asmcap(4, 32);
        let mut edam = CamArray::edam(4, 32);
        let genome = GenomeModel::uniform().generate(200, 1);
        for i in 0..4 {
            asmcap
                .store_row(&genome.as_slice()[i * 40..i * 40 + 32])
                .unwrap();
            edam.store_row(&genome.as_slice()[i * 40..i * 40 + 32])
                .unwrap();
        }
        let mut rng = rng(4);
        let read = &genome.as_slice()[60..92];
        let a = asmcap.search(read, 2, MatchMode::EdStar, &mut rng);
        let e = edam.search(read, 2, MatchMode::EdStar, &mut rng);
        assert!(a.energy_j > 0.0);
        assert!(
            e.energy_j > a.energy_j,
            "EDAM should burn more energy per search"
        );
    }

    #[test]
    fn batched_search_is_byte_identical_to_sequential() {
        let genome = GenomeModel::uniform().generate(4_000, 8);
        let mut array = CamArray::asmcap(12, 64);
        for i in 0..12 {
            array
                .store_row(&genome.as_slice()[i * 120..i * 120 + 64])
                .unwrap();
        }
        let reads: Vec<asmcap_genome::PackedSeq> = (0..5)
            .map(|i| asmcap_genome::PackedSeq::from_seq(&genome.window(i * 300..i * 300 + 64)))
            .collect();
        for mode in [MatchMode::EdStar, MatchMode::Hamming] {
            let mut batch_rngs: Vec<_> = (0..5).map(|i| rng(100 + i)).collect();
            let batched = array.search_packed_batch(&reads, 2, mode, &mut batch_rngs);
            for (i, read) in reads.iter().enumerate() {
                let mut solo_rng = rng(100 + i as u64);
                let solo = array.search_packed(read, 2, mode, &mut solo_rng);
                assert_eq!(batched[i], solo, "read {i} diverged in {mode} mode");
            }
            // The RNG streams stayed in lockstep with the sequential path:
            // a follow-up search from each stream agrees too.
            for (i, read) in reads.iter().enumerate() {
                let mut solo_rng = rng(100 + i as u64);
                let _ = array.search_packed(read, 2, mode, &mut solo_rng);
                assert_eq!(
                    array.search_packed(read, 5, mode, &mut batch_rngs[i]),
                    array.search_packed(read, 5, mode, &mut solo_rng),
                    "stream {i} fell out of lockstep"
                );
            }
        }
    }

    #[test]
    fn outcome_mean_n_mis() {
        let outcome = SearchOutcome {
            rows: vec![
                RowSearchOutcome {
                    row: 0,
                    n_mis: 2,
                    matched: true,
                },
                RowSearchOutcome {
                    row: 1,
                    n_mis: 4,
                    matched: false,
                },
            ],
            mode: MatchMode::EdStar,
            threshold: 2,
            energy_j: 0.0,
        };
        assert_eq!(outcome.mean_n_mis(), 3.0);
    }

    fn faulty_test_array() -> CamArray<ChargeDomainCam> {
        let genome = GenomeModel::uniform().generate(8_000, 31);
        let mut array = CamArray::asmcap(32, 64);
        for i in 0..32 {
            array
                .store_row(&genome.as_slice()[i * 200..i * 200 + 64])
                .unwrap();
        }
        array
    }

    #[test]
    fn inactive_plan_installs_nothing_and_search_is_byte_identical() {
        let mut array = faulty_test_array();
        array.install_faults(&FaultPlan::none(), 0, 6);
        assert!(array.faults().is_none());
        assert_eq!(array.quarantined_rows(), 0);
        let read = array
            .stored_row(3)
            .map(|bases| PackedSeq::from_bases(&bases))
            .unwrap();
        let mut tally = FaultTally::default();
        let mut plain_rng = rng(42);
        let mut fault_path_rng = rng(42);
        let mut fault_rng = FaultPlan::none().read_fault_rng(42);
        let plain = array.search_packed(&read, 6, MatchMode::EdStar, &mut plain_rng);
        let faulted = array.search_packed_with_faults(
            &read,
            6,
            MatchMode::EdStar,
            &mut fault_path_rng,
            &mut fault_rng,
            &mut tally,
        );
        assert_eq!(plain, faulted);
        assert_eq!(tally, FaultTally::default());
        // The main stream consumed identically on both paths.
        assert_eq!(
            array.search_packed(&read, 6, MatchMode::EdStar, &mut plain_rng),
            array.search_packed(&read, 6, MatchMode::EdStar, &mut fault_path_rng),
        );
    }

    #[test]
    fn installed_faults_are_deterministic_across_installs() {
        let plan = FaultPlan::paper_corner(11);
        let mut a = faulty_test_array();
        let mut b = faulty_test_array();
        a.install_faults(&plan, 5, 6);
        b.install_faults(&plan, 5, 6);
        assert_eq!(a.faults(), b.faults());
        let read = a
            .stored_row(9)
            .map(|bases| PackedSeq::from_bases(&bases))
            .unwrap();
        let mut tally_a = FaultTally::default();
        let mut tally_b = FaultTally::default();
        let out_a = a.search_packed_with_faults(
            &read,
            6,
            MatchMode::EdStar,
            &mut rng(77),
            &mut plan.read_fault_rng(77),
            &mut tally_a,
        );
        let out_b = b.search_packed_with_faults(
            &read,
            6,
            MatchMode::EdStar,
            &mut rng(77),
            &mut plan.read_fault_rng(77),
            &mut tally_b,
        );
        assert_eq!(out_a, out_b);
        assert_eq!(tally_a, tally_b);
    }

    #[test]
    fn dead_rows_are_quarantined_and_answered_exactly() {
        // A plan that kills every row: the self-test scan must quarantine
        // all of them, and searches then answer with the exact digital
        // fallback without touching the sensing stream.
        let plan = FaultPlan {
            seed: 3,
            dead_row_rate: 1.0,
            selftest_trials: 3,
            ..FaultPlan::none()
        };
        // dead_row_rate makes it active.
        assert!(plan.is_active());
        let mut array = faulty_test_array();
        array.install_faults(&plan, 0, 6);
        assert_eq!(array.quarantined_rows(), array.rows());
        let read = array
            .stored_row(7)
            .map(|bases| PackedSeq::from_bases(&bases))
            .unwrap();
        let mut tally = FaultTally::default();
        let mut main = rng(5);
        let before: u64 = {
            let mut probe = main.clone();
            use rand::Rng as _;
            probe.gen()
        };
        let out = array.search_packed_with_faults(
            &read,
            6,
            MatchMode::EdStar,
            &mut main,
            &mut plan.read_fault_rng(5),
            &mut tally,
        );
        // Exact digital answers: row 7 matches itself, all else by count.
        assert!(out.rows[7].matched);
        for row in &out.rows {
            assert_eq!(row.matched, row.n_mis <= 6, "row {}", row.row);
        }
        assert_eq!(tally.requarried, array.rows() as u64);
        // No draws were consumed from the main sensing stream.
        use rand::Rng as _;
        assert_eq!(main.gen::<u64>(), before);
    }

    #[test]
    fn quarantine_catches_heavily_stuck_rows() {
        // Weld enough stuck-at-mismatch cells that a row can never sense
        // below a small threshold: the self-test must quarantine it.
        let plan = FaultPlan {
            seed: 8,
            stuck_mismatch_rate: 0.5,
            selftest_trials: 5,
            ..FaultPlan::none()
        };
        let mut array = faulty_test_array();
        array.install_faults(&plan, 2, 3);
        let faults = array.faults().unwrap();
        for (row, rf) in faults.rows.iter().enumerate() {
            if rf.self_mismatches() > 10 {
                assert!(rf.quarantined, "row {row} with heavy welds must quarantine");
            }
        }
        assert!(array.quarantined_rows() > 0);
    }

    #[test]
    fn masked_fault_search_agrees_with_full_on_listed_rows_draw_order() {
        let plan = FaultPlan::paper_corner(21);
        let mut array = faulty_test_array();
        array.install_faults(&plan, 1, 6);
        let read = array
            .stored_row(0)
            .map(|bases| PackedSeq::from_bases(&bases))
            .unwrap();
        let all_rows: Vec<usize> = (0..array.rows()).collect();
        let mut tally_full = FaultTally::default();
        let mut tally_masked = FaultTally::default();
        let full = array.search_packed_with_faults(
            &read,
            6,
            MatchMode::EdStar,
            &mut rng(9),
            &mut plan.read_fault_rng(9),
            &mut tally_full,
        );
        let masked = array.search_packed_rows_with_faults(
            &read,
            6,
            MatchMode::EdStar,
            &all_rows,
            &mut rng(9),
            &mut plan.read_fault_rng(9),
            &mut tally_masked,
        );
        assert_eq!(full, masked, "full row list must be byte-identical");
        assert_eq!(tally_full, tally_masked);
    }
}
