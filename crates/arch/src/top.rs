//! The top-level ASMCap device (paper Fig. 4a).
//!
//! A device is a bank of CAM arrays (the paper evaluates 512 arrays of
//! 256×256 = 64 Mb) fed by a global buffer over an H-tree. A reference
//! genome is segmented into row-sized windows at a configurable stride and
//! written across the arrays; one search operation broadcasts a read to
//! every array and senses all matchlines in parallel.

use crate::array::{CamArray, MatchMode, SearchEnergy};
use crate::fault::{FaultPlan, FaultTally};
use asmcap_circuit::{ChargeDomainCam, CurrentDomainCam, MlCam, Rng};
use asmcap_genome::{Base, DnaSeq, PackedRef, PackedSeq, PackedWords as _};
use std::fmt;

/// A bitset over the device's stored rows (flat storage order), selecting
/// which rows a masked search may sense.
///
/// This is the software model of the controller's row gating: the k-mer
/// prefilter shortlists candidate segment origins, [`AsmcapDevice::mask_for_origins`]
/// turns them into a mask, and [`AsmcapDevice::search_packed_masked`] drives
/// only the masked-in matchlines.
///
/// # Examples
///
/// ```
/// use asmcap_arch::RowMask;
/// let mut mask = RowMask::new(8);
/// mask.set(2);
/// mask.set(5);
/// assert!(mask.get(2) && !mask.get(3));
/// assert_eq!(mask.count_ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMask {
    bits: Vec<u64>,
    len: usize,
}

impl RowMask {
    /// An all-clear mask over `len` rows.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            bits: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// An all-set mask over `len` rows (masked search degenerates to the
    /// full search, byte-identically).
    #[must_use]
    pub fn full(len: usize) -> Self {
        let mut mask = Self::new(len);
        for i in 0..len {
            mask.set(i);
        }
        mask
    }

    /// Number of rows the mask covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks row `i` for sensing.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "row {i} out of mask of {} rows", self.len);
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether row `i` is marked.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        i < self.len && (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of marked rows.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The marked rows inside `range`, ascending — walking whole words and
    /// popping set bits, so a sparse mask over many rows costs
    /// `O(range/64 + ones)`, not `O(range)` membership probes.
    pub fn ones_in(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = usize> + '_ {
        let start = range.start.min(self.len);
        let end = range.end.min(self.len).max(start);
        let first_word = start / 64;
        let last_word = end.div_ceil(64);
        (first_word..last_word).flat_map(move |w| {
            let mut word = self.bits[w];
            if w == first_word {
                word &= u64::MAX << (start % 64);
            }
            if w == last_word - 1 && !end.is_multiple_of(64) {
                word &= (1u64 << (end % 64)) - 1;
            }
            let base = w * 64;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(base + bit)
            })
        })
    }
}

/// Location of one stored row inside the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId {
    /// Array index within the device.
    pub array: usize,
    /// Row index within the array.
    pub row: usize,
}

/// One matching row reported by a device search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceMatch {
    /// Which physical row matched.
    pub id: RowId,
    /// Genome position the row's segment was taken from.
    pub origin: usize,
    /// The row's noiseless mismatch count.
    pub n_mis: usize,
}

/// Timing/energy accounting of one device search.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SearchStats {
    /// Number of array-level search operations issued (all in parallel).
    pub array_searches: usize,
    /// Energy across all arrays, in joules.
    pub energy_j: f64,
    /// Wall-clock latency (arrays operate in parallel), in seconds.
    pub latency_s: f64,
    /// Rows where re-sense majority voting fired (0 without faults).
    pub resensed: u64,
    /// Quarantined rows answered by the exact digital fallback (0 without
    /// faults).
    pub requarried: u64,
}

/// Result of searching one read against the whole device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSearchResult {
    /// All rows whose sense amplifier fired, with their origins.
    pub matches: Vec<DeviceMatch>,
    /// Accounting for this search.
    pub stats: SearchStats,
}

/// Error returned when a reference does not fit the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// Rows the segmentation requires.
    pub required_rows: usize,
    /// Rows the device provides.
    pub available_rows: usize,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reference needs {} rows but the device has {}",
            self.required_rows, self.available_rows
        )
    }
}

impl std::error::Error for CapacityError {}

/// Builder for [`AsmcapDevice`] (see paper §V-A for the evaluated shape).
///
/// # Examples
///
/// ```
/// use asmcap_arch::DeviceBuilder;
/// let device = DeviceBuilder::new()
///     .arrays(4)
///     .rows_per_array(64)
///     .row_width(128)
///     .build_asmcap();
/// assert_eq!(device.capacity_rows(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    arrays: usize,
    rows: usize,
    width: usize,
}

impl DeviceBuilder {
    /// Starts from the paper's configuration: 512 arrays of 256×256.
    #[must_use]
    pub fn new() -> Self {
        Self {
            arrays: asmcap_circuit::params::ARRAY_COUNT,
            rows: asmcap_circuit::params::ARRAY_ROWS,
            width: asmcap_circuit::params::ARRAY_COLS,
        }
    }

    /// Sets the number of arrays.
    #[must_use]
    pub fn arrays(mut self, arrays: usize) -> Self {
        self.arrays = arrays;
        self
    }

    /// Sets the rows per array (`M`).
    #[must_use]
    pub fn rows_per_array(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Sets the row width (`N`), which must equal the read length.
    #[must_use]
    pub fn row_width(mut self, width: usize) -> Self {
        self.width = width;
        self
    }

    /// Builds a charge-domain (ASMCap) device.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn build_asmcap(&self) -> AsmcapDevice<ChargeDomainCam> {
        AsmcapDevice::from_arrays(
            (0..self.arrays)
                .map(|_| CamArray::asmcap(self.rows, self.width))
                .collect(),
        )
    }

    /// Builds a current-domain (EDAM) device for baseline comparison.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn build_edam(&self) -> AsmcapDevice<CurrentDomainCam> {
        AsmcapDevice::from_arrays(
            (0..self.arrays)
                .map(|_| CamArray::edam(self.rows, self.width))
                .collect(),
        )
    }
}

impl Default for DeviceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// A full multi-array device over sensing model `M`.
#[derive(Debug, Clone)]
pub struct AsmcapDevice<M> {
    arrays: Vec<CamArray<M>>,
    origins: Vec<usize>, // flat, in storage order
    // Whether `origins` is ascending (true for one stored reference; a
    // second `store_reference` call restarts at 0 and clears it), which is
    // what lets `mask_for_origins` binary-search instead of scanning.
    origins_sorted: bool,
    width: usize,
}

impl<M: MlCam + SearchEnergy> AsmcapDevice<M> {
    /// Wraps pre-built arrays (all must share one width).
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is empty or widths disagree.
    #[must_use]
    pub fn from_arrays(arrays: Vec<CamArray<M>>) -> Self {
        assert!(!arrays.is_empty(), "a device needs at least one array");
        let width = arrays[0].width();
        assert!(
            arrays.iter().all(|a| a.width() == width),
            "all arrays must share one row width"
        );
        Self {
            arrays,
            origins: Vec::new(),
            origins_sorted: true,
            width,
        }
    }

    /// Row width (= read length) in bases.
    #[must_use]
    pub fn row_width(&self) -> usize {
        self.width
    }

    /// Total row capacity across all arrays.
    #[must_use]
    pub fn capacity_rows(&self) -> usize {
        self.arrays.iter().map(CamArray::max_rows).sum()
    }

    /// Occupied rows.
    #[must_use]
    pub fn stored_rows(&self) -> usize {
        self.origins.len()
    }

    /// Reference capacity in bases at stride `stride`.
    #[must_use]
    pub fn reference_capacity(&self, stride: usize) -> usize {
        self.capacity_rows().saturating_sub(1) * stride + self.width
    }

    /// The arrays, for inspection.
    #[must_use]
    pub fn arrays(&self) -> &[CamArray<M>] {
        &self.arrays
    }

    /// Installs `plan`'s faults on every array (array index = stream
    /// index) and runs each array's self-test quarantine scan at the
    /// pipeline's search `threshold`. Call **after** the reference is
    /// stored so faults land on the occupied rows. An inactive plan
    /// uninstalls all fault state.
    pub fn install_faults(&mut self, plan: &FaultPlan, threshold: usize) {
        for (array_index, array) in self.arrays.iter_mut().enumerate() {
            array.install_faults(plan, array_index, threshold);
        }
    }

    /// Total quarantined rows across all arrays (0 without faults).
    #[must_use]
    pub fn quarantined_rows(&self) -> usize {
        self.arrays.iter().map(CamArray::quarantined_rows).sum()
    }

    /// Whether any array has fault state installed.
    #[must_use]
    pub fn has_faults(&self) -> bool {
        self.arrays.iter().any(|a| a.faults().is_some())
    }

    /// Segments `reference` into row-width windows every `stride` bases and
    /// stores them across the arrays in order.
    ///
    /// Stride 1 stores every alignment offset (needed to map reads sampled
    /// at arbitrary positions); stride = row width maximises the unique
    /// reference a device holds (the paper's 64 Mb figure).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the segmentation needs more rows than
    /// the device has; nothing is stored in that case.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or the reference is shorter than one row.
    pub fn store_reference(
        &mut self,
        reference: &DnaSeq,
        stride: usize,
    ) -> Result<usize, CapacityError> {
        self.store_packed_reference(&PackedRef::new(reference), stride)
    }

    /// [`AsmcapDevice::store_reference`] over an already packed reference:
    /// each row is a word-aligned extraction from the single packing, never
    /// an unpack/repack round trip.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the segmentation needs more rows than
    /// the device has; nothing is stored in that case.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or the reference is shorter than one row.
    pub fn store_packed_reference(
        &mut self,
        reference: &PackedRef,
        stride: usize,
    ) -> Result<usize, CapacityError> {
        assert!(stride > 0, "stride must be positive");
        assert!(
            reference.len() >= self.width,
            "reference shorter than one row"
        );
        let starts: Vec<usize> = (0..=reference.len() - self.width).step_by(stride).collect();
        let free: usize = self.capacity_rows() - self.stored_rows();
        if starts.len() > free {
            return Err(CapacityError {
                required_rows: starts.len(),
                available_rows: free,
            });
        }
        for &start in &starts {
            let segment = reference.segment(start, self.width).to_packed();
            let array = self
                .arrays
                .iter_mut()
                .find(|a| !a.is_full())
                .expect("capacity checked above");
            array
                .store_row_packed(segment)
                .expect("width and capacity checked");
            if self.origins.last().is_some_and(|&last| start < last) {
                self.origins_sorted = false;
            }
            self.origins.push(start);
        }
        Ok(starts.len())
    }

    /// The genome origin of a stored row.
    #[must_use]
    pub fn origin_of(&self, id: RowId) -> Option<usize> {
        let flat: usize = self
            .arrays
            .iter()
            .take(id.array)
            .map(CamArray::rows)
            .sum::<usize>()
            + id.row;
        self.origins.get(flat).copied()
    }

    /// Broadcasts `read` to every array and senses all matchlines at
    /// threshold `T` in `mode`. One search operation in hardware.
    ///
    /// Packs the read once and forwards to [`AsmcapDevice::search_packed`].
    ///
    /// # Panics
    ///
    /// Panics if the read width differs from the row width.
    #[must_use]
    pub fn search(
        &self,
        read: &[Base],
        threshold: usize,
        mode: MatchMode,
        rng: &mut Rng,
    ) -> DeviceSearchResult {
        assert_eq!(read.len(), self.width, "read must match the row width");
        self.search_packed(&PackedSeq::from_bases(read), threshold, mode, rng)
    }

    /// [`AsmcapDevice::search`] over an already packed read: the global
    /// buffer latches the packed word stream once and every array runs its
    /// digital pre-pass + analog sense split on it.
    ///
    /// # Panics
    ///
    /// Panics if the read width differs from the row width.
    #[must_use]
    pub fn search_packed(
        &self,
        read: &PackedSeq,
        threshold: usize,
        mode: MatchMode,
        rng: &mut Rng,
    ) -> DeviceSearchResult {
        assert_eq!(read.len(), self.width, "read must match the row width");
        let mut matches = Vec::new();
        let mut energy = 0.0;
        let mut searches = 0usize;
        let mut latency: f64 = 0.0;
        let mut flat_base = 0usize;
        for (array_idx, array) in self.arrays.iter().enumerate() {
            if array.rows() == 0 {
                continue;
            }
            let outcome = array.search_packed(read, threshold, mode, rng);
            energy += outcome.energy_j;
            searches += 1;
            latency = latency.max(array.sense().cam().search_time_s());
            for row in &outcome.rows {
                if row.matched {
                    let id = RowId {
                        array: array_idx,
                        row: row.row,
                    };
                    matches.push(DeviceMatch {
                        id,
                        origin: self.origins[flat_base + row.row],
                        n_mis: row.n_mis,
                    });
                }
            }
            flat_base += array.rows();
        }
        DeviceSearchResult {
            matches,
            stats: SearchStats {
                array_searches: searches,
                energy_j: energy,
                latency_s: latency,
                ..SearchStats::default()
            },
        }
    }

    /// [`AsmcapDevice::search_packed`] over a **batch** of reads: the
    /// global buffer latches the whole read queue once and every array
    /// drains it in one pass ([`CamArray::search_packed_batch`]) before
    /// the buffer stages the next array — the software model of the
    /// paper's pipelined global buffer, and the batch surface the
    /// device-backend batching work builds on. (In this software model
    /// the sense-amplifier noise draws dominate row fetches, so the pass
    /// reordering is about modeling and API shape, not host speed — see
    /// the `device_batch_search` bench.)
    ///
    /// Read `i` draws all sensing noise from `rngs[i]`, visiting arrays
    /// and rows in exactly the order [`AsmcapDevice::search_packed`]
    /// would, so `results[i]` is **byte-identical** to
    /// `search_packed(&reads[i], …, &mut rngs[i])` run on its own —
    /// matches, energy, and RNG stream state included.
    ///
    /// # Panics
    ///
    /// Panics if `reads` and `rngs` lengths differ or any read width
    /// differs from the row width.
    #[must_use]
    pub fn search_packed_batch(
        &self,
        reads: &[PackedSeq],
        threshold: usize,
        mode: MatchMode,
        rngs: &mut [Rng],
    ) -> Vec<DeviceSearchResult> {
        assert_eq!(
            reads.len(),
            rngs.len(),
            "one sensing RNG stream per batched read"
        );
        let mut results: Vec<DeviceSearchResult> = reads
            .iter()
            .map(|_| DeviceSearchResult {
                matches: Vec::new(),
                stats: SearchStats::default(),
            })
            .collect();
        let mut flat_base = 0usize;
        for (array_idx, array) in self.arrays.iter().enumerate() {
            if array.rows() == 0 {
                continue;
            }
            let outcomes = array.search_packed_batch(reads, threshold, mode, rngs);
            for (result, outcome) in results.iter_mut().zip(outcomes) {
                result.stats.energy_j += outcome.energy_j;
                result.stats.array_searches += 1;
                result.stats.latency_s = result
                    .stats
                    .latency_s
                    .max(array.sense().cam().search_time_s());
                for row in &outcome.rows {
                    if row.matched {
                        result.matches.push(DeviceMatch {
                            id: RowId {
                                array: array_idx,
                                row: row.row,
                            },
                            origin: self.origins[flat_base + row.row],
                            n_mis: row.n_mis,
                        });
                    }
                }
            }
            flat_base += array.rows();
        }
        results
    }

    /// [`AsmcapDevice::search_packed_batch`] under per-read row masks:
    /// read `i` senses only the rows `masks[i]` selects, drawing noise in
    /// the same order [`AsmcapDevice::search_packed_masked`] would — so
    /// `results[i]` is byte-identical to
    /// `search_packed_masked(&reads[i], …, &masks[i], &mut rngs[i])` run
    /// on its own. Arrays with no masked-in row for a read issue no search
    /// operation and burn no energy for that read.
    ///
    /// Like the unmasked batch, the drain is **array-major**: the global
    /// buffer stages one array, every queued read senses its masked-in
    /// rows of that array, then the buffer moves on — the pipelined
    /// global-buffer model the serving coalescer batches for. Per read
    /// the arrays are still visited in index order and rows in row order,
    /// which is exactly the sequential masked walk's draw order, so the
    /// reordering cannot change any result.
    ///
    /// # Panics
    ///
    /// Panics if `reads`, `masks`, and `rngs` lengths differ, any read
    /// width differs from the row width, or a mask does not cover exactly
    /// the stored rows.
    #[must_use]
    pub fn search_packed_batch_masked(
        &self,
        reads: &[PackedSeq],
        threshold: usize,
        mode: MatchMode,
        masks: &[RowMask],
        rngs: &mut [Rng],
    ) -> Vec<DeviceSearchResult> {
        assert_eq!(
            reads.len(),
            rngs.len(),
            "one sensing RNG stream per batched read"
        );
        assert_eq!(reads.len(), masks.len(), "one row mask per batched read");
        for (read, mask) in reads.iter().zip(masks) {
            assert_eq!(read.len(), self.width, "read must match the row width");
            assert_eq!(
                mask.len(),
                self.origins.len(),
                "mask must cover the stored rows"
            );
        }
        let mut results: Vec<DeviceSearchResult> = reads
            .iter()
            .map(|_| DeviceSearchResult {
                matches: Vec::new(),
                stats: SearchStats::default(),
            })
            .collect();
        let mut flat_base = 0usize;
        for (array_idx, array) in self.arrays.iter().enumerate() {
            if array.rows() == 0 {
                continue;
            }
            for ((read, mask), (result, rng)) in reads
                .iter()
                .zip(masks)
                .zip(results.iter_mut().zip(rngs.iter_mut()))
            {
                let rows: Vec<usize> = mask
                    .ones_in(flat_base..flat_base + array.rows())
                    .map(|flat| flat - flat_base)
                    .collect();
                if rows.is_empty() {
                    continue;
                }
                let outcome = array.search_packed_rows(read, threshold, mode, &rows, rng);
                result.stats.energy_j += outcome.energy_j;
                result.stats.array_searches += 1;
                result.stats.latency_s = result
                    .stats
                    .latency_s
                    .max(array.sense().cam().search_time_s());
                for row in &outcome.rows {
                    if row.matched {
                        result.matches.push(DeviceMatch {
                            id: RowId {
                                array: array_idx,
                                row: row.row,
                            },
                            origin: self.origins[flat_base + row.row],
                            n_mis: row.n_mis,
                        });
                    }
                }
            }
            flat_base += array.rows();
        }
        results
    }

    /// The [`RowMask`] (flat storage order) selecting every stored row
    /// whose genome origin appears in `origins`.
    ///
    /// # Panics
    ///
    /// Panics if `origins` is not sorted ascending (the shape the
    /// prefilter's shortlist hands over).
    #[must_use]
    pub fn mask_for_origins(&self, origins: &[usize]) -> RowMask {
        assert!(
            origins.windows(2).all(|pair| pair[0] <= pair[1]),
            "candidate origins must be sorted ascending"
        );
        let mut mask = RowMask::new(self.origins.len());
        if self.origins_sorted {
            // One stored reference: each candidate binary-searches straight
            // to its row, so mask construction is O(c log rows) — a
            // shortlist must not cost O(reference) to apply.
            for &origin in origins {
                if let Ok(flat) = self.origins.binary_search(&origin) {
                    mask.set(flat);
                }
            }
        } else {
            for (flat, origin) in self.origins.iter().enumerate() {
                if origins.binary_search(origin).is_ok() {
                    mask.set(flat);
                }
            }
        }
        mask
    }

    /// [`AsmcapDevice::search_packed`] under a row mask: the controller
    /// broadcasts the read, but only masked-in rows run the digital
    /// pre-pass and are sensed (each array senses its masked rows in row
    /// order, so the noise stream for the rows actually sensed is drawn in
    /// the same order a full search would draw it). Arrays with no
    /// masked-in row issue no search operation and burn no energy.
    ///
    /// Searching under [`RowMask::full`] is byte-identical to
    /// [`AsmcapDevice::search_packed`], RNG draws included.
    ///
    /// # Panics
    ///
    /// Panics if the read width differs from the row width or the mask
    /// does not cover exactly the stored rows.
    #[must_use]
    pub fn search_packed_masked(
        &self,
        read: &PackedSeq,
        threshold: usize,
        mode: MatchMode,
        mask: &RowMask,
        rng: &mut Rng,
    ) -> DeviceSearchResult {
        assert_eq!(read.len(), self.width, "read must match the row width");
        assert_eq!(
            mask.len(),
            self.origins.len(),
            "mask must cover the stored rows"
        );
        let mut matches = Vec::new();
        let mut energy = 0.0;
        let mut searches = 0usize;
        let mut latency: f64 = 0.0;
        let mut flat_base = 0usize;
        for (array_idx, array) in self.arrays.iter().enumerate() {
            if array.rows() == 0 {
                continue;
            }
            let rows: Vec<usize> = mask
                .ones_in(flat_base..flat_base + array.rows())
                .map(|flat| flat - flat_base)
                .collect();
            if !rows.is_empty() {
                let outcome = array.search_packed_rows(read, threshold, mode, &rows, rng);
                energy += outcome.energy_j;
                searches += 1;
                latency = latency.max(array.sense().cam().search_time_s());
                for row in &outcome.rows {
                    if row.matched {
                        let id = RowId {
                            array: array_idx,
                            row: row.row,
                        };
                        matches.push(DeviceMatch {
                            id,
                            origin: self.origins[flat_base + row.row],
                            n_mis: row.n_mis,
                        });
                    }
                }
            }
            flat_base += array.rows();
        }
        DeviceSearchResult {
            matches,
            stats: SearchStats {
                array_searches: searches,
                energy_j: energy,
                latency_s: latency,
                ..SearchStats::default()
            },
        }
    }

    /// [`AsmcapDevice::search_packed`] through each array's installed
    /// fault model: `fault_rng` is this read's dedicated fault stream and
    /// the result's stats carry the `resensed`/`requarried` mitigation
    /// counters. With no faults installed the walk is byte-identical to
    /// the fault-free path.
    ///
    /// # Panics
    ///
    /// Same contract as [`AsmcapDevice::search_packed`].
    #[must_use]
    pub fn search_packed_with_faults(
        &self,
        read: &PackedSeq,
        threshold: usize,
        mode: MatchMode,
        rng: &mut Rng,
        fault_rng: &mut Rng,
    ) -> DeviceSearchResult {
        assert_eq!(read.len(), self.width, "read must match the row width");
        let mut matches = Vec::new();
        let mut energy = 0.0;
        let mut searches = 0usize;
        let mut latency: f64 = 0.0;
        let mut tally = FaultTally::default();
        let mut flat_base = 0usize;
        for (array_idx, array) in self.arrays.iter().enumerate() {
            if array.rows() == 0 {
                continue;
            }
            let outcome =
                array.search_packed_with_faults(read, threshold, mode, rng, fault_rng, &mut tally);
            energy += outcome.energy_j;
            searches += 1;
            latency = latency.max(array.sense().cam().search_time_s());
            for row in &outcome.rows {
                if row.matched {
                    matches.push(DeviceMatch {
                        id: RowId {
                            array: array_idx,
                            row: row.row,
                        },
                        origin: self.origins[flat_base + row.row],
                        n_mis: row.n_mis,
                    });
                }
            }
            flat_base += array.rows();
        }
        DeviceSearchResult {
            matches,
            stats: SearchStats {
                array_searches: searches,
                energy_j: energy,
                latency_s: latency,
                resensed: tally.resensed,
                requarried: tally.requarried,
            },
        }
    }

    /// [`AsmcapDevice::search_packed_masked`] through the fault model
    /// (see [`AsmcapDevice::search_packed_with_faults`]).
    ///
    /// # Panics
    ///
    /// Same contract as [`AsmcapDevice::search_packed_masked`].
    #[must_use]
    pub fn search_packed_masked_with_faults(
        &self,
        read: &PackedSeq,
        threshold: usize,
        mode: MatchMode,
        mask: &RowMask,
        rng: &mut Rng,
        fault_rng: &mut Rng,
    ) -> DeviceSearchResult {
        assert_eq!(read.len(), self.width, "read must match the row width");
        assert_eq!(
            mask.len(),
            self.origins.len(),
            "mask must cover the stored rows"
        );
        let mut matches = Vec::new();
        let mut energy = 0.0;
        let mut searches = 0usize;
        let mut latency: f64 = 0.0;
        let mut tally = FaultTally::default();
        let mut flat_base = 0usize;
        for (array_idx, array) in self.arrays.iter().enumerate() {
            if array.rows() == 0 {
                continue;
            }
            let rows: Vec<usize> = mask
                .ones_in(flat_base..flat_base + array.rows())
                .map(|flat| flat - flat_base)
                .collect();
            if !rows.is_empty() {
                let outcome = array.search_packed_rows_with_faults(
                    read, threshold, mode, &rows, rng, fault_rng, &mut tally,
                );
                energy += outcome.energy_j;
                searches += 1;
                latency = latency.max(array.sense().cam().search_time_s());
                for row in &outcome.rows {
                    if row.matched {
                        matches.push(DeviceMatch {
                            id: RowId {
                                array: array_idx,
                                row: row.row,
                            },
                            origin: self.origins[flat_base + row.row],
                            n_mis: row.n_mis,
                        });
                    }
                }
            }
            flat_base += array.rows();
        }
        DeviceSearchResult {
            matches,
            stats: SearchStats {
                array_searches: searches,
                energy_j: energy,
                latency_s: latency,
                resensed: tally.resensed,
                requarried: tally.requarried,
            },
        }
    }

    /// [`AsmcapDevice::search_packed_batch`] through the fault model:
    /// read `i` draws sensing noise from `rngs[i]` and fault events from
    /// `fault_rngs[i]`, visiting arrays and rows in exactly the order
    /// [`AsmcapDevice::search_packed_with_faults`] would — so
    /// `results[i]` is byte-identical to the solo faulted search.
    ///
    /// # Panics
    ///
    /// Panics if `reads`, `rngs`, and `fault_rngs` lengths differ or any
    /// read width differs from the row width.
    #[must_use]
    pub fn search_packed_batch_with_faults(
        &self,
        reads: &[PackedSeq],
        threshold: usize,
        mode: MatchMode,
        rngs: &mut [Rng],
        fault_rngs: &mut [Rng],
    ) -> Vec<DeviceSearchResult> {
        assert_eq!(
            reads.len(),
            rngs.len(),
            "one sensing RNG stream per batched read"
        );
        assert_eq!(
            reads.len(),
            fault_rngs.len(),
            "one fault RNG stream per batched read"
        );
        let mut results: Vec<DeviceSearchResult> = reads
            .iter()
            .map(|_| DeviceSearchResult {
                matches: Vec::new(),
                stats: SearchStats::default(),
            })
            .collect();
        let mut flat_base = 0usize;
        for (array_idx, array) in self.arrays.iter().enumerate() {
            if array.rows() == 0 {
                continue;
            }
            for (i, read) in reads.iter().enumerate() {
                let mut tally = FaultTally::default();
                let outcome = array.search_packed_with_faults(
                    read,
                    threshold,
                    mode,
                    &mut rngs[i],
                    &mut fault_rngs[i],
                    &mut tally,
                );
                let result = &mut results[i];
                result.stats.energy_j += outcome.energy_j;
                result.stats.array_searches += 1;
                result.stats.latency_s = result
                    .stats
                    .latency_s
                    .max(array.sense().cam().search_time_s());
                result.stats.resensed += tally.resensed;
                result.stats.requarried += tally.requarried;
                for row in &outcome.rows {
                    if row.matched {
                        result.matches.push(DeviceMatch {
                            id: RowId {
                                array: array_idx,
                                row: row.row,
                            },
                            origin: self.origins[flat_base + row.row],
                            n_mis: row.n_mis,
                        });
                    }
                }
            }
            flat_base += array.rows();
        }
        results
    }

    /// [`AsmcapDevice::search_packed_batch_masked`] through the fault
    /// model (see [`AsmcapDevice::search_packed_batch_with_faults`]):
    /// `results[i]` is byte-identical to
    /// `search_packed_masked_with_faults(&reads[i], …, &masks[i], …)` run
    /// on its own.
    ///
    /// # Panics
    ///
    /// Panics if `reads`, `masks`, `rngs`, and `fault_rngs` lengths
    /// differ, any read width differs from the row width, or a mask does
    /// not cover exactly the stored rows.
    #[must_use]
    pub fn search_packed_batch_masked_with_faults(
        &self,
        reads: &[PackedSeq],
        threshold: usize,
        mode: MatchMode,
        masks: &[RowMask],
        rngs: &mut [Rng],
        fault_rngs: &mut [Rng],
    ) -> Vec<DeviceSearchResult> {
        assert_eq!(
            reads.len(),
            rngs.len(),
            "one sensing RNG stream per batched read"
        );
        assert_eq!(
            reads.len(),
            fault_rngs.len(),
            "one fault RNG stream per batched read"
        );
        assert_eq!(reads.len(), masks.len(), "one row mask per batched read");
        for (read, mask) in reads.iter().zip(masks) {
            assert_eq!(read.len(), self.width, "read must match the row width");
            assert_eq!(
                mask.len(),
                self.origins.len(),
                "mask must cover the stored rows"
            );
        }
        let mut results: Vec<DeviceSearchResult> = reads
            .iter()
            .map(|_| DeviceSearchResult {
                matches: Vec::new(),
                stats: SearchStats::default(),
            })
            .collect();
        let mut flat_base = 0usize;
        for (array_idx, array) in self.arrays.iter().enumerate() {
            if array.rows() == 0 {
                continue;
            }
            for (i, (read, mask)) in reads.iter().zip(masks).enumerate() {
                let rows: Vec<usize> = mask
                    .ones_in(flat_base..flat_base + array.rows())
                    .map(|flat| flat - flat_base)
                    .collect();
                if rows.is_empty() {
                    continue;
                }
                let mut tally = FaultTally::default();
                let outcome = array.search_packed_rows_with_faults(
                    read,
                    threshold,
                    mode,
                    &rows,
                    &mut rngs[i],
                    &mut fault_rngs[i],
                    &mut tally,
                );
                let result = &mut results[i];
                result.stats.energy_j += outcome.energy_j;
                result.stats.array_searches += 1;
                result.stats.latency_s = result
                    .stats
                    .latency_s
                    .max(array.sense().cam().search_time_s());
                result.stats.resensed += tally.resensed;
                result.stats.requarried += tally.requarried;
                for row in &outcome.rows {
                    if row.matched {
                        result.matches.push(DeviceMatch {
                            id: RowId {
                                array: array_idx,
                                row: row.row,
                            },
                            origin: self.origins[flat_base + row.row],
                            n_mis: row.n_mis,
                        });
                    }
                }
            }
            flat_base += array.rows();
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_circuit::rng;
    use asmcap_genome::GenomeModel;

    fn small_device() -> AsmcapDevice<ChargeDomainCam> {
        DeviceBuilder::new()
            .arrays(4)
            .rows_per_array(16)
            .row_width(64)
            .build_asmcap()
    }

    #[test]
    fn capacity_accounting() {
        let device = small_device();
        assert_eq!(device.capacity_rows(), 64);
        assert_eq!(device.row_width(), 64);
        assert_eq!(device.reference_capacity(64), 64 * 64);
        assert_eq!(device.reference_capacity(1), 63 + 64);
    }

    #[test]
    fn store_spills_across_arrays() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(40, 64, 32), 3);
        let stored = device.store_reference(&genome, 32).unwrap();
        assert_eq!(stored, 40);
        assert_eq!(device.stored_rows(), 40);
        // 16 rows per array: rows spill into the third array.
        assert_eq!(device.arrays()[0].rows(), 16);
        assert_eq!(device.arrays()[1].rows(), 16);
        assert_eq!(device.arrays()[2].rows(), 8);
    }

    fn offset_len(rows: usize, width: usize, stride: usize) -> usize {
        (rows - 1) * stride + width
    }

    #[test]
    fn store_rejects_overflow_atomically() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(10_000, 4);
        let err = device.store_reference(&genome, 1).unwrap_err();
        assert!(err.required_rows > err.available_rows);
        assert_eq!(device.stored_rows(), 0);
    }

    #[test]
    fn search_locates_origin() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(60, 64, 16), 7);
        device.store_reference(&genome, 16).unwrap();
        let mut rng = rng(11);
        // Read taken exactly at row 20's origin = 20 * 16 = 320.
        let read = genome.window(320..384);
        let result = device.search(read.as_slice(), 0, MatchMode::EdStar, &mut rng);
        assert!(
            result
                .matches
                .iter()
                .any(|m| m.origin == 320 && m.n_mis == 0),
            "expected an exact match at origin 320, got {:?}",
            result.matches
        );
        assert!(result.stats.energy_j > 0.0);
        assert!(result.stats.latency_s > 0.0);
        assert_eq!(result.stats.array_searches, 4);
    }

    #[test]
    fn origin_of_maps_row_ids() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(20, 64, 64), 9);
        device.store_reference(&genome, 64).unwrap();
        assert_eq!(device.origin_of(RowId { array: 0, row: 3 }), Some(192));
        assert_eq!(
            device.origin_of(RowId { array: 1, row: 2 }),
            Some((16 + 2) * 64)
        );
        assert_eq!(device.origin_of(RowId { array: 3, row: 0 }), None);
    }

    #[test]
    fn full_mask_search_is_byte_identical_to_unmasked() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(60, 64, 16), 15);
        device.store_reference(&genome, 16).unwrap();
        let read = asmcap_genome::PackedSeq::from_seq(&genome.window(320..384));
        let mask = RowMask::full(device.stored_rows());
        for t in [0usize, 2, 6] {
            let mut rng_a = rng(21);
            let mut rng_b = rng(21);
            let full = device.search_packed(&read, t, MatchMode::EdStar, &mut rng_a);
            let masked =
                device.search_packed_masked(&read, t, MatchMode::EdStar, &mask, &mut rng_b);
            assert_eq!(full, masked, "full mask diverged at T={t}");
            // A second search from the same streams agrees too, proving the
            // RNGs stayed in lockstep through the first one.
            assert_eq!(
                device.search_packed(&read, t, MatchMode::Hamming, &mut rng_a),
                device.search_packed_masked(&read, t, MatchMode::Hamming, &mask, &mut rng_b),
                "RNG streams fell out of lockstep at T={t}"
            );
        }
    }

    #[test]
    fn masked_search_touches_only_masked_rows() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(60, 64, 16), 16);
        device.store_reference(&genome, 16).unwrap();
        let read = asmcap_genome::PackedSeq::from_seq(&genome.window(320..384));
        // Shortlist exactly the true origin: one row, one array searched.
        let mask = device.mask_for_origins(&[320]);
        assert_eq!(mask.count_ones(), 1);
        let mut noise = rng(22);
        let result = device.search_packed_masked(&read, 1, MatchMode::EdStar, &mask, &mut noise);
        assert_eq!(result.stats.array_searches, 1, "idle arrays must be gated");
        assert!(result
            .matches
            .iter()
            .any(|m| m.origin == 320 && m.n_mis == 0));
        // Energy scales with sensed rows: far below the full search.
        let mut noise = rng(22);
        let full = device.search_packed(&read, 1, MatchMode::EdStar, &mut noise);
        assert!(result.stats.energy_j < full.stats.energy_j / 4.0);

        // An all-clear mask issues no search at all.
        let mut noise = rng(23);
        let none = device.search_packed_masked(
            &read,
            1,
            MatchMode::EdStar,
            &RowMask::new(device.stored_rows()),
            &mut noise,
        );
        assert_eq!(none.stats.array_searches, 0);
        assert_eq!(none.stats.energy_j, 0.0);
        assert!(none.matches.is_empty());
    }

    #[test]
    fn batched_device_search_is_byte_identical_to_sequential() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(60, 64, 16), 41);
        device.store_reference(&genome, 16).unwrap();
        let reads: Vec<asmcap_genome::PackedSeq> = (0..6)
            .map(|i| asmcap_genome::PackedSeq::from_seq(&genome.window(i * 100..i * 100 + 64)))
            .collect();
        for t in [0usize, 2, 6] {
            let mut batch_rngs: Vec<_> = (0..6).map(|i| rng(500 + i)).collect();
            let batched = device.search_packed_batch(&reads, t, MatchMode::EdStar, &mut batch_rngs);
            for (i, read) in reads.iter().enumerate() {
                let mut solo_rng = rng(500 + i as u64);
                let solo = device.search_packed(read, t, MatchMode::EdStar, &mut solo_rng);
                assert_eq!(batched[i], solo, "read {i} diverged at T={t}");
            }
        }
    }

    #[test]
    fn batched_masked_search_is_byte_identical_to_sequential_masked() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(60, 64, 16), 42);
        device.store_reference(&genome, 16).unwrap();
        let reads: Vec<asmcap_genome::PackedSeq> = (0..4)
            .map(|i| asmcap_genome::PackedSeq::from_seq(&genome.window(i * 160..i * 160 + 64)))
            .collect();
        // Per-read masks of very different sizes: an adversarially skewed
        // shortlist (read 0 senses almost everything, read 3 one row).
        let masks: Vec<RowMask> = (0..4)
            .map(|i| {
                let mut mask = RowMask::new(device.stored_rows());
                for row in (0..device.stored_rows()).step_by(i * 8 + 1) {
                    mask.set(row);
                }
                mask
            })
            .collect();
        let mut batch_rngs: Vec<_> = (0..4).map(|i| rng(900 + i)).collect();
        let batched = device.search_packed_batch_masked(
            &reads,
            2,
            MatchMode::EdStar,
            &masks,
            &mut batch_rngs,
        );
        for (i, read) in reads.iter().enumerate() {
            let mut solo_rng = rng(900 + i as u64);
            let solo =
                device.search_packed_masked(read, 2, MatchMode::EdStar, &masks[i], &mut solo_rng);
            assert_eq!(batched[i], solo, "masked read {i} diverged");
        }
        // A batch whose masks are all-set degenerates to the unmasked batch.
        let full: Vec<RowMask> = (0..4)
            .map(|_| RowMask::full(device.stored_rows()))
            .collect();
        let mut a: Vec<_> = (0..4).map(|i| rng(31 + i)).collect();
        let mut b: Vec<_> = (0..4).map(|i| rng(31 + i)).collect();
        assert_eq!(
            device.search_packed_batch_masked(&reads, 2, MatchMode::EdStar, &full, &mut a),
            device.search_packed_batch(&reads, 2, MatchMode::EdStar, &mut b),
        );
    }

    #[test]
    fn mask_for_origins_selects_matching_rows() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(20, 64, 64), 17);
        device.store_reference(&genome, 64).unwrap();
        let mask = device.mask_for_origins(&[0, 192, 640]);
        assert_eq!(mask.count_ones(), 3);
        assert!(mask.get(0) && mask.get(3) && mask.get(10));
        assert!(!mask.get(1));
        // Origins not on the stored grid simply select nothing.
        let empty = device.mask_for_origins(&[1, 65]);
        assert_eq!(empty.count_ones(), 0);
    }

    #[test]
    fn row_mask_ones_in_walks_word_boundaries() {
        let mut mask = RowMask::new(200);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            mask.set(i);
        }
        let all: Vec<usize> = mask.ones_in(0..200).collect();
        assert_eq!(all, vec![0, 1, 63, 64, 65, 127, 128, 199]);
        assert_eq!(mask.ones_in(1..64).collect::<Vec<_>>(), vec![1, 63]);
        assert_eq!(mask.ones_in(64..128).collect::<Vec<_>>(), vec![64, 65, 127]);
        assert_eq!(mask.ones_in(65..65).count(), 0);
        assert_eq!(mask.ones_in(130..199).count(), 0);
        assert_eq!(mask.ones_in(0..500).count(), 8, "range clamps to len");
    }

    #[test]
    fn mask_for_origins_survives_a_second_stored_reference() {
        // Two references stored back to back: the flat origin list restarts
        // at 0, so the sorted binary-search fast path must disable itself
        // and the duplicate origin must select *both* rows.
        let mut device = small_device();
        let g1 = GenomeModel::uniform().generate(offset_len(10, 64, 64), 31);
        let g2 = GenomeModel::uniform().generate(offset_len(10, 64, 64), 32);
        device.store_reference(&g1, 64).unwrap();
        device.store_reference(&g2, 64).unwrap();
        let mask = device.mask_for_origins(&[128]);
        assert_eq!(mask.count_ones(), 2, "both stored copies of origin 128");
        assert!(mask.get(2) && mask.get(12));
    }

    #[test]
    fn device_fault_install_is_observable_and_inactive_plan_clears() {
        use crate::fault::FaultPlan;
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(60, 64, 16), 51);
        device.store_reference(&genome, 16).unwrap();
        assert!(!device.has_faults());
        let plan = FaultPlan {
            seed: 2,
            dead_row_rate: 1.0,
            selftest_trials: 3,
            ..FaultPlan::none()
        };
        device.install_faults(&plan, 6);
        assert!(device.has_faults());
        assert_eq!(device.quarantined_rows(), device.stored_rows());
        let read = asmcap_genome::PackedSeq::from_seq(&genome.window(320..384));
        let result = device.search_packed_with_faults(
            &read,
            6,
            MatchMode::EdStar,
            &mut rng(1),
            &mut plan.read_fault_rng(1),
        );
        assert_eq!(result.stats.requarried, device.stored_rows() as u64);
        // Quarantined rows answer exactly: the true origin matches.
        assert!(result.matches.iter().any(|m| m.origin == 320));
        device.install_faults(&FaultPlan::none(), 6);
        assert!(!device.has_faults());
        assert_eq!(device.quarantined_rows(), 0);
    }

    #[test]
    fn faultless_faulted_search_is_byte_identical_to_plain() {
        use crate::fault::FaultPlan;
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(60, 64, 16), 52);
        device.store_reference(&genome, 16).unwrap();
        let read = asmcap_genome::PackedSeq::from_seq(&genome.window(160..224));
        let plan = FaultPlan::none();
        let mut rng_a = rng(61);
        let mut rng_b = rng(61);
        let plain = device.search_packed(&read, 4, MatchMode::EdStar, &mut rng_a);
        let faulted = device.search_packed_with_faults(
            &read,
            4,
            MatchMode::EdStar,
            &mut rng_b,
            &mut plan.read_fault_rng(61),
        );
        assert_eq!(plain, faulted);
        assert_eq!(faulted.stats.resensed, 0);
        assert_eq!(faulted.stats.requarried, 0);
    }

    #[test]
    fn faulted_batch_is_byte_identical_to_solo_faulted() {
        use crate::fault::FaultPlan;
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(60, 64, 16), 53);
        device.store_reference(&genome, 16).unwrap();
        let plan = FaultPlan::paper_corner(17);
        device.install_faults(&plan, 4);
        let reads: Vec<asmcap_genome::PackedSeq> = (0..5)
            .map(|i| asmcap_genome::PackedSeq::from_seq(&genome.window(i * 120..i * 120 + 64)))
            .collect();
        let mut rngs: Vec<_> = (0..5).map(|i| rng(700 + i)).collect();
        let mut fault_rngs: Vec<_> = (0..5).map(|i| plan.read_fault_rng(700 + i)).collect();
        let batched = device.search_packed_batch_with_faults(
            &reads,
            4,
            MatchMode::EdStar,
            &mut rngs,
            &mut fault_rngs,
        );
        for (i, read) in reads.iter().enumerate() {
            let solo = device.search_packed_with_faults(
                read,
                4,
                MatchMode::EdStar,
                &mut rng(700 + i as u64),
                &mut plan.read_fault_rng(700 + i as u64),
            );
            assert_eq!(batched[i], solo, "faulted read {i} diverged");
        }
        // Masked with a full mask degenerates to the unmasked faulted walk.
        let mask = RowMask::full(device.stored_rows());
        for (i, read) in reads.iter().enumerate() {
            let masked = device.search_packed_masked_with_faults(
                read,
                4,
                MatchMode::EdStar,
                &mask,
                &mut rng(700 + i as u64),
                &mut plan.read_fault_rng(700 + i as u64),
            );
            assert_eq!(batched[i], masked, "masked faulted read {i} diverged");
        }
        let masks: Vec<RowMask> = (0..5)
            .map(|_| RowMask::full(device.stored_rows()))
            .collect();
        let mut rngs2: Vec<_> = (0..5).map(|i| rng(700 + i)).collect();
        let mut fault_rngs2: Vec<_> = (0..5).map(|i| plan.read_fault_rng(700 + i)).collect();
        assert_eq!(
            device.search_packed_batch_masked_with_faults(
                &reads,
                4,
                MatchMode::EdStar,
                &masks,
                &mut rngs2,
                &mut fault_rngs2
            ),
            batched,
        );
    }

    #[test]
    fn edam_device_builds_and_searches() {
        let mut device = DeviceBuilder::new()
            .arrays(2)
            .rows_per_array(8)
            .row_width(32)
            .build_edam();
        let genome = GenomeModel::uniform().generate(offset_len(10, 32, 32), 5);
        device.store_reference(&genome, 32).unwrap();
        let mut rng = rng(13);
        let read = genome.window(0..32);
        let result = device.search(read.as_slice(), 1, MatchMode::EdStar, &mut rng);
        assert!(result.matches.iter().any(|m| m.origin == 0));
    }
}
