//! The top-level ASMCap device (paper Fig. 4a).
//!
//! A device is a bank of CAM arrays (the paper evaluates 512 arrays of
//! 256×256 = 64 Mb) fed by a global buffer over an H-tree. A reference
//! genome is segmented into row-sized windows at a configurable stride and
//! written across the arrays; one search operation broadcasts a read to
//! every array and senses all matchlines in parallel.

use crate::array::{CamArray, MatchMode, SearchEnergy};
use asmcap_circuit::{ChargeDomainCam, CurrentDomainCam, MlCam, Rng};
use asmcap_genome::{Base, DnaSeq, PackedRef, PackedSeq, PackedWords as _};
use std::fmt;

/// Location of one stored row inside the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId {
    /// Array index within the device.
    pub array: usize,
    /// Row index within the array.
    pub row: usize,
}

/// One matching row reported by a device search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceMatch {
    /// Which physical row matched.
    pub id: RowId,
    /// Genome position the row's segment was taken from.
    pub origin: usize,
    /// The row's noiseless mismatch count.
    pub n_mis: usize,
}

/// Timing/energy accounting of one device search.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SearchStats {
    /// Number of array-level search operations issued (all in parallel).
    pub array_searches: usize,
    /// Energy across all arrays, in joules.
    pub energy_j: f64,
    /// Wall-clock latency (arrays operate in parallel), in seconds.
    pub latency_s: f64,
}

/// Result of searching one read against the whole device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSearchResult {
    /// All rows whose sense amplifier fired, with their origins.
    pub matches: Vec<DeviceMatch>,
    /// Accounting for this search.
    pub stats: SearchStats,
}

/// Error returned when a reference does not fit the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// Rows the segmentation requires.
    pub required_rows: usize,
    /// Rows the device provides.
    pub available_rows: usize,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reference needs {} rows but the device has {}",
            self.required_rows, self.available_rows
        )
    }
}

impl std::error::Error for CapacityError {}

/// Builder for [`AsmcapDevice`] (see paper §V-A for the evaluated shape).
///
/// # Examples
///
/// ```
/// use asmcap_arch::DeviceBuilder;
/// let device = DeviceBuilder::new()
///     .arrays(4)
///     .rows_per_array(64)
///     .row_width(128)
///     .build_asmcap();
/// assert_eq!(device.capacity_rows(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    arrays: usize,
    rows: usize,
    width: usize,
}

impl DeviceBuilder {
    /// Starts from the paper's configuration: 512 arrays of 256×256.
    #[must_use]
    pub fn new() -> Self {
        Self {
            arrays: asmcap_circuit::params::ARRAY_COUNT,
            rows: asmcap_circuit::params::ARRAY_ROWS,
            width: asmcap_circuit::params::ARRAY_COLS,
        }
    }

    /// Sets the number of arrays.
    #[must_use]
    pub fn arrays(mut self, arrays: usize) -> Self {
        self.arrays = arrays;
        self
    }

    /// Sets the rows per array (`M`).
    #[must_use]
    pub fn rows_per_array(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Sets the row width (`N`), which must equal the read length.
    #[must_use]
    pub fn row_width(mut self, width: usize) -> Self {
        self.width = width;
        self
    }

    /// Builds a charge-domain (ASMCap) device.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn build_asmcap(&self) -> AsmcapDevice<ChargeDomainCam> {
        AsmcapDevice::from_arrays(
            (0..self.arrays)
                .map(|_| CamArray::asmcap(self.rows, self.width))
                .collect(),
        )
    }

    /// Builds a current-domain (EDAM) device for baseline comparison.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn build_edam(&self) -> AsmcapDevice<CurrentDomainCam> {
        AsmcapDevice::from_arrays(
            (0..self.arrays)
                .map(|_| CamArray::edam(self.rows, self.width))
                .collect(),
        )
    }
}

impl Default for DeviceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// A full multi-array device over sensing model `M`.
#[derive(Debug, Clone)]
pub struct AsmcapDevice<M> {
    arrays: Vec<CamArray<M>>,
    origins: Vec<usize>, // flat, in storage order
    width: usize,
}

impl<M: MlCam + SearchEnergy> AsmcapDevice<M> {
    /// Wraps pre-built arrays (all must share one width).
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is empty or widths disagree.
    #[must_use]
    pub fn from_arrays(arrays: Vec<CamArray<M>>) -> Self {
        assert!(!arrays.is_empty(), "a device needs at least one array");
        let width = arrays[0].width();
        assert!(
            arrays.iter().all(|a| a.width() == width),
            "all arrays must share one row width"
        );
        Self {
            arrays,
            origins: Vec::new(),
            width,
        }
    }

    /// Row width (= read length) in bases.
    #[must_use]
    pub fn row_width(&self) -> usize {
        self.width
    }

    /// Total row capacity across all arrays.
    #[must_use]
    pub fn capacity_rows(&self) -> usize {
        self.arrays.iter().map(CamArray::max_rows).sum()
    }

    /// Occupied rows.
    #[must_use]
    pub fn stored_rows(&self) -> usize {
        self.origins.len()
    }

    /// Reference capacity in bases at stride `stride`.
    #[must_use]
    pub fn reference_capacity(&self, stride: usize) -> usize {
        self.capacity_rows().saturating_sub(1) * stride + self.width
    }

    /// The arrays, for inspection.
    #[must_use]
    pub fn arrays(&self) -> &[CamArray<M>] {
        &self.arrays
    }

    /// Segments `reference` into row-width windows every `stride` bases and
    /// stores them across the arrays in order.
    ///
    /// Stride 1 stores every alignment offset (needed to map reads sampled
    /// at arbitrary positions); stride = row width maximises the unique
    /// reference a device holds (the paper's 64 Mb figure).
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the segmentation needs more rows than
    /// the device has; nothing is stored in that case.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or the reference is shorter than one row.
    pub fn store_reference(
        &mut self,
        reference: &DnaSeq,
        stride: usize,
    ) -> Result<usize, CapacityError> {
        self.store_packed_reference(&PackedRef::new(reference), stride)
    }

    /// [`AsmcapDevice::store_reference`] over an already packed reference:
    /// each row is a word-aligned extraction from the single packing, never
    /// an unpack/repack round trip.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the segmentation needs more rows than
    /// the device has; nothing is stored in that case.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or the reference is shorter than one row.
    pub fn store_packed_reference(
        &mut self,
        reference: &PackedRef,
        stride: usize,
    ) -> Result<usize, CapacityError> {
        assert!(stride > 0, "stride must be positive");
        assert!(
            reference.len() >= self.width,
            "reference shorter than one row"
        );
        let starts: Vec<usize> = (0..=reference.len() - self.width).step_by(stride).collect();
        let free: usize = self.capacity_rows() - self.stored_rows();
        if starts.len() > free {
            return Err(CapacityError {
                required_rows: starts.len(),
                available_rows: free,
            });
        }
        for &start in &starts {
            let segment = reference.segment(start, self.width).to_packed();
            let array = self
                .arrays
                .iter_mut()
                .find(|a| !a.is_full())
                .expect("capacity checked above");
            array
                .store_row_packed(segment)
                .expect("width and capacity checked");
            self.origins.push(start);
        }
        Ok(starts.len())
    }

    /// The genome origin of a stored row.
    #[must_use]
    pub fn origin_of(&self, id: RowId) -> Option<usize> {
        let flat: usize = self
            .arrays
            .iter()
            .take(id.array)
            .map(CamArray::rows)
            .sum::<usize>()
            + id.row;
        self.origins.get(flat).copied()
    }

    /// Broadcasts `read` to every array and senses all matchlines at
    /// threshold `T` in `mode`. One search operation in hardware.
    ///
    /// Packs the read once and forwards to [`AsmcapDevice::search_packed`].
    ///
    /// # Panics
    ///
    /// Panics if the read width differs from the row width.
    #[must_use]
    pub fn search(
        &self,
        read: &[Base],
        threshold: usize,
        mode: MatchMode,
        rng: &mut Rng,
    ) -> DeviceSearchResult {
        assert_eq!(read.len(), self.width, "read must match the row width");
        self.search_packed(&PackedSeq::from_bases(read), threshold, mode, rng)
    }

    /// [`AsmcapDevice::search`] over an already packed read: the global
    /// buffer latches the packed word stream once and every array runs its
    /// digital pre-pass + analog sense split on it.
    ///
    /// # Panics
    ///
    /// Panics if the read width differs from the row width.
    #[must_use]
    pub fn search_packed(
        &self,
        read: &PackedSeq,
        threshold: usize,
        mode: MatchMode,
        rng: &mut Rng,
    ) -> DeviceSearchResult {
        assert_eq!(read.len(), self.width, "read must match the row width");
        let mut matches = Vec::new();
        let mut energy = 0.0;
        let mut searches = 0usize;
        let mut latency: f64 = 0.0;
        let mut flat_base = 0usize;
        for (array_idx, array) in self.arrays.iter().enumerate() {
            if array.rows() == 0 {
                continue;
            }
            let outcome = array.search_packed(read, threshold, mode, rng);
            energy += outcome.energy_j;
            searches += 1;
            latency = latency.max(array.sense().cam().search_time_s());
            for row in &outcome.rows {
                if row.matched {
                    let id = RowId {
                        array: array_idx,
                        row: row.row,
                    };
                    matches.push(DeviceMatch {
                        id,
                        origin: self.origins[flat_base + row.row],
                        n_mis: row.n_mis,
                    });
                }
            }
            flat_base += array.rows();
        }
        DeviceSearchResult {
            matches,
            stats: SearchStats {
                array_searches: searches,
                energy_j: energy,
                latency_s: latency,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_circuit::rng;
    use asmcap_genome::GenomeModel;

    fn small_device() -> AsmcapDevice<ChargeDomainCam> {
        DeviceBuilder::new()
            .arrays(4)
            .rows_per_array(16)
            .row_width(64)
            .build_asmcap()
    }

    #[test]
    fn capacity_accounting() {
        let device = small_device();
        assert_eq!(device.capacity_rows(), 64);
        assert_eq!(device.row_width(), 64);
        assert_eq!(device.reference_capacity(64), 64 * 64);
        assert_eq!(device.reference_capacity(1), 63 + 64);
    }

    #[test]
    fn store_spills_across_arrays() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(40, 64, 32), 3);
        let stored = device.store_reference(&genome, 32).unwrap();
        assert_eq!(stored, 40);
        assert_eq!(device.stored_rows(), 40);
        // 16 rows per array: rows spill into the third array.
        assert_eq!(device.arrays()[0].rows(), 16);
        assert_eq!(device.arrays()[1].rows(), 16);
        assert_eq!(device.arrays()[2].rows(), 8);
    }

    fn offset_len(rows: usize, width: usize, stride: usize) -> usize {
        (rows - 1) * stride + width
    }

    #[test]
    fn store_rejects_overflow_atomically() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(10_000, 4);
        let err = device.store_reference(&genome, 1).unwrap_err();
        assert!(err.required_rows > err.available_rows);
        assert_eq!(device.stored_rows(), 0);
    }

    #[test]
    fn search_locates_origin() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(60, 64, 16), 7);
        device.store_reference(&genome, 16).unwrap();
        let mut rng = rng(11);
        // Read taken exactly at row 20's origin = 20 * 16 = 320.
        let read = genome.window(320..384);
        let result = device.search(read.as_slice(), 0, MatchMode::EdStar, &mut rng);
        assert!(
            result
                .matches
                .iter()
                .any(|m| m.origin == 320 && m.n_mis == 0),
            "expected an exact match at origin 320, got {:?}",
            result.matches
        );
        assert!(result.stats.energy_j > 0.0);
        assert!(result.stats.latency_s > 0.0);
        assert_eq!(result.stats.array_searches, 4);
    }

    #[test]
    fn origin_of_maps_row_ids() {
        let mut device = small_device();
        let genome = GenomeModel::uniform().generate(offset_len(20, 64, 64), 9);
        device.store_reference(&genome, 64).unwrap();
        assert_eq!(device.origin_of(RowId { array: 0, row: 3 }), Some(192));
        assert_eq!(
            device.origin_of(RowId { array: 1, row: 2 }),
            Some((16 + 2) * 64)
        );
        assert_eq!(device.origin_of(RowId { array: 3, row: 0 }), None);
    }

    #[test]
    fn edam_device_builds_and_searches() {
        let mut device = DeviceBuilder::new()
            .arrays(2)
            .rows_per_array(8)
            .row_width(32)
            .build_edam();
        let genome = GenomeModel::uniform().generate(offset_len(10, 32, 32), 5);
        device.store_reference(&genome, 32).unwrap();
        let mut rng = rng(13);
        let read = genome.window(0..32);
        let result = device.search(read.as_slice(), 1, MatchMode::EdStar, &mut rng);
        assert!(result.matches.iter().any(|m| m.origin == 0));
    }
}
