//! The device controller: instruction sequencing and cycle accounting.
//!
//! The controller receives instructions from the host CPU (paper Fig. 4a)
//! and drives the shift registers, mode MUX, and array searches. Its cycle
//! model follows the paper's overhead analysis: every search — original or
//! rotated — costs one cycle (§IV-B: "the rotation-and-comparison process
//! also induces N_R more cycles"), the HD-mode search of HDAC costs one
//! extra cycle (§IV-A), and rotations/mode switches themselves are free.

use crate::array::{MatchMode, SearchEnergy};
use crate::registers::{RotateDirection, ShiftRegisterFile};
use crate::top::{AsmcapDevice, DeviceSearchResult};
use crate::trace::{Trace, TraceEvent};
use asmcap_circuit::{MlCam, Rng};
use asmcap_genome::DnaSeq;

/// One controller instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// Fetch a read from the global buffer into the shift registers.
    LatchRead(DnaSeq),
    /// Search the latched (possibly rotated) read against all arrays.
    Search {
        /// Threshold `T` encoded on `V_ref`.
        threshold: usize,
        /// Distance mode (the shared MUX signal `S`).
        mode: MatchMode,
    },
    /// Rotate the latched read one base (TASR path).
    Rotate(RotateDirection),
    /// Restore the originally latched read.
    ReloadRead,
}

/// Accumulated execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunStats {
    /// Cycles consumed (1 per latch, 1 per search).
    pub cycles: u64,
    /// Search operations issued.
    pub searches: u64,
    /// Reads latched.
    pub latches: u64,
    /// Rotation steps performed.
    pub rotations: u64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Total latency in seconds (cycles × search time).
    pub latency_s: f64,
}

/// The instruction-driven controller wrapping a device.
///
/// # Examples
///
/// ```
/// use asmcap_arch::{Controller, DeviceBuilder, Instruction, MatchMode};
/// use asmcap_genome::GenomeModel;
///
/// let mut device = DeviceBuilder::new()
///     .arrays(1).rows_per_array(4).row_width(32)
///     .build_asmcap();
/// let genome = GenomeModel::uniform().generate(4 * 32, 1);
/// device.store_reference(&genome, 32)?;
/// let mut controller = Controller::new(device, 7);
/// let read = genome.window(32..64);
/// let results = controller.run(&[
///     Instruction::LatchRead(read),
///     Instruction::Search { threshold: 0, mode: MatchMode::EdStar },
/// ]);
/// assert_eq!(results.len(), 1);
/// assert_eq!(controller.stats().cycles, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Controller<M> {
    device: AsmcapDevice<M>,
    registers: ShiftRegisterFile,
    original: DnaSeq,
    stats: RunStats,
    rng: Rng,
    trace: Trace,
}

impl<M: MlCam + SearchEnergy> Controller<M> {
    /// Wraps a device; `seed` makes every sensing decision reproducible.
    #[must_use]
    pub fn new(device: AsmcapDevice<M>, seed: u64) -> Self {
        Self {
            device,
            registers: ShiftRegisterFile::load(&[]),
            original: DnaSeq::new(),
            stats: RunStats::default(),
            rng: asmcap_circuit::rng(seed),
            trace: Trace::new(),
        }
    }

    /// Enables/disables instruction tracing (disabled by default).
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// The recorded instruction trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The wrapped device.
    #[must_use]
    pub fn device(&self) -> &AsmcapDevice<M> {
        &self.device
    }

    /// Mutable access to the wrapped device (e.g. to store references).
    pub fn device_mut(&mut self) -> &mut AsmcapDevice<M> {
        &mut self.device
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::default();
    }

    /// Executes instructions in order, returning every search's result.
    ///
    /// # Panics
    ///
    /// Panics if a search is issued before any read was latched, or on the
    /// width/mode violations documented on [`AsmcapDevice::search`].
    pub fn run(&mut self, instructions: &[Instruction]) -> Vec<DeviceSearchResult> {
        let mut results = Vec::new();
        for instruction in instructions {
            match instruction {
                Instruction::LatchRead(read) => {
                    self.original = read.clone();
                    self.registers.reload(read.as_slice());
                    self.stats.latches += 1;
                    self.stats.cycles += 1;
                    self.trace.record(TraceEvent::Latch {
                        cycle: self.stats.cycles,
                        read_len: read.len(),
                    });
                }
                Instruction::Search { threshold, mode } => {
                    assert!(
                        !self.registers.contents().is_empty(),
                        "search issued before any read was latched"
                    );
                    let result = self.device.search(
                        self.registers.contents(),
                        *threshold,
                        *mode,
                        &mut self.rng,
                    );
                    self.stats.searches += 1;
                    self.stats.cycles += 1;
                    self.stats.energy_j += result.stats.energy_j;
                    self.stats.latency_s += result.stats.latency_s;
                    self.trace.record(TraceEvent::Search {
                        cycle: self.stats.cycles,
                        threshold: *threshold,
                        mode: *mode,
                        matches: result.matches.len(),
                        energy_j: result.stats.energy_j,
                    });
                    results.push(result);
                }
                Instruction::Rotate(direction) => {
                    self.registers.set_enable(true);
                    self.registers.rotate(*direction);
                    self.registers.set_enable(false);
                    self.stats.rotations += 1;
                    self.trace.record(TraceEvent::Rotate {
                        cycle: self.stats.cycles,
                        direction: *direction,
                    });
                }
                Instruction::ReloadRead => {
                    let original = self.original.clone();
                    self.registers.reload(original.as_slice());
                    self.trace.record(TraceEvent::Reload {
                        cycle: self.stats.cycles,
                    });
                }
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::top::DeviceBuilder;
    use asmcap_genome::GenomeModel;

    fn setup() -> (Controller<asmcap_circuit::ChargeDomainCam>, DnaSeq) {
        let mut device = DeviceBuilder::new()
            .arrays(2)
            .rows_per_array(8)
            .row_width(32)
            .build_asmcap();
        let genome = GenomeModel::uniform().generate(16 * 32, 21);
        device.store_reference(&genome, 32).unwrap();
        (Controller::new(device, 99), genome)
    }

    #[test]
    fn cycle_accounting_matches_paper_model() {
        let (mut controller, genome) = setup();
        let read = genome.window(64..96);
        // TASR-style: 1 latch + original search + 2 rotated searches.
        controller.run(&[
            Instruction::LatchRead(read),
            Instruction::Search {
                threshold: 2,
                mode: MatchMode::EdStar,
            },
            Instruction::Rotate(RotateDirection::Right),
            Instruction::Search {
                threshold: 2,
                mode: MatchMode::EdStar,
            },
            Instruction::ReloadRead,
            Instruction::Rotate(RotateDirection::Left),
            Instruction::Search {
                threshold: 2,
                mode: MatchMode::EdStar,
            },
        ]);
        let stats = controller.stats();
        assert_eq!(stats.cycles, 4); // 1 latch + 3 searches
        assert_eq!(stats.searches, 3);
        assert_eq!(stats.rotations, 2);
        assert!(stats.energy_j > 0.0);
    }

    #[test]
    fn rotation_changes_search_input() {
        let (mut controller, genome) = setup();
        let read = genome.window(0..32);
        let results = controller.run(&[
            Instruction::LatchRead(read.clone()),
            Instruction::Search {
                threshold: 0,
                mode: MatchMode::EdStar,
            },
            Instruction::Rotate(RotateDirection::Left),
            Instruction::Search {
                threshold: 0,
                mode: MatchMode::EdStar,
            },
            Instruction::ReloadRead,
            Instruction::Search {
                threshold: 0,
                mode: MatchMode::EdStar,
            },
        ]);
        // Original read matches row 0 exactly; the rotated read does not.
        assert!(results[0].matches.iter().any(|m| m.origin == 0));
        assert!(results[1].matches.iter().all(|m| m.origin != 0));
        assert!(results[2].matches.iter().any(|m| m.origin == 0));
    }

    #[test]
    #[should_panic(expected = "before any read")]
    fn search_without_latch_panics() {
        let (mut controller, _) = setup();
        let _ = controller.run(&[Instruction::Search {
            threshold: 1,
            mode: MatchMode::EdStar,
        }]);
    }

    #[test]
    fn trace_records_instruction_stream() {
        let (mut controller, genome) = setup();
        controller.set_trace_enabled(true);
        let read = genome.window(0..32);
        controller.run(&[
            Instruction::LatchRead(read),
            Instruction::Search {
                threshold: 1,
                mode: MatchMode::EdStar,
            },
            Instruction::Rotate(RotateDirection::Right),
            Instruction::Search {
                threshold: 1,
                mode: MatchMode::EdStar,
            },
            Instruction::ReloadRead,
        ]);
        let events = controller.trace().events();
        assert_eq!(events.len(), 5);
        assert!(matches!(
            events[0],
            crate::trace::TraceEvent::Latch { read_len: 32, .. }
        ));
        assert!(matches!(
            events[1],
            crate::trace::TraceEvent::Search { threshold: 1, .. }
        ));
        let rendered = controller.trace().to_string();
        assert!(rendered.contains("rotate right"));
        assert!(rendered.contains("reload read"));
    }

    #[test]
    fn reset_clears_stats() {
        let (mut controller, genome) = setup();
        controller.run(&[Instruction::LatchRead(genome.window(0..32))]);
        assert!(controller.stats().cycles > 0);
        controller.reset_stats();
        assert_eq!(controller.stats(), RunStats::default());
    }
}
