//! One ASMCap cell (paper Fig. 4c).
//!
//! A cell stores one base in two 6T SRAM cells and compares it against the
//! co-located read base and its two neighbors, which arrive on the six
//! searchline pairs `SL_{2i−3} … SL_{2i+2}`. Two NMOS multiplexers driven by
//! the shared select signal `S` choose between the ED\* output
//! (`O = O_L + O_C + O_R`) and the HD output (`O = O_C`) — the hardware hook
//! of the HDAC strategy.

use crate::array::MatchMode;
use asmcap_genome::Base;
use asmcap_metrics::CellMatch;

/// Functional model of a single ASMCap cell.
///
/// # Examples
///
/// ```
/// use asmcap_arch::{AsmcapCell, MatchMode};
/// use asmcap_genome::Base;
///
/// let cell = AsmcapCell::new(Base::C);
/// let partial = cell.compare(Some(Base::C), Base::T, None);
/// assert!(partial.left && !partial.center);
/// // ED* mode: any partial match suffices; HD mode: only the centre counts.
/// assert!(cell.output(partial, MatchMode::EdStar));
/// assert!(!cell.output(partial, MatchMode::Hamming));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsmcapCell {
    stored: Base,
}

impl AsmcapCell {
    /// Creates a cell holding `stored` (a write through the WL/BL path).
    #[must_use]
    pub fn new(stored: Base) -> Self {
        Self { stored }
    }

    /// The stored base (the SRAM state).
    #[must_use]
    pub fn stored(&self) -> Base {
        self.stored
    }

    /// Rewrites the SRAM state.
    pub fn write(&mut self, base: Base) {
        self.stored = base;
    }

    /// The comparison logic: partial matching results against the three
    /// searchline windows. `None` models the missing searchlines at the row
    /// boundary (cells 0 and N−1 physically lack one neighbor pair).
    #[must_use]
    pub fn compare(&self, left: Option<Base>, center: Base, right: Option<Base>) -> CellMatch {
        CellMatch {
            left: left == Some(self.stored),
            center: center == self.stored,
            right: right == Some(self.stored),
        }
    }

    /// The MUX stage: reduces partial results to the cell's matchline
    /// contribution. Returns `true` for *match* (the capacitor bottom plate
    /// stays at GND; a mismatch drives it to `V_DD`).
    #[must_use]
    pub fn output(&self, partial: CellMatch, mode: MatchMode) -> bool {
        match mode {
            MatchMode::EdStar => partial.any(),
            MatchMode::Hamming => partial.center,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_and_rewrites() {
        let mut cell = AsmcapCell::new(Base::A);
        assert_eq!(cell.stored(), Base::A);
        cell.write(Base::T);
        assert_eq!(cell.stored(), Base::T);
    }

    #[test]
    fn compare_reports_each_window() {
        let cell = AsmcapCell::new(Base::G);
        let p = cell.compare(Some(Base::G), Base::G, Some(Base::G));
        assert!(p.left && p.center && p.right);
        let p = cell.compare(Some(Base::A), Base::C, Some(Base::T));
        assert!(!p.any());
    }

    #[test]
    fn boundary_windows_never_match() {
        let cell = AsmcapCell::new(Base::A);
        let p = cell.compare(None, Base::C, Some(Base::A));
        assert!(!p.left && p.right);
        let p = cell.compare(Some(Base::A), Base::C, None);
        assert!(p.left && !p.right);
    }

    #[test]
    fn mode_mux_selects_output() {
        let cell = AsmcapCell::new(Base::C);
        // Neighbour-only match.
        let p = cell.compare(Some(Base::C), Base::A, None);
        assert!(cell.output(p, MatchMode::EdStar));
        assert!(!cell.output(p, MatchMode::Hamming));
        // Centre match satisfies both modes.
        let p = cell.compare(None, Base::C, None);
        assert!(cell.output(p, MatchMode::EdStar));
        assert!(cell.output(p, MatchMode::Hamming));
    }
}
