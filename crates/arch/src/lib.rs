//! Architecture simulator for the ASMCap reproduction (paper Fig. 4).
//!
//! Bottom-up, the simulated hierarchy is:
//!
//! * [`cell`] — one ASMCap cell: two 6T SRAM cells holding a base, the
//!   three-way comparison logic (`O_L`/`O_C`/`O_R`), and the HDAC mode MUX;
//! * [`driver`] — the searchline buffer/driver that turns a read into the
//!   per-cell three-base windows;
//! * [`registers`] — the shift registers with enable signal that rotate the
//!   read for the TASR strategy;
//! * [`mod@array`] — an `M×N` CAM array with matchline sensing through a
//!   pluggable [`asmcap_circuit::MlCam`] model (charge-domain for ASMCap,
//!   current-domain for EDAM) and sense amplifiers;
//! * [`fault`] — seeded device fault injection ([`FaultPlan`]): stuck
//!   cells, dead rows, capacitance drift, transient sense flips, plus the
//!   re-sense voting and row-quarantine mitigations;
//! * [`controller`] — the instruction sequencer with cycle accounting;
//! * [`top`] — the full device: 512 arrays behind a global buffer and
//!   H-tree, storing a segmented reference and searching reads against all
//!   rows in one operation.
//!
//! The functional matching results are bit-exact with
//! [`asmcap_metrics::ed_star`]; an integration test pins that equivalence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod cell;
pub mod controller;
pub mod driver;
pub mod fault;
pub mod registers;
pub mod top;
pub mod trace;

pub use array::{CamArray, MatchMode, RowSearchOutcome, SearchOutcome};
pub use cell::AsmcapCell;
pub use controller::{Controller, Instruction, RunStats};
pub use driver::SlDriver;
pub use fault::{ArrayFaults, FaultPlan, FaultTally, RowFaults, StuckCell};
pub use registers::{RotateDirection, ShiftRegisterFile};
pub use top::{
    AsmcapDevice, CapacityError, DeviceBuilder, DeviceMatch, DeviceSearchResult, RowId, RowMask,
    SearchStats,
};
pub use trace::{Trace, TraceEvent};
