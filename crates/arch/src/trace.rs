//! Execution tracing for the controller.
//!
//! A [`Trace`] records every instruction the controller executes, with its
//! cycle stamp and outcome summary — the observability hook for debugging
//! strategy schedules and for the waveform-style views hardware people
//! expect from a simulator. Disabled (and free) by default.

use crate::array::MatchMode;
use crate::registers::RotateDirection;
use std::fmt;

/// One traced controller event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A read was latched from the global buffer.
    Latch {
        /// Cycle at which the latch completed.
        cycle: u64,
        /// Read length in bases.
        read_len: usize,
    },
    /// A device-wide search was issued.
    Search {
        /// Cycle at which the search completed.
        cycle: u64,
        /// Threshold `T` on `V_ref`.
        threshold: usize,
        /// Distance mode (MUX signal `S`).
        mode: MatchMode,
        /// Number of rows whose SA fired.
        matches: usize,
        /// Energy of this search, joules.
        energy_j: f64,
    },
    /// The shift registers rotated one base.
    Rotate {
        /// Cycle stamp (rotations are folded into the next search cycle).
        cycle: u64,
        /// Rotation direction.
        direction: RotateDirection,
    },
    /// The original read was re-latched.
    Reload {
        /// Cycle stamp.
        cycle: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Latch { cycle, read_len } => {
                write!(f, "[{cycle:>6}] latch {read_len} bases")
            }
            TraceEvent::Search {
                cycle,
                threshold,
                mode,
                matches,
                energy_j,
            } => write!(
                f,
                "[{cycle:>6}] search {mode} T={threshold}: {matches} match(es), {:.2} pJ",
                energy_j * 1e12
            ),
            TraceEvent::Rotate { cycle, direction } => {
                write!(f, "[{cycle:>6}] rotate {direction}")
            }
            TraceEvent::Reload { cycle } => write!(f, "[{cycle:>6}] reload read"),
        }
    }
}

/// An instruction trace. Created disabled; enabling starts recording.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A disabled trace (records nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts/stops recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled.
    pub fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for event in &self.events {
            writeln!(f, "{event}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace = Trace::new();
        trace.record(TraceEvent::Reload { cycle: 1 });
        assert!(trace.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_and_renders() {
        let mut trace = Trace::new();
        trace.set_enabled(true);
        trace.record(TraceEvent::Latch {
            cycle: 1,
            read_len: 256,
        });
        trace.record(TraceEvent::Search {
            cycle: 2,
            threshold: 8,
            mode: MatchMode::EdStar,
            matches: 3,
            energy_j: 5e-12,
        });
        assert_eq!(trace.events().len(), 2);
        let rendered = trace.to_string();
        assert!(rendered.contains("latch 256 bases"));
        assert!(rendered.contains("search ED* T=8: 3 match(es)"));
        trace.clear();
        assert!(trace.events().is_empty());
    }
}
