//! Shift registers with enable signal (paper Fig. 4b).
//!
//! The register file holds the incoming read and can rotate it left or
//! right base-by-base while the enable signal is asserted — the hardware
//! that implements the TASR strategy's rotated searches without re-fetching
//! the read from the global buffer.

use asmcap_genome::Base;
use std::fmt;

/// Direction of one base-by-base rotation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RotateDirection {
    /// Towards lower indices (base 1 moves to position 0).
    Left,
    /// Towards higher indices (base 0 moves to position 1).
    Right,
}

impl fmt::Display for RotateDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RotateDirection::Left => write!(f, "left"),
            RotateDirection::Right => write!(f, "right"),
        }
    }
}

/// The read-holding shift register file.
///
/// # Examples
///
/// ```
/// use asmcap_arch::ShiftRegisterFile;
/// use asmcap_arch::registers::RotateDirection;
/// use asmcap_genome::DnaSeq;
///
/// let read: DnaSeq = "ACGT".parse()?;
/// let mut regs = ShiftRegisterFile::load(read.as_slice());
/// regs.set_enable(true);
/// regs.rotate(RotateDirection::Left);
/// assert_eq!(regs.contents(), "CGTA".parse::<DnaSeq>()?.as_slice());
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftRegisterFile {
    bits: Vec<Base>,
    enabled: bool,
    rotations: usize,
}

impl ShiftRegisterFile {
    /// Loads a read into the registers (enable deasserted).
    #[must_use]
    pub fn load(read: &[Base]) -> Self {
        Self {
            bits: read.to_vec(),
            enabled: false,
            rotations: 0,
        }
    }

    /// Asserts or deasserts the enable signal.
    pub fn set_enable(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the enable signal is asserted.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current register contents.
    #[must_use]
    pub fn contents(&self) -> &[Base] {
        &self.bits
    }

    /// Number of rotation steps performed since load.
    #[must_use]
    pub fn rotations(&self) -> usize {
        self.rotations
    }

    /// Rotates one base in `direction`. A rotation with enable deasserted is
    /// a no-op, exactly like the hardware.
    pub fn rotate(&mut self, direction: RotateDirection) {
        if !self.enabled || self.bits.is_empty() {
            return;
        }
        match direction {
            RotateDirection::Left => self.bits.rotate_left(1),
            RotateDirection::Right => self.bits.rotate_right(1),
        }
        self.rotations += 1;
    }

    /// Reloads the original read (models re-latching from the buffer).
    pub fn reload(&mut self, read: &[Base]) {
        self.bits.clear();
        self.bits.extend_from_slice(read);
        self.rotations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::DnaSeq;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    #[test]
    fn rotation_requires_enable() {
        let mut regs = ShiftRegisterFile::load(seq("ACGT").as_slice());
        regs.rotate(RotateDirection::Left);
        assert_eq!(regs.contents(), seq("ACGT").as_slice());
        assert_eq!(regs.rotations(), 0);
        regs.set_enable(true);
        regs.rotate(RotateDirection::Left);
        assert_eq!(regs.contents(), seq("CGTA").as_slice());
        assert_eq!(regs.rotations(), 1);
    }

    #[test]
    fn left_then_right_restores() {
        let mut regs = ShiftRegisterFile::load(seq("ACGTTG").as_slice());
        regs.set_enable(true);
        regs.rotate(RotateDirection::Left);
        regs.rotate(RotateDirection::Right);
        assert_eq!(regs.contents(), seq("ACGTTG").as_slice());
        assert_eq!(regs.rotations(), 2);
    }

    #[test]
    fn reload_resets_rotation_count() {
        let mut regs = ShiftRegisterFile::load(seq("ACGT").as_slice());
        regs.set_enable(true);
        regs.rotate(RotateDirection::Right);
        regs.reload(seq("TTTT").as_slice());
        assert_eq!(regs.rotations(), 0);
        assert_eq!(regs.contents(), seq("TTTT").as_slice());
    }

    #[test]
    fn empty_register_file_is_harmless() {
        let mut regs = ShiftRegisterFile::load(&[]);
        regs.set_enable(true);
        regs.rotate(RotateDirection::Left);
        assert!(regs.contents().is_empty());
    }
}
