//! The searchline buffer and driver (paper Fig. 4b).
//!
//! The driver latches a read and presents, for every cell index `i`, the
//! three-base window `(R[i−1], R[i], R[i+1])` on the cell's six searchline
//! pairs. Boundary cells receive `None` for the physically absent pair.

use asmcap_genome::Base;

/// A latched read presented on the searchlines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlDriver {
    read: Vec<Base>,
}

impl SlDriver {
    /// Latches a read into the driver.
    #[must_use]
    pub fn latch(read: &[Base]) -> Self {
        Self {
            read: read.to_vec(),
        }
    }

    /// Row width the driver is driving.
    #[must_use]
    pub fn width(&self) -> usize {
        self.read.len()
    }

    /// The latched read.
    #[must_use]
    pub fn read(&self) -> &[Base] {
        &self.read
    }

    /// The three-base window cell `i` sees.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the row.
    #[must_use]
    pub fn window(&self, i: usize) -> (Option<Base>, Base, Option<Base>) {
        let left = if i > 0 { Some(self.read[i - 1]) } else { None };
        let right = self.read.get(i + 1).copied();
        (left, self.read[i], right)
    }

    /// Iterates all windows in cell order.
    pub fn windows(&self) -> impl Iterator<Item = (Option<Base>, Base, Option<Base>)> + '_ {
        (0..self.read.len()).map(|i| self.window(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::DnaSeq;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    #[test]
    fn windows_cover_neighbors() {
        let driver = SlDriver::latch(seq("ACGT").as_slice());
        assert_eq!(driver.window(0), (None, Base::A, Some(Base::C)));
        assert_eq!(driver.window(1), (Some(Base::A), Base::C, Some(Base::G)));
        assert_eq!(driver.window(3), (Some(Base::G), Base::T, None));
        assert_eq!(driver.windows().count(), 4);
    }

    #[test]
    fn single_base_read_has_no_neighbors() {
        let driver = SlDriver::latch(seq("G").as_slice());
        assert_eq!(driver.window(0), (None, Base::G, None));
    }
}
