//! ASMCap's charge-domain capacitive ML-CAM (paper §II-C, §III-C).
//!
//! Every cell output drives the bottom plate of a capacitor (`V_DD` for a
//! mismatched cell, GND for a matched one — the polarity that makes
//! `V_ML` *rise* with the mismatch count); the top plates share the
//! matchline. By charge sharing,
//!
//! ```text
//! V_ML = Σ_{i ∈ mismatched} C_i / Σ_j C_j · V_DD
//! ```
//!
//! which is time-independent and, with i.i.d. capacitors
//! `C_i ~ N(µ_C, σ_C²)`, has the variance of the paper's Eq. 2:
//!
//! ```text
//! Var(V_ML) ≈ n_mis (N − n_mis) / N³ · (σ_C/µ_C)² · V_DD²
//! ```
//!
//! Two model levels are provided: [`CapacitorBank`] samples actual device
//! values and computes the exact charge-sharing ratio (used to validate
//! Eq. 2 empirically), while [`ChargeDomainCam`] is the fast analytic model
//! used by the engines.

use crate::noise;
use crate::params::AsmcapParams;
use crate::{MlCam, Rng};

/// A sampled bank of `N` capacitors for one matchline — the device-accurate
/// model of one array row.
#[derive(Debug, Clone)]
pub struct CapacitorBank {
    values_f: Vec<f64>,
    total_f: f64,
}

impl CapacitorBank {
    /// Samples `n` capacitor values from `N(µ_C, (µ_C·σ_rel)²)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the parameters are non-finite/negative.
    #[must_use]
    pub fn sample(n: usize, mean_f: f64, sigma_rel: f64, rng: &mut Rng) -> Self {
        assert!(n > 0, "a capacitor bank needs at least one device");
        assert!(
            mean_f > 0.0 && sigma_rel >= 0.0,
            "invalid capacitor parameters"
        );
        let values_f: Vec<f64> = (0..n)
            .map(|_| {
                // Physical capacitance cannot be negative; at 1.4 % relative
                // sigma a negative draw is a >70σ event, but clamp anyway.
                noise::normal(mean_f, mean_f * sigma_rel, rng).max(mean_f * 0.01)
            })
            .collect();
        let total_f = values_f.iter().sum();
        Self { values_f, total_f }
    }

    /// Number of capacitors on the matchline.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values_f.len()
    }

    /// Whether the bank is empty (never true for a constructed bank).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values_f.is_empty()
    }

    /// Exact matchline voltage for a given per-cell mismatch pattern:
    /// `V_ML = Σ_{mismatched} C_i / Σ C_j · V_DD`.
    ///
    /// # Panics
    ///
    /// Panics if `mismatched.len() != self.len()`.
    #[must_use]
    pub fn matchline_voltage(&self, mismatched: &[bool], vdd: f64) -> f64 {
        assert_eq!(
            mismatched.len(),
            self.values_f.len(),
            "one mismatch flag per capacitor"
        );
        let charged: f64 = self
            .values_f
            .iter()
            .zip(mismatched)
            .filter(|(_, &m)| m)
            .map(|(c, _)| c)
            .sum();
        charged / self.total_f * vdd
    }
}

/// The fast analytic charge-domain sensing model (Eq. 2).
///
/// Measurements are expressed in *state units* (multiples of `V_DD/N`): a
/// noiseless row with `n_mis` mismatches measures exactly `n_mis`.
///
/// # Examples
///
/// ```
/// use asmcap_circuit::{ChargeDomainCam, MlCam};
/// let cam = ChargeDomainCam::paper();
/// // Worst-case sigma is at n_mis = N/2 and stays well below one state.
/// assert!(cam.sigma_states(128, 256) < 0.5);
/// assert_eq!(cam.sigma_states(0, 256), cam.params().sa_offset_states);
/// // 1.4 % capacitor variation supports 566 distinguishable states (§V-D).
/// assert_eq!(cam.distinguishable_states(), 566);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChargeDomainCam {
    params: AsmcapParams,
}

impl ChargeDomainCam {
    /// Model with the paper's published parameters.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            params: AsmcapParams::paper(),
        }
    }

    /// Model with custom parameters.
    #[must_use]
    pub fn new(params: AsmcapParams) -> Self {
        Self { params }
    }

    /// The underlying parameters.
    #[must_use]
    pub fn params(&self) -> &AsmcapParams {
        &self.params
    }

    /// Mean matchline voltage in volts for `n_mis` of `n` cells mismatched.
    #[must_use]
    pub fn vml_mean(&self, n_mis: usize, n: usize) -> f64 {
        n_mis as f64 / n as f64 * self.params.vdd
    }

    /// Eq. 2: standard deviation of `V_ML` in volts.
    #[must_use]
    pub fn vml_sigma(&self, n_mis: usize, n: usize) -> f64 {
        let n_f = n as f64;
        let m = n_mis as f64;
        (m * (n_f - m) / n_f.powi(3)).sqrt() * self.params.cap_sigma_rel * self.params.vdd
    }

    /// Maximum number of distinguishable `V_ML` states under the paper's 3σ
    /// constraint (adjacent levels separated by ≥ 6σ at the worst-case
    /// level `n_mis = N/2`): `N_max = (1/(3·σ_C/µ_C))²`.
    ///
    /// With the published 1.4 % variation this is 566 (paper §V-D).
    #[must_use]
    pub fn distinguishable_states(&self) -> usize {
        (1.0 / (3.0 * self.params.cap_sigma_rel)).powi(2).floor() as usize
    }
}

impl MlCam for ChargeDomainCam {
    fn measure(&self, n_mis: usize, n: usize, rng: &mut Rng) -> f64 {
        noise::normal(n_mis as f64, self.sigma_states(n_mis, n), rng)
    }

    fn sigma_states(&self, n_mis: usize, n: usize) -> f64 {
        // Eq. 2 rescaled to state units (multiply by N/V_DD), plus the SA
        // offset in quadrature.
        let n_f = n as f64;
        let m = n_mis as f64;
        let eq2 = m * (n_f - m) / n_f * self.params.cap_sigma_rel.powi(2);
        (eq2 + self.params.sa_offset_states.powi(2)).sqrt()
    }

    fn search_time_s(&self) -> f64 {
        self.params.search_time_s()
    }

    fn name(&self) -> &'static str {
        "ASMCap (charge-domain)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn vml_scales_linearly_with_mismatches() {
        let cam = ChargeDomainCam::paper();
        let v0 = cam.vml_mean(0, 256);
        let v128 = cam.vml_mean(128, 256);
        let v256 = cam.vml_mean(256, 256);
        assert_eq!(v0, 0.0);
        assert!((v128 - 0.6).abs() < 1e-12);
        assert!((v256 - 1.2).abs() < 1e-12);
    }

    #[test]
    fn eq2_vanishes_at_extremes() {
        let cam = ChargeDomainCam::paper();
        assert_eq!(cam.vml_sigma(0, 256), 0.0);
        assert_eq!(cam.vml_sigma(256, 256), 0.0);
        // And is maximal at N/2.
        let mid = cam.vml_sigma(128, 256);
        assert!(mid > cam.vml_sigma(64, 256));
        assert!(mid > cam.vml_sigma(192, 256));
    }

    #[test]
    fn eq2_is_symmetric_in_nmis() {
        let cam = ChargeDomainCam::paper();
        for k in [1usize, 17, 100] {
            assert!((cam.vml_sigma(k, 256) - cam.vml_sigma(256 - k, 256)).abs() < 1e-15);
        }
    }

    #[test]
    fn paper_reports_566_states() {
        assert_eq!(ChargeDomainCam::paper().distinguishable_states(), 566);
    }

    #[test]
    fn capacitor_bank_matches_eq2_empirically() {
        let params = AsmcapParams::paper();
        let n = 256usize;
        let n_mis = 90usize;
        let mut rng = rng(42);
        let mut observed = Vec::with_capacity(3000);
        for _ in 0..3000 {
            let bank =
                CapacitorBank::sample(n, params.cap_mean_f(), params.cap_sigma_rel, &mut rng);
            let mut mismatched = vec![false; n];
            for flag in mismatched.iter_mut().take(n_mis) {
                *flag = true;
            }
            observed.push(bank.matchline_voltage(&mismatched, params.vdd));
        }
        let mean = observed.iter().sum::<f64>() / observed.len() as f64;
        let var =
            observed.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (observed.len() - 1) as f64;
        let cam = ChargeDomainCam::paper();
        let predicted_mean = cam.vml_mean(n_mis, n);
        let predicted_sigma = cam.vml_sigma(n_mis, n);
        assert!(
            (mean - predicted_mean).abs()
                < 3.0 * predicted_sigma / (observed.len() as f64).sqrt() + 1e-6,
            "empirical mean {mean} vs Eq. 2 mean {predicted_mean}"
        );
        let ratio = var.sqrt() / predicted_sigma;
        assert!(
            (0.9..1.1).contains(&ratio),
            "empirical sigma off Eq. 2 by factor {ratio}"
        );
    }

    #[test]
    fn measure_is_deterministic_per_seed() {
        let cam = ChargeDomainCam::paper();
        let a = cam.measure(40, 256, &mut rng(7));
        let b = cam.measure(40, 256, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn measure_stays_near_truth() {
        let cam = ChargeDomainCam::paper();
        let mut rng = rng(3);
        for n_mis in [0usize, 5, 108, 250] {
            for _ in 0..100 {
                let m = cam.measure(n_mis, 256, &mut rng);
                assert!((m - n_mis as f64).abs() < 6.0 * cam.sigma_states(n_mis, 256) + 1e-9);
            }
        }
    }

    #[test]
    fn bank_voltage_bounds() {
        let mut rng = rng(5);
        let bank = CapacitorBank::sample(64, 2e-15, 0.014, &mut rng);
        let all = vec![true; 64];
        let none = vec![false; 64];
        assert!((bank.matchline_voltage(&all, 1.2) - 1.2).abs() < 1e-12);
        assert_eq!(bank.matchline_voltage(&none, 1.2), 0.0);
    }
}
