//! Area models (Table I and the §V-B area breakdown).

use crate::params::{AsmcapParams, EdamParams, HDAC_AREA_OVERHEAD, TASR_AREA_OVERHEAD};

/// Area breakdown of one ASMCap array.
///
/// §V-B: for a 256×256 array "the area and power are 1.58 mm² and 7.67 mW
/// … more than 99 % of the area is occupied by the ASMCap cells".
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AreaBreakdown {
    /// Cell matrix area in mm².
    pub cells_mm2: f64,
    /// Peripheral area (decoder, WL/SL drivers, SAs, shift registers) in mm².
    pub periphery_mm2: f64,
}

impl AreaBreakdown {
    /// Peripheral area fraction.
    /// ASSUMPTION: cells occupy >99 % (§V-B); we allocate 0.7 % to the
    /// periphery.
    pub const PERIPHERY_FRACTION: f64 = 0.007;

    /// Computes the breakdown for a `rows × cols` array of `cell_area_um2`
    /// cells.
    #[must_use]
    pub fn for_array(cell_area_um2: f64, rows: usize, cols: usize) -> Self {
        let cells_mm2 = cell_area_um2 * (rows * cols) as f64 * 1e-6;
        let periphery_mm2 = cells_mm2 * Self::PERIPHERY_FRACTION / (1.0 - Self::PERIPHERY_FRACTION);
        Self {
            cells_mm2,
            periphery_mm2,
        }
    }

    /// Total array area in mm².
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.cells_mm2 + self.periphery_mm2
    }

    /// Fraction of the array occupied by cells.
    #[must_use]
    pub fn cell_fraction(&self) -> f64 {
        self.cells_mm2 / self.total_mm2()
    }
}

/// ASMCap array area including the HDAC and TASR overheads (both fractions
/// of cell area, per the paper's §IV overhead analyses).
#[must_use]
pub fn asmcap_array_area_mm2(params: &AsmcapParams, rows: usize, cols: usize) -> f64 {
    let base = AreaBreakdown::for_array(params.cell_area_um2, rows, cols);
    base.total_mm2() * (1.0 + HDAC_AREA_OVERHEAD + TASR_AREA_OVERHEAD)
}

/// EDAM array area for comparison.
#[must_use]
pub fn edam_array_area_mm2(params: &EdamParams, rows: usize, cols: usize) -> f64 {
    AreaBreakdown::for_array(params.cell_area_um2, rows, cols).total_mm2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_array_area() {
        // 65536 cells x 24 µm² = 1.573 mm²; §V-B reports 1.58 mm² total.
        let area = asmcap_array_area_mm2(&AsmcapParams::paper(), 256, 256);
        assert!((area - 1.58).abs() < 0.02, "area {area} mm²");
    }

    #[test]
    fn cells_dominate_area() {
        let breakdown = AreaBreakdown::for_array(24.0, 256, 256);
        assert!(breakdown.cell_fraction() > 0.99);
    }

    #[test]
    fn edam_cells_are_bigger() {
        let asmcap = asmcap_array_area_mm2(&AsmcapParams::paper(), 256, 256);
        let edam = edam_array_area_mm2(&EdamParams::paper(), 256, 256);
        // Table I: 1.4x cell area ratio.
        assert!((edam / asmcap - 33.4 / 24.0).abs() < 0.02);
    }

    #[test]
    fn strategy_overheads_are_negligible() {
        let with = asmcap_array_area_mm2(&AsmcapParams::paper(), 256, 256);
        let without = AreaBreakdown::for_array(24.0, 256, 256).total_mm2();
        let overhead = with / without - 1.0;
        assert!((overhead - 0.003).abs() < 1e-9, "overhead {overhead}");
    }
}
