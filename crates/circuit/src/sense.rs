//! Sense amplifiers and the threshold decision.
//!
//! Each matchline ends in a sense amplifier comparing `V_ML` against a
//! reference `V_ref`. The paper sets `V_ref = T/N · V_DD` so that the SA
//! outputs `match` exactly when `ED* ≤ T` (§III-B/C). With sensing noise,
//! where the reference sits *between* states matters, so the placement is a
//! configurable [`VrefPolicy`].

use crate::{MlCam, Rng};

/// Where to place `V_ref` relative to the threshold state `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum VrefPolicy {
    /// `V_ref = (T + ½)/N · V_DD`: centred between states `T` and `T + 1`,
    /// the engineering-correct placement that maximises noise margin on both
    /// sides. This is the default.
    #[default]
    Centered,
    /// `V_ref = T/N · V_DD`, exactly as printed in the paper: a noiseless
    /// row at `n_mis = T` sits *on* the reference.
    Exact,
}

impl VrefPolicy {
    /// The decision boundary in state units for threshold `T`.
    #[must_use]
    pub fn boundary_states(self, threshold: usize) -> f64 {
        match self {
            VrefPolicy::Centered => threshold as f64 + 0.5,
            VrefPolicy::Exact => threshold as f64,
        }
    }

    /// The reference voltage in volts for threshold `T` on an `n`-cell row.
    #[must_use]
    pub fn vref(self, threshold: usize, n: usize, vdd: f64) -> f64 {
        self.boundary_states(threshold) / n as f64 * vdd
    }
}

/// A sense amplifier bound to a sensing model and a `V_ref` policy.
///
/// # Examples
///
/// ```
/// use asmcap_circuit::{ChargeDomainCam, SenseAmp, VrefPolicy};
/// let sa = SenseAmp::new(ChargeDomainCam::paper(), VrefPolicy::Centered);
/// let mut rng = asmcap_circuit::rng(1);
/// // A clean row with 2 mismatches matches at T = 4 ...
/// assert!(sa.decide(2, 256, 4, &mut rng));
/// // ... and does not at T = 1.
/// assert!(!sa.decide(2, 256, 1, &mut rng));
/// ```
#[derive(Debug, Clone)]
pub struct SenseAmp<M> {
    cam: M,
    policy: VrefPolicy,
}

impl<M: MlCam> SenseAmp<M> {
    /// Creates a sense amplifier over the given sensing model.
    #[must_use]
    pub fn new(cam: M, policy: VrefPolicy) -> Self {
        Self { cam, policy }
    }

    /// The sensing model.
    #[must_use]
    pub fn cam(&self) -> &M {
        &self.cam
    }

    /// The reference placement policy.
    #[must_use]
    pub fn policy(&self) -> VrefPolicy {
        self.policy
    }

    /// One noisy match decision: `true` iff the measured matchline value
    /// falls at or below the `V_ref` boundary for `threshold`.
    pub fn decide(&self, n_mis: usize, n: usize, threshold: usize, rng: &mut Rng) -> bool {
        self.cam.measure(n_mis, n, rng) <= self.policy.boundary_states(threshold)
    }

    /// [`SenseAmp::decide`] with a systematic matchline offset in state
    /// units — the fault-injection hook for per-array capacitance drift.
    /// A positive offset pushes every measurement away from "match",
    /// eroding the sense margin. `decide_with_offset(.., 0.0, ..)` draws
    /// and decides exactly as [`SenseAmp::decide`].
    pub fn decide_with_offset(
        &self,
        n_mis: usize,
        n: usize,
        threshold: usize,
        offset_states: f64,
        rng: &mut Rng,
    ) -> bool {
        self.cam.measure(n_mis, n, rng) + offset_states <= self.policy.boundary_states(threshold)
    }

    /// Analytic probability that a row with `n_mis` mismatches is declared
    /// a match at `threshold`, assuming Gaussian sensing noise (and
    /// accounting for any systematic gain error of the model).
    #[must_use]
    pub fn match_probability(&self, n_mis: usize, n: usize, threshold: usize) -> f64 {
        let boundary = self.policy.boundary_states(threshold);
        let mean = self.cam.mean_states(n_mis, n);
        let sigma = self.cam.sigma_states(n_mis, n);
        if sigma == 0.0 {
            return if mean <= boundary { 1.0 } else { 0.0 };
        }
        normal_cdf((boundary - mean) / sigma)
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7, plenty for misjudgment-probability analysis).
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::ChargeDomainCam;
    use crate::current::CurrentDomainCam;
    use crate::rng;

    #[test]
    fn vref_matches_paper_formula() {
        // Paper: V_ref = T/N * V_DD (Exact policy).
        let v = VrefPolicy::Exact.vref(8, 256, 1.2);
        assert!((v - 8.0 / 256.0 * 1.2).abs() < 1e-15);
        let centered = VrefPolicy::Centered.vref(8, 256, 1.2);
        assert!(centered > v);
    }

    #[test]
    fn noiseless_decision_is_exact_threshold_comparison() {
        let mut cam = ChargeDomainCam::paper();
        // Remove the SA offset to make the model fully deterministic at the
        // extremes.
        let mut params = cam.params().clone();
        params.sa_offset_states = 0.0;
        params.cap_sigma_rel = 0.0;
        cam = ChargeDomainCam::new(params);
        let sa = SenseAmp::new(cam, VrefPolicy::Centered);
        let mut rng = rng(1);
        for t in 0..10 {
            for n_mis in 0..20 {
                assert_eq!(sa.decide(n_mis, 256, t, &mut rng), n_mis <= t);
            }
        }
    }

    #[test]
    fn match_probability_is_monotone_in_threshold() {
        let sa = SenseAmp::new(CurrentDomainCam::paper(), VrefPolicy::Centered);
        let probs: Vec<f64> = (0..20).map(|t| sa.match_probability(10, 256, t)).collect();
        for pair in probs.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-12);
        }
    }

    #[test]
    fn match_probability_agrees_with_monte_carlo() {
        let sa = SenseAmp::new(CurrentDomainCam::paper(), VrefPolicy::Centered);
        let mut rng = rng(31);
        let trials = 20_000usize;
        for (n_mis, t) in [(6usize, 8usize), (10, 8), (9, 8)] {
            let hits = (0..trials)
                .filter(|_| sa.decide(n_mis, 256, t, &mut rng))
                .count();
            let empirical = hits as f64 / trials as f64;
            let analytic = sa.match_probability(n_mis, 256, t);
            assert!(
                (empirical - analytic).abs() < 0.015,
                "n_mis={n_mis} T={t}: mc={empirical} analytic={analytic}"
            );
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959_964) - 0.025).abs() < 1e-4);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn charge_domain_is_sharper_than_current_domain() {
        let asmcap = SenseAmp::new(ChargeDomainCam::paper(), VrefPolicy::Centered);
        let edam = SenseAmp::new(CurrentDomainCam::paper(), VrefPolicy::Centered);
        // A row 3 states above threshold: ASMCap rejects it almost surely,
        // EDAM has a visible false-positive probability.
        let t = 8usize;
        let n_mis = 11usize;
        assert!(asmcap.match_probability(n_mis, 256, t) < 1e-6);
        assert!(edam.match_probability(n_mis, 256, t) > 0.01);
    }
}
