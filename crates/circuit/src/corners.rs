//! Supply-voltage corner analysis (extension experiment E12).
//!
//! The paper argues the charge domain is "linear and stable" while
//! current-domain sensing is "inherently vulnerable to device and
//! timing-control variations". Supply droop makes the asymmetry concrete:
//!
//! * **Charge domain** — `V_ML/V_DD = Σ C_mis/ΣC` and `V_ref/V_DD = T/N`
//!   are both *ratiometric* in the supply, so a droop cancels exactly; only
//!   the SA's fixed-voltage input offset grows in state units (∝ 1/V_DD).
//! * **Current domain** — the discharge current scales with the transistor
//!   overdrive, roughly `I ∝ (V_DD − V_th)²`, but the sampling instant
//!   `t_s` is a fixed timer: the sampled drop acquires a *systematic gain
//!   error* `g = ((V_DD − V_th)/(V_DD,nom − V_th))²` on top of the larger
//!   relative offset.
//!
//! [`charge_cam_at`]/[`current_cam_at`] build corner-adjusted models; the
//! `corners` binary in `asmcap-eval` sweeps the droop and reports
//! misjudgment probabilities.

use crate::params::{AsmcapParams, EdamParams};
use crate::{ChargeDomainCam, CurrentDomainCam};

/// Nominal supply of the paper's 65 nm design, volts.
pub const VDD_NOMINAL: f64 = 1.2;

/// Assumed NMOS threshold voltage for the overdrive model, volts.
/// ASSUMPTION: a typical 65 nm regular-Vt device.
pub const VTH: f64 = 0.4;

/// The current-domain gain error at a given supply:
/// `((vdd − V_th)/(V_DD,nom − V_th))²`.
///
/// # Panics
///
/// Panics unless `VTH < vdd ≤ VDD_NOMINAL` (the droop regime).
#[must_use]
pub fn discharge_gain(vdd: f64) -> f64 {
    assert!(
        vdd > VTH && vdd <= VDD_NOMINAL,
        "corner supply must lie in ({VTH}, {VDD_NOMINAL}] V"
    );
    ((vdd - VTH) / (VDD_NOMINAL - VTH)).powi(2)
}

/// The ASMCap charge-domain model at a drooped supply: device statistics
/// are unchanged (ratiometric); the SA offset grows ∝ 1/V_DD.
#[must_use]
pub fn charge_cam_at(vdd: f64) -> ChargeDomainCam {
    assert!(
        vdd > VTH && vdd <= VDD_NOMINAL,
        "corner supply must lie in ({VTH}, {VDD_NOMINAL}] V"
    );
    let mut params = AsmcapParams::paper();
    params.sa_offset_states *= VDD_NOMINAL / vdd;
    params.vdd = vdd;
    ChargeDomainCam::new(params)
}

/// The EDAM current-domain model at a drooped supply: systematic discharge
/// gain error plus the ∝ 1/V_DD offset growth.
#[must_use]
pub fn current_cam_at(vdd: f64) -> CurrentDomainCam {
    let gain = discharge_gain(vdd);
    let mut params = EdamParams::paper();
    params.gain_error = gain;
    params.sa_offset_states *= VDD_NOMINAL / vdd;
    params.vdd = vdd;
    CurrentDomainCam::new(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sense::SenseAmp;
    use crate::{MlCam, VrefPolicy};

    #[test]
    fn nominal_corner_is_identity() {
        assert!((discharge_gain(VDD_NOMINAL) - 1.0).abs() < 1e-12);
        let charge = charge_cam_at(VDD_NOMINAL);
        assert_eq!(
            charge.params().sa_offset_states,
            AsmcapParams::paper().sa_offset_states
        );
        let current = current_cam_at(VDD_NOMINAL);
        assert_eq!(current.mean_states(10, 256), 10.0);
    }

    #[test]
    fn gain_drops_quadratically_with_droop() {
        let g_mild = discharge_gain(1.1);
        let g_deep = discharge_gain(0.9);
        assert!(g_mild < 1.0 && g_deep < g_mild);
        // 0.9 V: overdrive halves-ish: ((0.5)/(0.8))^2 ≈ 0.39.
        assert!((g_deep - 0.390_625).abs() < 1e-9);
    }

    #[test]
    fn droop_biases_edam_towards_false_positives() {
        // A gain < 1 makes high-n_mis rows read low: near-threshold
        // non-matching rows cross V_ref and become false positives.
        let nominal = SenseAmp::new(current_cam_at(VDD_NOMINAL), VrefPolicy::Centered);
        let drooped = SenseAmp::new(current_cam_at(1.0), VrefPolicy::Centered);
        let t = 8usize;
        let fp_nominal = nominal.match_probability(t + 4, 256, t);
        let fp_drooped = drooped.match_probability(t + 4, 256, t);
        assert!(
            fp_drooped > fp_nominal * 1.5,
            "droop should inflate FP: {fp_nominal} -> {fp_drooped}"
        );
    }

    #[test]
    fn charge_domain_is_nearly_corner_immune() {
        let nominal = SenseAmp::new(charge_cam_at(VDD_NOMINAL), VrefPolicy::Centered);
        let drooped = SenseAmp::new(charge_cam_at(1.0), VrefPolicy::Centered);
        let t = 8usize;
        // Both essentially zero; droop must not create a visible FP rate.
        assert!(drooped.match_probability(t + 4, 256, t) < 1e-6);
        assert!(nominal.match_probability(t + 4, 256, t) < 1e-6);
        // And the true-match probability stays essentially one.
        assert!(drooped.match_probability(t.saturating_sub(2), 256, t) > 0.999_999);
    }

    #[test]
    #[should_panic(expected = "corner supply")]
    fn rejects_supply_below_threshold() {
        let _ = discharge_gain(0.3);
    }
}
