//! Gaussian sampling for the variation models.
//!
//! `rand` 0.8 ships only uniform-family distributions; the normal draws the
//! variation models need are generated here with the Box–Muller transform,
//! avoiding an extra dependency for one function.

use crate::Rng;
use rand::Rng as _;

/// Draws one standard-normal sample (`N(0, 1)`).
///
/// # Examples
///
/// ```
/// let mut rng = asmcap_circuit::rng(1);
/// let x = asmcap_circuit::noise::standard_normal(&mut rng);
/// assert!(x.is_finite());
/// ```
#[must_use]
pub fn standard_normal(rng: &mut Rng) -> f64 {
    // Box–Muller; u1 bounded away from 0 so ln() is finite.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws one `N(mean, sigma²)` sample.
///
/// # Panics
///
/// Panics if `sigma` is negative.
#[must_use]
pub fn normal(mean: f64, sigma: f64, rng: &mut Rng) -> f64 {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    mean + sigma * standard_normal(rng)
}

/// Draws one uniform sample in `[0, 1)` — the Bernoulli primitive the
/// fault-injection models use for per-cell and per-sense event draws.
#[must_use]
pub fn uniform(rng: &mut Rng) -> f64 {
    rng.gen()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn moments_are_plausible() {
        let mut rng = rng(11);
        let n = 50_000usize;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn tail_mass_is_gaussian() {
        let mut rng = rng(13);
        let n = 100_000usize;
        let beyond_2sigma = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count();
        let rate = beyond_2sigma as f64 / n as f64;
        // True mass beyond 2 sigma is ~4.55%.
        assert!((rate - 0.0455).abs() < 0.005, "2-sigma tail rate {rate}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = rng(17);
        let samples: Vec<f64> = (0..20_000).map(|_| normal(5.0, 2.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.05);
        assert_eq!(normal(3.0, 0.0, &mut rng), 3.0);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(standard_normal(&mut rng(19)), standard_normal(&mut rng(19)));
    }
}
