//! Seeded Monte-Carlo variation analysis (paper §V-D).
//!
//! The paper runs Monte-Carlo circuit simulations to compare sensing
//! reliability between ASMCap and EDAM. This module reproduces that study
//! behaviourally: it estimates per-state misjudgment probabilities, sweeps
//! thresholds, and counts empirically distinguishable states.

use crate::sense::SenseAmp;
use crate::{rng, MlCam};

/// Configuration of a Monte-Carlo sensing experiment.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Number of trials per configuration.
    pub trials: usize,
    /// RNG seed; the experiment is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        Self {
            trials: 10_000,
            seed: 0xA5AC,
        }
    }
}

/// Result of one misjudgment estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Misjudgment {
    /// Probability that a row with `n_mis ≤ T` is declared a mismatch.
    pub false_negative: f64,
    /// Probability that a row with `n_mis > T` is declared a match.
    pub false_positive: f64,
}

impl MonteCarlo {
    /// Creates an experiment with the given trial count and seed.
    #[must_use]
    pub fn new(trials: usize, seed: u64) -> Self {
        Self { trials, seed }
    }

    /// Estimates the probability that a row with exactly `n_mis` mismatches
    /// is declared a match at `threshold`.
    #[must_use]
    pub fn match_rate<M: MlCam>(
        &self,
        cam: &SenseAmp<M>,
        n_mis: usize,
        n: usize,
        threshold: usize,
    ) -> f64 {
        let mut rng = rng(self.seed ^ (n_mis as u64) << 20 ^ threshold as u64);
        let hits = (0..self.trials)
            .filter(|_| cam.decide(n_mis, n, threshold, &mut rng))
            .count();
        hits as f64 / self.trials as f64
    }

    /// Estimates sensing misjudgment rates at `threshold` for a row
    /// population described by `n_mis_values` (one entry per row).
    #[must_use]
    pub fn misjudgment<M: MlCam>(
        &self,
        cam: &SenseAmp<M>,
        n_mis_values: &[usize],
        n: usize,
        threshold: usize,
    ) -> Misjudgment {
        let mut rng = rng(self.seed ^ 0xBEEF ^ threshold as u64);
        let mut fn_count = 0usize;
        let mut fn_total = 0usize;
        let mut fp_count = 0usize;
        let mut fp_total = 0usize;
        for _ in 0..self.trials {
            for &n_mis in n_mis_values {
                let decided = cam.decide(n_mis, n, threshold, &mut rng);
                if n_mis <= threshold {
                    fn_total += 1;
                    if !decided {
                        fn_count += 1;
                    }
                } else {
                    fp_total += 1;
                    if decided {
                        fp_count += 1;
                    }
                }
            }
        }
        Misjudgment {
            false_negative: if fn_total == 0 {
                0.0
            } else {
                fn_count as f64 / fn_total as f64
            },
            false_positive: if fp_total == 0 {
                0.0
            } else {
                fp_count as f64 / fp_total as f64
            },
        }
    }

    /// Empirically counts distinguishable states: the largest `k ≤ n` such
    /// that for every state `j < k`, a decision boundary between `j` and
    /// `j+1` separates the two populations with error below `error_budget`
    /// per side.
    #[must_use]
    pub fn distinguishable_states<M: MlCam>(&self, cam: &M, n: usize, error_budget: f64) -> usize {
        let mut rng = rng(self.seed ^ 0x57A7E5);
        for state in 0..n {
            let boundary = state as f64 + 0.5;
            let mut errors_low = 0usize;
            let mut errors_high = 0usize;
            for _ in 0..self.trials {
                if cam.measure(state, n, &mut rng) > boundary {
                    errors_low += 1;
                }
                if cam.measure(state + 1, n, &mut rng) <= boundary {
                    errors_high += 1;
                }
            }
            let rate_low = errors_low as f64 / self.trials as f64;
            let rate_high = errors_high as f64 / self.trials as f64;
            if rate_low > error_budget || rate_high > error_budget {
                return state;
            }
        }
        n
    }
}

/// Paper-§V-D style comparison of the two sensing schemes: empirically
/// distinguishable states of an `n`-wide row under *device variation only*
/// (capacitor variation for ASMCap, current variation for EDAM), which is
/// the scope of the paper's 566-vs-44 claim. Returns `(charge, current)`.
#[must_use]
pub fn state_comparison(n: usize) -> (usize, usize) {
    let mc = MonteCarlo::default();
    // 3σ budget per side ≈ 1.35e-3 error rate.
    let budget = 0.00135;
    let (charge_cam, current_cam) = device_variation_only_models();
    let charge = mc.distinguishable_states(&charge_cam, n, budget);
    let current = mc.distinguishable_states(&current_cam, n, budget);
    (charge, current)
}

/// The two sensing models with every noise source beyond the published
/// device variation zeroed out (no SA offset, no timing jitter) — the
/// configuration under which the paper's §V-D state counts are derived.
#[must_use]
pub fn device_variation_only_models() -> (crate::ChargeDomainCam, crate::CurrentDomainCam) {
    use crate::params::{AsmcapParams, EdamParams};
    let mut asmcap = AsmcapParams::paper();
    asmcap.sa_offset_states = 0.0;
    let mut edam = EdamParams::paper();
    edam.timing_sigma_rel = 0.0;
    edam.sa_offset_states = 0.0;
    (
        crate::ChargeDomainCam::new(asmcap),
        crate::CurrentDomainCam::new(edam),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::ChargeDomainCam;
    use crate::current::CurrentDomainCam;
    use crate::sense::VrefPolicy;

    #[test]
    fn match_rate_far_from_boundary_is_saturated() {
        let mc = MonteCarlo::new(2_000, 1);
        let sa = SenseAmp::new(ChargeDomainCam::paper(), VrefPolicy::Centered);
        assert_eq!(mc.match_rate(&sa, 2, 256, 8), 1.0);
        assert_eq!(mc.match_rate(&sa, 30, 256, 8), 0.0);
    }

    #[test]
    fn edam_misjudges_more_than_asmcap_near_boundary() {
        let mc = MonteCarlo::new(2_000, 2);
        let asmcap = SenseAmp::new(ChargeDomainCam::paper(), VrefPolicy::Centered);
        let edam = SenseAmp::new(CurrentDomainCam::paper(), VrefPolicy::Centered);
        let rows: Vec<usize> = (0..=16).collect();
        let a = mc.misjudgment(&asmcap, &rows, 256, 8);
        let e = mc.misjudgment(&edam, &rows, 256, 8);
        assert!(e.false_negative > a.false_negative);
        assert!(e.false_positive > a.false_positive);
    }

    #[test]
    fn empirical_states_track_analytic_claims() {
        // Under device variation only (the §V-D configuration), ASMCap
        // distinguishes every state of a 256-wide row (analytic bound: 566)
        // while EDAM collapses near its analytic bound of 44 states. The
        // empirical count is Monte-Carlo noisy, so accept a band around 44.
        let mc = MonteCarlo::new(3_000, 3);
        let (charge_cam, current_cam) = super::device_variation_only_models();
        let charge = mc.distinguishable_states(&charge_cam, 256, 0.00135);
        let current = mc.distinguishable_states(&current_cam, 256, 0.00135);
        assert_eq!(charge, 256);
        assert!(
            (25..70).contains(&current),
            "current-domain states {current} not near analytic 44"
        );
    }

    #[test]
    fn results_are_deterministic_per_seed() {
        let mc = MonteCarlo::new(500, 7);
        let sa = SenseAmp::new(CurrentDomainCam::paper(), VrefPolicy::Centered);
        assert_eq!(mc.match_rate(&sa, 9, 256, 8), mc.match_rate(&sa, 9, 256, 8));
    }
}
