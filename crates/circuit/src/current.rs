//! EDAM's current-domain ML-CAM (paper §II-C, Fig. 3a).
//!
//! The matchline is pre-charged to `V_DD`; every mismatched cell turns on a
//! discharge transistor, so the line falls with slope proportional to the
//! mismatch count. A sample-and-hold captures `V_ML` at time `t_s`, chosen
//! so the full range `0..N` maps onto the voltage swing.
//!
//! Three noise mechanisms make this sensing scheme fragile (the paper calls
//! it "inherently vulnerable to device and timing-control variations"):
//!
//! 1. **Device variation** — each cell current is `I_i ~ N(µ_I, σ_I²)` with
//!    `σ_I/µ_I = 2.5 %`, so the summed current of `n_mis` cells has relative
//!    sigma `σ_I,rel/√n_mis` and the sampled drop an absolute sigma of
//!    `√n_mis · σ_I,rel` states;
//! 2. **Timing jitter** — the sampled drop scales with the actual sampling
//!    instant: multiplicative noise `n_mis · σ_t,rel` states;
//! 3. **Sample-and-hold / SA offset** — additive, `σ_SA` states.
//!
//! The measured mismatch count is therefore
//! `n_mis·(1 + ε_I)·(1 + ε_t) + ε_SA`.

use crate::noise;
use crate::params::EdamParams;
use crate::{MlCam, Rng};

/// The current-domain (EDAM) sensing model.
///
/// Measurements are expressed in state units, like
/// [`crate::ChargeDomainCam`].
///
/// # Examples
///
/// ```
/// use asmcap_circuit::{CurrentDomainCam, MlCam};
/// let cam = CurrentDomainCam::paper();
/// // Noise grows with the mismatch count (unlike the charge domain).
/// assert!(cam.sigma_states(200, 256) > cam.sigma_states(10, 256));
/// // 2.5 % current variation supports only 44 distinguishable states (§V-D).
/// assert_eq!(cam.distinguishable_states(), 44);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CurrentDomainCam {
    params: EdamParams,
}

impl CurrentDomainCam {
    /// Model with the paper's published parameters.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            params: EdamParams::paper(),
        }
    }

    /// Model with custom parameters.
    #[must_use]
    pub fn new(params: EdamParams) -> Self {
        Self { params }
    }

    /// The underlying parameters.
    #[must_use]
    pub fn params(&self) -> &EdamParams {
        &self.params
    }

    /// Nominal matchline voltage at the sampling instant, in volts:
    /// `V_ML(t_s) = V_DD · (1 − n_mis/N)`.
    #[must_use]
    pub fn vml_at_sample(&self, n_mis: usize, n: usize) -> f64 {
        self.params.vdd * (1.0 - n_mis as f64 / n as f64)
    }

    /// Matchline discharge trace `V_ML(t)` for Fig. 3a: voltage at uniform
    /// time points in `[0, t_s]`, clamped at ground.
    ///
    /// # Panics
    ///
    /// Panics if `points` is zero.
    #[must_use]
    pub fn discharge_trace(&self, n_mis: usize, n: usize, points: usize) -> Vec<(f64, f64)> {
        assert!(points > 0, "a trace needs at least one point");
        let ts = self.params.search_time_ns * 1e-9;
        (0..points)
            .map(|k| {
                let t = ts * k as f64 / (points - 1).max(1) as f64;
                let v = self.params.vdd * (1.0 - (n_mis as f64 / n as f64) * (t / ts));
                (t, v.max(0.0))
            })
            .collect()
    }

    /// Maximum number of distinguishable states under the 3σ constraint
    /// (adjacent levels separated by ≥ 6σ): device noise at level `k` is
    /// `√k·σ_I,rel` states, so `k_max = (1/(6·σ_I,rel))²`.
    ///
    /// With the published 2.5 % variation this is 44 (paper §V-D) — far
    /// below the 256 states a full-width row needs, which is what limits
    /// EDAM's read length.
    #[must_use]
    pub fn distinguishable_states(&self) -> usize {
        (1.0 / (6.0 * self.params.current_sigma_rel))
            .powi(2)
            .floor() as usize
    }
}

impl MlCam for CurrentDomainCam {
    fn measure(&self, n_mis: usize, n: usize, rng: &mut Rng) -> f64 {
        let _ = n; // full-swing mapping is independent of N in state units
        let m = n_mis as f64 * self.params.gain_error;
        let device = if n_mis > 0 {
            noise::normal(
                0.0,
                self.params.current_sigma_rel / (n_mis as f64).sqrt(),
                rng,
            )
        } else {
            0.0
        };
        let timing = noise::normal(0.0, self.params.timing_sigma_rel, rng);
        let offset = noise::normal(0.0, self.params.sa_offset_states, rng);
        m * (1.0 + device) * (1.0 + timing) + offset
    }

    fn mean_states(&self, n_mis: usize, n: usize) -> f64 {
        let _ = n;
        n_mis as f64 * self.params.gain_error
    }

    fn sigma_states(&self, n_mis: usize, n: usize) -> f64 {
        let _ = n;
        let m = n_mis as f64 * self.params.gain_error;
        let device = m * self.params.current_sigma_rel.powi(2); // (√m·σ_I)²
        let timing = (m * self.params.timing_sigma_rel).powi(2);
        (device + timing + self.params.sa_offset_states.powi(2)).sqrt()
    }

    fn search_time_s(&self) -> f64 {
        self.params.search_time_s()
    }

    fn name(&self) -> &'static str {
        "EDAM (current-domain)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn paper_reports_44_states() {
        assert_eq!(CurrentDomainCam::paper().distinguishable_states(), 44);
    }

    #[test]
    fn noise_grows_with_mismatch_count() {
        let cam = CurrentDomainCam::paper();
        let sigmas: Vec<f64> = [0usize, 4, 16, 64, 256]
            .iter()
            .map(|&k| cam.sigma_states(k, 256))
            .collect();
        for pair in sigmas.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn charge_domain_beats_current_domain_at_scale() {
        use crate::charge::ChargeDomainCam;
        let edam = CurrentDomainCam::paper();
        let asmcap = ChargeDomainCam::paper();
        // At every occupancy of a 256-wide row, ASMCap senses with less
        // noise than EDAM — the core claim of Fig. 3.
        for n_mis in 0..=256usize {
            assert!(
                asmcap.sigma_states(n_mis, 256) <= edam.sigma_states(n_mis, 256) + 1e-12,
                "charge sigma exceeds current sigma at n_mis={n_mis}"
            );
        }
        assert!(asmcap.distinguishable_states() > 2 * 256);
        assert!(edam.distinguishable_states() < 256);
    }

    #[test]
    fn measurement_mean_and_sigma_match_analytic() {
        let cam = CurrentDomainCam::paper();
        let mut rng = rng(23);
        let n_mis = 108usize;
        let n = 10_000usize;
        let samples: Vec<f64> = (0..n).map(|_| cam.measure(n_mis, 256, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let sd = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt();
        assert!((mean - n_mis as f64).abs() < 0.2, "mean {mean}");
        let predicted = cam.sigma_states(n_mis, 256);
        assert!((sd / predicted - 1.0).abs() < 0.1, "sd {sd} vs {predicted}");
    }

    #[test]
    fn discharge_trace_is_monotone_and_bounded() {
        let cam = CurrentDomainCam::paper();
        let trace = cam.discharge_trace(128, 256, 32);
        assert_eq!(trace.len(), 32);
        assert!((trace[0].1 - 1.2).abs() < 1e-12);
        for pair in trace.windows(2) {
            assert!(pair[1].1 <= pair[0].1);
            assert!(pair[1].0 > pair[0].0);
        }
        // Half the cells mismatched -> half the swing at t_s.
        assert!((trace.last().unwrap().1 - 0.6).abs() < 1e-9);
    }

    #[test]
    fn zero_mismatch_measurement_is_offset_only() {
        let cam = CurrentDomainCam::paper();
        let mut rng = rng(29);
        for _ in 0..100 {
            let m = cam.measure(0, 256, &mut rng);
            assert!(m.abs() < 6.0 * cam.params().sa_offset_states);
        }
    }
}
