//! Behavioural circuit models for the ASMCap reproduction.
//!
//! The paper's accuracy and efficiency claims rest on the difference between
//! two multi-level CAM sensing schemes (paper Fig. 3):
//!
//! * [`charge`] — ASMCap's **charge-domain** ML-CAM: every cell drives the
//!   bottom plate of a capacitor and the matchline settles at
//!   `V_ML = n_mis/N · V_DD`, time-independent and with variance given by
//!   the paper's Eq. 2;
//! * [`current`] — EDAM's **current-domain** ML-CAM: mismatched cells
//!   discharge a pre-charged matchline and `V_ML(t_s)` is sampled, which
//!   makes the result sensitive to device *and* timing variation.
//!
//! [`params`] collects every technology constant (65 nm, 1.2 V, Table I)
//! plus the small set of assumptions the paper leaves implicit, [`sense`]
//! models the sense amplifiers, [`energy`]/[`area`] the paper's Eq. 1 energy
//! and area/power breakdowns, and [`montecarlo`] runs seeded variation
//! experiments (reproducing §V-D: 44 distinguishable states for EDAM vs 566
//! for ASMCap).
//!
//! This is a behavioural substitute for the paper's Cadence Virtuoso
//! simulations; see `DESIGN.md` §2 for why it preserves every reported
//! quantity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod charge;
pub mod corners;
pub mod current;
pub mod energy;
pub mod montecarlo;
pub mod noise;
pub mod params;
pub mod sense;

pub use charge::ChargeDomainCam;
pub use current::CurrentDomainCam;
pub use params::{AsmcapParams, EdamParams};
pub use sense::{SenseAmp, VrefPolicy};

/// Deterministic RNG used by all Monte-Carlo circuit models (ChaCha8; same
/// rationale as `asmcap_genome::Rng`).
pub type Rng = rand_chacha::ChaCha8Rng;

/// Creates the workspace-standard deterministic RNG from a `u64` seed.
pub fn rng(seed: u64) -> Rng {
    use rand::SeedableRng;
    Rng::seed_from_u64(seed)
}

/// A multi-level CAM sensing model: maps a mismatch count to a (noisy)
/// measured matchline value, expressed in *state units* — multiples of the
/// per-state separation `V_DD/N`.
///
/// Implemented by [`ChargeDomainCam`] (ASMCap) and [`CurrentDomainCam`]
/// (EDAM). The trait is object-safe so engines can hold `Box<dyn MlCam>`.
pub trait MlCam {
    /// Draws one noisy measurement of a row with `n_mis` mismatched cells
    /// out of `n`, in state units (the noiseless value is `n_mis` itself,
    /// up to any systematic gain error the model carries).
    fn measure(&self, n_mis: usize, n: usize, rng: &mut Rng) -> f64;

    /// Analytic mean of [`MlCam::measure`] in state units. `n_mis` at the
    /// nominal corner; models with a systematic gain error override this.
    fn mean_states(&self, n_mis: usize, n: usize) -> f64 {
        let _ = n;
        n_mis as f64
    }

    /// Analytic standard deviation of [`MlCam::measure`] in state units.
    fn sigma_states(&self, n_mis: usize, n: usize) -> f64;

    /// Search latency in seconds for one in-array search operation.
    fn search_time_s(&self) -> f64;

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;
}
