//! Technology constants for ASMCap and EDAM.
//!
//! Everything published in the paper (Table I, §V-A, §V-D) is reproduced
//! verbatim; quantities the paper leaves implicit are marked `ASSUMPTION`
//! with the reasoning recorded in `DESIGN.md` §2. All parameters live here
//! so that every downstream number is traceable to one file.

/// Parameters of the ASMCap charge-domain design (65 nm, Table I column 2).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AsmcapParams {
    /// Supply voltage in volts (Table I: 1.2 V).
    pub vdd: f64,
    /// Cell area in µm² (Table I: 24.0 µm²).
    pub cell_area_um2: f64,
    /// Search time in nanoseconds (Table I: 0.9 ns).
    pub search_time_ns: f64,
    /// Average power per cell in µW (Table I: 0.12 µW, Virtuoso-measured
    /// average under the paper's two workload conditions).
    pub avg_power_per_cell_uw: f64,
    /// MIM capacitor mean value in femtofarads (§V-A: 2 fF).
    pub cap_mean_ff: f64,
    /// Relative capacitor variation `σ_C/µ_C` (§V-D: 1.4 %).
    pub cap_sigma_rel: f64,
    /// Sense-amplifier input-referred offset in state units.
    /// ASSUMPTION: the paper gives no SA offset; 0.15 states keeps ASMCap's
    /// total sensing noise dominated by Eq. 2 as the paper implies.
    pub sa_offset_states: f64,
    /// Calibration factor reconciling the paper's Eq. 1 upper-bound energy
    /// with Table I's measured 0.12 µW/cell (see [`crate::energy`]).
    /// ASSUMPTION: a single activity/swing factor.
    pub energy_eta: f64,
    /// MIM capacitor area in µm² (§V-C: ~1.4 µm², placed *above* the cell so
    /// it costs no array area).
    pub cap_area_um2: f64,
}

impl AsmcapParams {
    /// The paper's published configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            vdd: 1.2,
            cell_area_um2: 24.0,
            search_time_ns: 0.9,
            avg_power_per_cell_uw: 0.12,
            cap_mean_ff: 2.0,
            cap_sigma_rel: 0.014,
            sa_offset_states: 0.15,
            energy_eta: 0.154,
            cap_area_um2: 1.4,
        }
    }

    /// Search time in seconds.
    #[must_use]
    pub fn search_time_s(&self) -> f64 {
        self.search_time_ns * 1e-9
    }

    /// Mean capacitance in farads.
    #[must_use]
    pub fn cap_mean_f(&self) -> f64 {
        self.cap_mean_ff * 1e-15
    }
}

impl Default for AsmcapParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Parameters of the EDAM current-domain baseline (65 nm, Table I column 1).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdamParams {
    /// Supply voltage in volts (Table I: 1.2 V).
    pub vdd: f64,
    /// Cell area in µm² (Table I: 33.4 µm²).
    pub cell_area_um2: f64,
    /// Search time in nanoseconds (Table I: 2.4 ns).
    pub search_time_ns: f64,
    /// Matchline pre-charge time in nanoseconds.
    /// ASSUMPTION: not published; 0.12 ns makes the end-to-end search-time
    /// ratio match Fig. 8's 2.8× (2.4 + 0.12 ≈ 2.8 × 0.9).
    pub precharge_time_ns: f64,
    /// Average power per cell in µW (Table I: 1.0 µW).
    pub avg_power_per_cell_uw: f64,
    /// Relative per-cell discharge-current variation `σ_I/µ_I`
    /// (§V-D: 2.5 %).
    pub current_sigma_rel: f64,
    /// Relative timing-control jitter of the sampling instant `σ_t/t_s`.
    /// ASSUMPTION: the paper states current-domain sensing is "inherently
    /// vulnerable to … timing-control variations" without a number; 8 %
    /// (together with `sa_offset_states`) lands the EDAM-vs-ASMCap-w/o
    /// accuracy gap near the reported 1.12×.
    pub timing_sigma_rel: f64,
    /// Sample-and-hold plus SA input-referred offset in state units.
    /// ASSUMPTION: 2.2 states (kT/C droop of a 2.4 ns dynamic sample path
    /// plus SA offset), same calibration as `timing_sigma_rel`.
    pub sa_offset_states: f64,
    /// Matchline capacitance per cell in fF, for pre-charge energy.
    /// ASSUMPTION: 0.5 fF/cell of wire+junction load.
    pub ml_cap_per_cell_ff: f64,
    /// Systematic discharge gain error: the measured drop is
    /// `gain_error · n_mis` states. 1.0 at the nominal corner; supply
    /// droop moves it quadratically with the transistor overdrive (see
    /// [`crate::corners`]). The fixed sampling instant is what makes the
    /// current domain sensitive to this — the charge domain is ratiometric
    /// and has no such term.
    pub gain_error: f64,
}

impl EdamParams {
    /// The paper's published configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            vdd: 1.2,
            cell_area_um2: 33.4,
            search_time_ns: 2.4,
            precharge_time_ns: 0.12,
            avg_power_per_cell_uw: 1.0,
            current_sigma_rel: 0.025,
            timing_sigma_rel: 0.08,
            sa_offset_states: 2.2,
            ml_cap_per_cell_ff: 0.5,
            gain_error: 1.0,
        }
    }

    /// Total search latency (pre-charge + evaluate + sample) in seconds.
    #[must_use]
    pub fn search_time_s(&self) -> f64 {
        (self.search_time_ns + self.precharge_time_ns) * 1e-9
    }
}

impl Default for EdamParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Paper-standard array geometry: 256 × 256 cells per array (§V-A).
pub const ARRAY_ROWS: usize = 256;
/// Paper-standard row width in cells.
pub const ARRAY_COLS: usize = 256;
/// Paper-standard array count: 512 arrays = 64 Mb of reference (§V-E).
pub const ARRAY_COUNT: usize = 512;

/// HDAC hardware overhead: two extra NMOS MUXes per cell ≈ 0.1 % cell area
/// (§IV-A overhead analysis).
pub const HDAC_AREA_OVERHEAD: f64 = 0.001;
/// TASR hardware overhead: shift registers with enable ≈ 0.2 % average area
/// per cell (§IV-B overhead analysis).
pub const TASR_AREA_OVERHEAD: f64 = 0.002;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_published_values() {
        let asmcap = AsmcapParams::paper();
        assert_eq!(asmcap.vdd, 1.2);
        assert_eq!(asmcap.cell_area_um2, 24.0);
        assert_eq!(asmcap.search_time_ns, 0.9);
        assert_eq!(asmcap.avg_power_per_cell_uw, 0.12);

        let edam = EdamParams::paper();
        assert_eq!(edam.vdd, 1.2);
        assert_eq!(edam.cell_area_um2, 33.4);
        assert_eq!(edam.search_time_ns, 2.4);
        assert_eq!(edam.avg_power_per_cell_uw, 1.0);
    }

    #[test]
    fn table1_ratios() {
        let asmcap = AsmcapParams::paper();
        let edam = EdamParams::paper();
        // Cell area: 1.4x; search time: 2.6x; power: 8.5x (paper Table I).
        assert!((edam.cell_area_um2 / asmcap.cell_area_um2 - 1.4).abs() < 0.01);
        assert!((edam.search_time_ns / asmcap.search_time_ns - 2.67).abs() < 0.1);
        assert!((edam.avg_power_per_cell_uw / asmcap.avg_power_per_cell_uw - 8.33).abs() < 0.2);
    }

    #[test]
    fn variation_constants_match_section_v_d() {
        assert_eq!(AsmcapParams::paper().cap_sigma_rel, 0.014);
        assert_eq!(EdamParams::paper().current_sigma_rel, 0.025);
    }

    #[test]
    fn unit_conversions() {
        let p = AsmcapParams::paper();
        assert!((p.search_time_s() - 0.9e-9).abs() < 1e-15);
        assert!((p.cap_mean_f() - 2e-15).abs() < 1e-20);
        let e = EdamParams::paper();
        assert!((e.search_time_s() - 2.52e-9).abs() < 1e-12);
    }
}
