//! Energy models (paper Eq. 1, Table I, and the §V-B power breakdown).
//!
//! The charge-domain search energy follows the paper's Eq. 1,
//!
//! ```text
//! E_S ≈ M · n_mis (N − n_mis) / N · µ_C · V_DD²
//! ```
//!
//! which is the charge-sharing upper bound. Table I's Virtuoso-measured
//! average of 0.12 µW/cell corresponds to a fraction of that bound; the two
//! are reconciled by the single calibration factor
//! [`crate::params::AsmcapParams::energy_eta`] (see `DESIGN.md` §2). Both
//! the raw Eq. 1 value and the calibrated value are exposed so experiments
//! can report either.

use crate::params::{AsmcapParams, EdamParams};

/// §V-B power breakdown of an ASMCap array: cells 75 %, shift registers
/// 19 %, sense amplifiers 6 %.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerBreakdown {
    /// Power drawn by the ASMCap cells, in watts.
    pub cells_w: f64,
    /// Power drawn by the TASR shift registers, in watts.
    pub shift_registers_w: f64,
    /// Power drawn by the sense amplifiers, in watts.
    pub sense_amps_w: f64,
}

impl PowerBreakdown {
    /// Fractions from §V-B: cells / shift registers / SAs.
    pub const FRACTIONS: (f64, f64, f64) = (0.75, 0.19, 0.06);

    /// Splits a total array power according to the paper's fractions.
    #[must_use]
    pub fn from_total(total_w: f64) -> Self {
        let (c, s, a) = Self::FRACTIONS;
        Self {
            cells_w: total_w * c,
            shift_registers_w: total_w * s,
            sense_amps_w: total_w * a,
        }
    }

    /// Total power in watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.cells_w + self.shift_registers_w + self.sense_amps_w
    }
}

/// Eq. 1 verbatim: charge-domain search energy in joules for an `M×N` array
/// with `n_mis` mismatched cells per row (upper bound, uncalibrated).
///
/// # Examples
///
/// ```
/// use asmcap_circuit::params::AsmcapParams;
/// let p = AsmcapParams::paper();
/// let n = 256;
/// // Symmetric in n_mis and zero at the extremes.
/// let e = |k| asmcap_circuit::energy::eq1_search_energy(&p, 256, n, k);
/// assert_eq!(e(0), 0.0);
/// assert_eq!(e(n), 0.0);
/// assert!((e(100) - e(n - 100)).abs() < 1e-18);
/// assert!(e(n / 2) >= e(10));
/// ```
#[must_use]
pub fn eq1_search_energy(params: &AsmcapParams, rows: usize, n: usize, n_mis: usize) -> f64 {
    let m = n_mis as f64;
    let n_f = n as f64;
    rows as f64 * m * (n_f - m) / n_f * params.cap_mean_f() * params.vdd * params.vdd
}

/// Calibrated per-search energy of one ASMCap array (joules): Eq. 1 scaled
/// by `energy_eta` for the cells, then inflated to the full array using the
/// §V-B breakdown (cells are 75 % of power).
#[must_use]
pub fn asmcap_array_search_energy(
    params: &AsmcapParams,
    rows: usize,
    n: usize,
    mean_n_mis: f64,
) -> f64 {
    let n_f = n as f64;
    let eq1 = rows as f64 * mean_n_mis * (n_f - mean_n_mis) / n_f
        * params.cap_mean_f()
        * params.vdd
        * params.vdd;
    let cells = eq1 * params.energy_eta;
    cells / PowerBreakdown::FRACTIONS.0
}

/// Per-search energy of one EDAM array (joules): discharge power (Table I's
/// 1.0 µW/cell over the evaluate window) plus matchline pre-charge
/// `M · C_ML · V_DD²`.
#[must_use]
pub fn edam_array_search_energy(params: &EdamParams, rows: usize, n: usize) -> f64 {
    let discharge =
        params.avg_power_per_cell_uw * 1e-6 * (rows * n) as f64 * params.search_time_ns * 1e-9;
    let ml_cap = params.ml_cap_per_cell_ff * 1e-15 * n as f64;
    let precharge = rows as f64 * ml_cap * params.vdd * params.vdd;
    discharge + precharge
}

/// Average ASMCap array power in watts implied by Table I's per-cell figure,
/// for a continuously searching `rows × n` array.
#[must_use]
pub fn asmcap_array_power_w(params: &AsmcapParams, rows: usize, n: usize) -> f64 {
    params.avg_power_per_cell_uw * 1e-6 * (rows * n) as f64 / PowerBreakdown::FRACTIONS.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_maximum_at_half_occupancy() {
        let p = AsmcapParams::paper();
        let at = |k: usize| eq1_search_energy(&p, 256, 256, k);
        let mid = at(128);
        for k in [0usize, 32, 64, 100, 200, 256] {
            assert!(at(k) <= mid + 1e-18);
        }
    }

    #[test]
    fn eq1_magnitude_sanity() {
        // 256 rows, n_mis = 128: E = 256 * 64 * 2fF * 1.44V^2 ≈ 47 pJ.
        let p = AsmcapParams::paper();
        let e = eq1_search_energy(&p, 256, 256, 128);
        assert!((e - 47.2e-12).abs() < 1e-12, "got {e}");
    }

    #[test]
    fn calibrated_energy_matches_table1_power() {
        // At the genome-typical mean mismatch rate (~42 % of cells), the
        // calibrated per-search energy divided by the 0.9 ns search time
        // should land near the Table-I-implied array power.
        let p = AsmcapParams::paper();
        let mean_n_mis = 0.42 * 256.0;
        let e = asmcap_array_search_energy(&p, 256, 256, mean_n_mis);
        let implied_power = e / p.search_time_s();
        let table1_power = asmcap_array_power_w(&p, 256, 256);
        let ratio = implied_power / table1_power;
        assert!(
            (0.8..1.25).contains(&ratio),
            "calibration off: implied {implied_power} W vs Table I {table1_power} W"
        );
    }

    #[test]
    fn edam_energy_exceeds_asmcap_by_published_factor() {
        let asmcap = asmcap_array_search_energy(&AsmcapParams::paper(), 256, 256, 0.42 * 256.0);
        let edam = edam_array_search_energy(&EdamParams::paper(), 256, 256);
        let ratio = edam / asmcap;
        // Fig. 8 reports ASMCap w/o strategies at 28x EDAM's energy
        // efficiency per search... the per-search energy ratio should land
        // in that neighbourhood (20-35x).
        assert!((20.0..35.0).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let (c, s, a) = PowerBreakdown::FRACTIONS;
        assert!((c + s + a - 1.0).abs() < 1e-12);
        let split = PowerBreakdown::from_total(7.67e-3);
        assert!((split.total_w() - 7.67e-3).abs() < 1e-12);
        assert!((split.cells_w / split.total_w() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn array_power_near_paper_value() {
        // §V-B: a 256x256 array draws 7.67 mW. Table I's 0.12 µW/cell gives
        // 65536 * 0.12 µW / 0.75 ≈ 10.5 mW — same order; the paper's own
        // numbers differ by ~25 % because 0.12 µW is a two-condition
        // average. Accept the band between them.
        let p = asmcap_array_power_w(&AsmcapParams::paper(), 256, 256);
        assert!(p > 5e-3 && p < 12e-3, "array power {p} W");
    }
}
