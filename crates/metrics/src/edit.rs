//! Levenshtein edit distance — the paper's ground-truth metric.
//!
//! Three interchangeable implementations are provided and cross-checked by
//! property tests:
//!
//! * [`edit_distance`] — textbook two-row dynamic programming, `O(mn)`;
//! * [`edit_distance_banded`] — Ukkonen's threshold-banded DP, `O(m·T)`,
//!   which is what the CM-CPU baseline runs;
//! * [`edit_distance_myers`] — Myers/Hyyrö bit-parallel DP, `O(n·⌈m/64⌉)`.
//!
//! The paper compares a read against a reference *segment in context*: end
//! gaps on the reference are free (Fig. 2's third example has ED = 1, which
//! only holds if the reference continues past the stored segment). The
//! [`anchored_semi_global`] family implements exactly that convention and is
//! used as ground truth by the evaluation harness.

use asmcap_genome::{Base, PackedWords};

/// Global Levenshtein distance between `a` and `b` (two-row DP).
///
/// # Examples
///
/// ```
/// use asmcap_genome::DnaSeq;
/// let a: DnaSeq = "AGCTGAGA".parse()?;
/// let b: DnaSeq = "ATCTGCGA".parse()?;
/// assert_eq!(asmcap_metrics::edit_distance(a.as_slice(), b.as_slice()), 2);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn edit_distance(a: &[Base], b: &[Base]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitution = previous[j] + usize::from(ca != cb);
            let deletion = previous[j + 1] + 1;
            let insertion = current[j] + 1;
            current[j + 1] = substitution.min(deletion).min(insertion);
        }
        std::mem::swap(&mut previous, &mut current);
    }
    previous[b.len()]
}

/// Banded Levenshtein distance with early exit: returns `Some(d)` if
/// `d ≤ limit`, `None` otherwise, in `O(max(m, n) · limit)` time.
///
/// This is Ukkonen's band restriction: only diagonals within `limit` of the
/// main diagonal can contribute to a distance `≤ limit`.
///
/// # Examples
///
/// ```
/// use asmcap_genome::DnaSeq;
/// let a: DnaSeq = "ACGTACGT".parse()?;
/// let b: DnaSeq = "ACGAACGT".parse()?;
/// assert_eq!(asmcap_metrics::edit_distance_banded(a.as_slice(), b.as_slice(), 3), Some(1));
/// assert_eq!(asmcap_metrics::edit_distance_banded(a.as_slice(), b.as_slice(), 0), None);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn edit_distance_banded(a: &[Base], b: &[Base], limit: usize) -> Option<usize> {
    banded_core(a.len(), b.len(), limit, |i| a[i].code(), |j| b[j].code())
}

/// The one banded-DP core both representations share: Ukkonen's band with
/// early exit over base codes produced by the two accessors (`a_code(i)` =
/// row base `i`, `b_code(j)` = column base `j`). The accessors inline, so
/// the slice and packed entry points compile to the same loop.
fn banded_core(
    m: usize,
    n: usize,
    limit: usize,
    a_code: impl Fn(usize) -> u8,
    b_code: impl Fn(usize) -> u8,
) -> Option<usize> {
    if m.abs_diff(n) > limit {
        return None;
    }
    if m == 0 || n == 0 {
        let d = m.max(n);
        return (d <= limit).then_some(d);
    }
    const INF: usize = usize::MAX / 2;
    let mut previous = vec![INF; n + 1];
    let mut current = vec![INF; n + 1];
    for (j, cell) in previous.iter_mut().enumerate().take(limit.min(n) + 1) {
        *cell = j;
    }
    for i in 0..m {
        let ca = a_code(i);
        let row = i + 1;
        let lo = row.saturating_sub(limit);
        let hi = (row + limit).min(n);
        if lo > hi {
            return None;
        }
        current[lo.saturating_sub(1)] = INF;
        let mut row_min = INF;
        for j in lo..=hi {
            let value = if j == 0 {
                row
            } else {
                let cb = b_code(j - 1);
                let substitution = previous[j - 1].saturating_add(usize::from(ca != cb));
                let deletion = previous[j].saturating_add(1);
                let insertion = current[j - 1].saturating_add(1);
                substitution.min(deletion).min(insertion)
            };
            current[j] = value;
            row_min = row_min.min(value);
        }
        if hi < n {
            current[hi + 1] = INF;
        }
        if row_min > limit {
            return None;
        }
        std::mem::swap(&mut previous, &mut current);
    }
    let d = previous[n];
    (d <= limit).then_some(d)
}

/// [`edit_distance_banded`] over 2-bit packed operands: identical band,
/// early exit, and result, with each base code read straight out of the
/// packed words — no byte-per-base unpacking anywhere. This is what lets
/// the CM-CPU baseline score pre-packed evaluation pairs without a decode
/// pass (see `asmcap-baselines`).
///
/// # Examples
///
/// ```
/// use asmcap_genome::{DnaSeq, PackedSeq};
/// let a = PackedSeq::from_seq(&"ACGTACGT".parse::<DnaSeq>()?);
/// let b = PackedSeq::from_seq(&"ACGAACGT".parse::<DnaSeq>()?);
/// assert_eq!(asmcap_metrics::edit::edit_distance_banded_packed(&a, &b, 3), Some(1));
/// assert_eq!(asmcap_metrics::edit::edit_distance_banded_packed(&a, &b, 0), None);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn edit_distance_banded_packed<A: PackedWords, B: PackedWords>(
    a: &A,
    b: &B,
    limit: usize,
) -> Option<usize> {
    // Base code at lane `i` of a packing (two bits, no unpack).
    #[inline]
    fn lane<S: PackedWords>(seq: &S, i: usize) -> u8 {
        ((seq.word(i / 32) >> (2 * (i % 32))) & 0b11) as u8
    }
    banded_core(a.len(), b.len(), limit, |i| lane(a, i), |j| lane(b, j))
}

/// Per-base match masks for the bit-parallel kernels: `peq[word][code]` has
/// bit `i % 64` set iff `pattern[i]` equals the base with that code.
fn build_peq(pattern: &[Base]) -> Vec<[u64; 4]> {
    let words = pattern.len().div_ceil(64);
    let mut peq = vec![[0u64; 4]; words];
    for (i, &base) in pattern.iter().enumerate() {
        peq[i / 64][base.code() as usize] |= 1u64 << (i % 64);
    }
    peq
}

/// Core of the Myers/Hyyrö bit-parallel DP: processes the columns of the
/// Levenshtein matrix for pattern `a` against text `b`, invoking `visit`
/// with `D[m][j]` after every text position `j` (1-based). Returns the final
/// score `D[m][n]`.
fn myers_columns(a: &[Base], b: &[Base], mut visit: impl FnMut(usize)) -> usize {
    debug_assert!(!a.is_empty());
    let m = a.len();
    let words = m.div_ceil(64);
    let peq = build_peq(a);
    let mut pv = vec![!0u64; words];
    let mut mv = vec![0u64; words];
    let mut score = m as isize;
    let last_word = words - 1;
    let last_bit = (m - 1) % 64;
    for &cb in b {
        // Horizontal delta entering the top row; +1 because the first row of
        // the global matrix is 0,1,2,... (this is what distinguishes the
        // distance variant from Myers' search variant).
        let mut hin: i32 = 1;
        for w in 0..words {
            let eq0 = peq[w][cb.code() as usize];
            let xv = eq0 | mv[w];
            let eq = eq0 | u64::from(hin < 0);
            let xh = (((eq & pv[w]).wrapping_add(pv[w])) ^ pv[w]) | eq;
            let mut ph = mv[w] | !(xh | pv[w]);
            let mut mh = pv[w] & xh;
            if w == last_word {
                if (ph >> last_bit) & 1 == 1 {
                    score += 1;
                } else if (mh >> last_bit) & 1 == 1 {
                    score -= 1;
                }
            }
            let hout: i32 = i32::from((ph >> 63) & 1 == 1) - i32::from((mh >> 63) & 1 == 1);
            ph <<= 1;
            mh <<= 1;
            if hin > 0 {
                ph |= 1;
            } else if hin < 0 {
                mh |= 1;
            }
            pv[w] = mh | !(xv | ph);
            mv[w] = ph & xv;
            hin = hout;
        }
        visit(score as usize);
    }
    score as usize
}

/// Global Levenshtein distance via the Myers/Hyyrö bit-parallel algorithm.
///
/// Identical results to [`edit_distance`] at roughly 64 DP cells per machine
/// word; this is the kernel the CM-CPU baseline's throughput model is
/// calibrated against.
#[must_use]
pub fn edit_distance_myers(a: &[Base], b: &[Base]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    myers_columns(a, b, |_| {})
}

/// Anchored semi-global distance: `read` must align end-to-end, starting at
/// `reference[0]`, but any unconsumed reference suffix is free.
///
/// Formally `min_j D[m][j]` of the global DP matrix. This is the paper's ED
/// convention for read-vs-segment comparison (Fig. 2) and the ground truth
/// used by the Fig. 7 evaluation: pass the stored segment *plus* a few
/// context bases as `reference`.
///
/// # Examples
///
/// ```
/// use asmcap_genome::DnaSeq;
/// // Fig. 2, third example: reference AGCTGAGA followed by context base A.
/// let read: DnaSeq = "AGTGAGAA".parse()?;
/// let reference: DnaSeq = "AGCTGAGAA".parse()?;
/// assert_eq!(
///     asmcap_metrics::edit::anchored_semi_global(read.as_slice(), reference.as_slice()),
///     1,
/// );
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn anchored_semi_global(read: &[Base], reference: &[Base]) -> usize {
    if read.is_empty() {
        return 0; // empty read aligns for free anywhere
    }
    let mut best = read.len(); // D[m][0]
    myers_columns(read, reference, |score| best = best.min(score));
    best
}

/// One operation of a pairwise alignment, from `a` (rows) to `b` (columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// `a[i] == b[j]`.
    Match,
    /// `a[i] != b[j]`, substituted.
    Substitute,
    /// Base present in `a` but not `b`.
    Insert,
    /// Base present in `b` but not `a`.
    Delete,
}

/// A full global alignment: distance plus operation script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// The Levenshtein distance.
    pub distance: usize,
    /// Alignment operations from the start of both sequences to the end.
    pub ops: Vec<AlignOp>,
}

impl Alignment {
    /// Renders the script as a CIGAR-like string (`=`, `X`, `I`, `D`).
    #[must_use]
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut iter = self.ops.iter().peekable();
        while let Some(op) = iter.next() {
            let mut count = 1usize;
            while iter.peek() == Some(&op) {
                iter.next();
                count += 1;
            }
            let symbol = match op {
                AlignOp::Match => '=',
                AlignOp::Substitute => 'X',
                AlignOp::Insert => 'I',
                AlignOp::Delete => 'D',
            };
            out.push_str(&count.to_string());
            out.push(symbol);
        }
        out
    }
}

/// Computes a full global alignment with traceback (`O(mn)` space).
///
/// Used by the CM-CPU/ReSMA baselines and the read-mapping example to report
/// how a read aligns, not just how far it is.
///
/// # Examples
///
/// ```
/// use asmcap_genome::DnaSeq;
/// let a: DnaSeq = "ACGT".parse()?;
/// let b: DnaSeq = "AGGT".parse()?;
/// let alignment = asmcap_metrics::edit::align(a.as_slice(), b.as_slice());
/// assert_eq!(alignment.distance, 1);
/// assert_eq!(alignment.cigar(), "1=1X2=");
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn align(a: &[Base], b: &[Base]) -> Alignment {
    let m = a.len();
    let n = b.len();
    let width = n + 1;
    let mut table = vec![0usize; (m + 1) * width];
    for (j, cell) in table.iter_mut().enumerate().take(width) {
        *cell = j;
    }
    for i in 1..=m {
        table[i * width] = i;
        for j in 1..=n {
            let substitution = table[(i - 1) * width + j - 1] + usize::from(a[i - 1] != b[j - 1]);
            let deletion = table[(i - 1) * width + j] + 1;
            let insertion = table[i * width + j - 1] + 1;
            table[i * width + j] = substitution.min(deletion).min(insertion);
        }
    }
    let mut ops = Vec::with_capacity(m.max(n));
    let (mut i, mut j) = (m, n);
    while i > 0 || j > 0 {
        let here = table[i * width + j];
        if i > 0 && j > 0 {
            let diag = table[(i - 1) * width + j - 1];
            let matched = a[i - 1] == b[j - 1];
            if here == diag + usize::from(!matched) {
                ops.push(if matched {
                    AlignOp::Match
                } else {
                    AlignOp::Substitute
                });
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if i > 0 && here == table[(i - 1) * width + j] + 1 {
            ops.push(AlignOp::Insert);
            i -= 1;
        } else {
            ops.push(AlignOp::Delete);
            j -= 1;
        }
    }
    ops.reverse();
    Alignment {
        distance: table[m * width + n],
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::DnaSeq;
    use proptest::prelude::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    fn ed(a: &str, b: &str) -> usize {
        edit_distance(seq(a).as_slice(), seq(b).as_slice())
    }

    #[test]
    fn identical_is_zero() {
        assert_eq!(ed("ACGTACGT", "ACGTACGT"), 0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(ed("", "ACGT"), 4);
        assert_eq!(ed("ACGT", ""), 4);
        assert_eq!(ed("", ""), 0);
    }

    #[test]
    fn single_edits() {
        assert_eq!(ed("ACGT", "AGGT"), 1); // substitution
        assert_eq!(ed("ACGT", "ACGGT"), 1); // insertion
        assert_eq!(ed("ACGT", "AGT"), 1); // deletion
    }

    #[test]
    fn fig2_global_distances() {
        // Fig. 2 examples computed as global distances.
        assert_eq!(ed("AGCTGAGA", "ATCTGCGA"), 2);
    }

    #[test]
    fn fig2_semi_global_distances() {
        // Second example: read AGCATGAG vs reference AGCTGAGA; the trailing
        // reference base is unconsumed and free -> ED = 1.
        assert_eq!(
            anchored_semi_global(seq("AGCATGAG").as_slice(), seq("AGCTGAGA").as_slice()),
            1
        );
        // Third example: read AGTGAGAA vs reference AGCTGAGA plus one context
        // base 'A' -> a single deletion, ED = 1.
        assert_eq!(
            anchored_semi_global(seq("AGTGAGAA").as_slice(), seq("AGCTGAGAA").as_slice()),
            1
        );
        // First example is substitution-only, so the conventions agree.
        assert_eq!(
            anchored_semi_global(seq("ATCTGCGA").as_slice(), seq("AGCTGAGA").as_slice()),
            2
        );
    }

    #[test]
    fn banded_matches_full_within_limit() {
        let a = seq("ACGTACGTTTAGCAT");
        let b = seq("ACGAACGTTTGGCAT");
        let full = edit_distance(a.as_slice(), b.as_slice());
        assert_eq!(
            edit_distance_banded(a.as_slice(), b.as_slice(), 10),
            Some(full)
        );
    }

    #[test]
    fn banded_rejects_beyond_limit() {
        let a = seq("AAAAAAAA");
        let b = seq("TTTTTTTT");
        assert_eq!(edit_distance_banded(a.as_slice(), b.as_slice(), 3), None);
    }

    #[test]
    fn banded_length_difference_pruning() {
        let a = seq("AAAA");
        let b = seq("AAAAAAAAAA");
        assert_eq!(edit_distance_banded(a.as_slice(), b.as_slice(), 3), None);
        assert_eq!(edit_distance_banded(a.as_slice(), b.as_slice(), 6), Some(6));
    }

    #[test]
    fn banded_packed_matches_banded_on_slices() {
        use asmcap_genome::{PackedRef, PackedSeq};
        let genome = asmcap_genome::GenomeModel::uniform().generate(500, 9);
        let packed_ref = PackedRef::new(&genome);
        for (a_start, b_start, width, limit) in [
            (0usize, 0usize, 100usize, 5usize),
            (0, 5, 100, 8),
            (17, 221, 128, 4),
            (33, 33, 64, 0),
            (1, 300, 97, 16),
        ] {
            let a_slice = &genome.as_slice()[a_start..a_start + width];
            let b_slice = &genome.as_slice()[b_start..b_start + width];
            // Both an owned packing and a word-straddling view.
            let a_packed = PackedSeq::from_bases(a_slice);
            let b_view = packed_ref.segment(b_start, width);
            assert_eq!(
                edit_distance_banded_packed(&a_packed, &b_view, limit),
                edit_distance_banded(a_slice, b_slice, limit),
                "a={a_start} b={b_start} w={width} T={limit}"
            );
        }
        // Degenerate shapes.
        let empty = PackedSeq::default();
        assert_eq!(edit_distance_banded_packed(&empty, &empty, 0), Some(0));
        let four = PackedSeq::from_seq(&seq("ACGT"));
        assert_eq!(edit_distance_banded_packed(&empty, &four, 3), None);
        assert_eq!(edit_distance_banded_packed(&empty, &four, 4), Some(4));
    }

    #[test]
    fn myers_handles_multiword_patterns() {
        // 200-base pattern spans four 64-bit words.
        let a = asmcap_genome::GenomeModel::uniform().generate(200, 1);
        let mut bases = a.clone().into_bases();
        bases[50] = bases[50].substituted(0);
        bases.remove(120);
        bases.push(asmcap_genome::Base::A);
        let b = DnaSeq::from_bases(bases);
        assert_eq!(
            edit_distance_myers(a.as_slice(), b.as_slice()),
            edit_distance(a.as_slice(), b.as_slice())
        );
    }

    #[test]
    fn anchored_semi_global_is_bounded_by_global() {
        let read = seq("ACGTACGT");
        let reference = seq("ACGTACGTTTTT");
        let semi = anchored_semi_global(read.as_slice(), reference.as_slice());
        let global = edit_distance(read.as_slice(), reference.as_slice());
        assert!(semi <= global);
        assert_eq!(semi, 0);
    }

    #[test]
    fn align_reports_script() {
        let alignment = align(seq("ACGT").as_slice(), seq("ACT").as_slice());
        assert_eq!(alignment.distance, 1);
        assert_eq!(
            alignment
                .ops
                .iter()
                .filter(|o| **o == AlignOp::Insert)
                .count(),
            1
        );
        let alignment = align(seq("ACT").as_slice(), seq("ACGT").as_slice());
        assert_eq!(alignment.cigar(), "2=1D1=");
    }

    #[test]
    fn align_distance_matches_edit_distance() {
        let a = seq("GATTACAGATTACA");
        let b = seq("GCTTACAGATTAA");
        let alignment = align(a.as_slice(), b.as_slice());
        assert_eq!(
            alignment.distance,
            edit_distance(a.as_slice(), b.as_slice())
        );
    }

    fn arbitrary_seq(max_len: usize) -> impl Strategy<Value = DnaSeq> {
        proptest::collection::vec(0u8..4, 0..max_len)
            .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
    }

    use asmcap_genome::Base;

    proptest! {
        #[test]
        fn prop_myers_matches_dp(a in arbitrary_seq(180), b in arbitrary_seq(180)) {
            prop_assert_eq!(
                edit_distance_myers(a.as_slice(), b.as_slice()),
                edit_distance(a.as_slice(), b.as_slice())
            );
        }

        #[test]
        fn prop_banded_matches_dp(a in arbitrary_seq(60), b in arbitrary_seq(60), limit in 0usize..20) {
            let full = edit_distance(a.as_slice(), b.as_slice());
            let banded = edit_distance_banded(a.as_slice(), b.as_slice(), limit);
            if full <= limit {
                prop_assert_eq!(banded, Some(full));
            } else {
                prop_assert_eq!(banded, None);
            }
        }

        #[test]
        fn prop_triangle_inequality(
            a in arbitrary_seq(40),
            b in arbitrary_seq(40),
            c in arbitrary_seq(40)
        ) {
            let ab = edit_distance(a.as_slice(), b.as_slice());
            let bc = edit_distance(b.as_slice(), c.as_slice());
            let ac = edit_distance(a.as_slice(), c.as_slice());
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn prop_symmetry_and_identity(a in arbitrary_seq(60), b in arbitrary_seq(60)) {
            prop_assert_eq!(
                edit_distance(a.as_slice(), b.as_slice()),
                edit_distance(b.as_slice(), a.as_slice())
            );
            prop_assert_eq!(edit_distance(a.as_slice(), a.as_slice()), 0);
        }

        #[test]
        fn prop_ed_bounded_by_hamming(pairs in proptest::collection::vec((0u8..4, 0u8..4), 0..120)) {
            let a: DnaSeq = pairs.iter().map(|&(x, _)| Base::from_code(x)).collect();
            let b: DnaSeq = pairs.iter().map(|&(_, y)| Base::from_code(y)).collect();
            let hd = crate::hamming(a.as_slice(), b.as_slice());
            prop_assert!(edit_distance(a.as_slice(), b.as_slice()) <= hd);
        }

        #[test]
        fn prop_align_ops_replay(a in arbitrary_seq(50), b in arbitrary_seq(50)) {
            let alignment = align(a.as_slice(), b.as_slice());
            // Ops must consume exactly |a| rows and |b| columns.
            let rows: usize = alignment.ops.iter()
                .filter(|o| !matches!(o, AlignOp::Delete)).count();
            let cols: usize = alignment.ops.iter()
                .filter(|o| !matches!(o, AlignOp::Insert)).count();
            prop_assert_eq!(rows, a.len());
            prop_assert_eq!(cols, b.len());
            let cost = alignment.ops.iter()
                .filter(|o| !matches!(o, AlignOp::Match)).count();
            prop_assert_eq!(cost, alignment.distance);
        }
    }
}
