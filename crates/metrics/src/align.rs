//! GenASM-style banded bit-vector alignment **with traceback** over 2-bit
//! packed operands.
//!
//! [`edit_distance_banded_packed`](crate::edit_distance_banded_packed)
//! answers *how far* a read is from a segment; this module answers *how the
//! read aligns*: [`align_packed`] runs a banded Bitap/GenASM dynamic program
//! directly over [`PackedWords`] operands (no byte-per-base unpacking
//! anywhere) and walks the stored bit-vectors back into an exact edit
//! transcript — a [`Cigar`] whose cost equals the Levenshtein distance.
//!
//! # The 0-active representation
//!
//! Following GenASM (Senol Cali et al., MICRO 2020), the DP state is a
//! family of *status bit-vectors* `S[d][j]`, one per edit budget
//! `d ∈ 0..=band` and text position `j ∈ 0..=n`: bit `i-1` of `S[d][j]` is
//! **0** ("active") iff the length-`i` read prefix aligns to the length-`j`
//! text prefix within `d` edits, i.e. `D(i, j) ≤ d`. Each column is computed
//! from four word-parallel terms —
//!
//! * **match**: `(S[d][j-1] << 1) | !Peq[text[j]]` — free diagonal step;
//! * **substitution**: `S[d-1][j-1] << 1` — paid diagonal step;
//! * **deletion**: `S[d-1][j-1]` — consume a text base, no shift;
//! * **insertion**: `S[d-1][j] << 1` — consume a read base;
//!
//! ANDed together (0 = active, so AND is the union of the active sets),
//! with the shifted-in bit encoding the `i = 0` boundary row `D(0, j) = j`.
//! Unlike Bitap's free-prefix *search* variant, the boundary handling here
//! gives **global** alignment semantics: the whole read against the whole
//! segment, matching [`edit_distance`](crate::edit_distance).
//!
//! The minimal `d*` with the end bit active equals the edit distance, and a
//! greedy walk over the stored levels (match → substitution → deletion →
//! insertion) is guaranteed to emit a transcript of cost exactly `d*` — see
//! [`align_packed`]. Property tests pin both claims against the scalar DP
//! on lengths `1..=256`, including word-boundary-straddling segment views.

use crate::edit::AlignOp;
use asmcap_genome::PackedWords;
use std::fmt;

/// Base code at lane `i` of a packing (two bits, no unpack).
#[inline]
fn lane<S: PackedWords>(seq: &S, i: usize) -> u8 {
    ((seq.word(i / 32) >> (2 * (i % 32))) & 0b11) as u8
}

/// A run-length-encoded edit transcript (`=`, `X`, `I`, `D` runs).
///
/// Operations read `a → b` as in [`AlignOp`]: for the extension stage, `a`
/// is the read and `b` the reference segment, so `I` is a read base absent
/// from the reference and `D` a reference base absent from the read.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cigar {
    runs: Vec<(AlignOp, u32)>,
}

impl Cigar {
    /// An empty transcript.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a transcript from an explicit op sequence.
    #[must_use]
    pub fn from_ops(ops: &[AlignOp]) -> Self {
        let mut cigar = Self::new();
        for &op in ops {
            cigar.push(op);
        }
        cigar
    }

    /// Appends one operation, extending the trailing run when it matches.
    pub fn push(&mut self, op: AlignOp) {
        match self.runs.last_mut() {
            Some((last, count)) if *last == op => *count += 1,
            _ => self.runs.push((op, 1)),
        }
    }

    /// The run-length-encoded view.
    #[must_use]
    pub fn runs(&self) -> &[(AlignOp, u32)] {
        &self.runs
    }

    /// Whether the transcript is empty (both sequences were empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total operation count across all runs.
    #[must_use]
    pub fn ops_len(&self) -> usize {
        self.runs.iter().map(|&(_, n)| n as usize).sum()
    }

    /// Edit cost: every non-`Match` operation counts one.
    #[must_use]
    pub fn cost(&self) -> usize {
        self.runs
            .iter()
            .filter(|(op, _)| *op != AlignOp::Match)
            .map(|&(_, n)| n as usize)
            .sum()
    }

    /// Read bases consumed (`=`, `X`, and `I` runs).
    #[must_use]
    pub fn read_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|(op, _)| *op != AlignOp::Delete)
            .map(|&(_, n)| n as usize)
            .sum()
    }

    /// Reference bases consumed (`=`, `X`, and `D` runs).
    #[must_use]
    pub fn ref_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|(op, _)| *op != AlignOp::Insert)
            .map(|&(_, n)| n as usize)
            .sum()
    }

    /// Replays the transcript against packed operands, verifying every
    /// claim it makes: `=` runs cover equal bases, `X` runs unequal bases,
    /// and the walk consumes `read` and `reference` exactly. Returns the
    /// replayed edit cost, or `None` if the transcript does not reconstruct
    /// the pair — the property the traceback suite pins for every emitted
    /// alignment.
    #[must_use]
    pub fn check_replay<A: PackedWords, B: PackedWords>(
        &self,
        read: &A,
        reference: &B,
    ) -> Option<usize> {
        let (mut i, mut j, mut cost) = (0usize, 0usize, 0usize);
        for &(op, count) in &self.runs {
            for _ in 0..count {
                match op {
                    AlignOp::Match | AlignOp::Substitute => {
                        if i >= read.len() || j >= reference.len() {
                            return None;
                        }
                        let same = lane(read, i) == lane(reference, j);
                        if same != (op == AlignOp::Match) {
                            return None;
                        }
                        i += 1;
                        j += 1;
                    }
                    AlignOp::Insert => {
                        if i >= read.len() {
                            return None;
                        }
                        i += 1;
                    }
                    AlignOp::Delete => {
                        if j >= reference.len() {
                            return None;
                        }
                        j += 1;
                    }
                }
                if op != AlignOp::Match {
                    cost += 1;
                }
            }
        }
        (i == read.len() && j == reference.len()).then_some(cost)
    }
}

impl fmt::Display for Cigar {
    /// SAM-style extended CIGAR (`3=1X2D…`); an empty transcript renders
    /// `*`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.runs.is_empty() {
            return write!(f, "*");
        }
        for &(op, count) in &self.runs {
            let symbol = match op {
                AlignOp::Match => '=',
                AlignOp::Substitute => 'X',
                AlignOp::Insert => 'I',
                AlignOp::Delete => 'D',
            };
            write!(f, "{count}{symbol}")?;
        }
        Ok(())
    }
}

/// A read-to-reference alignment produced by the extension stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Reference position the aligned segment starts at.
    pub origin: usize,
    /// Levenshtein distance between the read and the segment.
    pub score: usize,
    /// The edit transcript; `cigar.cost() == score` always holds.
    pub cigar: Cigar,
}

impl fmt::Display for Alignment {
    /// `origin<tab>score<tab>cigar` — the SAM-ish column triple the CLI
    /// appends in extension mode.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\t{}\t{}", self.origin, self.score, self.cigar)
    }
}

/// The stored DP levels: level `d` holds `n + 1` bit-vectors of
/// `words` machine words each, laid out column-major.
struct Levels {
    words: usize,
    per_level: usize,
    levels: Vec<Vec<u64>>,
}

impl Levels {
    fn new(words: usize, columns: usize) -> Self {
        Self {
            words,
            per_level: words * columns,
            levels: Vec::new(),
        }
    }

    /// Allocates level `d` with every column's boundary initialised:
    /// column 0 of level `d` has bits `0..d` active (`D(i, 0) = i ≤ d`),
    /// all other bits dead; columns `1..=n` start all-dead and are filled
    /// by the recurrence.
    fn open_level(&mut self, d: usize) {
        let mut level = vec![!0u64; self.per_level];
        for (w, word) in level.iter_mut().enumerate().take(self.words) {
            let cleared = d.saturating_sub(w * 64).min(64);
            *word = if cleared == 64 { 0 } else { !0u64 << cleared };
        }
        self.levels.push(level);
    }

    /// Whether bit `i - 1` of `S[d][j]` is active, i.e. `D(i, j) ≤ d`;
    /// `i = 0` is the boundary row `D(0, j) = j`.
    fn active(&self, d: usize, j: usize, i: usize) -> bool {
        if i == 0 {
            return j <= d;
        }
        let bit = i - 1;
        let word = self.levels[d][j * self.words + bit / 64];
        (word >> (bit % 64)) & 1 == 0
    }
}

/// Banded global alignment of `read` against `reference` over packed words.
///
/// Returns `Some((score, cigar))` when the Levenshtein distance is within
/// `limit` (score equal to [`edit_distance`](crate::edit_distance), CIGAR
/// replaying at exactly that cost), `None` otherwise — mirroring
/// [`edit_distance_banded_packed`](crate::edit_distance_banded_packed)'s
/// contract, but with the transcript attached. Runtime is
/// `O(n · d* · ⌈m/64⌉)` words: only levels `0..=d*` are ever computed, so
/// near matches pay almost nothing beyond the distance check.
///
/// # Examples
///
/// ```
/// use asmcap_genome::{DnaSeq, PackedSeq};
/// let read = PackedSeq::from_seq(&"ACGTACGT".parse::<DnaSeq>()?);
/// let segment = PackedSeq::from_seq(&"ACGAACGT".parse::<DnaSeq>()?);
/// let (score, cigar) = asmcap_metrics::align_packed(&read, &segment, 3)
///     .expect("within the band");
/// assert_eq!(score, 1);
/// assert_eq!(cigar.to_string(), "3=1X4=");
/// assert_eq!(asmcap_metrics::align_packed(&read, &segment, 0), None);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn align_packed<A: PackedWords, B: PackedWords>(
    read: &A,
    reference: &B,
    limit: usize,
) -> Option<(usize, Cigar)> {
    let (m, n) = (read.len(), reference.len());
    // The distance never exceeds max(m, n), so a wider band buys nothing.
    let band = limit.min(m.max(n));
    if m.abs_diff(n) > band {
        return None;
    }
    if m == 0 || n == 0 {
        // One sequence is empty: the alignment is a single gap run.
        let mut cigar = Cigar::new();
        for _ in 0..n {
            cigar.push(AlignOp::Delete);
        }
        for _ in 0..m {
            cigar.push(AlignOp::Insert);
        }
        return Some((m.max(n), cigar));
    }
    let words = m.div_ceil(64);
    // Per-base match masks from the packed read, two bits at a time.
    let mut peq = vec![[0u64; 4]; words];
    for i in 0..m {
        peq[i / 64][lane(read, i) as usize] |= 1u64 << (i % 64);
    }
    let mut state = Levels::new(words, n + 1);
    let mut score = None;
    for d in 0..=band {
        let level = state.levels.len(); // == d; borrow-friendly handle
        state.open_level(d);
        for j in 1..=n {
            let code = lane(reference, j - 1) as usize;
            // Shift-in bits encode the i = 0 boundary row: the source
            // column's bit is dead iff its boundary distance exceeds the
            // source level's budget.
            let mut carry_match = u64::from(j - 1 > d);
            let mut carry_subst = u64::from(j > d);
            let mut carry_ins = u64::from(j >= d);
            for (w, masks) in peq.iter().enumerate() {
                let same_prev = state.levels[level][(j - 1) * words + w];
                let match_term = ((same_prev << 1) | carry_match) | !masks[code];
                carry_match = same_prev >> 63;
                let cell = if d == 0 {
                    match_term
                } else {
                    let lower_prev = state.levels[level - 1][(j - 1) * words + w];
                    let lower_cur = state.levels[level - 1][j * words + w];
                    let subst_term = (lower_prev << 1) | carry_subst;
                    let ins_term = (lower_cur << 1) | carry_ins;
                    carry_subst = lower_prev >> 63;
                    carry_ins = lower_cur >> 63;
                    match_term & subst_term & lower_prev & ins_term
                };
                state.levels[level][j * words + w] = cell;
            }
        }
        if state.active(d, n, m) {
            score = Some(d);
            break;
        }
    }
    let score = score?;
    // Greedy traceback, match-first. Invariant: D(i, j) ≤ d at every state;
    // the emitted cost is score - d_final, and since the walk is itself a
    // valid alignment, minimality of `score` forces d_final = 0 — the
    // transcript costs exactly the distance.
    let mut ops = Vec::with_capacity(m.max(n));
    let (mut i, mut j, mut d) = (m, n, score);
    while i > 0 || j > 0 {
        if i > 0
            && j > 0
            && lane(read, i - 1) == lane(reference, j - 1)
            && state.active(d, j - 1, i - 1)
        {
            ops.push(AlignOp::Match);
            i -= 1;
            j -= 1;
        } else if d > 0 && i > 0 && j > 0 && state.active(d - 1, j - 1, i - 1) {
            ops.push(AlignOp::Substitute);
            i -= 1;
            j -= 1;
            d -= 1;
        } else if d > 0 && j > 0 && state.active(d - 1, j - 1, i) {
            ops.push(AlignOp::Delete);
            j -= 1;
            d -= 1;
        } else if d > 0 && i > 0 && state.active(d - 1, j, i - 1) {
            ops.push(AlignOp::Insert);
            i -= 1;
            d -= 1;
        } else {
            // lint: panic-ok — D(i, j) ≤ d guarantees one predecessor term
            // of the DP recurrence holds; reaching here is a kernel bug.
            unreachable!("traceback stuck at i={i} j={j} d={d}");
        }
    }
    debug_assert_eq!(d, 0, "greedy traceback must spend the whole budget");
    ops.reverse();
    Some((score, Cigar::from_ops(&ops)))
}

/// Scalar reference alignment: the full-matrix traceback of
/// [`edit::align`](crate::edit::align) re-encoded as a [`Cigar`]. This is
/// the naive DP the packed kernel is property-tested against.
#[must_use]
pub fn align_bases(a: &[asmcap_genome::Base], b: &[asmcap_genome::Base]) -> (usize, Cigar) {
    let alignment = crate::edit::align(a, b);
    (alignment.distance, Cigar::from_ops(&alignment.ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance;
    use asmcap_genome::{Base, DnaSeq, GenomeModel, PackedRef, PackedSeq};
    use proptest::prelude::*;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_seq(&s.parse::<DnaSeq>().expect("valid test sequence"))
    }

    fn check(a: &str, b: &str, limit: usize) -> Option<(usize, String)> {
        let (pa, pb) = (seq(a), seq(b));
        align_packed(&pa, &pb, limit).map(|(score, cigar)| {
            assert_eq!(
                cigar.check_replay(&pa, &pb),
                Some(score),
                "cigar {cigar} does not replay {a} vs {b} at cost {score}"
            );
            (score, cigar.to_string())
        })
    }

    #[test]
    fn identical_reads_are_all_match() {
        assert_eq!(check("ACGTACGT", "ACGTACGT", 0), Some((0, "8=".into())));
    }

    #[test]
    fn single_edits_have_exact_transcripts() {
        assert_eq!(check("ACGT", "AGGT", 2), Some((1, "1=1X2=".into())));
        assert_eq!(check("ACGT", "ACGGT", 2), Some((1, "2=1D2=".into())));
        assert_eq!(check("ACGT", "AGT", 2), Some((1, "1=1I2=".into())));
    }

    #[test]
    fn band_rejection_mirrors_the_banded_distance() {
        assert_eq!(check("AAAA", "TTTT", 3), None);
        assert_eq!(check("AAAA", "TTTT", 4), Some((4, "4X".into())));
        // Length-difference pruning fires before any DP work.
        assert_eq!(check("AAAA", "AAAAAAAAAA", 3), None);
    }

    #[test]
    fn empty_operands_are_pure_gap_runs() {
        assert_eq!(check("", "", 0), Some((0, "*".into())));
        assert_eq!(check("ACG", "", 3), Some((3, "3I".into())));
        assert_eq!(check("", "ACG", 3), Some((3, "3D".into())));
        assert_eq!(check("ACG", "", 2), None);
    }

    #[test]
    fn oversized_limit_is_clamped_not_overallocated() {
        assert_eq!(check("ACGT", "TGCA", usize::MAX), Some((4, "4X".into())));
    }

    #[test]
    fn cigar_accessors_agree_with_the_transcript() {
        let (pa, pb) = (seq("ACGTACGT"), seq("ACGAAACGT"));
        let (score, cigar) = align_packed(&pa, &pb, 4).expect("within band");
        assert_eq!(cigar.cost(), score);
        assert_eq!(cigar.read_len(), 8);
        assert_eq!(cigar.ref_len(), 9);
        assert_eq!(
            cigar.ops_len(),
            cigar.runs().iter().map(|&(_, n)| n as usize).sum()
        );
        assert!(!cigar.is_empty());
    }

    #[test]
    fn replay_rejects_forged_transcripts() {
        let (pa, pb) = (seq("ACGT"), seq("ACGT"));
        // Wrong op kind: claims a substitution where bases match.
        let forged = Cigar::from_ops(&[
            AlignOp::Substitute,
            AlignOp::Match,
            AlignOp::Match,
            AlignOp::Match,
        ]);
        assert_eq!(forged.check_replay(&pa, &pb), None);
        // Wrong length: leaves a reference base unconsumed.
        let short = Cigar::from_ops(&[AlignOp::Match; 3]);
        assert_eq!(short.check_replay(&pa, &pb), None);
        // Overruns the read.
        let long = Cigar::from_ops(&[AlignOp::Match; 5]);
        assert_eq!(long.check_replay(&pa, &pb), None);
    }

    /// Deterministic sweep of every length 1..=256: mutate a window of the
    /// genome, align packed, and pin score == scalar DP + exact replay.
    /// Word-straddling reference views are covered via `PackedRef::segment`
    /// at odd offsets.
    #[test]
    fn packed_matches_scalar_dp_on_all_lengths_to_256() {
        let genome = GenomeModel::uniform().generate(1_024, 77);
        let packed_ref = PackedRef::new(&genome);
        for len in 1..=256usize {
            let offset = (len * 7) % 96 + 1; // odd, word-straddling offsets
            let read_bases: Vec<Base> = genome.as_slice()[offset..offset + len]
                .iter()
                .enumerate()
                .map(|(i, &b)| if i % 37 == 5 { b.substituted(1) } else { b })
                .collect();
            let read = PackedSeq::from_bases(&read_bases);
            let view = packed_ref.segment(offset, len);
            let expected = edit_distance(&read_bases, &genome.as_slice()[offset..offset + len]);
            let (score, cigar) = align_packed(&read, &view, len).expect("distance is within len");
            assert_eq!(score, expected, "len={len} offset={offset}");
            assert_eq!(
                cigar.check_replay(&read, &view),
                Some(score),
                "len={len} offset={offset}: {cigar}"
            );
        }
    }

    fn arbitrary_bases(max_len: usize) -> impl Strategy<Value = Vec<Base>> {
        proptest::collection::vec(0u8..4, 0..max_len)
            .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
    }

    proptest! {
        /// Score equals the scalar DP (None exactly when beyond the limit)
        /// and every emitted CIGAR replays at exactly the claimed cost.
        #[test]
        fn prop_score_and_replay_match_scalar(
            a in arbitrary_bases(96),
            b in arbitrary_bases(96),
            limit in 0usize..24,
        ) {
            let pa = PackedSeq::from_bases(&a);
            let pb = PackedSeq::from_bases(&b);
            let full = edit_distance(&a, &b);
            match align_packed(&pa, &pb, limit) {
                Some((score, cigar)) => {
                    prop_assert!(full <= limit);
                    prop_assert_eq!(score, full);
                    prop_assert_eq!(cigar.check_replay(&pa, &pb), Some(score));
                    prop_assert_eq!(cigar.read_len(), a.len());
                    prop_assert_eq!(cigar.ref_len(), b.len());
                }
                None => prop_assert!(full > limit),
            }
        }

        /// Word-straddling `SegmentView` operands behave exactly like owned
        /// packings of the same bases.
        #[test]
        fn prop_straddling_views_equal_owned_packings(
            start in 0usize..192,
            width in 1usize..200,
            edits in 0usize..6,
        ) {
            let genome = GenomeModel::uniform().generate(512, 11);
            let packed_ref = PackedRef::new(&genome);
            let mut read_bases: Vec<Base> =
                genome.as_slice()[start..start + width].to_vec();
            for e in 0..edits.min(width) {
                let at = (e * 31) % width;
                read_bases[at] = read_bases[at].substituted((e % 3) as u8 + 1);
            }
            let read = PackedSeq::from_bases(&read_bases);
            let view = packed_ref.segment(start, width);
            let owned = PackedSeq::from_bases(&genome.as_slice()[start..start + width]);
            let via_view = align_packed(&read, &view, width);
            let via_owned = align_packed(&read, &owned, width);
            prop_assert_eq!(via_view.clone(), via_owned);
            let (score, cigar) = via_view.expect("distance bounded by width");
            prop_assert_eq!(score, edit_distance(&read_bases, &genome.as_slice()[start..start + width]));
            prop_assert_eq!(cigar.check_replay(&read, &view), Some(score));
        }

        /// The packed traceback agrees with the scalar full-matrix
        /// traceback on cost, and both replay (op scripts may differ in
        /// tie-breaking, costs may not).
        #[test]
        fn prop_packed_and_scalar_tracebacks_cost_the_same(
            a in arbitrary_bases(64),
            b in arbitrary_bases(64),
        ) {
            let (scalar_score, scalar_cigar) = align_bases(&a, &b);
            let pa = PackedSeq::from_bases(&a);
            let pb = PackedSeq::from_bases(&b);
            let (packed_score, packed_cigar) =
                align_packed(&pa, &pb, a.len().max(b.len()))
                    .expect("distance bounded by max length");
            prop_assert_eq!(packed_score, scalar_score);
            prop_assert_eq!(scalar_cigar.check_replay(&pa, &pb), Some(scalar_score));
            prop_assert_eq!(packed_cigar.check_replay(&pa, &pb), Some(packed_score));
        }
    }
}
