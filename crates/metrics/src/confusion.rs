//! Classification bookkeeping: TP/FP/FN/TN, sensitivity, precision, F1.
//!
//! The paper scores matchers with the F1 score (Eq. 3–4): *sensitivity* =
//! TP/(TP+FN), *precision* = TP/(TP+FP), F1 = their harmonic mean, where a
//! "positive" is a (read, segment) pair whose matching result is `match`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Counts of classification outcomes over a set of binary decisions.
///
/// # Examples
///
/// ```
/// use asmcap_metrics::ConfusionMatrix;
/// let mut cm = ConfusionMatrix::new();
/// cm.record(true, true);   // TP
/// cm.record(false, true);  // FP
/// cm.record(true, false);  // FN
/// cm.record(false, false); // TN
/// assert_eq!(cm.sensitivity(), 0.5);
/// assert_eq!(cm.precision(), 0.5);
/// assert_eq!(cm.f1(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfusionMatrix {
    /// Predicted match, truly a match.
    pub true_positives: u64,
    /// Predicted match, truly not a match.
    pub false_positives: u64,
    /// Predicted no-match, truly a match.
    pub false_negatives: u64,
    /// Predicted no-match, truly not a match.
    pub true_negatives: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decision: `truth` is the ground-truth label, `predicted`
    /// the matcher's output.
    pub fn record(&mut self, truth: bool, predicted: bool) {
        match (truth, predicted) {
            (true, true) => self.true_positives += 1,
            (false, true) => self.false_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Total number of recorded decisions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }

    /// Sensitivity (recall): TP / (TP + FN). Returns 1 when there are no
    /// ground-truth positives (a matcher cannot miss what does not exist).
    #[must_use]
    pub fn sensitivity(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_negatives,
        )
    }

    /// Precision: TP / (TP + FP). Returns 1 when nothing was predicted
    /// positive.
    #[must_use]
    pub fn precision(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives,
        )
    }

    /// F1 score (paper Eq. 4): harmonic mean of sensitivity and precision.
    ///
    /// Returns 0 when both are 0.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let s = self.sensitivity();
        let p = self.precision();
        if s + p == 0.0 {
            0.0
        } else {
            2.0 * s * p / (s + p)
        }
    }

    /// Plain accuracy: (TP + TN) / total. Returns 1 on an empty matrix.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        ratio(self.true_positives + self.true_negatives, self.total())
    }
}

fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        1.0
    } else {
        numerator as f64 / denominator as f64
    }
}

impl Add for ConfusionMatrix {
    type Output = ConfusionMatrix;

    fn add(mut self, rhs: ConfusionMatrix) -> ConfusionMatrix {
        self += rhs;
        self
    }
}

impl AddAssign for ConfusionMatrix {
    fn add_assign(&mut self, rhs: ConfusionMatrix) {
        self.true_positives += rhs.true_positives;
        self.false_positives += rhs.false_positives;
        self.false_negatives += rhs.false_negatives;
        self.true_negatives += rhs.true_negatives;
    }
}

impl Sum for ConfusionMatrix {
    fn sum<I: Iterator<Item = ConfusionMatrix>>(iter: I) -> ConfusionMatrix {
        iter.fold(ConfusionMatrix::new(), Add::add)
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TP={} FP={} FN={} TN={} (F1={:.2}%)",
            self.true_positives,
            self.false_positives,
            self.false_negatives,
            self.true_negatives,
            self.f1() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_classifier_scores_one() {
        let mut cm = ConfusionMatrix::new();
        for _ in 0..10 {
            cm.record(true, true);
            cm.record(false, false);
        }
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn all_wrong_scores_zero() {
        let mut cm = ConfusionMatrix::new();
        cm.record(true, false);
        cm.record(false, true);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn empty_matrix_is_degenerate_but_defined() {
        let cm = ConfusionMatrix::new();
        assert_eq!(cm.sensitivity(), 1.0);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn matrices_sum_componentwise() {
        let mut a = ConfusionMatrix::new();
        a.record(true, true);
        let mut b = ConfusionMatrix::new();
        b.record(false, true);
        let c = a + b;
        assert_eq!(c.true_positives, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.total(), 2);
        let summed: ConfusionMatrix = [a, b].into_iter().sum();
        assert_eq!(summed, c);
    }

    #[test]
    fn display_is_informative() {
        let mut cm = ConfusionMatrix::new();
        cm.record(true, true);
        let rendered = cm.to_string();
        assert!(rendered.contains("TP=1"));
        assert!(rendered.contains("F1=100.00%"));
    }

    proptest! {
        #[test]
        fn prop_scores_in_unit_interval(
            outcomes in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..100)
        ) {
            let mut cm = ConfusionMatrix::new();
            for (truth, predicted) in outcomes {
                cm.record(truth, predicted);
            }
            for score in [cm.sensitivity(), cm.precision(), cm.f1(), cm.accuracy()] {
                prop_assert!((0.0..=1.0).contains(&score));
            }
        }

        #[test]
        fn prop_f1_below_max_component(
            tp in 0u64..50, fp in 0u64..50, fn_ in 0u64..50, tn in 0u64..50
        ) {
            let cm = ConfusionMatrix {
                true_positives: tp,
                false_positives: fp,
                false_negatives: fn_,
                true_negatives: tn,
            };
            let f1 = cm.f1();
            prop_assert!(f1 <= cm.sensitivity().max(cm.precision()) + 1e-12);
            prop_assert!(f1 + 1e-12 >= cm.sensitivity().min(cm.precision()).min(f1));
        }
    }
}
