//! ED\* — the neighbor-tolerant distance evaluated by EDAM/ASMCap arrays.
//!
//! Cell `i` of an array row stores reference base `S[i]` and receives the
//! read bases `R[i−1], R[i], R[i+1]` on its searchlines (paper Fig. 4c). In
//! ED\* mode (MUX select `S = 1`) the cell *matches* iff the stored base
//! equals any of the three; in HD mode (`S = 0`) only the co-located
//! comparison counts. ED\* is the number of mismatched cells, `n_mis`, and
//! the matchline settles at `V_ML = n_mis/N · V_DD`.
//!
//! Boundary cells see only the two searchline pairs that physically exist.
//!
//! The functions here are the scalar reference implementations; the
//! word-parallel equivalents over 2-bit packed sequences — the ones the
//! mapping backends actually run — are [`crate::kernels::ed_star_packed`]
//! and [`crate::kernels::ed_star_hamming_packed`].
//!
//! # Which sequence goes where?
//!
//! ED\* is *not* symmetric: a base **deleted from the read** leaves a stored
//! base that appears nowhere in its window (cost 1), whereas a base
//! **inserted into the read** costs nothing locally (every stored base is
//! still within ±1 of its partner). The paper's Fig. 2 numeric examples
//! (`HD=5, ED*=1, ED=1` and `HD=5, ED*=0, ED=1`) come out exactly when the
//! *second* printed sequence is the stored row — the convention the tests in
//! this module encode.

use asmcap_genome::Base;

/// The three partial matching results of one ASMCap cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellMatch {
    /// `O_L`: stored base equals the read base one position to the left.
    pub left: bool,
    /// `O_C`: stored base equals the co-located read base.
    pub center: bool,
    /// `O_R`: stored base equals the read base one position to the right.
    pub right: bool,
}

impl CellMatch {
    /// ED\*-mode cell output: match iff any partial result matched
    /// (`O = O_C + O_L + O_R` with MUX select `S = 1`).
    #[must_use]
    pub fn any(&self) -> bool {
        self.left || self.center || self.right
    }
}

/// Per-cell matching profile of one row search: everything the array's
/// comparison logic produces before the capacitors aggregate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdStarProfile {
    cells: Vec<CellMatch>,
}

impl EdStarProfile {
    /// The per-cell partial results, one entry per stored base.
    #[must_use]
    pub fn cells(&self) -> &[CellMatch] {
        &self.cells
    }

    /// ED\*: number of cells with no partial match (`n_mis` in ED\* mode).
    #[must_use]
    pub fn ed_star(&self) -> usize {
        self.cells.iter().filter(|c| !c.any()).count()
    }

    /// Hamming distance: number of cells whose co-located comparison failed
    /// (`n_mis` in HD mode, MUX select `S = 0`).
    #[must_use]
    pub fn hamming(&self) -> usize {
        self.cells.iter().filter(|c| !c.center).count()
    }

    /// Row width (number of cells).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the row is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Computes the full per-cell profile of searching `read` against a row
/// storing `stored`.
///
/// # Panics
///
/// Panics if the sequences have different lengths — a CAM row is exactly as
/// wide as the read it is searched with.
///
/// # Examples
///
/// ```
/// use asmcap_genome::DnaSeq;
/// use asmcap_metrics::ed_star_profile;
/// let stored: DnaSeq = "ACCA".parse()?;
/// let read: DnaSeq = "CACA".parse()?;
/// let profile = ed_star_profile(stored.as_slice(), read.as_slice());
/// assert!(profile.cells()[0].right); // A found to the right
/// assert_eq!(profile.ed_star(), 0);
/// assert_eq!(profile.hamming(), 2);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn ed_star_profile(stored: &[Base], read: &[Base]) -> EdStarProfile {
    assert_eq!(
        stored.len(),
        read.len(),
        "ED* compares a read against an equally wide stored row"
    );
    let cells = stored
        .iter()
        .enumerate()
        .map(|(i, &s)| CellMatch {
            left: i > 0 && read[i - 1] == s,
            center: read[i] == s,
            right: i + 1 < read.len() && read[i + 1] == s,
        })
        .collect();
    EdStarProfile { cells }
}

/// ED\* between a stored row and a read: the mismatched-cell count `n_mis`.
///
/// Equivalent to [`ed_star_profile`]`().ed_star()` without materialising the
/// per-cell profile.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
///
/// # Examples
///
/// ```
/// use asmcap_genome::DnaSeq;
/// // Paper Fig. 2, second example: stored = AGCATGAG, read = AGCTGAGA.
/// let stored: DnaSeq = "AGCATGAG".parse()?;
/// let read: DnaSeq = "AGCTGAGA".parse()?;
/// assert_eq!(asmcap_metrics::ed_star(stored.as_slice(), read.as_slice()), 1);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn ed_star(stored: &[Base], read: &[Base]) -> usize {
    assert_eq!(
        stored.len(),
        read.len(),
        "ED* compares a read against an equally wide stored row"
    );
    stored
        .iter()
        .enumerate()
        .filter(|&(i, &s)| {
            let left = i > 0 && read[i - 1] == s;
            let center = read[i] == s;
            let right = i + 1 < read.len() && read[i + 1] == s;
            !(left || center || right)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::edit_distance;
    use asmcap_genome::DnaSeq;
    use proptest::prelude::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    fn star(stored: &str, read: &str) -> usize {
        ed_star(seq(stored).as_slice(), seq(read).as_slice())
    }

    #[test]
    fn fig2_numeric_examples() {
        // Fig. 2 prints (S1, S2) pairs with HD/ED*/ED; the second sequence is
        // the stored row (see module docs).
        // Example 1: substitutions only -> HD=2, ED*=2.
        assert_eq!(star("ATCTGCGA", "AGCTGAGA"), 2);
        assert_eq!(
            hamming(seq("ATCTGCGA").as_slice(), seq("AGCTGAGA").as_slice()),
            2
        );
        // Example 2: read deleted one base relative to the stored row ->
        // HD=5, ED*=1.
        assert_eq!(star("AGCATGAG", "AGCTGAGA"), 1);
        assert_eq!(
            hamming(seq("AGCATGAG").as_slice(), seq("AGCTGAGA").as_slice()),
            5
        );
        // Example 3: read inserted one base -> HD=5, ED*=0.
        assert_eq!(star("AGTGAGAA", "AGCTGAGA"), 0);
        assert_eq!(
            hamming(seq("AGTGAGAA").as_slice(), seq("AGCTGAGA").as_slice()),
            5
        );
    }

    #[test]
    fn fig2_partial_match_labels() {
        // Top row of Fig. 2: middle cell of a 3-base row storing "C".
        let profile = ed_star_profile(seq("ACC").as_slice(), seq("CTA").as_slice());
        assert!(profile.cells()[1].left && !profile.cells()[1].center);
        let profile = ed_star_profile(seq("ACC").as_slice(), seq("GCT").as_slice());
        assert!(profile.cells()[1].center);
        let profile = ed_star_profile(seq("ACC").as_slice(), seq("AGC").as_slice());
        assert!(profile.cells()[1].right && !profile.cells()[1].center);
        let profile = ed_star_profile(seq("ACC").as_slice(), seq("TGA").as_slice());
        assert!(!profile.cells()[1].any());
    }

    #[test]
    fn identical_rows_match_everywhere() {
        let s = seq("ACGTACGTAC");
        assert_eq!(ed_star(s.as_slice(), s.as_slice()), 0);
        let profile = ed_star_profile(s.as_slice(), s.as_slice());
        assert!(profile.cells().iter().all(|c| c.center));
    }

    #[test]
    fn single_substitution_may_hide() {
        // Stored ACA, read AAA: the substituted centre cell still matches via
        // its neighbours? stored C vs window {A,A,A} -> mismatch here.
        assert_eq!(star("ACA", "AAA"), 1);
        // Stored ACA, read ACC -> cell 2 stores A, window {C,C} -> mismatch;
        // cell 1 stores C, window {A,C,C} -> match.
        assert_eq!(star("ACA", "ACC"), 1);
        // Hidden substitution: stored CAG, read CGA -> cell 1 stores A, window
        // {C,G,A} matches right; cell 2 stores G, window {G,A} matches left.
        assert_eq!(star("CAG", "CGA"), 0);
    }

    #[test]
    fn boundary_cells_have_truncated_windows() {
        let profile = ed_star_profile(seq("AC").as_slice(), seq("CA").as_slice());
        // Cell 0 stores A, window {C, A}: right matches.
        assert!(!profile.cells()[0].left && profile.cells()[0].right);
        // Cell 1 stores C, window {C, A}: left matches.
        assert!(profile.cells()[1].left && !profile.cells()[1].right);
        assert_eq!(profile.ed_star(), 0);
        assert_eq!(profile.hamming(), 2);
    }

    #[test]
    #[should_panic(expected = "equally wide")]
    fn length_mismatch_panics() {
        let _ = ed_star(seq("ACG").as_slice(), seq("AC").as_slice());
    }

    #[test]
    fn empty_rows_have_zero_distance() {
        assert_eq!(ed_star(&[], &[]), 0);
    }

    #[test]
    fn consecutive_deletions_break_ed_star() {
        // Read lost two consecutive bases relative to the stored row: the
        // tail shifts by 2, beyond the ±1 window, so ED* blows up while the
        // true edit distance stays small. This is the TASR misjudgment
        // (Fig. 6). A non-repetitive sequence is required, otherwise the
        // shifted tail can still match coincidentally.
        let stored = asmcap_genome::GenomeModel::uniform().generate(32, 77);
        let mut read_bases = stored.clone().into_bases();
        read_bases.drain(8..10); // two consecutive deletions
        read_bases.extend([asmcap_genome::Base::A, asmcap_genome::Base::A]);
        let read = DnaSeq::from_bases(read_bases);
        let e_star = ed_star(stored.as_slice(), read.as_slice());
        let e_d = edit_distance(stored.as_slice(), read.as_slice());
        assert!(
            e_star > e_d + 2,
            "expected ED* ({e_star}) to exceed ED ({e_d}) after consecutive deletions"
        );
    }

    use crate::hamming::hamming;
    use asmcap_genome::Base;

    fn arbitrary_pairs(max_len: usize) -> impl Strategy<Value = (DnaSeq, DnaSeq)> {
        proptest::collection::vec((0u8..4, 0u8..4), 1..max_len).prop_map(|pairs| {
            let a = pairs.iter().map(|&(x, _)| Base::from_code(x)).collect();
            let b = pairs.iter().map(|&(_, y)| Base::from_code(y)).collect();
            (a, b)
        })
    }

    proptest! {
        #[test]
        fn prop_ed_star_bounded_by_hamming((stored, read) in arbitrary_pairs(200)) {
            let profile = ed_star_profile(stored.as_slice(), read.as_slice());
            prop_assert!(profile.ed_star() <= profile.hamming());
            prop_assert_eq!(profile.hamming(), hamming(stored.as_slice(), read.as_slice()));
            prop_assert_eq!(profile.ed_star(), ed_star(stored.as_slice(), read.as_slice()));
        }

        #[test]
        fn prop_self_distance_zero(codes in proptest::collection::vec(0u8..4, 0..200)) {
            let s: DnaSeq = codes.into_iter().map(Base::from_code).collect();
            prop_assert_eq!(ed_star(s.as_slice(), s.as_slice()), 0);
        }

        #[test]
        fn prop_single_insertion_costs_nothing_locally(
            codes in proptest::collection::vec(0u8..4, 8..100),
            pos in 1usize..7,
            extra in 0u8..4
        ) {
            // Insert a base into the read: every stored base is still within
            // ±1 of its partner up to the row end, so ED* stays small (only
            // the final stored base can fall off the end).
            let stored: DnaSeq = codes.iter().copied().map(Base::from_code).collect();
            let mut read_bases: Vec<Base> = codes.iter().copied().map(Base::from_code).collect();
            read_bases.insert(pos, Base::from_code(extra));
            read_bases.truncate(stored.len());
            let read = DnaSeq::from_bases(read_bases);
            prop_assert!(ed_star(stored.as_slice(), read.as_slice()) <= 1);
        }
    }
}
