//! Hamming distance between equal-length sequences.
//!
//! The word-parallel variant over 2-bit packings lives in
//! [`crate::kernels::hamming_packed`].

use asmcap_genome::Base;

/// Counts positions where `a` and `b` differ.
///
/// This is the distance an ASMCap array computes in HD mode (MUX select
/// `S = 0`, paper Fig. 4c), used by the HDAC strategy.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use asmcap_genome::DnaSeq;
/// let a: DnaSeq = "AGCTGAGA".parse()?;
/// let b: DnaSeq = "ATCTGCGA".parse()?;
/// assert_eq!(asmcap_metrics::hamming(a.as_slice(), b.as_slice()), 2);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn hamming(a: &[Base], b: &[Base]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::DnaSeq;
    use proptest::prelude::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let s = seq("ACGTACGT");
        assert_eq!(hamming(s.as_slice(), s.as_slice()), 0);
    }

    #[test]
    fn fig2_first_example() {
        // Paper Fig. 2: S1=AGCTGAGA, S2=ATCTGCGA -> HD=2.
        assert_eq!(
            hamming(seq("AGCTGAGA").as_slice(), seq("ATCTGCGA").as_slice()),
            2
        );
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(hamming(&[], &[]), 0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        let _ = hamming(seq("ACG").as_slice(), seq("AC").as_slice());
    }

    proptest! {
        #[test]
        fn prop_symmetric(pairs in proptest::collection::vec((0u8..4, 0u8..4), 0..200)) {
            let a: DnaSeq = pairs.iter().map(|&(x, _)| Base::from_code(x)).collect();
            let b: DnaSeq = pairs.iter().map(|&(_, y)| Base::from_code(y)).collect();
            prop_assert_eq!(
                hamming(a.as_slice(), b.as_slice()),
                hamming(b.as_slice(), a.as_slice())
            );
        }
    }
}
