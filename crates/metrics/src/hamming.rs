//! Hamming distance between equal-length sequences.

use asmcap_genome::{Base, PackedSeq};

/// Counts positions where `a` and `b` differ.
///
/// This is the distance an ASMCap array computes in HD mode (MUX select
/// `S = 0`, paper Fig. 4c), used by the HDAC strategy.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use asmcap_genome::DnaSeq;
/// let a: DnaSeq = "AGCTGAGA".parse()?;
/// let b: DnaSeq = "ATCTGCGA".parse()?;
/// assert_eq!(asmcap_metrics::hamming(a.as_slice(), b.as_slice()), 2);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn hamming(a: &[Base], b: &[Base]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Word-parallel Hamming distance over 2-bit packed sequences.
///
/// Equivalent to [`hamming`] but ~16× faster on long sequences; used by the
/// software baselines and the benchmark kernels.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
#[must_use]
pub fn hamming_packed(a: &PackedSeq, b: &PackedSeq) -> usize {
    a.hamming_distance(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::DnaSeq;
    use proptest::prelude::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let s = seq("ACGTACGT");
        assert_eq!(hamming(s.as_slice(), s.as_slice()), 0);
    }

    #[test]
    fn fig2_first_example() {
        // Paper Fig. 2: S1=AGCTGAGA, S2=ATCTGCGA -> HD=2.
        assert_eq!(
            hamming(seq("AGCTGAGA").as_slice(), seq("ATCTGCGA").as_slice()),
            2
        );
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(hamming(&[], &[]), 0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        let _ = hamming(seq("ACG").as_slice(), seq("AC").as_slice());
    }

    proptest! {
        #[test]
        fn prop_packed_agrees_with_naive(
            pairs in proptest::collection::vec((0u8..4, 0u8..4), 0..400)
        ) {
            let a: DnaSeq = pairs.iter().map(|&(x, _)| Base::from_code(x)).collect();
            let b: DnaSeq = pairs.iter().map(|&(_, y)| Base::from_code(y)).collect();
            prop_assert_eq!(
                hamming(a.as_slice(), b.as_slice()),
                hamming_packed(&PackedSeq::from_seq(&a), &PackedSeq::from_seq(&b))
            );
        }

        #[test]
        fn prop_symmetric(pairs in proptest::collection::vec((0u8..4, 0u8..4), 0..200)) {
            let a: DnaSeq = pairs.iter().map(|&(x, _)| Base::from_code(x)).collect();
            let b: DnaSeq = pairs.iter().map(|&(_, y)| Base::from_code(y)).collect();
            prop_assert_eq!(
                hamming(a.as_slice(), b.as_slice()),
                hamming(b.as_slice(), a.as_slice())
            );
        }
    }
}
