//! String distance metrics for the ASMCap reproduction.
//!
//! Approximate string matching in the paper revolves around three distances
//! over DNA sequences (paper Fig. 2):
//!
//! * **HD** — [`mod@hamming`]: position-wise mismatches;
//! * **ED** — [`edit`]: Levenshtein edit distance, the ground truth. Three
//!   implementations with identical results: full dynamic programming,
//!   threshold-banded (Ukkonen), and Myers' bit-parallel algorithm;
//! * **ED\*** — [`edstar`]: the neighbor-tolerant distance an EDAM/ASMCap
//!   CAM array evaluates in one shot, where each stored base also matches
//!   the read base's left and right neighbors.
//!
//! [`kernels`] holds the word-parallel variants of HD and ED\* over 2-bit
//! packed sequences ([`ed_star_packed`], [`hamming_packed`]) — the hot path
//! every mapping backend runs on; the scalar walks above remain as the
//! readable reference implementations the kernels are property-tested
//! against.
//!
//! [`align`] goes one step beyond distances: a GenASM-style banded
//! bit-vector DP **with traceback** over the same packed operands, emitting
//! [`Cigar`] edit transcripts for the pipeline's extension stage.
//!
//! [`confusion`] provides the TP/FP/FN/TN bookkeeping and the F1 score used
//! throughout the evaluation (paper Eq. 3–4), and [`stats`] small numeric
//! helpers shared by the experiment harness.

// Unsafe is denied crate-wide and allowed back in exactly one place: the
// AVX2 lane loops in `kernels::avx2`, entered only behind a runtime
// `is_x86_feature_detected!` check (the `simd` feature compiles them out
// entirely).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod confusion;
pub mod edit;
pub mod edstar;
pub mod hamming;
pub mod kernels;
pub mod stats;

pub use align::{align_bases, align_packed, Alignment, Cigar};
pub use confusion::ConfusionMatrix;
pub use edit::{
    edit_distance, edit_distance_banded, edit_distance_banded_packed, edit_distance_myers,
};
pub use edstar::{ed_star, ed_star_profile, CellMatch, EdStarProfile};
pub use hamming::hamming;
pub use kernels::{
    ed_star_hamming_packed, ed_star_hamming_packed_scalar, ed_star_packed, ed_star_packed_scalar,
    hamming_packed, hamming_packed_scalar, simd_available,
};
