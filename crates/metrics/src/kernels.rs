//! Word-parallel ED\* and Hamming kernels over 2-bit packed sequences.
//!
//! An ASMCap cell compares its stored base against the co-located read base
//! and the two neighbours (paper Fig. 4c). On a 2-bit packing that is three
//! lane-wise comparisons per 64-bit word — the centre XOR plus the read
//! shifted one lane up (left neighbour) and one lane down (right
//! neighbour) — so one loop iteration evaluates 32 cells:
//!
//! ```text
//! lane mismatch(x, y) = ((x ^ y) | ((x ^ y) >> 1)) & 0x5555…   (per 2-bit lane)
//! ED*  cell mismatch  = centre ∧ left ∧ right                  (no partial match)
//! HD   cell mismatch  = centre
//! n_mis               = Σ popcount
//! ```
//!
//! # Lane dispatch
//!
//! Since PR 5 the kernels are **multi-lane**: every public kernel resolves
//! its operands to contiguous word slices (zero-copy through
//! [`PackedWords::as_word_slice`] for owned packings and word-aligned
//! views; a one-time stack gather for shifted segment views) and hands them
//! to one of two interchangeable inner loops that both produce the shifted
//! neighbour words in registers:
//!
//! * **SWAR** — a portable 4×u64 unroll, the always-on baseline on every
//!   architecture;
//! * **AVX2** — 4 words (128 cells) per 256-bit vector iteration, with the
//!   cross-word neighbour carries routed by `vpermq` and popcount by the
//!   nibble-LUT `vpshufb` + `vpsadbw` reduction. Compiled behind the `simd`
//!   cargo feature (default on) and selected at runtime via
//!   `is_x86_feature_detected!`.
//!
//! Both loops compute exact integer popcounts, so dispatch never changes a
//! result: SIMD on/off is **byte-identical**, pinned by the property tests
//! below and by `tests/properties.rs`. The pre-PR 5 single-word loop is
//! retained as [`ed_star_packed_scalar`] / [`hamming_packed_scalar`] /
//! [`ed_star_hamming_packed_scalar`] — the readable reference the lane
//! paths are pinned against (and the benchmark baseline).
//!
//! Boundary cells keep the paper's semantics: cell 0 has no left searchline
//! pair and cell `N−1` no right pair, so those comparisons are forced to
//! mismatch. All kernels return the exact `n_mis` the scalar
//! [`crate::ed_star`] / [`crate::hamming()`] walks produce — pinned by
//! property tests here and by the backend-equivalence suite — and run on
//! anything implementing [`PackedWords`]: owned [`asmcap_genome::PackedSeq`]s or zero-copy
//! [`asmcap_genome::SegmentView`]s of a packed reference.

use asmcap_genome::PackedWords;

/// The 2-bit lane mask (low bit of every lane).
const LANE_LOW: u64 = 0x5555_5555_5555_5555;

/// Words gathered on the stack before spilling to the heap: 16 words =
/// 512 bases, comfortably above the 256-base CAM rows the backends search.
const INLINE_WORDS: usize = 16;

/// Per-lane mismatch mask: bit `2i` is set iff lane `i` of `x` and `y`
/// differ in either bit.
#[inline]
fn lane_neq(x: u64, y: u64) -> u64 {
    let d = x ^ y;
    (d | (d >> 1)) & LANE_LOW
}

/// Bit marking the last occupied lane of the final word — the cell `N−1`
/// whose right comparison is forced to mismatch.
#[inline]
fn last_lane_bit(n: usize) -> u64 {
    1u64 << (2 * ((n - 1) % 32))
}

/// Runs `f` on the operand's words as one contiguous slice: zero-copy for
/// contiguous packings ([`PackedWords::as_word_slice`]), a one-time gather
/// into a stack (or, beyond [`INLINE_WORDS`], heap) buffer for shifted
/// segment views.
#[inline]
fn with_words<S: PackedWords, T>(seq: &S, f: impl FnOnce(&[u64]) -> T) -> T {
    if let Some(words) = seq.as_word_slice() {
        return f(words);
    }
    let n_words = seq.n_words();
    if n_words <= INLINE_WORDS {
        let mut buf = [0u64; INLINE_WORDS];
        for (i, slot) in buf[..n_words].iter_mut().enumerate() {
            *slot = seq.word(i);
        }
        f(&buf[..n_words])
    } else {
        let buf: Vec<u64> = (0..n_words).map(|i| seq.word(i)).collect();
        f(&buf)
    }
}

/// One word of the ED\* cell-mismatch mask, with the read's neighbour words
/// supplied by the caller and the boundary fix-ups already applied to
/// `left_fix` / `right_fix` (OR-ed into the respective comparison masks).
#[inline]
fn cell_mis(s: u64, r: u64, prev: u64, next: u64, left_fix: u64, right_fix: u64) -> u64 {
    let centre = lane_neq(s, r);
    let left = lane_neq(s, (r << 2) | (prev >> 62)) | left_fix;
    let right = lane_neq(s, (r >> 2) | (next << 62)) | right_fix;
    centre & left & right
}

/// The portable SWAR lane loops: 4 × u64 per unrolled iteration with the
/// neighbour words kept in registers, exact integer popcounts, no
/// architecture requirements. This is the always-on baseline the AVX2 path
/// must agree with bit for bit.
mod swar {
    use super::{cell_mis, lane_neq, last_lane_bit};

    pub(super) fn ed_star(s: &[u64], r: &[u64], n: usize) -> u32 {
        let n_words = s.len();
        let last_bit = last_lane_bit(n);
        if n_words == 1 {
            return cell_mis(s[0], r[0], 0, 0, 1, last_bit).count_ones();
        }
        // Both boundary words are peeled, so the interior loop is fully
        // branch-free and the 4×u64 unroll carries no fix-up state.
        let last = n_words - 1;
        let mut star = cell_mis(s[0], r[0], 0, r[1], 1, 0).count_ones();
        let mut i = 1;
        while i + 4 <= last {
            star += cell_mis(s[i], r[i], r[i - 1], r[i + 1], 0, 0).count_ones()
                + cell_mis(s[i + 1], r[i + 1], r[i], r[i + 2], 0, 0).count_ones()
                + cell_mis(s[i + 2], r[i + 2], r[i + 1], r[i + 3], 0, 0).count_ones()
                + cell_mis(s[i + 3], r[i + 3], r[i + 2], r[i + 4], 0, 0).count_ones();
            i += 4;
        }
        while i < last {
            star += cell_mis(s[i], r[i], r[i - 1], r[i + 1], 0, 0).count_ones();
            i += 1;
        }
        star + cell_mis(s[last], r[last], r[last - 1], 0, 0, last_bit).count_ones()
    }

    pub(super) fn ed_star_hamming(s: &[u64], r: &[u64], n: usize) -> (u32, u32) {
        let n_words = s.len();
        let last_bit = last_lane_bit(n);
        let mut star = 0u32;
        let mut hd = 0u32;
        let mut fused = |i: usize, prev: u64, next: u64, left_fix: u64, right_fix: u64| {
            let centre = lane_neq(s[i], r[i]);
            let left = lane_neq(s[i], (r[i] << 2) | (prev >> 62)) | left_fix;
            let right = lane_neq(s[i], (r[i] >> 2) | (next << 62)) | right_fix;
            hd += centre.count_ones();
            star += (centre & left & right).count_ones();
        };
        if n_words == 1 {
            fused(0, 0, 0, 1, last_bit);
            return (star, hd);
        }
        let last = n_words - 1;
        fused(0, 0, r[1], 1, 0);
        for i in 1..last {
            fused(i, r[i - 1], r[i + 1], 0, 0);
        }
        fused(last, r[last - 1], 0, 0, last_bit);
        (star, hd)
    }

    pub(super) fn hamming(a: &[u64], b: &[u64]) -> u32 {
        let n = a.len();
        let mut hd = 0u32;
        let mut i = 0;
        while i + 4 <= n {
            hd += lane_neq(a[i], b[i]).count_ones()
                + lane_neq(a[i + 1], b[i + 1]).count_ones()
                + lane_neq(a[i + 2], b[i + 2]).count_ones()
                + lane_neq(a[i + 3], b[i + 3]).count_ones();
            i += 4;
        }
        while i < n {
            hd += lane_neq(a[i], b[i]).count_ones();
            i += 1;
        }
        hd
    }
}

/// The AVX2 lane loops: 4 words (128 cells) per vector iteration. The
/// read's ±1-lane neighbour words are produced in-register — `vpermq`
/// rotates the four words and a blend splices in the carry word from the
/// adjacent block — and popcount is the classic nibble-LUT `vpshufb` +
/// `vpsadbw` reduction. Compiled only with the `simd` feature on x86-64 and
/// entered only after `is_x86_feature_detected!("avx2")` — the sole unsafe
/// code in the crate, confined to this module.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    use super::{last_lane_bit, LANE_LOW};
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_blend_epi32,
        _mm256_loadu_si256, _mm256_or_si256, _mm256_permute4x64_epi64, _mm256_sad_epu8,
        _mm256_set1_epi64x, _mm256_set1_epi8, _mm256_set_epi64x, _mm256_setr_epi8,
        _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_slli_epi64, _mm256_srli_epi64,
        _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// # Safety
    ///
    /// `words[i..i + 4]` must be in bounds (unaligned load).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn loadu(words: &[u64], i: usize) -> __m256i {
        debug_assert!(i + 4 <= words.len());
        _mm256_loadu_si256(words.as_ptr().add(i).cast())
    }

    /// Vector [`super::lane_neq`]: per-2-bit-lane mismatch mask in each of
    /// the four 64-bit lanes.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (all callers are reached only through the
    /// runtime-verified dispatch in [`super::vector_features_detected`]).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn lane_neq(x: __m256i, y: __m256i) -> __m256i {
        let d = _mm256_xor_si256(x, y);
        let low = _mm256_set1_epi64x(LANE_LOW as i64);
        _mm256_and_si256(_mm256_or_si256(d, _mm256_srli_epi64::<1>(d)), low)
    }

    /// Adds the per-64-bit-lane popcount of `v` onto `acc` (nibble LUT +
    /// `vpsadbw`). Exact — the reduction is integer throughout.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (runtime-verified by the dispatch gate).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_acc(acc: __m256i, v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_nibble = _mm256_set1_epi8(0x0f);
        let lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low_nibble));
        let hi = _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi64::<4>(v), low_nibble));
        let per_byte = _mm256_add_epi8(lo, hi);
        _mm256_add_epi64(acc, _mm256_sad_epu8(per_byte, _mm256_setzero_si256()))
    }

    /// Horizontal sum of the four 64-bit accumulator lanes.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (runtime-verified by the dispatch gate).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn horizontal_sum(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes[0]
            .wrapping_add(lanes[1])
            .wrapping_add(lanes[2])
            .wrapping_add(lanes[3])
    }

    /// The read word one lane *down* per 64-bit lane: `[carry, r0, r1, r2]`
    /// — `vpermq` rotation with the previous block's last word spliced into
    /// lane 0.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (runtime-verified by the dispatch gate).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn lanes_prev(r: __m256i, carry: u64) -> __m256i {
        let rotated = _mm256_permute4x64_epi64::<0b10_01_00_00>(r);
        _mm256_blend_epi32::<0b0000_0011>(rotated, _mm256_set1_epi64x(carry as i64))
    }

    /// The read word one lane *up* per 64-bit lane: `[r1, r2, r3, carry]`.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (runtime-verified by the dispatch gate).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn lanes_next(r: __m256i, carry: u64) -> __m256i {
        let rotated = _mm256_permute4x64_epi64::<0b11_11_10_01>(r);
        _mm256_blend_epi32::<0b1100_0000>(rotated, _mm256_set1_epi64x(carry as i64))
    }

    /// The three comparison masks of one 4-word block: `(centre, left ∧
    /// right)` with the boundary fix-ups OR-ed in.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (runtime-verified by the dispatch gate).
    #[inline]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn block_masks(
        sv: __m256i,
        rv: __m256i,
        prev_carry: u64,
        next_carry: u64,
        first_block: bool,
        last_block: bool,
        last_bit: u64,
    ) -> (__m256i, __m256i) {
        let rl = _mm256_or_si256(
            _mm256_slli_epi64::<2>(rv),
            _mm256_srli_epi64::<62>(lanes_prev(rv, prev_carry)),
        );
        let rr = _mm256_or_si256(
            _mm256_srli_epi64::<2>(rv),
            _mm256_slli_epi64::<62>(lanes_next(rv, next_carry)),
        );
        let centre = lane_neq(sv, rv);
        let mut left = lane_neq(sv, rl);
        if first_block {
            // Cell 0 has no left searchline pair.
            left = _mm256_or_si256(left, _mm256_set_epi64x(0, 0, 0, 1));
        }
        let mut right = lane_neq(sv, rr);
        if last_block {
            // Cell N−1 has no right pair (always in lane 3 here: the vector
            // loop only runs on whole 4-word blocks).
            right = _mm256_or_si256(right, _mm256_set_epi64x(last_bit as i64, 0, 0, 0));
        }
        (centre, _mm256_and_si256(left, right))
    }

    /// Popcount of one 256-bit mask through four hardware `popcnt`s — lower
    /// latency than the LUT reduction when there is exactly one block, so
    /// the single-block fast paths (width ≤ 128) use it.
    ///
    /// # Safety
    ///
    /// AVX2 and POPCNT must be available (runtime-verified by the
    /// dispatch gate — both CPUID bits, see `vector_features_detected`).
    #[inline]
    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn popcount_once(v: __m256i) -> u32 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes[0].count_ones()
            + lanes[1].count_ones()
            + lanes[2].count_ones()
            + lanes[3].count_ones()
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 and POPCNT support; `s` and `r` share one length.
    #[target_feature(enable = "avx2,popcnt")]
    pub(super) unsafe fn ed_star(s: &[u64], r: &[u64], n: usize) -> u32 {
        let n_words = s.len();
        let last_bit = last_lane_bit(n);
        if n_words == 4 {
            // One whole block (the 128-base CAM row): skip the loop and the
            // LUT accumulator entirely.
            let (centre, sides) = block_masks(loadu(s, 0), loadu(r, 0), 0, 0, true, true, last_bit);
            return popcount_once(_mm256_and_si256(centre, sides));
        }
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n_words {
            let rv = loadu(r, i);
            let prev_carry = if i == 0 { 0 } else { r[i - 1] };
            let next_carry = if i + 4 < n_words { r[i + 4] } else { 0 };
            let (centre, sides) = block_masks(
                loadu(s, i),
                rv,
                prev_carry,
                next_carry,
                i == 0,
                i + 4 == n_words,
                last_bit,
            );
            acc = popcount_acc(acc, _mm256_and_si256(centre, sides));
            i += 4;
        }
        let mut star = horizontal_sum(acc) as u32;
        // Word tail (n_words % 4 ≠ 0): the scalar per-word form.
        while i < n_words {
            let prev = if i == 0 { 0 } else { r[i - 1] };
            let next = if i + 1 < n_words { r[i + 1] } else { 0 };
            let first_fix = u64::from(i == 0);
            let last_fix = if i + 1 == n_words { last_bit } else { 0 };
            star += super::cell_mis(s[i], r[i], prev, next, first_fix, last_fix).count_ones();
            i += 1;
        }
        star
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 and POPCNT support; `s` and `r` share one length.
    #[target_feature(enable = "avx2,popcnt")]
    pub(super) unsafe fn ed_star_hamming(s: &[u64], r: &[u64], n: usize) -> (u32, u32) {
        let n_words = s.len();
        let last_bit = last_lane_bit(n);
        if n_words == 4 {
            let (centre, sides) = block_masks(loadu(s, 0), loadu(r, 0), 0, 0, true, true, last_bit);
            return (
                popcount_once(_mm256_and_si256(centre, sides)),
                popcount_once(centre),
            );
        }
        let mut star_acc = _mm256_setzero_si256();
        let mut hd_acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n_words {
            let rv = loadu(r, i);
            let prev_carry = if i == 0 { 0 } else { r[i - 1] };
            let next_carry = if i + 4 < n_words { r[i + 4] } else { 0 };
            let (centre, sides) = block_masks(
                loadu(s, i),
                rv,
                prev_carry,
                next_carry,
                i == 0,
                i + 4 == n_words,
                last_bit,
            );
            hd_acc = popcount_acc(hd_acc, centre);
            star_acc = popcount_acc(star_acc, _mm256_and_si256(centre, sides));
            i += 4;
        }
        let mut star = horizontal_sum(star_acc) as u32;
        let mut hd = horizontal_sum(hd_acc) as u32;
        while i < n_words {
            let prev = if i == 0 { 0 } else { r[i - 1] };
            let next = if i + 1 < n_words { r[i + 1] } else { 0 };
            let centre = super::lane_neq(s[i], r[i]);
            let left = super::lane_neq(s[i], (r[i] << 2) | (prev >> 62)) | u64::from(i == 0);
            let right_fix = if i + 1 == n_words { last_bit } else { 0 };
            let right = super::lane_neq(s[i], (r[i] >> 2) | (next << 62)) | right_fix;
            hd += centre.count_ones();
            star += (centre & left & right).count_ones();
            i += 1;
        }
        (star, hd)
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 and POPCNT support; `a` and `b` share one length.
    #[target_feature(enable = "avx2,popcnt")]
    pub(super) unsafe fn hamming(a: &[u64], b: &[u64]) -> u32 {
        let n = a.len();
        if n == 4 {
            return popcount_once(lane_neq(loadu(a, 0), loadu(b, 0)));
        }
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            acc = popcount_acc(acc, lane_neq(loadu(a, i), loadu(b, i)));
            i += 4;
        }
        let mut hd = horizontal_sum(acc) as u32;
        while i < n {
            hd += super::lane_neq(a[i], b[i]).count_ones();
            i += 1;
        }
        hd
    }
}

/// Whether kernel dispatch takes the AVX2 lane path in this process
/// (`simd` feature compiled in **and** the CPU reports AVX2). Purely
/// informational — results are byte-identical either way.
#[must_use]
pub fn simd_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        vector_features_detected()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Runtime check of **every** feature the `avx2` module's
/// `#[target_feature(enable = "avx2,popcnt")]` functions require. The two
/// CPUID bits are independent, so checking AVX2 alone would leave the
/// `popcnt` precondition unverified (undefined behavior on a CPU or
/// hypervisor that masks POPCNT while exposing AVX2).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn vector_features_detected() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt")
}

/// Operands shorter than one vector block never enter the AVX2 loop, so
/// routing them straight to SWAR skips a pointless cross-feature call.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const MIN_VECTOR_WORDS: usize = 4;

#[inline]
fn ed_star_words(s: &[u64], r: &[u64], n: usize) -> u32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if s.len() >= MIN_VECTOR_WORDS && vector_features_detected() {
        // SAFETY: AVX2 + POPCNT support verified at runtime on this line.
        #[allow(unsafe_code)]
        return unsafe { avx2::ed_star(s, r, n) };
    }
    swar::ed_star(s, r, n)
}

#[inline]
fn ed_star_hamming_words(s: &[u64], r: &[u64], n: usize) -> (u32, u32) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if s.len() >= MIN_VECTOR_WORDS && vector_features_detected() {
        // SAFETY: AVX2 + POPCNT support verified at runtime on this line.
        #[allow(unsafe_code)]
        return unsafe { avx2::ed_star_hamming(s, r, n) };
    }
    swar::ed_star_hamming(s, r, n)
}

#[inline]
fn hamming_words(a: &[u64], b: &[u64]) -> u32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if a.len() >= MIN_VECTOR_WORDS && vector_features_detected() {
        // SAFETY: AVX2 + POPCNT support verified at runtime on this line.
        #[allow(unsafe_code)]
        return unsafe { avx2::hamming(a, b) };
    }
    swar::hamming(a, b)
}

/// The one word loop the retained scalar kernels share: for every word,
/// computes the centre-comparison mismatch mask and the ED\* cell-mismatch
/// mask (centre ∧ left ∧ right, with the boundary comparisons forced to
/// mismatch) and hands them to `fold`. This is the pre-PR 5 single-word
/// reference path the lane kernels are property-pinned against.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
#[inline]
fn fold_cell_masks<S: PackedWords, R: PackedWords>(
    stored: &S,
    read: &R,
    mut fold: impl FnMut(u64, u64),
) {
    let n = stored.len();
    assert_eq!(
        n,
        read.len(),
        "ED* compares a read against an equally wide stored row"
    );
    if n == 0 {
        return;
    }
    let n_words = stored.n_words();
    let last_lane_word = (n - 1) / 32;
    let last_bit = last_lane_bit(n);
    let mut prev_read = 0u64;
    let mut cur_read = read.word(0);
    for k in 0..n_words {
        let s = stored.word(k);
        let next_read = if k + 1 < n_words { read.word(k + 1) } else { 0 };
        let centre = lane_neq(s, cur_read);
        // Lane i of the shifted word holds read[i−1] / read[i+1]; the lane
        // shifted in from beyond the row is irrelevant because the boundary
        // comparison is forced to mismatch below.
        let mut left = lane_neq(s, (cur_read << 2) | (prev_read >> 62));
        if k == 0 {
            left |= 1; // cell 0 has no left searchline pair
        }
        let mut right = lane_neq(s, (cur_read >> 2) | (next_read << 62));
        if k == last_lane_word {
            right |= last_bit; // cell N−1 has no right pair
        }
        // Tail lanes beyond n hold zero in both operands, so their centre
        // comparison matches and they never count as mismatches.
        fold(centre, centre & left & right);
        prev_read = cur_read;
        cur_read = next_read;
    }
}

/// Word-parallel ED\*: the mismatched-cell count `n_mis` of searching
/// `read` against a row storing `stored`, identical to
/// [`crate::ed_star`]`(stored, read)` on the unpacked sequences. Dispatches
/// to the AVX2 lane loop when available, the 4×u64 SWAR unroll otherwise —
/// byte-identical either way (see the [module docs](self)).
///
/// # Panics
///
/// Panics if the sequences have different lengths.
///
/// # Examples
///
/// ```
/// use asmcap_genome::{DnaSeq, PackedRef, PackedSeq};
/// // Paper Fig. 2, second example: stored = AGCATGAG, read = AGCTGAGA.
/// let stored = PackedRef::new(&"AGCATGAG".parse::<DnaSeq>()?);
/// let read = PackedSeq::from_seq(&"AGCTGAGA".parse::<DnaSeq>()?);
/// assert_eq!(asmcap_metrics::ed_star_packed(&stored.segment(0, 8), &read), 1);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn ed_star_packed<S: PackedWords, R: PackedWords>(stored: &S, read: &R) -> usize {
    let n = stored.len();
    assert_eq!(
        n,
        read.len(),
        "ED* compares a read against an equally wide stored row"
    );
    if n == 0 {
        return 0;
    }
    with_words(stored, |s| {
        with_words(read, |r| ed_star_words(s, r, n) as usize)
    })
}

/// The retained single-word scalar ED\* kernel (the pre-PR 5
/// implementation): the reference [`ed_star_packed`]'s lane paths are
/// property-pinned against, and the baseline the kernel benchmarks compare
/// to.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
#[must_use]
pub fn ed_star_packed_scalar<S: PackedWords, R: PackedWords>(stored: &S, read: &R) -> usize {
    let mut mismatches = 0u32;
    fold_cell_masks(stored, read, |_centre, mis| {
        mismatches += mis.count_ones();
    });
    mismatches as usize
}

/// Word-parallel Hamming distance, identical to [`crate::hamming()`] on the
/// unpacked sequences (HD mode, MUX select `S = 0`): XOR, fold each lane's
/// two bitplanes, popcount — lane-dispatched like [`ed_star_packed`].
///
/// # Panics
///
/// Panics if the sequences have different lengths.
///
/// # Examples
///
/// ```
/// use asmcap_genome::{DnaSeq, PackedSeq};
/// let a = PackedSeq::from_seq(&"AGCTGAGA".parse::<DnaSeq>()?);
/// let b = PackedSeq::from_seq(&"ATCTGCGA".parse::<DnaSeq>()?);
/// assert_eq!(asmcap_metrics::hamming_packed(&a, &b), 2);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn hamming_packed<A: PackedWords, B: PackedWords>(a: &A, b: &B) -> usize {
    assert_eq!(
        a.len(),
        b.len(),
        "hamming distance requires equal-length sequences"
    );
    with_words(a, |aw| with_words(b, |bw| hamming_words(aw, bw) as usize))
}

/// The retained single-word scalar Hamming kernel (the pre-PR 5
/// implementation) — see [`ed_star_packed_scalar`].
///
/// # Panics
///
/// Panics if the sequences have different lengths.
#[must_use]
pub fn hamming_packed_scalar<A: PackedWords, B: PackedWords>(a: &A, b: &B) -> usize {
    assert_eq!(
        a.len(),
        b.len(),
        "hamming distance requires equal-length sequences"
    );
    (0..a.n_words())
        .map(|k| lane_neq(a.word(k), b.word(k)).count_ones() as usize)
        .sum()
}

/// Word-parallel `(ED*, HD)` in one pass — what one matchline-encoding
/// prepass of an ASMCap array row produces for both MUX settings. Cheaper
/// than two kernel calls when both distances are needed: the engine's
/// per-pair decision uses it whenever HDAC has armed its HD-mode search.
/// Lane-dispatched like [`ed_star_packed`].
#[must_use]
pub fn ed_star_hamming_packed<S: PackedWords, R: PackedWords>(
    stored: &S,
    read: &R,
) -> (usize, usize) {
    let n = stored.len();
    assert_eq!(
        n,
        read.len(),
        "ED* compares a read against an equally wide stored row"
    );
    if n == 0 {
        return (0, 0);
    }
    with_words(stored, |s| {
        with_words(read, |r| {
            let (star, hd) = ed_star_hamming_words(s, r, n);
            (star as usize, hd as usize)
        })
    })
}

/// The retained single-word scalar fused kernel (the pre-PR 5
/// implementation) — see [`ed_star_packed_scalar`].
#[must_use]
pub fn ed_star_hamming_packed_scalar<S: PackedWords, R: PackedWords>(
    stored: &S,
    read: &R,
) -> (usize, usize) {
    let mut star = 0u32;
    let mut hd = 0u32;
    fold_cell_masks(stored, read, |centre, mis| {
        hd += centre.count_ones();
        star += mis.count_ones();
    });
    (star as usize, hd as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edstar::ed_star;
    use crate::hamming::hamming;
    use asmcap_genome::{Base, DnaSeq, PackedRef, PackedSeq};
    use proptest::prelude::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    fn packed(s: &str) -> PackedSeq {
        PackedSeq::from_seq(&seq(s))
    }

    #[test]
    fn fig2_numeric_examples() {
        // Same three Fig. 2 pairs the scalar tests pin.
        assert_eq!(ed_star_packed(&packed("ATCTGCGA"), &packed("AGCTGAGA")), 2);
        assert_eq!(hamming_packed(&packed("ATCTGCGA"), &packed("AGCTGAGA")), 2);
        assert_eq!(ed_star_packed(&packed("AGCATGAG"), &packed("AGCTGAGA")), 1);
        assert_eq!(hamming_packed(&packed("AGCATGAG"), &packed("AGCTGAGA")), 5);
        assert_eq!(ed_star_packed(&packed("AGTGAGAA"), &packed("AGCTGAGA")), 0);
        assert_eq!(hamming_packed(&packed("AGTGAGAA"), &packed("AGCTGAGA")), 5);
    }

    #[test]
    fn boundary_cells_have_truncated_windows() {
        // Stored AC vs read CA: both cells rescued by their one neighbour.
        assert_eq!(ed_star_packed(&packed("AC"), &packed("CA")), 0);
        assert_eq!(hamming_packed(&packed("AC"), &packed("CA")), 2);
        // Single-cell row: only the centre comparison exists.
        assert_eq!(ed_star_packed(&packed("A"), &packed("C")), 1);
        assert_eq!(ed_star_packed(&packed("A"), &packed("A")), 0);
    }

    #[test]
    fn empty_rows_have_zero_distance() {
        let empty = PackedSeq::default();
        assert_eq!(ed_star_packed(&empty, &empty), 0);
        assert_eq!(hamming_packed(&empty, &empty), 0);
        assert_eq!(ed_star_hamming_packed(&empty, &empty), (0, 0));
        assert_eq!(ed_star_packed_scalar(&empty, &empty), 0);
        assert_eq!(hamming_packed_scalar(&empty, &empty), 0);
        assert_eq!(ed_star_hamming_packed_scalar(&empty, &empty), (0, 0));
    }

    #[test]
    #[should_panic(expected = "equally wide")]
    fn length_mismatch_panics() {
        let _ = ed_star_packed(&packed("ACG"), &packed("AC"));
    }

    #[test]
    fn word_boundary_widths_match_scalar() {
        // Exercise every width in 1..=256 (the satellite sweep: covers the
        // 32-base word boundaries AND the 128-base vector-block boundary),
        // plus a few long rows that hit the heap-gather path.
        for len in (1usize..=256).chain([300, 511, 512, 513, 1024]) {
            let stored: DnaSeq = (0..len)
                .map(|i| Base::from_code(((i * 3 + 1) % 4) as u8))
                .collect();
            let read: DnaSeq = (0..len)
                .map(|i| Base::from_code(((i * 5 + i / 9) % 4) as u8))
                .collect();
            let (ps, pr) = (PackedSeq::from_seq(&stored), PackedSeq::from_seq(&read));
            let star = ed_star(stored.as_slice(), read.as_slice());
            let hd = hamming(stored.as_slice(), read.as_slice());
            assert_eq!(ed_star_packed(&ps, &pr), star, "ED* at width {len}");
            assert_eq!(ed_star_packed_scalar(&ps, &pr), star, "scalar ED* at {len}");
            assert_eq!(hamming_packed(&ps, &pr), hd, "HD at width {len}");
            assert_eq!(hamming_packed_scalar(&ps, &pr), hd, "scalar HD at {len}");
            assert_eq!(
                ed_star_hamming_packed(&ps, &pr),
                (star, hd),
                "fused at width {len}"
            );
        }
    }

    #[test]
    fn segment_views_straddling_word_boundaries_match_scalar() {
        let reference: DnaSeq = (0..400)
            .map(|i| Base::from_code(((i * 7 + i / 13) % 4) as u8))
            .collect();
        let packed_ref = PackedRef::new(&reference);
        let read: DnaSeq = (0..100)
            .map(|i| Base::from_code(((i * 11 + 2) % 4) as u8))
            .collect();
        let packed_read = PackedSeq::from_seq(&read);
        for offset in [0usize, 1, 17, 31, 32, 33, 63, 64, 100, 300] {
            let view = packed_ref.segment(offset, 100);
            let slice = &reference.as_slice()[offset..offset + 100];
            assert_eq!(
                ed_star_packed(&view, &packed_read),
                ed_star(slice, read.as_slice()),
                "ED* at offset {offset}"
            );
            assert_eq!(
                hamming_packed(&view, &packed_read),
                hamming(slice, read.as_slice()),
                "HD at offset {offset}"
            );
        }
    }

    #[test]
    fn word_aligned_views_take_the_zero_copy_path() {
        // Aligned full-word views expose a direct word slice; shifted or
        // partial-tail views do not — and both produce identical kernel
        // results.
        let reference: DnaSeq = (0..320)
            .map(|i| Base::from_code(((i * 3 + i / 5) % 4) as u8))
            .collect();
        let packed_ref = PackedRef::new(&reference);
        assert!(packed_ref.segment(64, 128).as_word_slice().is_some());
        assert!(packed_ref.segment(63, 128).as_word_slice().is_none());
        assert!(packed_ref.segment(64, 100).as_word_slice().is_none());
        let read: DnaSeq = (0..128).map(|i| Base::from_code((i % 4) as u8)).collect();
        let packed_read = PackedSeq::from_seq(&read);
        for offset in [63usize, 64] {
            let view = packed_ref.segment(offset, 128);
            assert_eq!(
                ed_star_packed(&view, &packed_read),
                ed_star(&reference.as_slice()[offset..offset + 128], read.as_slice()),
                "offset {offset}"
            );
        }
    }

    fn arbitrary_pair(max_len: usize) -> impl Strategy<Value = (DnaSeq, DnaSeq)> {
        proptest::collection::vec((0u8..4, 0u8..4), 1..=max_len).prop_map(|pairs| {
            let a = pairs.iter().map(|&(x, _)| Base::from_code(x)).collect();
            let b = pairs.iter().map(|&(_, y)| Base::from_code(y)).collect();
            (a, b)
        })
    }

    proptest! {
        #[test]
        fn prop_packed_ed_star_equals_scalar((stored, read) in arbitrary_pair(256)) {
            let (ps, pr) = (PackedSeq::from_seq(&stored), PackedSeq::from_seq(&read));
            let reference = ed_star(stored.as_slice(), read.as_slice());
            prop_assert_eq!(ed_star_packed(&ps, &pr), reference);
            prop_assert_eq!(ed_star_packed_scalar(&ps, &pr), reference);
        }

        #[test]
        fn prop_packed_hamming_equals_scalar((stored, read) in arbitrary_pair(256)) {
            let (ps, pr) = (PackedSeq::from_seq(&stored), PackedSeq::from_seq(&read));
            let reference = hamming(stored.as_slice(), read.as_slice());
            prop_assert_eq!(hamming_packed(&ps, &pr), reference);
            prop_assert_eq!(hamming_packed_scalar(&ps, &pr), reference);
        }

        #[test]
        fn prop_fused_kernel_equals_both((stored, read) in arbitrary_pair(256)) {
            let (ps, pr) = (PackedSeq::from_seq(&stored), PackedSeq::from_seq(&read));
            let expected = (
                ed_star(stored.as_slice(), read.as_slice()),
                hamming(stored.as_slice(), read.as_slice()),
            );
            prop_assert_eq!(ed_star_hamming_packed(&ps, &pr), expected);
            prop_assert_eq!(ed_star_hamming_packed_scalar(&ps, &pr), expected);
        }

        #[test]
        fn prop_views_at_any_offset_equal_scalar(
            codes in proptest::collection::vec(0u8..4, 2..400),
            read_codes in proptest::collection::vec(0u8..4, 1..=256),
            offset_frac in 0.0f64..1.0
        ) {
            let reference: DnaSeq = codes.into_iter().map(Base::from_code).collect();
            let width = read_codes.len().min(reference.len());
            let read: DnaSeq = read_codes.into_iter().take(width).map(Base::from_code).collect();
            let offset = (((reference.len() - width) as f64) * offset_frac) as usize;
            let packed_ref = PackedRef::new(&reference);
            let view = packed_ref.segment(offset, width);
            let slice = &reference.as_slice()[offset..offset + width];
            prop_assert_eq!(
                ed_star_packed(&view, &PackedSeq::from_seq(&read)),
                ed_star(slice, read.as_slice())
            );
            prop_assert_eq!(
                hamming_packed(&view, &PackedSeq::from_seq(&read)),
                hamming(slice, read.as_slice())
            );
        }
    }
}
