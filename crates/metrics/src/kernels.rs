//! Word-parallel ED\* and Hamming kernels over 2-bit packed sequences.
//!
//! An ASMCap cell compares its stored base against the co-located read base
//! and the two neighbours (paper Fig. 4c). On a 2-bit packing that is three
//! lane-wise comparisons per 64-bit word — the centre XOR plus the read
//! shifted one lane up (left neighbour) and one lane down (right
//! neighbour) — so one loop iteration evaluates 32 cells:
//!
//! ```text
//! lane mismatch(x, y) = ((x ^ y) | ((x ^ y) >> 1)) & 0x5555…   (per 2-bit lane)
//! ED*  cell mismatch  = centre ∧ left ∧ right                  (no partial match)
//! HD   cell mismatch  = centre
//! n_mis               = Σ popcount
//! ```
//!
//! Boundary cells keep the paper's semantics: cell 0 has no left searchline
//! pair and cell `N−1` no right pair, so those comparisons are forced to
//! mismatch. Both kernels return the exact `n_mis` the scalar
//! [`crate::ed_star`] / [`crate::hamming()`] walks produce — pinned by
//! property tests here and by the backend-equivalence suite — and run on
//! anything implementing [`PackedWords`]: owned [`asmcap_genome::PackedSeq`]s or zero-copy
//! [`asmcap_genome::SegmentView`]s of a packed reference.

use asmcap_genome::PackedWords;

/// The 2-bit lane mask (low bit of every lane).
const LANE_LOW: u64 = 0x5555_5555_5555_5555;

/// Per-lane mismatch mask: bit `2i` is set iff lane `i` of `x` and `y`
/// differ in either bit.
#[inline]
fn lane_neq(x: u64, y: u64) -> u64 {
    let d = x ^ y;
    (d | (d >> 1)) & LANE_LOW
}

/// The one word loop both ED\* kernels share: for every word, computes the
/// centre-comparison mismatch mask and the ED\* cell-mismatch mask (centre ∧
/// left ∧ right, with the boundary comparisons forced to mismatch) and
/// hands them to `fold`. Keeping the carry/boundary/tail logic in exactly
/// one place is what lets the plain and fused kernels stay in lockstep.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
#[inline]
fn fold_cell_masks<S: PackedWords, R: PackedWords>(
    stored: &S,
    read: &R,
    mut fold: impl FnMut(u64, u64),
) {
    let n = stored.len();
    assert_eq!(
        n,
        read.len(),
        "ED* compares a read against an equally wide stored row"
    );
    if n == 0 {
        return;
    }
    let n_words = stored.n_words();
    let last_lane_word = (n - 1) / 32;
    let last_lane_bit = 1u64 << (2 * ((n - 1) % 32));
    let mut prev_read = 0u64;
    let mut cur_read = read.word(0);
    for k in 0..n_words {
        let s = stored.word(k);
        let next_read = if k + 1 < n_words { read.word(k + 1) } else { 0 };
        let centre = lane_neq(s, cur_read);
        // Lane i of the shifted word holds read[i−1] / read[i+1]; the lane
        // shifted in from beyond the row is irrelevant because the boundary
        // comparison is forced to mismatch below.
        let mut left = lane_neq(s, (cur_read << 2) | (prev_read >> 62));
        if k == 0 {
            left |= 1; // cell 0 has no left searchline pair
        }
        let mut right = lane_neq(s, (cur_read >> 2) | (next_read << 62));
        if k == last_lane_word {
            right |= last_lane_bit; // cell N−1 has no right pair
        }
        // Tail lanes beyond n hold zero in both operands, so their centre
        // comparison matches and they never count as mismatches.
        fold(centre, centre & left & right);
        prev_read = cur_read;
        cur_read = next_read;
    }
}

/// Word-parallel ED\*: the mismatched-cell count `n_mis` of searching
/// `read` against a row storing `stored`, identical to
/// [`crate::ed_star`]`(stored, read)` on the unpacked sequences.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
///
/// # Examples
///
/// ```
/// use asmcap_genome::{DnaSeq, PackedRef, PackedSeq};
/// // Paper Fig. 2, second example: stored = AGCATGAG, read = AGCTGAGA.
/// let stored = PackedRef::new(&"AGCATGAG".parse::<DnaSeq>()?);
/// let read = PackedSeq::from_seq(&"AGCTGAGA".parse::<DnaSeq>()?);
/// assert_eq!(asmcap_metrics::ed_star_packed(&stored.segment(0, 8), &read), 1);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn ed_star_packed<S: PackedWords, R: PackedWords>(stored: &S, read: &R) -> usize {
    let mut mismatches = 0u32;
    fold_cell_masks(stored, read, |_centre, mis| {
        mismatches += mis.count_ones();
    });
    mismatches as usize
}

/// Word-parallel Hamming distance, identical to [`crate::hamming()`] on the
/// unpacked sequences (HD mode, MUX select `S = 0`): XOR, fold each lane's
/// two bitplanes, popcount.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
///
/// # Examples
///
/// ```
/// use asmcap_genome::{DnaSeq, PackedSeq};
/// let a = PackedSeq::from_seq(&"AGCTGAGA".parse::<DnaSeq>()?);
/// let b = PackedSeq::from_seq(&"ATCTGCGA".parse::<DnaSeq>()?);
/// assert_eq!(asmcap_metrics::hamming_packed(&a, &b), 2);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[must_use]
pub fn hamming_packed<A: PackedWords, B: PackedWords>(a: &A, b: &B) -> usize {
    assert_eq!(
        a.len(),
        b.len(),
        "hamming distance requires equal-length sequences"
    );
    (0..a.n_words())
        .map(|k| lane_neq(a.word(k), b.word(k)).count_ones() as usize)
        .sum()
}

/// Word-parallel `(ED*, HD)` in one pass — what one matchline-encoding
/// prepass of an ASMCap array row produces for both MUX settings. Cheaper
/// than two kernel calls when both distances are needed: the engine's
/// per-pair decision uses it whenever HDAC has armed its HD-mode search.
#[must_use]
pub fn ed_star_hamming_packed<S: PackedWords, R: PackedWords>(
    stored: &S,
    read: &R,
) -> (usize, usize) {
    let mut star = 0u32;
    let mut hd = 0u32;
    fold_cell_masks(stored, read, |centre, mis| {
        hd += centre.count_ones();
        star += mis.count_ones();
    });
    (star as usize, hd as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edstar::ed_star;
    use crate::hamming::hamming;
    use asmcap_genome::{Base, DnaSeq, PackedRef, PackedSeq};
    use proptest::prelude::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    fn packed(s: &str) -> PackedSeq {
        PackedSeq::from_seq(&seq(s))
    }

    #[test]
    fn fig2_numeric_examples() {
        // Same three Fig. 2 pairs the scalar tests pin.
        assert_eq!(ed_star_packed(&packed("ATCTGCGA"), &packed("AGCTGAGA")), 2);
        assert_eq!(hamming_packed(&packed("ATCTGCGA"), &packed("AGCTGAGA")), 2);
        assert_eq!(ed_star_packed(&packed("AGCATGAG"), &packed("AGCTGAGA")), 1);
        assert_eq!(hamming_packed(&packed("AGCATGAG"), &packed("AGCTGAGA")), 5);
        assert_eq!(ed_star_packed(&packed("AGTGAGAA"), &packed("AGCTGAGA")), 0);
        assert_eq!(hamming_packed(&packed("AGTGAGAA"), &packed("AGCTGAGA")), 5);
    }

    #[test]
    fn boundary_cells_have_truncated_windows() {
        // Stored AC vs read CA: both cells rescued by their one neighbour.
        assert_eq!(ed_star_packed(&packed("AC"), &packed("CA")), 0);
        assert_eq!(hamming_packed(&packed("AC"), &packed("CA")), 2);
        // Single-cell row: only the centre comparison exists.
        assert_eq!(ed_star_packed(&packed("A"), &packed("C")), 1);
        assert_eq!(ed_star_packed(&packed("A"), &packed("A")), 0);
    }

    #[test]
    fn empty_rows_have_zero_distance() {
        let empty = PackedSeq::default();
        assert_eq!(ed_star_packed(&empty, &empty), 0);
        assert_eq!(hamming_packed(&empty, &empty), 0);
        assert_eq!(ed_star_hamming_packed(&empty, &empty), (0, 0));
    }

    #[test]
    #[should_panic(expected = "equally wide")]
    fn length_mismatch_panics() {
        let _ = ed_star_packed(&packed("ACG"), &packed("AC"));
    }

    #[test]
    fn word_boundary_widths_match_scalar() {
        // Exercise widths around the 32-base word boundary explicitly.
        for len in [1usize, 2, 31, 32, 33, 63, 64, 65, 95, 96, 97, 128, 200] {
            let stored: DnaSeq = (0..len)
                .map(|i| Base::from_code(((i * 3 + 1) % 4) as u8))
                .collect();
            let read: DnaSeq = (0..len)
                .map(|i| Base::from_code(((i * 5 + i / 9) % 4) as u8))
                .collect();
            let (ps, pr) = (PackedSeq::from_seq(&stored), PackedSeq::from_seq(&read));
            assert_eq!(
                ed_star_packed(&ps, &pr),
                ed_star(stored.as_slice(), read.as_slice()),
                "ED* at width {len}"
            );
            assert_eq!(
                hamming_packed(&ps, &pr),
                hamming(stored.as_slice(), read.as_slice()),
                "HD at width {len}"
            );
        }
    }

    #[test]
    fn segment_views_straddling_word_boundaries_match_scalar() {
        let reference: DnaSeq = (0..400)
            .map(|i| Base::from_code(((i * 7 + i / 13) % 4) as u8))
            .collect();
        let packed_ref = PackedRef::new(&reference);
        let read: DnaSeq = (0..100)
            .map(|i| Base::from_code(((i * 11 + 2) % 4) as u8))
            .collect();
        let packed_read = PackedSeq::from_seq(&read);
        for offset in [0usize, 1, 17, 31, 32, 33, 63, 64, 100, 300] {
            let view = packed_ref.segment(offset, 100);
            let slice = &reference.as_slice()[offset..offset + 100];
            assert_eq!(
                ed_star_packed(&view, &packed_read),
                ed_star(slice, read.as_slice()),
                "ED* at offset {offset}"
            );
            assert_eq!(
                hamming_packed(&view, &packed_read),
                hamming(slice, read.as_slice()),
                "HD at offset {offset}"
            );
        }
    }

    fn arbitrary_pair(max_len: usize) -> impl Strategy<Value = (DnaSeq, DnaSeq)> {
        proptest::collection::vec((0u8..4, 0u8..4), 1..=max_len).prop_map(|pairs| {
            let a = pairs.iter().map(|&(x, _)| Base::from_code(x)).collect();
            let b = pairs.iter().map(|&(_, y)| Base::from_code(y)).collect();
            (a, b)
        })
    }

    proptest! {
        #[test]
        fn prop_packed_ed_star_equals_scalar((stored, read) in arbitrary_pair(200)) {
            prop_assert_eq!(
                ed_star_packed(&PackedSeq::from_seq(&stored), &PackedSeq::from_seq(&read)),
                ed_star(stored.as_slice(), read.as_slice())
            );
        }

        #[test]
        fn prop_packed_hamming_equals_scalar((stored, read) in arbitrary_pair(200)) {
            prop_assert_eq!(
                hamming_packed(&PackedSeq::from_seq(&stored), &PackedSeq::from_seq(&read)),
                hamming(stored.as_slice(), read.as_slice())
            );
        }

        #[test]
        fn prop_fused_kernel_equals_both((stored, read) in arbitrary_pair(200)) {
            let (star, hd) = ed_star_hamming_packed(
                &PackedSeq::from_seq(&stored),
                &PackedSeq::from_seq(&read)
            );
            prop_assert_eq!(star, ed_star(stored.as_slice(), read.as_slice()));
            prop_assert_eq!(hd, hamming(stored.as_slice(), read.as_slice()));
        }

        #[test]
        fn prop_views_at_any_offset_equal_scalar(
            codes in proptest::collection::vec(0u8..4, 2..400),
            read_codes in proptest::collection::vec(0u8..4, 1..=200),
            offset_frac in 0.0f64..1.0
        ) {
            let reference: DnaSeq = codes.into_iter().map(Base::from_code).collect();
            let width = read_codes.len().min(reference.len());
            let read: DnaSeq = read_codes.into_iter().take(width).map(Base::from_code).collect();
            let offset = (((reference.len() - width) as f64) * offset_frac) as usize;
            let packed_ref = PackedRef::new(&reference);
            let view = packed_ref.segment(offset, width);
            let slice = &reference.as_slice()[offset..offset + width];
            prop_assert_eq!(
                ed_star_packed(&view, &PackedSeq::from_seq(&read)),
                ed_star(slice, read.as_slice())
            );
            prop_assert_eq!(
                hamming_packed(&view, &PackedSeq::from_seq(&read)),
                hamming(slice, read.as_slice())
            );
        }
    }
}
