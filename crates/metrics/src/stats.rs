//! Small numeric helpers shared by the experiment harness and the circuit
//! Monte-Carlo code: running mean/variance, histograms, and percentiles.

use std::fmt;

/// Streaming mean and variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use asmcap_metrics::stats::Accumulator;
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 2.5);
/// assert!((acc.variance() - 5.0 / 3.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 for an empty accumulator.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for Accumulator {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// An integer histogram over `0..len`, used for `n_mis` distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with bins `0..len`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            bins: vec![0; len],
            overflow: 0,
        }
    }

    /// Records one observation; values past the last bin count as overflow.
    pub fn record(&mut self, value: usize) {
        match self.bins.get_mut(value) {
            Some(bin) => *bin += 1,
            None => self.overflow += 1,
        }
    }

    /// Count in bin `value`.
    #[must_use]
    pub fn count(&self, value: usize) -> u64 {
        self.bins.get(value).copied().unwrap_or(0)
    }

    /// Observations beyond the last bin.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.overflow
    }

    /// Mean of the recorded values (overflow excluded).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let total: u64 = self.bins.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(value, &count)| value as f64 * count as f64)
            .sum();
        weighted / total as f64
    }

    /// Iterates `(value, count)` over non-empty bins.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(value, &count)| (value, count))
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of a sample by linear interpolation.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(asmcap_metrics::stats::quantile(&xs, 0.5), 2.5);
/// assert_eq!(asmcap_metrics::stats::quantile(&xs, 0.0), 1.0);
/// assert_eq!(asmcap_metrics::stats::quantile(&xs, 1.0), 4.0);
/// ```
#[must_use]
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in quantile input"));
    let position = q * (sorted.len() - 1) as f64;
    let lower = position.floor() as usize;
    let upper = position.ceil() as usize;
    let weight = position - lower as f64;
    sorted[lower] * (1.0 - weight) + sorted[upper] * weight
}

/// Geometric mean of strictly positive values — the standard way to average
/// the speedup/efficiency ratios in Fig. 8.
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of an empty sample");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accumulator_basic_moments() {
        let acc: Accumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(acc.mean(), 5.0);
        assert!((acc.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn accumulator_empty_and_single() {
        let empty = Accumulator::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.variance(), 0.0);
        let single: Accumulator = [3.0].into_iter().collect();
        assert_eq!(single.mean(), 3.0);
        assert_eq!(single.variance(), 0.0);
    }

    #[test]
    fn histogram_records_and_overflows() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 1, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.count(1), 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
        assert!((h.mean() - 1.25).abs() < 1e-12);
        assert_eq!(h.iter().count(), 3);
    }

    #[test]
    fn quantile_median_of_odd_sample() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[10.0, 1000.0]) - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    proptest! {
        #[test]
        fn prop_accumulator_matches_naive(xs in proptest::collection::vec(-100.0f64..100.0, 2..50)) {
            let acc: Accumulator = xs.iter().copied().collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
            prop_assert!((acc.mean() - mean).abs() < 1e-9);
            prop_assert!((acc.variance() - var).abs() < 1e-9);
        }

        #[test]
        fn prop_quantile_within_range(
            xs in proptest::collection::vec(-50.0f64..50.0, 1..40),
            q in 0.0f64..=1.0
        ) {
            let value = quantile(&xs, q);
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(value >= lo - 1e-9 && value <= hi + 1e-9);
        }
    }
}
