//! Baseline-system benchmarks (backs Fig. 8's functional side): ReSMA's
//! filter + wavefront, SaVI's seed-and-vote, Kraken2-style classification,
//! and the CM-CPU banded DP.

use asmcap::AsmMatcher;
use asmcap_baselines::{
    CmCpuAligner, KrakenClassifier, KrakenMode, ResmaAccelerator, SaviAccelerator,
};
use asmcap_bench::{decoy_pair, pair};
use asmcap_genome::ErrorProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_resma(c: &mut Criterion) {
    let mut group = c.benchmark_group("resma");
    let (segment, read) = pair(256, ErrorProfile::condition_a());
    let (decoy_a, decoy_b) = decoy_pair(256);
    let mut resma = ResmaAccelerator::paper();
    group.bench_function("aligned_pair_t8", |bencher| {
        bencher.iter(|| resma.matches(black_box(segment.as_slice()), read.as_slice(), 8));
    });
    group.bench_function("decoy_filtered_out", |bencher| {
        bencher.iter(|| resma.matches(black_box(decoy_a.as_slice()), decoy_b.as_slice(), 8));
    });
    group.finish();
}

fn bench_savi(c: &mut Criterion) {
    let mut group = c.benchmark_group("savi");
    let (segment, read) = pair(256, ErrorProfile::condition_a());
    let mut savi = SaviAccelerator::paper();
    group.bench_function("seed_and_vote_t8", |bencher| {
        bencher.iter(|| savi.matches(black_box(segment.as_slice()), read.as_slice(), 8));
    });
    group.finish();
}

fn bench_kraken(c: &mut Criterion) {
    let mut group = c.benchmark_group("kraken");
    let (segment, read) = pair(256, ErrorProfile::condition_a());
    let mut exact = KrakenClassifier::new(KrakenMode::Exact);
    let mut kmer = KrakenClassifier::new(KrakenMode::kraken2_defaults());
    group.bench_function("exact", |bencher| {
        bencher.iter(|| exact.matches(black_box(segment.as_slice()), read.as_slice(), 0));
    });
    group.bench_function("kmer35", |bencher| {
        bencher.iter(|| kmer.matches(black_box(segment.as_slice()), read.as_slice(), 0));
    });
    group.finish();
}

fn bench_cm_cpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("cm_cpu");
    let (segment, read) = pair(256, ErrorProfile::condition_b());
    let mut cpu = CmCpuAligner::new();
    group.bench_function("banded_t8", |bencher| {
        bencher.iter(|| cpu.matches(black_box(segment.as_slice()), read.as_slice(), 8));
    });
    group.finish();
}

criterion_group!(benches, bench_resma, bench_savi, bench_kraken, bench_cm_cpu);
criterion_main!(benches);
