//! The k-mer prefilter as a measured kernel: one-time index build cost and
//! per-read shortlist lookup cost across reference scales (64k/256k/1M
//! bases), plus the packed k-mer extraction the index is built from.
//!
//! The point being measured: shortlist lookup is `O(read minimizers ×
//! hits)` and essentially flat in the reference size, while the full scan
//! it replaces is `O(reference)` — that gap is the pipeline speedup the
//! `pipeline_prefilter` group measures end to end.

use asmcap_bench::genome;
use asmcap_genome::kmer::packed_kmers;
use asmcap_genome::{
    ErrorProfile, PackedRef, PackedSeq, PrefilterConfig, PrefilterIndex, ReadSampler,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const WIDTH: usize = 128;
const REF_LENS: [usize; 3] = [65_536, 262_144, 1_048_576];

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefilter_index_build");
    group.sample_size(10);
    for ref_len in REF_LENS {
        let reference = PackedRef::new(&genome(ref_len));
        group.throughput(Throughput::Elements(ref_len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ref_len), &ref_len, |b, _| {
            b.iter(|| {
                PrefilterIndex::new(black_box(&reference), WIDTH, 1, PrefilterConfig::default())
                    .expect("valid k")
            });
        });
    }
    group.finish();
}

fn bench_shortlist_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefilter_shortlist_lookup");
    group.sample_size(10);
    for ref_len in REF_LENS {
        let raw = genome(ref_len);
        let reference = PackedRef::new(&raw);
        let index =
            PrefilterIndex::new(&reference, WIDTH, 1, PrefilterConfig::default()).expect("valid k");
        let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
        let reads: Vec<PackedSeq> = sampler
            .sample_many(&raw, 64, 0x5EED)
            .into_iter()
            .map(|r| PackedSeq::from_seq(&r.bases))
            .collect();
        group.throughput(Throughput::Elements(reads.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ref_len), &ref_len, |b, _| {
            b.iter(|| {
                reads
                    .iter()
                    .map(|read| index.shortlist(black_box(read)).len())
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

fn bench_packed_kmer_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("packed_kmer_extraction");
    group.sample_size(10);
    let reference = PackedSeq::from_seq(&genome(262_144));
    for k in [12usize, 20, 32] {
        group.throughput(Throughput::Elements(reference.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                packed_kmers(black_box(&reference), k)
                    .map(|(_, code)| code)
                    .fold(0u64, u64::wrapping_add)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_index_build,
    bench_shortlist_lookup,
    bench_packed_kmer_extraction
);
criterion_main!(benches);
