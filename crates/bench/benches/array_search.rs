//! Architecture-layer benchmarks: in-array search across array sizes and
//! device-level search (the operation Fig. 8's throughput model counts).

use asmcap_arch::{CamArray, DeviceBuilder, MatchMode};
use asmcap_bench::genome;
use asmcap_circuit::rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_array_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("array_search");
    for (rows, width) in [(64usize, 64usize), (256, 256)] {
        let reference = genome(rows * width + width);
        let mut array = CamArray::asmcap(rows, width);
        for i in 0..rows {
            array
                .store_row(&reference.as_slice()[i * width..(i + 1) * width])
                .unwrap();
        }
        let read = reference.window(32..32 + width);
        let mut r = rng(4);
        group.throughput(Throughput::Elements((rows * width) as u64));
        group.bench_with_input(
            BenchmarkId::new("ed_star", format!("{rows}x{width}")),
            &rows,
            |bencher, _| {
                bencher.iter(|| {
                    array.search(black_box(read.as_slice()), 8, MatchMode::EdStar, &mut r)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hamming", format!("{rows}x{width}")),
            &rows,
            |bencher, _| {
                bencher.iter(|| {
                    array.search(black_box(read.as_slice()), 8, MatchMode::Hamming, &mut r)
                });
            },
        );
    }
    group.finish();
}

/// One read at a time vs one batched device pass (sized so the packed row
/// store — 16k × 256-base rows = 1 MiB — exceeds cache). Honest result on
/// current hosts: the two are within a few percent of each other, because
/// the software sense-amplifier model (an RNG draw per sensed row)
/// dominates the row fetches the batch pass amortizes; the batch entry
/// point's value is the pipelined-global-buffer modeling, the single-call
/// batch surface with per-read RNG isolation, and the masked variant for
/// prefiltered batches. Track both here so a future sense-model speedup
/// shows when the balance tips.
fn bench_device_batch_search(c: &mut Criterion) {
    use asmcap_genome::PackedSeq;
    let mut group = c.benchmark_group("device_batch_search");
    group.sample_size(10);
    let width = 256usize;
    let arrays = 64usize;
    let reference = genome(arrays * 256 + width - 1);
    let mut device = DeviceBuilder::new()
        .arrays(arrays)
        .rows_per_array(256)
        .row_width(width)
        .build_asmcap();
    device.store_reference(&reference, 1).unwrap();
    let batch = 64usize;
    let reads: Vec<PackedSeq> = (0..batch)
        .map(|i| PackedSeq::from_seq(&reference.window(i * 17..i * 17 + width)))
        .collect();
    group.throughput(Throughput::Elements((device.stored_rows() * batch) as u64));
    group.bench_function("sequential_64_reads", |bencher| {
        bencher.iter(|| {
            let mut rngs: Vec<_> = (0..batch as u64).map(rng).collect();
            reads
                .iter()
                .zip(&mut rngs)
                .map(|(read, r)| {
                    device
                        .search_packed(black_box(read), 8, MatchMode::EdStar, r)
                        .matches
                        .len()
                })
                .sum::<usize>()
        });
    });
    group.bench_function("batched_64_reads", |bencher| {
        bencher.iter(|| {
            let mut rngs: Vec<_> = (0..batch as u64).map(rng).collect();
            device
                .search_packed_batch(black_box(&reads), 8, MatchMode::EdStar, &mut rngs)
                .iter()
                .map(|result| result.matches.len())
                .sum::<usize>()
        });
    });
    group.finish();
}

fn bench_device_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_search");
    group.sample_size(10);
    let width = 256usize;
    let arrays = 16usize;
    // 16 arrays x 256 rows hold exactly 4096 stride-1 windows.
    let reference = genome(arrays * 256 + width - 1);
    let mut device = DeviceBuilder::new()
        .arrays(arrays)
        .rows_per_array(256)
        .row_width(width)
        .build_asmcap();
    device.store_reference(&reference, 1).unwrap();
    let read = reference.window(1000..1000 + width);
    let mut r = rng(5);
    group.throughput(Throughput::Elements(device.stored_rows() as u64));
    group.bench_function("asmcap_16_arrays_stride1", |bencher| {
        bencher.iter(|| device.search(black_box(read.as_slice()), 8, MatchMode::EdStar, &mut r));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_array_search,
    bench_device_batch_search,
    bench_device_search
);
criterion_main!(benches);
