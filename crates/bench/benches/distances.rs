//! Distance-kernel benchmarks (backs Fig. 2 and the CM-CPU model): HD,
//! ED (DP / banded / Myers), and ED* across read lengths.

use asmcap_bench::{decoy_pair, pair};
use asmcap_genome::{ErrorProfile, PackedSeq};
use asmcap_metrics::{
    ed_star, edit_distance, edit_distance_banded, edit_distance_myers, hamming, hamming_packed,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_hamming(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamming");
    for len in [64usize, 256, 1024] {
        let (a, b) = decoy_pair(len);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("naive", len), &len, |bencher, _| {
            bencher.iter(|| hamming(black_box(a.as_slice()), black_box(b.as_slice())));
        });
        let pa = PackedSeq::from_seq(&a);
        let pb = PackedSeq::from_seq(&b);
        group.bench_with_input(BenchmarkId::new("packed", len), &len, |bencher, _| {
            bencher.iter(|| hamming_packed(black_box(&pa), black_box(&pb)));
        });
    }
    group.finish();
}

fn bench_edit_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("edit_distance");
    group.sample_size(20);
    for len in [64usize, 256, 1024] {
        let (a, b) = pair(len, ErrorProfile::condition_b());
        group.throughput(Throughput::Elements((len * len) as u64));
        group.bench_with_input(BenchmarkId::new("dp", len), &len, |bencher, _| {
            bencher.iter(|| edit_distance(black_box(a.as_slice()), black_box(b.as_slice())));
        });
        group.bench_with_input(BenchmarkId::new("banded_t16", len), &len, |bencher, _| {
            bencher.iter(|| {
                edit_distance_banded(black_box(a.as_slice()), black_box(b.as_slice()), 16)
            });
        });
        group.bench_with_input(BenchmarkId::new("myers", len), &len, |bencher, _| {
            bencher.iter(|| edit_distance_myers(black_box(a.as_slice()), black_box(b.as_slice())));
        });
    }
    group.finish();
}

fn bench_ed_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("ed_star");
    for len in [64usize, 256, 1024] {
        let (segment, read) = pair(len, ErrorProfile::condition_a());
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |bencher, _| {
            bencher.iter(|| ed_star(black_box(segment.as_slice()), black_box(read.as_slice())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hamming, bench_edit_distance, bench_ed_star);
criterion_main!(benches);
