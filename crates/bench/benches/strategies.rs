//! Strategy-overhead benchmarks (§IV overhead analyses): the cost of HDAC's
//! extra HD search and TASR's rotated searches, at the decision level.

use asmcap::{AsmMatcher, AsmcapConfig, HdacParams, TasrParams};
use asmcap_bench::{decoy_pair, pair};
use asmcap_genome::ErrorProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_hdac_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdac_overhead");
    let profile = ErrorProfile::condition_a();
    let (segment, read) = pair(256, profile);
    let mut plain = AsmcapConfig::new(profile)
        .hdac(None)
        .tasr(None)
        .seed(1)
        .build();
    let mut hdac = AsmcapConfig::new(profile)
        .hdac(Some(HdacParams::paper()))
        .tasr(None)
        .seed(2)
        .build();
    // T=1: HDAC armed.
    group.bench_function("without", |bencher| {
        bencher.iter(|| plain.matches(black_box(segment.as_slice()), read.as_slice(), 1));
    });
    group.bench_function("with_hd_search", |bencher| {
        bencher.iter(|| hdac.matches(black_box(segment.as_slice()), read.as_slice(), 1));
    });
    group.finish();
}

fn bench_tasr_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("tasr_overhead");
    let profile = ErrorProfile::condition_b();
    // Decoy pair: the base search misses, so TASR issues all rotations —
    // the worst case for the rotation loop.
    let (segment, read) = decoy_pair(256);
    let mut plain = AsmcapConfig::new(profile)
        .hdac(None)
        .tasr(None)
        .seed(3)
        .build();
    let mut tasr2 = AsmcapConfig::new(profile)
        .hdac(None)
        .tasr(Some(TasrParams::paper()))
        .seed(4)
        .build();
    let mut tasr4 = AsmcapConfig::new(profile)
        .hdac(None)
        .tasr(Some(TasrParams {
            rotations: 4,
            ..TasrParams::paper()
        }))
        .seed(5)
        .build();
    group.bench_function("without", |bencher| {
        bencher.iter(|| plain.matches(black_box(segment.as_slice()), read.as_slice(), 8));
    });
    group.bench_function("nr2", |bencher| {
        bencher.iter(|| tasr2.matches(black_box(segment.as_slice()), read.as_slice(), 8));
    });
    group.bench_function("nr4", |bencher| {
        bencher.iter(|| tasr4.matches(black_box(segment.as_slice()), read.as_slice(), 8));
    });
    group.finish();
}

criterion_group!(benches, bench_hdac_overhead, bench_tasr_overhead);
criterion_main!(benches);
