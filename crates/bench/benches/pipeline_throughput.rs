//! Pipeline throughput: reads/sec through `AsmcapPipeline::map_batch` for
//! batch sizes 1/64/1024 across worker counts — the baseline trajectory for
//! future batching/sharding work — plus a backend axis (device/pair/
//! software) tracking what the packed matchplane buys each execution
//! engine, and a prefilter on/off axis measuring what the k-mer shortlist
//! buys once the per-pair kernels are cheap (O(hits) vs O(reference)).

use asmcap::{AsmcapPipeline, BackendKind, PipelineConfig, PrefilterConfig};
use asmcap_bench::genome;
use asmcap_genome::{DnaSeq, ErrorProfile, ReadSampler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const WIDTH: usize = 128;

fn pipeline_with(
    reference: &DnaSeq,
    workers: usize,
    backend: BackendKind,
    prefilter: Option<PrefilterConfig>,
) -> AsmcapPipeline {
    AsmcapPipeline::builder()
        .reference(reference.clone())
        .config(PipelineConfig {
            row_width: WIDTH,
            stride: 8, // keep the device small enough to bench batches of 1024
            seed: 0xBE,
            prefilter,
            ..PipelineConfig::paper(6, ErrorProfile::condition_a())
        })
        .backend(backend)
        .workers(workers)
        .build()
        .expect("pipeline builds")
}

fn pipeline_on(reference: &DnaSeq, workers: usize, backend: BackendKind) -> AsmcapPipeline {
    pipeline_with(reference, workers, backend, None)
}

fn pipeline(reference: &DnaSeq, workers: usize) -> AsmcapPipeline {
    pipeline_on(reference, workers, BackendKind::Device)
}

fn bench_pipeline_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_throughput");
    group.sample_size(10);
    let reference = genome(8_192);
    let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
    let reads: Vec<DnaSeq> = sampler
        .sample_many(&reference, 1024, 0x77)
        .into_iter()
        .map(|r| r.bases)
        .collect();
    for workers in [1usize, 2, 4, 8] {
        let pipeline = pipeline(&reference, workers);
        for batch in [1usize, 64, 1024] {
            let slice = &reads[..batch];
            group.throughput(Throughput::Elements(batch as u64));
            group.bench_with_input(
                BenchmarkId::new(&format!("workers{workers}"), batch),
                &batch,
                |bencher, _| {
                    bencher.iter(|| pipeline.map_batch(black_box(slice)));
                },
            );
        }
    }
    group.finish();
}

fn bench_backend_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_backends");
    group.sample_size(10);
    let reference = genome(8_192);
    let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
    let reads: Vec<DnaSeq> = sampler
        .sample_many(&reference, 256, 0x77)
        .into_iter()
        .map(|r| r.bases)
        .collect();
    for backend in [
        BackendKind::Device,
        BackendKind::Pair,
        BackendKind::Software,
    ] {
        let pipeline = pipeline_on(&reference, 4, backend);
        group.throughput(Throughput::Elements(reads.len() as u64));
        group.bench_with_input(
            BenchmarkId::new(&format!("{backend:?}").to_lowercase(), reads.len()),
            &reads.len(),
            |bencher, _| {
                bencher.iter(|| pipeline.map_batch(black_box(&reads)));
            },
        );
    }
    group.finish();
}

fn bench_prefilter_axis(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_prefilter");
    group.sample_size(10);
    // Large enough that the full scan dominates the per-read cost: the
    // device stores reference/stride segments and the prefilter shortlists
    // a few dozen of them.
    for ref_len in [8_192usize, 65_536] {
        let reference = genome(ref_len);
        let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
        let reads: Vec<DnaSeq> = sampler
            .sample_many(&reference, 256, 0x77)
            .into_iter()
            .map(|r| r.bases)
            .collect();
        for backend in [
            BackendKind::Device,
            BackendKind::Pair,
            BackendKind::Software,
        ] {
            for (label, prefilter) in [("off", None), ("on", Some(PrefilterConfig::default()))] {
                let pipeline = pipeline_with(&reference, 4, backend, prefilter);
                group.throughput(Throughput::Elements(reads.len() as u64));
                group.bench_with_input(
                    BenchmarkId::new(
                        &format!("{backend:?}").to_lowercase(),
                        format!("ref{ref_len}_prefilter_{label}"),
                    ),
                    &reads.len(),
                    |bencher, _| {
                        bencher.iter(|| pipeline.map_batch(black_box(&reads)));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline_throughput,
    bench_backend_throughput,
    bench_prefilter_axis
);
criterion_main!(benches);
