//! Pipeline throughput: reads/sec through `AsmcapPipeline::map_batch` for
//! batch sizes 1/64/1024 across worker counts — the baseline trajectory for
//! future batching/sharding work — plus a backend axis (device/pair/
//! software) tracking what the packed matchplane buys each execution
//! engine.

use asmcap::{AsmcapPipeline, BackendKind, PipelineConfig};
use asmcap_bench::genome;
use asmcap_genome::{DnaSeq, ErrorProfile, ReadSampler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const WIDTH: usize = 128;

fn pipeline_on(reference: &DnaSeq, workers: usize, backend: BackendKind) -> AsmcapPipeline {
    AsmcapPipeline::builder()
        .reference(reference.clone())
        .config(PipelineConfig {
            row_width: WIDTH,
            stride: 8, // keep the device small enough to bench batches of 1024
            seed: 0xBE,
            ..PipelineConfig::paper(6, ErrorProfile::condition_a())
        })
        .backend(backend)
        .workers(workers)
        .build()
        .expect("pipeline builds")
}

fn pipeline(reference: &DnaSeq, workers: usize) -> AsmcapPipeline {
    pipeline_on(reference, workers, BackendKind::Device)
}

fn bench_pipeline_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_throughput");
    group.sample_size(10);
    let reference = genome(8_192);
    let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
    let reads: Vec<DnaSeq> = sampler
        .sample_many(&reference, 1024, 0x77)
        .into_iter()
        .map(|r| r.bases)
        .collect();
    for workers in [1usize, 2, 4, 8] {
        let pipeline = pipeline(&reference, workers);
        for batch in [1usize, 64, 1024] {
            let slice = &reads[..batch];
            group.throughput(Throughput::Elements(batch as u64));
            group.bench_with_input(
                BenchmarkId::new(&format!("workers{workers}"), batch),
                &batch,
                |bencher, _| {
                    bencher.iter(|| pipeline.map_batch(black_box(slice)));
                },
            );
        }
    }
    group.finish();
}

fn bench_backend_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_backends");
    group.sample_size(10);
    let reference = genome(8_192);
    let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
    let reads: Vec<DnaSeq> = sampler
        .sample_many(&reference, 256, 0x77)
        .into_iter()
        .map(|r| r.bases)
        .collect();
    for backend in [
        BackendKind::Device,
        BackendKind::Pair,
        BackendKind::Software,
    ] {
        let pipeline = pipeline_on(&reference, 4, backend);
        group.throughput(Throughput::Elements(reads.len() as u64));
        group.bench_with_input(
            BenchmarkId::new(&format!("{backend:?}").to_lowercase(), reads.len()),
            &reads.len(),
            |bencher, _| {
                bencher.iter(|| pipeline.map_batch(black_box(&reads)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_throughput, bench_backend_throughput);
criterion_main!(benches);
