//! The extension/alignment stage: the raw GenASM-style banded bit-vector
//! traceback kernel at the CAM row widths the backends search (64/128/256),
//! and the end-to-end price of arming `--extension` on a prefiltered
//! pipeline at two reference sizes.
//!
//! The structural claim the second group pins: with the prefilter on, the
//! extension stage aligns each read against a handful of *shortlisted*
//! origins, so its cost scales with the shortlist — growing the reference
//! 4× must not grow the extension overhead (on minus off) anywhere near 4×.

use asmcap::{AsmcapPipeline, BackendKind, ExtensionConfig, PipelineConfig, PrefilterConfig};
use asmcap_bench::pair;
use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, PackedSeq, ReadSampler};
use asmcap_metrics::align_packed;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const WIDTHS: [usize; 3] = [64, 128, 256];
const WIDTH: usize = 128;

fn bench_align_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("extension_align_packed");
    for width in WIDTHS {
        let (segment, read) = pair(width, ErrorProfile::condition_a());
        let ps = PackedSeq::from_seq(&segment);
        let pr = PackedSeq::from_seq(&read);
        let band = 2 * 8 + 2; // the default derived band at T = 8
        group.throughput(Throughput::Elements(width as u64));
        // Condition-A pair: a few edits, so the level loop stops early.
        group.bench_with_input(
            BenchmarkId::new("condition_a", width),
            &width,
            |bencher, _| {
                bencher.iter(|| align_packed(black_box(&pr), black_box(&ps), black_box(band)));
            },
        );
        // Identical pair: the best case (one level, pure match sweep).
        group.bench_with_input(BenchmarkId::new("exact", width), &width, |bencher, _| {
            bencher.iter(|| align_packed(black_box(&ps), black_box(&ps), black_box(band)));
        });
        // Foreign pair: the worst case (every level filled, then None).
        let decoy = PackedSeq::from_seq(&GenomeModel::uniform().generate(width, 4_242));
        group.bench_with_input(BenchmarkId::new("decoy", width), &width, |bencher, _| {
            bencher.iter(|| align_packed(black_box(&decoy), black_box(&ps), black_box(band)));
        });
    }
    group.finish();
}

fn pipeline_with(reference: &DnaSeq, extension: Option<ExtensionConfig>) -> AsmcapPipeline {
    AsmcapPipeline::builder()
        .reference(reference.clone())
        .config(PipelineConfig {
            row_width: WIDTH,
            stride: 8, // keep the device small enough to bench both sizes
            seed: 0xBE,
            prefilter: Some(PrefilterConfig::default()),
            extension,
            ..PipelineConfig::paper(6, ErrorProfile::condition_a())
        })
        .backend(BackendKind::Device)
        .workers(2)
        .build()
        .expect("pipeline builds")
}

fn bench_extension_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("extension_stage");
    group.sample_size(10);
    for ref_len in [16_384usize, 65_536] {
        let reference = GenomeModel::uniform().generate(ref_len, 0xBEBC);
        let sampler = ReadSampler::new(WIDTH, ErrorProfile::condition_a());
        let reads: Vec<DnaSeq> = sampler
            .sample_many(&reference, 256, 0x77)
            .into_iter()
            .map(|r| r.bases)
            .collect();
        group.throughput(Throughput::Elements(reads.len() as u64));
        for (label, extension) in [("off", None), ("on", Some(ExtensionConfig::default()))] {
            let pipeline = pipeline_with(&reference, extension);
            group.bench_with_input(BenchmarkId::new(label, ref_len), &ref_len, |bencher, _| {
                bencher.iter(|| pipeline.map_batch(black_box(&reads)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_align_kernel, bench_extension_stage);
criterion_main!(benches);
