//! Circuit-model benchmarks (backs Table I and Fig. 3): sensing draws for
//! both ML-CAM domains, exact capacitor-bank charge sharing, and the
//! Monte-Carlo misjudgment kernel.

use asmcap_circuit::charge::CapacitorBank;
use asmcap_circuit::montecarlo::MonteCarlo;
use asmcap_circuit::sense::SenseAmp;
use asmcap_circuit::{rng, ChargeDomainCam, CurrentDomainCam, MlCam, VrefPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sensing(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensing_measure");
    let charge = ChargeDomainCam::paper();
    let current = CurrentDomainCam::paper();
    let mut r = rng(1);
    for n_mis in [8usize, 108] {
        group.bench_with_input(
            BenchmarkId::new("charge_domain", n_mis),
            &n_mis,
            |bencher, &k| {
                bencher.iter(|| charge.measure(black_box(k), 256, &mut r));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("current_domain", n_mis),
            &n_mis,
            |bencher, &k| {
                bencher.iter(|| current.measure(black_box(k), 256, &mut r));
            },
        );
    }
    group.finish();
}

fn bench_capacitor_bank(c: &mut Criterion) {
    let mut group = c.benchmark_group("capacitor_bank");
    let mut r = rng(2);
    group.bench_function("sample_256", |bencher| {
        bencher.iter(|| CapacitorBank::sample(256, 2e-15, 0.014, &mut r));
    });
    let bank = CapacitorBank::sample(256, 2e-15, 0.014, &mut r);
    let mismatched: Vec<bool> = (0..256).map(|i| i % 3 == 0).collect();
    group.bench_function("matchline_voltage_256", |bencher| {
        bencher.iter(|| bank.matchline_voltage(black_box(&mismatched), 1.2));
    });
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);
    let mc = MonteCarlo::new(2_000, 3);
    let sa = SenseAmp::new(CurrentDomainCam::paper(), VrefPolicy::Centered);
    group.bench_function("match_rate_2000_trials", |bencher| {
        bencher.iter(|| mc.match_rate(black_box(&sa), 9, 256, 8));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sensing,
    bench_capacitor_bank,
    bench_monte_carlo
);
criterion_main!(benches);
