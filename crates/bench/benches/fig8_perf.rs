//! Fig. 8 benchmarks: the performance-model evaluation itself, plus the
//! honest host-side DP cell rate (our machine's CM-CPU equivalent, recorded
//! in EXPERIMENTS.md next to the calibrated i9 constant).

use asmcap_baselines::perf::{PerfReport, Workload};
use asmcap_baselines::CmCpuAligner;
use asmcap_genome::GenomeModel;
use asmcap_metrics::edit_distance_myers;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_model");
    let workload = Workload::paper(1.07, 107.5);
    group.bench_function("six_system_report", |bencher| {
        bencher.iter(|| PerfReport::fig8(black_box(&workload)));
    });
    group.finish();
}

fn bench_host_dp_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("cm_cpu_host");
    let a = GenomeModel::uniform().generate(256, 1);
    let b = GenomeModel::uniform().generate(256, 2);
    group.throughput(Throughput::Elements((256 * 256) as u64));
    group.bench_function("myers_256x256", |bencher| {
        bencher.iter(|| edit_distance_myers(black_box(a.as_slice()), black_box(b.as_slice())));
    });
    group.bench_function("banded_t16_256", |bencher| {
        let cpu = CmCpuAligner::new();
        bencher.iter(|| cpu.distance_within(black_box(a.as_slice()), black_box(b.as_slice()), 16));
    });
    group.finish();
}

criterion_group!(benches, bench_model, bench_host_dp_rate);
criterion_main!(benches);
