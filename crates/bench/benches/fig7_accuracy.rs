//! Fig. 7 kernel benchmarks: one pair decision for each engine, and a full
//! reduced sweep — the workload the accuracy figures are generated from.

use asmcap::engine::fig7_engines;
use asmcap::AsmMatcher;
use asmcap_bench::pair;
use asmcap_eval::{Condition, Fig7Config};
use asmcap_genome::ErrorProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pair_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_pair_decision");
    let (segment, read) = pair(256, ErrorProfile::condition_a());
    let (mut edam, mut without, mut with) = fig7_engines(ErrorProfile::condition_a(), 1);
    group.bench_function("edam", |bencher| {
        bencher.iter(|| edam.matches(black_box(segment.as_slice()), black_box(read.as_slice()), 4));
    });
    group.bench_function("asmcap_without", |bencher| {
        bencher
            .iter(|| without.matches(black_box(segment.as_slice()), black_box(read.as_slice()), 4));
    });
    group.bench_function("asmcap_with_hdac_tasr", |bencher| {
        bencher.iter(|| with.matches(black_box(segment.as_slice()), black_box(read.as_slice()), 4));
    });
    group.finish();
}

fn bench_reduced_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_sweep");
    group.sample_size(10);
    let config = Fig7Config {
        reads: 20,
        decoys: 4,
        read_len: 128,
        genome_len: 30_000,
        seed: 9,
    };
    group.bench_function("condition_a_reduced", |bencher| {
        bencher.iter(|| asmcap_eval::fig7::run(black_box(Condition::A), &config));
    });
    group.finish();
}

criterion_group!(benches, bench_pair_decisions, bench_reduced_sweep);
criterion_main!(benches);
