//! Scalar vs word-parallel matching kernels at the CAM row widths the
//! mapping backends actually search (64/128/256): the microbenchmark behind
//! the packed-matchplane refactor. Also measures the zero-copy segment-view
//! path (what a backend scan step really executes) against the old
//! slice-and-walk step.

use asmcap_bench::pair;
use asmcap_genome::{ErrorProfile, PackedRef, PackedSeq};
use asmcap_metrics::{
    ed_star, ed_star_hamming_packed, ed_star_packed, ed_star_packed_scalar, hamming,
    hamming_packed, hamming_packed_scalar,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const WIDTHS: [usize; 3] = [64, 128, 256];

fn bench_ed_star_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_ed_star");
    for width in WIDTHS {
        let (stored, read) = pair(width, ErrorProfile::condition_a());
        group.throughput(Throughput::Elements(width as u64));
        group.bench_with_input(BenchmarkId::new("scalar", width), &width, |bencher, _| {
            bencher.iter(|| ed_star(black_box(stored.as_slice()), black_box(read.as_slice())));
        });
        let ps = PackedSeq::from_seq(&stored);
        let pr = PackedSeq::from_seq(&read);
        // The PR 4 single-word kernel: the baseline the lane dispatch is
        // measured against.
        group.bench_with_input(
            BenchmarkId::new("packed_scalar", width),
            &width,
            |bencher, _| {
                bencher.iter(|| ed_star_packed_scalar(black_box(&ps), black_box(&pr)));
            },
        );
        // The dispatched multi-lane kernel (AVX2 when the host has it,
        // 4×u64 SWAR otherwise).
        group.bench_with_input(BenchmarkId::new("packed", width), &width, |bencher, _| {
            bencher.iter(|| ed_star_packed(black_box(&ps), black_box(&pr)));
        });
        group.bench_with_input(BenchmarkId::new("fused_hd", width), &width, |bencher, _| {
            bencher.iter(|| ed_star_hamming_packed(black_box(&ps), black_box(&pr)));
        });
    }
    group.finish();
}

fn bench_hamming_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_hamming");
    for width in WIDTHS {
        let (stored, read) = pair(width, ErrorProfile::condition_a());
        group.throughput(Throughput::Elements(width as u64));
        group.bench_with_input(BenchmarkId::new("scalar", width), &width, |bencher, _| {
            bencher.iter(|| hamming(black_box(stored.as_slice()), black_box(read.as_slice())));
        });
        let ps = PackedSeq::from_seq(&stored);
        let pr = PackedSeq::from_seq(&read);
        group.bench_with_input(
            BenchmarkId::new("packed_scalar", width),
            &width,
            |bencher, _| {
                bencher.iter(|| hamming_packed_scalar(black_box(&ps), black_box(&pr)));
            },
        );
        group.bench_with_input(BenchmarkId::new("packed", width), &width, |bencher, _| {
            bencher.iter(|| hamming_packed(black_box(&ps), black_box(&pr)));
        });
    }
    group.finish();
}

/// One backend scan step: compare the read against the segment starting at
/// every reference offset. Scalar re-slices the reference per offset; the
/// packed path extracts a zero-copy view of the one-time packing.
fn bench_reference_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_reference_scan");
    group.sample_size(20);
    let reference = asmcap_bench::genome(16_384);
    for width in WIDTHS {
        let (_, read) = pair(width, ErrorProfile::condition_a());
        let offsets = reference.len() - width + 1;
        group.throughput(Throughput::Elements(offsets as u64));
        group.bench_with_input(BenchmarkId::new("scalar", width), &width, |bencher, _| {
            bencher.iter(|| {
                (0..offsets)
                    .map(|start| {
                        ed_star(
                            black_box(&reference.as_slice()[start..start + width]),
                            black_box(read.as_slice()),
                        )
                    })
                    .sum::<usize>()
            });
        });
        let packed_ref = PackedRef::new(&reference);
        let packed_read = PackedSeq::from_seq(&read);
        group.bench_with_input(BenchmarkId::new("packed", width), &width, |bencher, _| {
            bencher.iter(|| {
                (0..offsets)
                    .map(|start| {
                        ed_star_packed(
                            black_box(&packed_ref.segment(start, width)),
                            black_box(&packed_read),
                        )
                    })
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ed_star_kernels,
    bench_hamming_kernels,
    bench_reference_scan
);
criterion_main!(benches);
