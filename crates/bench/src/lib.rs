//! Shared fixtures for the criterion benchmarks.
//!
//! The benches regenerate the paper's tables/figures as *measured kernels*:
//! `distances` and `fig7_accuracy` back Fig. 2/Fig. 7, `table1_circuit`
//! backs Table I/Fig. 3, `array_search` the architecture layer,
//! `strategies` the §IV overhead analyses, `baselines`/`fig8_perf` Fig. 8.

#![forbid(unsafe_code)]

use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, ReadSampler, SampledRead};

/// A deterministic genome for benching.
#[must_use]
pub fn genome(len: usize) -> DnaSeq {
    GenomeModel::uniform().generate(len, 0xBEBC)
}

/// A deterministic (segment, erroneous read) pair of the given length.
#[must_use]
pub fn pair(len: usize, profile: ErrorProfile) -> (DnaSeq, DnaSeq) {
    let genome = genome(len * 8 + 64);
    let sampler = ReadSampler::new(len, profile);
    let read: SampledRead = sampler.sample(&genome, 0x9A12);
    let segment = read.aligned_segment(&genome);
    (segment, read.bases)
}

/// A deterministic pair of unrelated sequences (decoy workload).
#[must_use]
pub fn decoy_pair(len: usize) -> (DnaSeq, DnaSeq) {
    (
        GenomeModel::uniform().generate(len, 1),
        GenomeModel::uniform().generate(len, 2),
    )
}
