//! Evaluation harness for the ASMCap reproduction.
//!
//! Every table and figure of the paper's evaluation (§V) has a module here
//! and a binary under `src/bin/` that prints it:
//!
//! | artefact | module | binary |
//! |---|---|---|
//! | Fig. 2 matching examples | [`fig2`] | `cargo run -p asmcap-eval --bin fig2` |
//! | Fig. 3 V_ML behaviour | [`fig3`] | `… --bin fig3` |
//! | Table I circuit comparison | [`table1`] | `… --bin table1` |
//! | §V-B area/power breakdown | [`breakdown`] | `… --bin breakdown` |
//! | §V-D distinguishable states | [`states`] | `… --bin states` |
//! | Fig. 7 accuracy (4 subplots) | [`fig7`] | `… --bin fig7` |
//! | Fig. 8 speedup & energy efficiency | [`fig8`] | `… --bin fig8` |
//! | Fig. 1(b) accuracy-vs-efficiency | [`fig1b`] | `… --bin fig1b` |
//! | HDAC/TASR design-space ablations | [`ablation`] | `… --bin ablation` |
//! | Array-size/read-length scaling | [`scaling`] | `… --bin scaling` |
//!
//! [`dataset`] builds the metagenomic pair datasets with exact ground
//! truth, and [`report`] renders markdown/CSV tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod breakdown;
pub mod cli;
pub mod corners;
pub mod dataset;
pub mod fig1b;
pub mod fig2;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod report;
pub mod scaling;
pub mod states;
pub mod table1;

pub use dataset::{Condition, EvalDataset, MappingRecovery};
pub use fig7::{Fig7Config, Fig7Result};
pub use report::Table;
