//! Fig. 8: system-level speedup and energy efficiency.
//!
//! The six systems match 256-base reads against 512 arrays × 256 rows. The
//! strategy overhead ("ASMCap w/ H&T" column) and the `n_mis` level feeding
//! the Eq. 1 energy model are *measured* from the Fig. 7 accuracy runs, not
//! assumed; the per-operation constants come from `asmcap-baselines`.

use crate::dataset::Condition;
use crate::fig7::{Fig7Config, Fig7Result};
use crate::report::{ratio, Table};
use asmcap_baselines::perf::PerfReport;
use asmcap_baselines::Workload;

/// The measured inputs the Fig. 8 model needs from accuracy runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredInputs {
    /// Mean extra strategy cycles per read (beyond the base search),
    /// averaged across both conditions' sweeps.
    pub extra_cycles: f64,
    /// Mean per-row ED\* across the evaluated workload.
    pub mean_n_mis: f64,
}

/// Extracts the Fig. 8 inputs from two Fig. 7 condition runs.
#[must_use]
pub fn measured_inputs(a: &Fig7Result, b: &Fig7Result) -> MeasuredInputs {
    let with_a = a
        .series("ASMCap w/ H&T")
        .expect("full engine series present");
    let with_b = b
        .series("ASMCap w/ H&T")
        .expect("full engine series present");
    let extra = (with_a.mean_cycles() - 1.0 + with_b.mean_cycles() - 1.0) / 2.0;
    MeasuredInputs {
        extra_cycles: extra,
        mean_n_mis: (a.mean_ed_star + b.mean_ed_star) / 2.0,
    }
}

/// Runs the accuracy sweeps and produces the Fig. 8 report.
#[must_use]
pub fn run(config: &Fig7Config) -> (PerfReport, MeasuredInputs) {
    let a = crate::fig7::run(Condition::A, config);
    let b = crate::fig7::run(Condition::B, config);
    let inputs = measured_inputs(&a, &b);
    let workload = Workload::paper(inputs.extra_cycles, inputs.mean_n_mis);
    (PerfReport::fig8(&workload), inputs)
}

/// Renders the Fig. 8 bars with the paper's reported values alongside.
#[must_use]
pub fn table(report: &PerfReport) -> Table {
    // Paper ratios, Fig. 8 text: speedups 9.7e4/362/126/2.8 (w/o) and
    // 4.7e4/174/61/1.4 (w/) relative to CM-CPU/ReSMA/SaVI/EDAM; here
    // normalised to CM-CPU.
    let paper_speedup = [
        ("CM-CPU", 1.0),
        ("ReSMA", 268.0),
        ("SaVI", 770.0),
        ("EDAM", 3.46e4),
        ("ASMCap w/o H&T", 9.7e4),
        ("ASMCap w/ H&T", 4.7e4),
    ];
    let paper_ee = [
        ("CM-CPU", 1.0),
        ("ReSMA", 222.0),
        ("SaVI", 2125.0),
        ("EDAM", 1.8e5),
        ("ASMCap w/o H&T", 5.1e6),
        ("ASMCap w/ H&T", 2.0e6),
    ];
    let mut table = Table::new(vec![
        "system",
        "latency/read",
        "energy/read",
        "speedup (model)",
        "speedup (paper)",
        "energy-eff (model)",
        "energy-eff (paper)",
    ]);
    for row in &report.rows {
        let paper_s = paper_speedup
            .iter()
            .find(|(n, _)| *n == row.name)
            .map_or(f64::NAN, |(_, v)| *v);
        let paper_e = paper_ee
            .iter()
            .find(|(n, _)| *n == row.name)
            .map_or(f64::NAN, |(_, v)| *v);
        table.row(vec![
            row.name.into(),
            format_time(row.latency_s),
            format_energy(row.energy_j),
            ratio(row.speedup),
            ratio(paper_s),
            ratio(row.energy_efficiency),
            ratio(paper_e),
        ]);
    }
    table
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1e-6 {
        format!("{:.1}us", seconds * 1e6)
    } else {
        format!("{:.2}ns", seconds * 1e9)
    }
}

fn format_energy(joules: f64) -> String {
    if joules >= 1e-6 {
        format!("{:.1}uJ", joules * 1e6)
    } else if joules >= 1e-9 {
        format!("{:.2}nJ", joules * 1e9)
    } else {
        format!("{:.2}pJ", joules * 1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_six_rows() {
        let (report, inputs) = run(&Fig7Config::smoke());
        assert_eq!(report.rows.len(), 6);
        assert!(inputs.extra_cycles > 0.0, "strategies must cost something");
        assert!(inputs.extra_cycles < 3.0);
        assert!(inputs.mean_n_mis > 0.0);
        let rendered = table(&report).to_string();
        assert!(rendered.contains("ASMCap w/ H&T"));
        assert!(rendered.contains("paper"));
    }
}
