//! Regenerates Fig. 8: speedup and energy efficiency of the six systems.
//!
//! Usage: `fig8 [--smoke] [--csv DIR]`.

use asmcap_eval::Fig7Config;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        Fig7Config::smoke()
    } else {
        Fig7Config::paper()
    };
    println!("Fig. 8 — speedup & energy efficiency (512 arrays x 256x256, 256-base reads)\n");
    let (report, inputs) = asmcap_eval::fig8::run(&config);
    println!(
        "measured strategy overhead: {:.2} extra cycles/read; mean n_mis: {:.1}\n",
        inputs.extra_cycles, inputs.mean_n_mis
    );
    let table = asmcap_eval::fig8::table(&report);
    if let Some(dir) = asmcap_eval::report::csv_dir_from_args() {
        match asmcap_eval::report::write_csv(&dir, "fig8", &table) {
            Ok(path) => println!("(CSV written to {})\n", path.display()),
            Err(e) => eprintln!("failed to write CSV: {e}"),
        }
    }
    println!("{table}");
    println!("Model mechanics: cycles from the functional engines; per-op");
    println!("latency/energy from each paper (calibrated constants documented");
    println!("in asmcap_baselines::perf::calib).");
}
