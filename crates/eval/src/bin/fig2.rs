//! Regenerates Fig. 2: HD vs ED\* vs ED on the paper's example pairs.

fn main() {
    println!("Fig. 2 — the adopted matching method (paper examples)\n");
    println!("{}", asmcap_eval::fig2::table());
    println!("ED is the anchored semi-global distance (reference end gaps free);");
    println!("the second printed sequence acts as the stored CAM row.");
}
