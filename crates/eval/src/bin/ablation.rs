//! Design-space ablations for HDAC and TASR.
//!
//! Usage: `ablation [hdac|tasr|schedule|all] [--smoke]`.

use asmcap_eval::{Condition, EvalDataset};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or("all", String::as_str);
    let smoke = args.iter().any(|a| a == "--smoke");
    let (reads, decoys, genome) = if smoke {
        (40, 6, 60_000)
    } else {
        (150, 12, 200_000)
    };

    if what == "hdac" || what == "all" {
        let ds = EvalDataset::build(Condition::A, reads, decoys, 256, genome, 0xAB1A);
        println!("HDAC ablation — mean F1 (%) over T=1..8, Condition A\n");
        println!(
            "{}",
            asmcap_eval::ablation::hdac_sweep(
                &ds,
                &[50.0, 100.0, 200.0, 400.0],
                &[0.1, 0.25, 0.5, 1.0],
                1
            )
        );
        println!("(paper constants: alpha=200, beta=0.5)\n");
    }
    if what == "tasr" || what == "all" {
        let ds = EvalDataset::build(Condition::B, reads, decoys, 256, genome, 0xAB1B);
        println!("TASR ablation — mean F1 (%) over T=2..16, Condition B\n");
        println!(
            "{}",
            asmcap_eval::ablation::tasr_sweep(
                &ds,
                &[0.5e-4, 1e-4, 2e-4, 4e-4, 8e-4],
                &[0, 1, 2, 4],
                2
            )
        );
        println!(
            "(paper constants: gamma=2e-4, N_R=2; 'plain SR' = EDAM-style ungated rotation)\n"
        );
    }
    if what == "schedule" || what == "all" {
        let ds = EvalDataset::build(Condition::B, reads, decoys, 256, genome, 0xAB1C);
        println!("TASR rotation-schedule comparison, Condition B\n");
        println!("{}", asmcap_eval::ablation::schedule_sweep(&ds, 3));
        println!();
    }
    if what == "burst" || what == "all" {
        println!("TASR vs indel burstiness — mean F1 (%) over T=2..16, Condition-B rates\n");
        println!(
            "{}",
            asmcap_eval::ablation::burst_sweep(
                &[1.0, 2.0, 3.0, 4.0],
                reads,
                decoys,
                256,
                genome,
                4
            )
        );
        println!("(constant indel mass; longer runs are exactly the Fig. 6 misjudgment)");
    }
}
