//! Regenerates §V-D: distinguishable matchline states (44 vs 566).

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    println!("Section V-D — distinguishable states under device variation\n");
    println!("{}", asmcap_eval::states::table(256, trials, 0xD15C));
    println!("Empirical counts use {trials} Monte-Carlo trials per state and a");
    println!("3-sigma error budget; the charge domain resolves every state of a");
    println!("256-wide row, the current domain collapses near its analytic bound.");
}
