//! Scalability study: sensing reliability and energy across row widths —
//! the mechanism behind §III's read-length claim.

fn main() {
    let widths = [64usize, 128, 256, 512, 1024];
    println!("Row-width scaling — sensing reliability and Eq. 1 energy\n");
    println!("{}", asmcap_eval::scaling::width_table(&widths));
    println!("\nNear-threshold misjudgment probability (analytic)\n");
    println!("{}", asmcap_eval::scaling::misjudgment_table(&widths));
    println!("EDAM's current-domain sensing resolves only 44 states, so its");
    println!("reliable row width (= read length) is capped; ASMCap's 566-state");
    println!("charge domain covers every width in the sweep.");
}
