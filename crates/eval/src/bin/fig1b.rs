//! Regenerates Fig. 1(b): the accuracy-vs-energy-efficiency landscape.
//!
//! Usage: `fig1b [--smoke]`.

use asmcap_eval::Fig7Config;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        Fig7Config::smoke()
    } else {
        Fig7Config::paper()
    };
    println!("Fig. 1(b) — ASM accelerators: accuracy vs energy efficiency\n");
    let points = asmcap_eval::fig1b::run(&config);
    println!("{}", asmcap_eval::fig1b::table(&points));
    println!("(ReSMA computes exact distances -> top accuracy, bottom efficiency;");
    println!(" ASMCap w/ H&T recovers most of the accuracy at CAM-class efficiency.)");
}
