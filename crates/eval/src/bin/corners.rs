//! Supply-corner study (extension): V_DD droop vs sensing reliability.
//!
//! Usage: `corners [--smoke]`.

use asmcap_eval::{Condition, EvalDataset};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let vdds = [1.2, 1.1, 1.0, 0.9];
    println!("Supply-corner study — misjudgment vs V_DD (N=256, T=8, analytic)\n");
    println!("{}", asmcap_eval::corners::misjudgment_table(&vdds, 256, 8));

    let (reads, decoys, genome) = if smoke {
        (40, 6, 60_000)
    } else {
        (150, 12, 200_000)
    };
    let ds = EvalDataset::build(Condition::A, reads, decoys, 256, genome, 0xC0);
    println!("\nEnd-to-end F1 across corners (Condition A, strategies off)\n");
    println!("{}", asmcap_eval::corners::f1_table(&ds, &vdds, 1));
    println!("The charge domain is ratiometric in V_DD, so ASMCap holds its");
    println!("accuracy under droop while EDAM's fixed-time sampling acquires a");
    println!("systematic gain error and collapses.");
}
