//! Regenerates Fig. 3: current-domain vs charge-domain matchline behaviour.

fn main() {
    println!("Fig. 3(a) — current-domain (EDAM) V_ML(t), time-dependent\n");
    println!("{}", asmcap_eval::fig3::current_domain_traces(256, 13));
    println!("\nFig. 3(b) — charge-domain (ASMCap) V_ML vs n_mis, time-independent\n");
    println!("{}", asmcap_eval::fig3::charge_domain_levels(256, 8));
    println!("\nSensing variation comparison (state units, N = 256)\n");
    println!("{}", asmcap_eval::fig3::variation_comparison(256));
}
