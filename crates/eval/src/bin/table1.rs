//! Regenerates Table I: circuit-level comparison between ASMCap and EDAM.

fn main() {
    println!("Table I — circuit-level comparison (65 nm, 256x256 array)\n");
    println!("{}", asmcap_eval::table1::table());
    println!("Paper ratios: cell area 1.4x, search time 2.6x, power 8.5x.");
}
