//! Regenerates Fig. 7: F1 accuracy comparison (absolute and
//! Kraken2-normalised) under Conditions A and B.
//!
//! Usage: `fig7 [--smoke] [--csv DIR]` — `--smoke` runs a reduced dataset
//! for quick iteration; `--csv DIR` additionally writes the tables as CSV.

use asmcap_eval::{Condition, Fig7Config};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let csv_dir = asmcap_eval::report::csv_dir_from_args();
    let config = if smoke {
        Fig7Config::smoke()
    } else {
        Fig7Config::paper()
    };
    println!(
        "Fig. 7 — accuracy comparison ({} reads x {} pairs per condition)\n",
        config.reads,
        config.decoys + 1
    );
    let mut mean_with = Vec::new();
    let mut mean_without = Vec::new();
    let mut mean_edam = Vec::new();
    for condition in [Condition::A, Condition::B] {
        let result = asmcap_eval::fig7::run(condition, &config);
        println!("== {} ==\n", condition.label());
        println!("F1 (%):\n{}", result.f1_table());
        println!(
            "Normalized F1 (vs Kraken2 exact matching):\n{}",
            result.normalized_table()
        );
        if let Some(dir) = &csv_dir {
            let tag = match condition {
                Condition::A => "a",
                Condition::B => "b",
            };
            let written = asmcap_eval::report::write_csv(
                dir,
                &format!("fig7_condition_{tag}_f1"),
                &result.f1_table(),
            )
            .and_then(|_| {
                asmcap_eval::report::write_csv(
                    dir,
                    &format!("fig7_condition_{tag}_normalized"),
                    &result.normalized_table(),
                )
            });
            match written {
                Ok(path) => println!("(CSV written next to {})\n", path.display()),
                Err(e) => eprintln!("failed to write CSV: {e}"),
            }
        }
        let edam = result.series("EDAM").expect("series").mean_f1();
        let without = result.series("ASMCap w/o H&T").expect("series").mean_f1();
        let with = result.series("ASMCap w/ H&T").expect("series").mean_f1();
        println!(
            "means: EDAM {:.1}% | ASMCap w/o {:.1}% ({:.2}x) | ASMCap w/ {:.1}% ({:.2}x)\n",
            edam * 100.0,
            without * 100.0,
            without / edam,
            with * 100.0,
            with / edam
        );
        mean_edam.push(edam);
        mean_without.push(without);
        mean_with.push(with);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "Across conditions: ASMCap w/ H&T {:.1}% vs EDAM {:.1}% -> {:.2}x (paper: 87.6% vs 74.7% -> 1.2x)",
        avg(&mean_with) * 100.0,
        avg(&mean_edam) * 100.0,
        avg(&mean_with) / avg(&mean_edam)
    );
    println!(
        "ASMCap w/o strategies vs EDAM: {:.2}x (paper: 1.12x)",
        avg(&mean_without) / avg(&mean_edam)
    );
}
