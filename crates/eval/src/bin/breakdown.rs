//! Regenerates §V-B: area and power breakdown of a 256×256 ASMCap array.

fn main() {
    println!("Section V-B — area breakdown (paper: 1.58 mm^2, cells > 99%)\n");
    println!("{}", asmcap_eval::breakdown::area_table());
    println!("\nSection V-B — power breakdown (paper: 7.67 mW, 75/19/6%)\n");
    println!("{}", asmcap_eval::breakdown::power_table());
}
