//! `asmcap-map` — map FASTQ reads against a FASTA reference through the
//! batch-first [`asmcap::AsmcapPipeline`], emitting TSV.
//!
//! ```text
//! asmcap-map --reference ref.fasta --reads reads.fastq [options]
//! asmcap-map --demo                      # run on generated data
//!
//! options:
//!   --threshold T     edit-distance threshold (default 8)
//!   --profile a|b     expected error mix, Condition A or B (default a)
//!   --no-hdac         disable Hamming-Distance Aid Correction
//!   --no-tasr         disable Threshold-Aware Sequence Rotation
//!   --stride S        reference segmentation stride (default 1)
//!   --row-width W     CAM row width = read length (default 256)
//!   --seed N          sensing seed (default 0)
//!   --backend B       execution backend: device|pair|software (default device)
//!   --workers N       worker threads for the batch (default: auto)
//!   --prefilter       arm the seed-and-extend k-mer prefilter
//!   --prefilter-k K   seed k-mer length (default 12, implies --prefilter)
//!   --min-seed-hits N shortlist vote floor (default 2, implies --prefilter)
//!   --max-candidates N  shortlist cap (default 64, implies --prefilter)
//!   --no-prefilter-fallback  unmatched reads are NOT full-scanned
//!   --extension       arm the alignment/extension stage (CIGAR traceback)
//!   --ext-band B      traceback edit budget (default 2*T+2, implies
//!                     --extension)
//!   --ext-candidates N  origins aligned per read (default 4, implies
//!                     --extension)
//!   --fault-preset P  none|paper-corner — arm the device fault model
//!                     (default none; requires --backend device)
//!   --fault-seed N    fault-plan seed (default 0xFA17, implies
//!                     --fault-preset paper-corner)
//! ```
//!
//! Output columns: `read_id  n_candidates  positions(;)  cycles  status`;
//! with `--extension` three SAM-ish columns follow: `aln_pos  aln_score
//! cigar` (extended CIGAR with `=`/`X`/`I`/`D` runs, `*` when nothing
//! aligned within the band). Reads longer than the row width are truncated
//! and flagged `truncated`; shorter reads are flagged `rejected`; a run
//! summary (including truncation and alignment counts) goes to stderr.

use asmcap::{BackendKind, PipelineConfig};
use asmcap_eval::cli::{map_records, TSV_HEADER, TSV_HEADER_EXTENDED};
use asmcap_genome::{fasta, fastq, DnaSeq, ErrorProfile};
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("asmcap-map: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", HELP);
        return Ok(());
    }
    let mut config = PipelineConfig::default();
    if let Some(t) = flag_value(&args, "--threshold") {
        config.threshold = t.parse().map_err(|_| format!("bad threshold '{t}'"))?;
    }
    if let Some(p) = flag_value(&args, "--profile") {
        config.profile = match p.as_str() {
            "a" | "A" => ErrorProfile::condition_a(),
            "b" | "B" => ErrorProfile::condition_b(),
            other => return Err(format!("unknown profile '{other}' (use a or b)")),
        };
    }
    if args.iter().any(|a| a == "--no-hdac") {
        config.hdac = None;
    }
    if args.iter().any(|a| a == "--no-tasr") {
        config.tasr = None;
    }
    if let Some(s) = flag_value(&args, "--stride") {
        config.stride = s.parse().map_err(|_| format!("bad stride '{s}'"))?;
    }
    if let Some(w) = flag_value(&args, "--row-width") {
        config.row_width = w.parse().map_err(|_| format!("bad row width '{w}'"))?;
    }
    if let Some(n) = flag_value(&args, "--seed") {
        config.seed = n.parse().map_err(|_| format!("bad seed '{n}'"))?;
    }
    config.prefilter = parse_prefilter(&args)?;
    config.extension = parse_extension(&args)?;
    config.fault = parse_fault(&args)?;
    let backend = match flag_value(&args, "--backend") {
        Some(name) => BackendKind::parse(&name)?,
        None => BackendKind::Device,
    };
    let workers = match flag_value(&args, "--workers") {
        Some(n) => Some(n.parse().map_err(|_| format!("bad worker count '{n}'"))?),
        None => None,
    };

    let (reference, reads) = if args.iter().any(|a| a == "--demo") {
        demo_data(config.row_width)
    } else {
        let ref_path =
            flag_value(&args, "--reference").ok_or("missing --reference (or use --demo)")?;
        let reads_path = flag_value(&args, "--reads").ok_or("missing --reads (or use --demo)")?;
        let ref_file =
            std::fs::File::open(&ref_path).map_err(|e| format!("cannot open {ref_path}: {e}"))?;
        let records = fasta::read_fasta(BufReader::new(ref_file)).map_err(|e| e.to_string())?;
        let reference = records
            .into_iter()
            .next()
            .ok_or("reference FASTA contains no records")?
            .seq;
        let reads_file = std::fs::File::open(&reads_path)
            .map_err(|e| format!("cannot open {reads_path}: {e}"))?;
        let reads = fastq::read_fastq(BufReader::new(reads_file)).map_err(|e| e.to_string())?;
        (reference, reads)
    };

    let extended = config.extension.is_some();
    let run =
        map_records(&reference, &reads, &config, backend, workers).map_err(|e| e.to_string())?;
    println!(
        "{}",
        if extended {
            TSV_HEADER_EXTENDED
        } else {
            TSV_HEADER
        }
    );
    for row in &run.rows {
        println!("{}", row.to_tsv(extended));
    }
    eprintln!("{}", run.summary());
    Ok(())
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses the prefilter flag family. Any prefilter-tuning flag arms the
/// prefilter; plain `--prefilter` arms it with the default knobs.
fn parse_prefilter(args: &[String]) -> Result<Option<asmcap::PrefilterConfig>, String> {
    let tuning = [
        "--prefilter-k",
        "--min-seed-hits",
        "--max-candidates",
        "--no-prefilter-fallback",
    ];
    let armed = args.iter().any(|a| a == "--prefilter")
        || args.iter().any(|a| tuning.contains(&a.as_str()));
    if !armed {
        return Ok(None);
    }
    let mut prefilter = asmcap::PrefilterConfig::default();
    if let Some(k) = flag_value(args, "--prefilter-k") {
        prefilter.k = k.parse().map_err(|_| format!("bad prefilter k '{k}'"))?;
    }
    if let Some(n) = flag_value(args, "--min-seed-hits") {
        prefilter.min_seed_hits = n.parse().map_err(|_| format!("bad seed-hit floor '{n}'"))?;
    }
    if let Some(n) = flag_value(args, "--max-candidates") {
        prefilter.max_candidates = n.parse().map_err(|_| format!("bad candidate cap '{n}'"))?;
        if prefilter.max_candidates == 0 {
            return Err("candidate cap must be positive".into());
        }
    }
    if args.iter().any(|a| a == "--no-prefilter-fallback") {
        prefilter.full_scan_fallback = false;
    }
    Ok(Some(prefilter))
}

/// Parses the extension flag family. Any tuning flag arms the stage;
/// plain `--extension` arms it with the default knobs.
fn parse_extension(args: &[String]) -> Result<Option<asmcap::ExtensionConfig>, String> {
    let tuning = ["--ext-band", "--ext-candidates"];
    let armed = args.iter().any(|a| a == "--extension")
        || args.iter().any(|a| tuning.contains(&a.as_str()));
    if !armed {
        return Ok(None);
    }
    let mut extension = asmcap::ExtensionConfig::default();
    if let Some(b) = flag_value(args, "--ext-band") {
        extension.band = Some(b.parse().map_err(|_| format!("bad extension band '{b}'"))?);
    }
    if let Some(n) = flag_value(args, "--ext-candidates") {
        extension.max_candidates = n
            .parse()
            .map_err(|_| format!("bad extension candidate cap '{n}'"))?;
        if extension.max_candidates == 0 {
            return Err("extension candidate cap must be positive".into());
        }
    }
    Ok(Some(extension))
}

/// Parses the fault-injection flag family. `--fault-seed` implies the
/// paper-corner preset; `--fault-preset none` (the default) leaves the
/// device pristine.
fn parse_fault(args: &[String]) -> Result<Option<asmcap::FaultPlan>, String> {
    let seed: u64 = match flag_value(args, "--fault-seed") {
        Some(n) => n.parse().map_err(|_| format!("bad fault seed '{n}'"))?,
        None => 0xFA17,
    };
    match flag_value(args, "--fault-preset").as_deref() {
        Some("paper-corner") => Ok(Some(asmcap::FaultPlan::paper_corner(seed))),
        Some("none") => Ok(None),
        Some(other) => Err(format!("bad fault preset '{other}' (none|paper-corner)")),
        None if args.iter().any(|a| a == "--fault-seed") => {
            Ok(Some(asmcap::FaultPlan::paper_corner(seed)))
        }
        None => Ok(None),
    }
}

fn demo_data(row_width: usize) -> (DnaSeq, Vec<fastq::FastqRecord>) {
    use asmcap_genome::{ErrorProfile, GenomeModel, ReadSampler};
    let genome = GenomeModel::human_like().generate(20_000, 7);
    let sampler = ReadSampler::new(row_width, ErrorProfile::condition_a());
    let reads = sampler
        .sample_many(&genome, 10, 11)
        .into_iter()
        .enumerate()
        .map(|(i, r)| fastq::FastqRecord {
            id: format!("demo_read_{i}_origin_{}", r.origin),
            quals: vec![38; r.bases.len()],
            seq: r.bases,
        })
        .collect();
    (genome, reads)
}

const HELP: &str = "\
asmcap-map: map FASTQ reads against a FASTA reference on the simulated
ASMCap accelerator (batch-first AsmcapPipeline).

usage:
  asmcap-map --reference ref.fasta --reads reads.fastq [options]
  asmcap-map --demo [options]

options:
  --threshold T     edit-distance threshold (default 8)
  --profile a|b     expected error mix, Condition A or B (default a)
  --no-hdac         disable Hamming-Distance Aid Correction
  --no-tasr         disable Threshold-Aware Sequence Rotation
  --stride S        reference segmentation stride (default 1)
  --row-width W     CAM row width = read length (default 256)
  --seed N          sensing seed (default 0)
  --backend B       execution backend: device|pair|software (default device)
  --workers N       worker threads for the batch (default: auto; results
                    are identical for every worker count)
  --prefilter       arm the seed-and-extend k-mer prefilter: each read is
                    shortlisted by minimizer seed hits and only shortlisted
                    segments are searched (O(hits) instead of O(reference))
  --prefilter-k K   seed k-mer length, 1..=32 (default 12; implies
                    --prefilter)
  --min-seed-hits N vote floor a segment offset needs to be shortlisted
                    (default 2; implies --prefilter)
  --max-candidates N  shortlist cap per read (default 64; implies
                    --prefilter)
  --no-prefilter-fallback
                    close the escape hatch: reads with an empty shortlist
                    come back unmapped instead of falling back to a full
                    scan
  --extension       arm the extension/alignment stage: the best candidate
                    origins are re-visited with a GenASM-style banded
                    bit-vector traceback and the winning CIGAR transcript
                    is emitted alongside the match columns
  --ext-band B      edit budget for the banded traceback (default 2*T+2;
                    implies --extension)
  --ext-candidates N  candidate origins aligned per read (default 4;
                    implies --extension)
  --fault-preset P  none|paper-corner — arm the seeded device fault model:
                    stuck cells, dead rows, capacitance drift, transient
                    sense flips, with re-sense voting and install-time row
                    quarantine (default none; requires --backend device)
  --fault-seed N    fault-plan seed (default 0xFA17; implies
                    --fault-preset paper-corner)
  --demo            generate a reference and reads instead of reading files

output (TSV): read_id  n_candidates  positions(;-separated, * if none)
              cycles  status(mapped|unmapped|truncated|rejected)
with --extension, three more columns: aln_pos  aln_score  cigar
              (extended CIGAR of =/X/I/D runs; * * * when nothing aligned)
a run summary, including truncated/rejected/aligned counts, goes to stderr
";
