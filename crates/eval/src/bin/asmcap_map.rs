//! `asmcap-map` — map FASTQ reads against a FASTA reference on the
//! simulated ASMCap device, emitting TSV.
//!
//! ```text
//! asmcap-map --reference ref.fasta --reads reads.fastq [options]
//! asmcap-map --demo                      # run on generated data
//!
//! options:
//!   --threshold T     edit-distance threshold (default 8)
//!   --profile a|b     expected error mix, Condition A or B (default a)
//!   --no-hdac         disable Hamming-Distance Aid Correction
//!   --no-tasr         disable Threshold-Aware Sequence Rotation
//!   --stride S        reference segmentation stride (default 1)
//!   --row-width W     CAM row width = read length (default 256)
//!   --seed N          sensing seed (default 0)
//! ```
//!
//! Output columns: `read_id  n_candidates  positions(;)  cycles`.

use asmcap_eval::cli::{map_reads, MapOptions};
use asmcap_genome::{fasta, fastq, DnaSeq, ErrorProfile};
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("asmcap-map: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", HELP);
        return Ok(());
    }
    let mut options = MapOptions::default();
    if let Some(t) = flag_value(&args, "--threshold") {
        options.threshold = t.parse().map_err(|_| format!("bad threshold '{t}'"))?;
    }
    if let Some(p) = flag_value(&args, "--profile") {
        options.profile = match p.as_str() {
            "a" | "A" => ErrorProfile::condition_a(),
            "b" | "B" => ErrorProfile::condition_b(),
            other => return Err(format!("unknown profile '{other}' (use a or b)")),
        };
    }
    options.hdac = !args.iter().any(|a| a == "--no-hdac");
    options.tasr = !args.iter().any(|a| a == "--no-tasr");
    if let Some(s) = flag_value(&args, "--stride") {
        options.stride = s.parse().map_err(|_| format!("bad stride '{s}'"))?;
    }
    if let Some(w) = flag_value(&args, "--row-width") {
        options.row_width = w.parse().map_err(|_| format!("bad row width '{w}'"))?;
    }
    if let Some(n) = flag_value(&args, "--seed") {
        options.seed = n.parse().map_err(|_| format!("bad seed '{n}'"))?;
    }

    let (reference, reads) = if args.iter().any(|a| a == "--demo") {
        demo_data(options.row_width)
    } else {
        let ref_path = flag_value(&args, "--reference")
            .ok_or("missing --reference (or use --demo)")?;
        let reads_path = flag_value(&args, "--reads").ok_or("missing --reads (or use --demo)")?;
        let ref_file = std::fs::File::open(&ref_path)
            .map_err(|e| format!("cannot open {ref_path}: {e}"))?;
        let records =
            fasta::read_fasta(BufReader::new(ref_file)).map_err(|e| e.to_string())?;
        let reference = records
            .into_iter()
            .next()
            .ok_or("reference FASTA contains no records")?
            .seq;
        let reads_file = std::fs::File::open(&reads_path)
            .map_err(|e| format!("cannot open {reads_path}: {e}"))?;
        let reads = fastq::read_fastq(BufReader::new(reads_file)).map_err(|e| e.to_string())?;
        (reference, reads)
    };

    let rows = map_reads(&reference, &reads, &options).map_err(|e| e.to_string())?;
    println!("#read_id\tn_candidates\tpositions\tcycles");
    for row in rows {
        println!("{row}");
    }
    Ok(())
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn demo_data(row_width: usize) -> (DnaSeq, Vec<fastq::FastqRecord>) {
    use asmcap_genome::{ErrorProfile, GenomeModel, ReadSampler};
    let genome = GenomeModel::human_like().generate(20_000, 7);
    let sampler = ReadSampler::new(row_width, ErrorProfile::condition_a());
    let reads = sampler
        .sample_many(&genome, 10, 11)
        .into_iter()
        .enumerate()
        .map(|(i, r)| fastq::FastqRecord {
            id: format!("demo_read_{i}_origin_{}", r.origin),
            quals: vec![38; r.bases.len()],
            seq: r.bases,
        })
        .collect();
    (genome, reads)
}

const HELP: &str = "\
asmcap-map: map FASTQ reads against a FASTA reference on the simulated
ASMCap accelerator.

usage:
  asmcap-map --reference ref.fasta --reads reads.fastq [options]
  asmcap-map --demo [options]

options:
  --threshold T     edit-distance threshold (default 8)
  --profile a|b     expected error mix, Condition A or B (default a)
  --no-hdac         disable Hamming-Distance Aid Correction
  --no-tasr         disable Threshold-Aware Sequence Rotation
  --stride S        reference segmentation stride (default 1)
  --row-width W     CAM row width = read length (default 256)
  --seed N          sensing seed (default 0)
  --demo            generate a reference and reads instead of reading files

output (TSV): read_id  n_candidates  positions(;-separated, * if unmapped)  cycles
";
