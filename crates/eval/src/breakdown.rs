//! §V-B: area and power breakdown of a 256×256 ASMCap array.

use crate::report::Table;
use asmcap_circuit::area::{asmcap_array_area_mm2, AreaBreakdown};
use asmcap_circuit::energy::{asmcap_array_power_w, PowerBreakdown};
use asmcap_circuit::params::{AsmcapParams, ARRAY_COLS, ARRAY_ROWS};

/// The area breakdown table (paper: 1.58 mm², cells > 99 %).
#[must_use]
pub fn area_table() -> Table {
    let params = AsmcapParams::paper();
    let breakdown = AreaBreakdown::for_array(params.cell_area_um2, ARRAY_ROWS, ARRAY_COLS);
    let total = asmcap_array_area_mm2(&params, ARRAY_ROWS, ARRAY_COLS);
    let mut table = Table::new(vec!["component", "area (mm^2)", "fraction"]);
    table.row(vec![
        "ASMCap cells".into(),
        format!("{:.3}", breakdown.cells_mm2),
        format!("{:.1}%", breakdown.cell_fraction() * 100.0),
    ]);
    table.row(vec![
        "periphery (decoder, drivers, SAs, shift regs)".into(),
        format!("{:.3}", breakdown.periphery_mm2),
        format!("{:.1}%", (1.0 - breakdown.cell_fraction()) * 100.0),
    ]);
    table.row(vec![
        "total (incl. HDAC+TASR overhead)".into(),
        format!("{total:.3}"),
        "100.0%".into(),
    ]);
    table
}

/// The power breakdown table (paper: 7.67 mW; cells/shift/SAs = 75/19/6 %).
#[must_use]
pub fn power_table() -> Table {
    let params = AsmcapParams::paper();
    let total = asmcap_array_power_w(&params, ARRAY_ROWS, ARRAY_COLS);
    let split = PowerBreakdown::from_total(total);
    let mut table = Table::new(vec!["component", "power (mW)", "fraction"]);
    table.row(vec![
        "ASMCap cells".into(),
        format!("{:.2}", split.cells_w * 1e3),
        "75%".into(),
    ]);
    table.row(vec![
        "shift registers".into(),
        format!("{:.2}", split.shift_registers_w * 1e3),
        "19%".into(),
    ]);
    table.row(vec![
        "sense amplifiers".into(),
        format!("{:.2}", split.sense_amps_w * 1e3),
        "6%".into(),
    ]);
    table.row(vec![
        "total".into(),
        format!("{:.2}", split.total_w() * 1e3),
        "100%".into(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn area_table_matches_paper_total() {
        let rendered = super::area_table().to_string();
        assert!(
            rendered.contains("1.58"),
            "expected ~1.58 mm² in:\n{rendered}"
        );
        assert!(rendered.contains("99."), "cells should be >99%");
    }

    #[test]
    fn power_table_fractions() {
        let rendered = super::power_table().to_string();
        assert!(rendered.contains("75%"));
        assert!(rendered.contains("19%"));
        assert!(rendered.contains("6%"));
    }
}
