//! Fig. 7: accuracy (F1) comparison between ASMCap and EDAM.
//!
//! Four subplots: absolute F1 and Kraken2-normalised F1, each under
//! Condition A (T = 1..8) and Condition B (T = 2..16). Three series per
//! subplot: EDAM, ASMCap without strategies, ASMCap with HDAC + TASR.
//!
//! The whole sweep runs on the packed matchplane: the dataset packs every
//! (segment, read) pair once and [`EvalDataset::evaluate`] scores each
//! engine through `AsmMatcher::matches_packed`, so engines × thresholds ×
//! pairs costs no byte-per-base walks and no per-decision re-packing.

use crate::dataset::{Condition, CycleStats, EvalDataset};
use crate::report::Table;
use asmcap::engine::fig7_engines;
use asmcap::AsmMatcher;
use asmcap_baselines::{KrakenClassifier, KrakenMode};

/// Configuration of a Fig. 7 run.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Config {
    /// Reads per condition.
    pub reads: usize,
    /// Decoy segments per read.
    pub decoys: usize,
    /// Read length in bases (paper: 256).
    pub read_len: usize,
    /// Reference genome length to sample from.
    pub genome_len: usize,
    /// Master seed.
    pub seed: u64,
}

impl Fig7Config {
    /// The full-scale configuration used by the `fig7` binary.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            reads: 300,
            decoys: 20,
            read_len: 256,
            genome_len: 400_000,
            seed: 0xF167,
        }
    }

    /// A reduced configuration for tests.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            reads: 60,
            decoys: 8,
            read_len: 128,
            genome_len: 60_000,
            seed: 0xF167,
        }
    }
}

/// One (threshold, scores) point of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1Point {
    /// Threshold `T`.
    pub threshold: usize,
    /// Absolute F1 in `[0, 1]`.
    pub f1: f64,
    /// Sensitivity (recall).
    pub sensitivity: f64,
    /// Precision.
    pub precision: f64,
    /// F1 normalised by Kraken2's F1 at the same threshold.
    pub normalized: f64,
    /// Cycle statistics at this threshold.
    pub cycles: CycleStats,
}

/// One system's F1-vs-threshold series.
#[derive(Debug, Clone, PartialEq)]
pub struct F1Series {
    /// System name.
    pub system: String,
    /// Points in threshold order.
    pub points: Vec<F1Point>,
}

impl F1Series {
    /// Mean F1 across the sweep.
    #[must_use]
    pub fn mean_f1(&self) -> f64 {
        self.points.iter().map(|p| p.f1).sum::<f64>() / self.points.len() as f64
    }

    /// Mean cycles per decision across the sweep.
    #[must_use]
    pub fn mean_cycles(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.cycles.mean_cycles)
            .sum::<f64>()
            / self.points.len() as f64
    }
}

/// The result of one condition's sweep.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Which condition was swept.
    pub condition: Condition,
    /// Series: EDAM, ASMCap w/o H&T, ASMCap w/ H&T (in that order).
    pub series: Vec<F1Series>,
    /// Kraken2 (exact) F1 per threshold — the normalisation denominator.
    pub kraken_f1: Vec<f64>,
    /// Mean ED\* of the workload (for the Fig. 8 energy model).
    pub mean_ed_star: f64,
}

impl Fig7Result {
    /// Looks a series up by name.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&F1Series> {
        self.series.iter().find(|s| s.system == name)
    }

    /// Renders the absolute-F1 subplot as a table.
    #[must_use]
    pub fn f1_table(&self) -> Table {
        let mut header = vec!["T".to_owned()];
        header.extend(self.series.iter().map(|s| s.system.clone()));
        header.push("Kraken2".to_owned());
        let mut table = Table::new(header.iter().map(String::as_str).collect());
        let thresholds = self.condition.thresholds();
        for (i, &t) in thresholds.iter().enumerate() {
            let mut row = vec![t.to_string()];
            for series in &self.series {
                row.push(format!("{:.1}", series.points[i].f1 * 100.0));
            }
            row.push(format!("{:.1}", self.kraken_f1[i] * 100.0));
            table.row(row);
        }
        table
    }

    /// Renders the normalised-F1 subplot as a table.
    #[must_use]
    pub fn normalized_table(&self) -> Table {
        let mut header = vec!["T".to_owned()];
        header.extend(self.series.iter().map(|s| s.system.clone()));
        let mut table = Table::new(header.iter().map(String::as_str).collect());
        let thresholds = self.condition.thresholds();
        for (i, &t) in thresholds.iter().enumerate() {
            let mut row = vec![t.to_string()];
            for series in &self.series {
                row.push(format!("{:.2}", series.points[i].normalized));
            }
            table.row(row);
        }
        table
    }
}

/// Runs the Fig. 7 sweep for one condition.
#[must_use]
pub fn run(condition: Condition, config: &Fig7Config) -> Fig7Result {
    let dataset = EvalDataset::build(
        condition,
        config.reads,
        config.decoys,
        config.read_len,
        config.genome_len,
        config.seed,
    );
    run_on(condition, config, &dataset)
}

/// Runs the sweep on a pre-built dataset (lets callers share datasets
/// across experiments).
#[must_use]
pub fn run_on(condition: Condition, config: &Fig7Config, dataset: &EvalDataset) -> Fig7Result {
    let thresholds = condition.thresholds();
    let (mut edam, mut without, mut with) = fig7_engines(condition.profile(), config.seed);
    let mut kraken = KrakenClassifier::new(KrakenMode::Exact);

    let mut kraken_f1 = Vec::with_capacity(thresholds.len());
    for &t in &thresholds {
        let (cm, _) = dataset.evaluate(&mut kraken, t);
        kraken_f1.push(cm.f1());
    }

    let mut series = Vec::new();
    for engine in [
        &mut edam as &mut dyn AsmMatcher,
        &mut without as &mut dyn AsmMatcher,
        &mut with as &mut dyn AsmMatcher,
    ] {
        let mut points = Vec::with_capacity(thresholds.len());
        for (i, &t) in thresholds.iter().enumerate() {
            let (cm, cycles) = dataset.evaluate(engine, t);
            let denominator = kraken_f1[i].max(1e-9);
            points.push(F1Point {
                threshold: t,
                f1: cm.f1(),
                sensitivity: cm.sensitivity(),
                precision: cm.precision(),
                normalized: cm.f1() / denominator,
                cycles,
            });
        }
        series.push(F1Series {
            system: engine.name().to_owned(),
            points,
        });
    }

    Fig7Result {
        condition,
        series,
        kraken_f1,
        mean_ed_star: dataset.mean_ed_star(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_series() {
        let result = run(Condition::A, &Fig7Config::smoke());
        assert_eq!(result.series.len(), 3);
        assert!(result.series("EDAM").is_some());
        assert!(result.series("ASMCap w/o H&T").is_some());
        assert!(result.series("ASMCap w/ H&T").is_some());
        for series in &result.series {
            assert_eq!(series.points.len(), 8);
            for point in &series.points {
                assert!((0.0..=1.0).contains(&point.f1));
            }
        }
    }

    #[test]
    fn tables_render() {
        let result = run(Condition::A, &Fig7Config::smoke());
        let rendered = result.f1_table().to_string();
        assert!(rendered.contains("EDAM"));
        assert!(rendered.contains("Kraken2"));
        let normalized = result.normalized_table().to_string();
        assert!(normalized.contains("ASMCap w/ H&T"));
    }
}
