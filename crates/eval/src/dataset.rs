//! Evaluation datasets with exact ground truth (paper §V-A).
//!
//! The paper builds "metagenomic datasets" by sampling 256-base reads from
//! random genome positions and injecting edits under two mixed error
//! profiles. A pair (read, stored segment) is ground-truth positive at
//! threshold `T` iff the read's anchored semi-global edit distance against
//! the segment *in genome context* is at most `T` (the paper's ED
//! convention, see `asmcap_metrics::edit`).

use asmcap::{AsmMatcher, AsmcapPipeline, BackendKind, PipelineConfig, PipelineError};
use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, PackedSeq, PairDataset};
use asmcap_metrics::edit::anchored_semi_global;
use asmcap_metrics::ConfusionMatrix;

/// The two error-mix conditions of §V-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Condition {
    /// Substitution-dominant: `e_s = 1 %`, `e_i = e_d = 0.05 %`.
    A,
    /// Indel-dominant: `e_s = 0.1 %`, `e_i = e_d = 0.5 %`.
    B,
}

impl Condition {
    /// The condition's error profile.
    #[must_use]
    pub fn profile(self) -> ErrorProfile {
        match self {
            Condition::A => ErrorProfile::condition_a(),
            Condition::B => ErrorProfile::condition_b(),
        }
    }

    /// The thresholds swept in Fig. 7: 1–8 for Condition A, 2–16 (even)
    /// for Condition B.
    #[must_use]
    pub fn thresholds(self) -> Vec<usize> {
        match self {
            Condition::A => (1..=8).collect(),
            Condition::B => (1..=8).map(|t| 2 * t).collect(),
        }
    }

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Condition::A => "Condition A (es=1%, ei=ed=0.05%)",
            Condition::B => "Condition B (es=0.1%, ei=ed=0.5%)",
        }
    }
}

/// Per-threshold cycle statistics of an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CycleStats {
    /// Mean search cycles per pair decision.
    pub mean_cycles: f64,
    /// Fraction of decisions that issued an HDAC HD search.
    pub hd_fraction: f64,
    /// Mean TASR rotations per decision.
    pub mean_rotations: f64,
}

/// Origin-recovery result of [`EvalDataset::mapping_recovery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingRecovery {
    /// Reads whose true origin appeared among the candidates.
    pub recovered: usize,
    /// Reads mapped in total.
    pub reads: usize,
}

/// A fully labelled evaluation dataset.
///
/// Every (segment, read) pair is 2-bit packed **once** at build time:
/// [`EvalDataset::evaluate`] scores matchers through
/// [`AsmMatcher::matches_packed`], so a Fig. 7 sweep (engines × thresholds
/// × pairs) never re-packs or re-walks a byte-per-base slice — the
/// "packed everywhere else" port of the eval harness.
#[derive(Debug, Clone)]
pub struct EvalDataset {
    genome: DnaSeq,
    pairs: PairDataset,
    packed_pairs: Vec<(PackedSeq, PackedSeq)>,
    gt_distance: Vec<usize>,
}

/// Context bases appended past the segment when computing ground truth, so
/// deletions near the segment end are charged their true cost (Fig. 2's ED
/// convention). Must exceed the largest threshold swept.
const CONTEXT_SLACK: usize = 24;

impl EvalDataset {
    /// Builds the dataset for a condition: `reads` reads of `read_len`
    /// bases with `decoys` decoy segments each, sampled from a fresh
    /// uniform genome of `genome_len` bases.
    ///
    /// # Panics
    ///
    /// Panics if the genome is too short for the read length (see
    /// [`asmcap_genome::ReadSampler`]).
    #[must_use]
    pub fn build(
        condition: Condition,
        reads: usize,
        decoys: usize,
        read_len: usize,
        genome_len: usize,
        seed: u64,
    ) -> Self {
        Self::build_with_model(
            asmcap_genome::ErrorModel::Iid(condition.profile()),
            reads,
            decoys,
            read_len,
            genome_len,
            seed,
        )
    }

    /// Like [`EvalDataset::build`] but with an explicit error model — used
    /// by the burst-length ablation that stresses TASR with consecutive
    /// indels.
    ///
    /// # Panics
    ///
    /// Same conditions as [`EvalDataset::build`].
    #[must_use]
    pub fn build_with_model(
        model: asmcap_genome::ErrorModel,
        reads: usize,
        decoys: usize,
        read_len: usize,
        genome_len: usize,
        seed: u64,
    ) -> Self {
        let genome = GenomeModel::uniform().generate(genome_len, seed);
        let pairs =
            PairDataset::build_with_model(&genome, read_len, model, reads, decoys, seed ^ 0x5EED);
        let gt_distance = pairs
            .pairs()
            .iter()
            .map(|pair| {
                let read = &pairs.read_for(pair).bases;
                let end = (pair.segment_origin + read_len + CONTEXT_SLACK).min(genome.len());
                let context = &genome.as_slice()[pair.segment_origin..end];
                anchored_semi_global(read.as_slice(), context)
            })
            .collect();
        let packed_pairs = pairs
            .pairs()
            .iter()
            .map(|pair| {
                (
                    PackedSeq::from_seq(&pair.segment),
                    PackedSeq::from_seq(&pairs.read_for(pair).bases),
                )
            })
            .collect();
        Self {
            genome,
            pairs,
            packed_pairs,
            gt_distance,
        }
    }

    /// The underlying pair dataset.
    #[must_use]
    pub fn pairs(&self) -> &PairDataset {
        &self.pairs
    }

    /// The reference genome.
    #[must_use]
    pub fn genome(&self) -> &DnaSeq {
        &self.genome
    }

    /// The exact context-aware distance of pair `index`.
    #[must_use]
    pub fn distance(&self, index: usize) -> usize {
        self.gt_distance[index]
    }

    /// Ground-truth label of pair `index` at `threshold`.
    #[must_use]
    pub fn ground_truth(&self, index: usize, threshold: usize) -> bool {
        self.gt_distance[index] <= threshold
    }

    /// Number of ground-truth positives at `threshold`.
    #[must_use]
    pub fn positives(&self, threshold: usize) -> usize {
        self.gt_distance.iter().filter(|&&d| d <= threshold).count()
    }

    /// Scores a matcher over every pair at one threshold, through the
    /// packed pairs cached at build time ([`AsmMatcher::matches_packed`]).
    /// Decisions are identical to the byte-per-base path — the engines'
    /// packed overrides are pinned byte-identical, and the trait default
    /// unpacks — so F1 scores are unchanged; only the per-pair walk cost
    /// drops.
    pub fn evaluate(
        &self,
        matcher: &mut dyn AsmMatcher,
        threshold: usize,
    ) -> (ConfusionMatrix, CycleStats) {
        let mut cm = ConfusionMatrix::new();
        let mut cycles = 0u64;
        let mut hd = 0u64;
        let mut rotations = 0u64;
        for (index, (segment, read)) in self.packed_pairs.iter().enumerate() {
            let outcome = matcher.matches_packed(segment, read, threshold);
            cm.record(self.ground_truth(index, threshold), outcome.matched);
            cycles += u64::from(outcome.cycles);
            hd += u64::from(outcome.used_hd);
            rotations += u64::from(outcome.rotations);
        }
        let n = self.pairs.pairs().len() as f64;
        (
            cm,
            CycleStats {
                mean_cycles: cycles as f64 / n,
                hd_fraction: hd as f64 / n,
                mean_rotations: rotations as f64 / n,
            },
        )
    }

    /// Builds an [`AsmcapPipeline`] over this dataset's genome: paper
    /// strategy configuration at `threshold` under the dataset's error
    /// profile, stride-1 segmentation at the dataset's read length.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] from the builder (cannot happen for a
    /// well-formed dataset, whose genome always exceeds the read length).
    pub fn pipeline(
        &self,
        threshold: usize,
        backend: BackendKind,
        seed: u64,
    ) -> Result<AsmcapPipeline, PipelineError> {
        AsmcapPipeline::builder()
            .reference(self.genome.clone())
            .config(PipelineConfig {
                row_width: self.pairs.read_len(),
                seed,
                ..PipelineConfig::paper(threshold, *self.pairs.profile())
            })
            .backend(backend)
            .build()
    }

    /// Maps every sampled read through `pipeline` as one batch and counts
    /// how many recover their true origin among the candidates — the
    /// end-to-end mapping metric complementing the per-pair F1 sweeps.
    #[must_use]
    pub fn mapping_recovery(&self, pipeline: &AsmcapPipeline) -> MappingRecovery {
        let reads: Vec<DnaSeq> = self.pairs.reads().iter().map(|r| r.bases.clone()).collect();
        let records = pipeline.map_batch(&reads);
        let recovered = records
            .iter()
            .zip(self.pairs.reads())
            .filter(|(record, read)| record.positions.contains(&read.origin))
            .count();
        MappingRecovery {
            recovered,
            reads: reads.len(),
        }
    }

    /// Mean ED\* across all pairs — the `n_mis` level the Eq. 1 energy
    /// model sees on this workload. Runs on the cached packed pairs via
    /// the word-parallel kernel.
    #[must_use]
    pub fn mean_ed_star(&self) -> f64 {
        let total: usize = self
            .packed_pairs
            .iter()
            .map(|(segment, read)| asmcap_metrics::ed_star_packed(segment, read))
            .sum();
        total as f64 / self.packed_pairs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap::ExactEdMatcher;

    fn tiny() -> EvalDataset {
        EvalDataset::build(Condition::A, 12, 4, 128, 20_000, 7)
    }

    #[test]
    fn thresholds_match_fig7_axes() {
        assert_eq!(Condition::A.thresholds(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(Condition::B.thresholds(), vec![2, 4, 6, 8, 10, 12, 14, 16]);
    }

    #[test]
    fn aligned_pairs_have_small_distance() {
        let ds = tiny();
        for (index, pair) in ds.pairs().pairs().iter().enumerate() {
            if pair.is_aligned {
                assert!(
                    ds.distance(index) <= 12,
                    "aligned pair {index} has distance {}",
                    ds.distance(index)
                );
            } else {
                assert!(
                    ds.distance(index) > 30,
                    "decoy pair {index} has distance {}",
                    ds.distance(index)
                );
            }
        }
    }

    #[test]
    fn exact_matcher_scores_perfectly_on_context_distance() {
        // The oracle matcher that uses the same context-aware distance as
        // the ground truth must score F1 = 1. ExactEdMatcher compares
        // against the bare segment, so give it the slack-extended distance
        // instead: here we just verify the GT bookkeeping is consistent.
        let ds = tiny();
        for t in Condition::A.thresholds() {
            let positives = ds.positives(t);
            let recount = (0..ds.pairs().pairs().len())
                .filter(|&i| ds.ground_truth(i, t))
                .count();
            assert_eq!(positives, recount);
        }
    }

    #[test]
    fn evaluate_runs_a_matcher_over_all_pairs() {
        let ds = tiny();
        let mut oracle = ExactEdMatcher::new();
        let (cm, stats) = ds.evaluate(&mut oracle, 8);
        assert_eq!(cm.total() as usize, ds.pairs().pairs().len());
        assert_eq!(stats.mean_cycles, 1.0);
        // Global ED against the bare segment can only overestimate the
        // context distance, so the oracle never false-positives.
        assert_eq!(cm.false_positives, 0);
    }

    #[test]
    fn pipeline_recovers_dataset_read_origins() {
        let ds = EvalDataset::build(Condition::A, 6, 2, 128, 10_000, 9);
        let pipeline = ds.pipeline(8, asmcap::BackendKind::Device, 1).unwrap();
        let recovery = ds.mapping_recovery(&pipeline);
        assert_eq!(recovery.reads, 6);
        assert!(
            recovery.recovered >= 5,
            "only {}/6 origins recovered",
            recovery.recovered
        );
    }

    #[test]
    fn mean_ed_star_is_plausible() {
        let ds = tiny();
        let mean = ds.mean_ed_star();
        // Aligned pairs are near 0; decoys near 0.42 * 128 ≈ 54. With a
        // 1:4 mix the mean sits around 43.
        assert!(mean > 20.0 && mean < 60.0, "mean ED* {mean}");
    }
}
