//! §V-D: distinguishable matchline states under device variation.
//!
//! The paper reports that EDAM's 2.5 % current variation supports at most
//! 44 distinguishable states (3σ), while ASMCap's 1.4 % capacitor variation
//! supports 566 — beyond a 256-wide row "even with the worst case".

use crate::report::Table;
use asmcap_circuit::montecarlo::{device_variation_only_models, MonteCarlo};
use asmcap_circuit::{ChargeDomainCam, CurrentDomainCam};

/// Analytic and Monte-Carlo distinguishable-state counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateCounts {
    /// ASMCap analytic bound (paper: 566).
    pub asmcap_analytic: usize,
    /// EDAM analytic bound (paper: 44).
    pub edam_analytic: usize,
    /// ASMCap empirical count on an `n`-wide row (device variation only).
    pub asmcap_empirical: usize,
    /// EDAM empirical count on an `n`-wide row (device variation only).
    pub edam_empirical: usize,
}

/// Runs the state analysis for an `n`-wide row.
#[must_use]
pub fn analyze(n: usize, trials: usize, seed: u64) -> StateCounts {
    let mc = MonteCarlo::new(trials, seed);
    let (charge, current) = device_variation_only_models();
    StateCounts {
        asmcap_analytic: ChargeDomainCam::paper().distinguishable_states(),
        edam_analytic: CurrentDomainCam::paper().distinguishable_states(),
        asmcap_empirical: mc.distinguishable_states(&charge, n, 0.00135),
        edam_empirical: mc.distinguishable_states(&current, n, 0.00135),
    }
}

/// Renders the §V-D comparison table.
#[must_use]
pub fn table(n: usize, trials: usize, seed: u64) -> Table {
    let counts = analyze(n, trials, seed);
    let mut table = Table::new(vec![
        "design",
        "device variation",
        "analytic states (3-sigma)",
        &format!("empirical states (N={n})"),
        "paper",
    ]);
    table.row(vec![
        "EDAM (current domain)".into(),
        "2.5%".into(),
        counts.edam_analytic.to_string(),
        counts.edam_empirical.to_string(),
        "44".into(),
    ]);
    table.row(vec![
        "ASMCap (charge domain)".into(),
        "1.4%".into(),
        counts.asmcap_analytic.to_string(),
        counts.asmcap_empirical.to_string(),
        "566".into(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_counts_match_paper() {
        let counts = analyze(64, 200, 1); // small MC; analytic is exact
        assert_eq!(counts.asmcap_analytic, 566);
        assert_eq!(counts.edam_analytic, 44);
    }

    #[test]
    fn empirical_charge_covers_a_full_row() {
        let counts = analyze(256, 2_000, 2);
        assert_eq!(counts.asmcap_empirical, 256);
        assert!(counts.edam_empirical < 100);
    }
}
