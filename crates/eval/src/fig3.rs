//! Fig. 3: matchline behaviour of the two ML-CAM families — the
//! time-dependent current-domain discharge vs the time-independent
//! charge-domain level, and their variation.

use crate::report::Table;
use asmcap_circuit::{ChargeDomainCam, CurrentDomainCam, MlCam};

/// Fig. 3(a): current-domain `V_ML(t)` traces for a few mismatch counts.
#[must_use]
pub fn current_domain_traces(n: usize, points: usize) -> Table {
    let cam = CurrentDomainCam::paper();
    let counts = [0usize, n / 8, n / 4, n / 2, n];
    let mut header = vec!["t (ns)".to_owned()];
    header.extend(counts.iter().map(|c| format!("V_ML @ n_mis={c}")));
    let mut table = Table::new(header.iter().map(String::as_str).collect());
    let traces: Vec<Vec<(f64, f64)>> = counts
        .iter()
        .map(|&c| cam.discharge_trace(c, n, points))
        .collect();
    for k in 0..points {
        let mut row = vec![format!("{:.2}", traces[0][k].0 * 1e9)];
        for trace in &traces {
            row.push(format!("{:.3}", trace[k].1));
        }
        table.row(row);
    }
    table
}

/// Fig. 3(b): charge-domain `V_ML` vs matched-cell count (linear, static).
#[must_use]
pub fn charge_domain_levels(n: usize, steps: usize) -> Table {
    let cam = ChargeDomainCam::paper();
    let mut table = Table::new(vec!["n_mis", "V_ML (V)", "sigma (mV)"]);
    for k in 0..=steps {
        let n_mis = k * n / steps;
        table.row(vec![
            n_mis.to_string(),
            format!("{:.4}", cam.vml_mean(n_mis, n)),
            format!("{:.3}", cam.vml_sigma(n_mis, n) * 1e3),
        ]);
    }
    table
}

/// The variation comparison: sensing sigma (in states) across occupancy for
/// both domains — the quantitative core of Fig. 3's "ultra-low variation"
/// annotation.
#[must_use]
pub fn variation_comparison(n: usize) -> Table {
    let charge = ChargeDomainCam::paper();
    let current = CurrentDomainCam::paper();
    let mut table = Table::new(vec![
        "n_mis",
        "ASMCap sigma (states)",
        "EDAM sigma (states)",
        "ratio",
    ]);
    for &n_mis in &[1usize, 4, 16, 64, 128, 192, 255] {
        let a = charge.sigma_states(n_mis, n);
        let e = current.sigma_states(n_mis, n);
        table.row(vec![
            n_mis.to_string(),
            format!("{a:.3}"),
            format!("{e:.3}"),
            format!("{:.1}", e / a),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_tables_have_expected_shape() {
        let t = current_domain_traces(256, 16);
        assert_eq!(t.len(), 16);
        let levels = charge_domain_levels(256, 8);
        assert_eq!(levels.len(), 9);
    }

    #[test]
    fn variation_table_shows_edam_noisier() {
        let rendered = variation_comparison(256).to_string();
        // At n_mis = 128 the EDAM/ASMCap sigma ratio is far above 1; just
        // check the table renders and includes the ratio column.
        assert!(rendered.contains("ratio"));
        let charge = ChargeDomainCam::paper();
        let current = CurrentDomainCam::paper();
        assert!(current.sigma_states(128, 256) > 5.0 * charge.sigma_states(128, 256));
    }
}
