//! Table rendering for the experiment binaries: aligned plain-text /
//! markdown tables and a minimal CSV writer (no external dependencies).

use std::fmt;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// let mut table = asmcap_eval::Table::new(vec!["T", "F1"]);
/// table.row(vec!["1".into(), "81.2".into()]);
/// let rendered = table.to_string();
/// assert!(rendered.contains("| 1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: Vec<&str>) -> Self {
        Self {
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// The number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (comma-separated, quotes around cells with commas).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    /// Renders as a markdown-style aligned table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (cell, width) in cells.iter().zip(&widths) {
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line
        };
        writeln!(f, "{}", render_row(&self.header))?;
        let mut rule = String::from("|");
        for width in &widths {
            rule.push_str(&format!("{:-<w$}|", "", w = width + 2));
        }
        writeln!(f, "{rule}")?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        Ok(())
    }
}

/// Writes a table as `<dir>/<name>.csv`, creating the directory, and
/// returns the file path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(
    dir: &std::path::Path,
    name: &str,
    table: &Table,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, table.to_csv())?;
    Ok(path)
}

/// Parses an optional `--csv <dir>` pair from argv.
#[must_use]
pub fn csv_dir_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// Formats a ratio like the paper does: `4.7e4x`, `1.4x`.
#[must_use]
pub fn ratio(value: f64) -> String {
    if value >= 1e3 {
        format!("{value:.1e}x")
    } else {
        format!("{value:.1}x")
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut table = Table::new(vec!["system", "F1"]);
        table.row(vec!["EDAM".into(), "74.7".into()]);
        table.row(vec!["ASMCap w/ H&T".into(), "87.6".into()]);
        let rendered = table.to_string();
        assert!(rendered.contains("| system"));
        assert!(rendered.contains("| ASMCap w/ H&T | 87.6 |"));
        assert!(rendered.lines().count() == 4);
    }

    #[test]
    fn pads_short_rows() {
        let mut table = Table::new(vec!["a", "b", "c"]);
        table.row(vec!["1".into()]);
        assert!(table.to_string().contains("| 1 |"));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut table = Table::new(vec!["name", "value"]);
        table.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = table.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn ratio_formats_like_the_paper() {
        assert_eq!(ratio(47_000.0), "4.7e4x");
        assert_eq!(ratio(1.4), "1.4x");
        assert_eq!(percent(0.876), "87.6%");
    }
}
