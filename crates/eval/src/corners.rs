//! Supply-corner experiment (extension E12): misjudgment probabilities and
//! end-to-end F1 under V_DD droop for both sensing domains.

use crate::dataset::{Condition, EvalDataset};
use crate::report::Table;
use asmcap::{AsmcapConfig, EdamConfig};
use asmcap_circuit::corners::{charge_cam_at, current_cam_at, VDD_NOMINAL};
use asmcap_circuit::sense::SenseAmp;
use asmcap_circuit::VrefPolicy;

/// Analytic near-threshold misjudgment probabilities across supply corners.
#[must_use]
pub fn misjudgment_table(vdds: &[f64], n: usize, threshold: usize) -> Table {
    let mut table = Table::new(vec![
        "V_DD (V)",
        "EDAM gain error",
        "EDAM P(FP) at T+4",
        "EDAM P(FN) at T-2",
        "ASMCap P(FP) at T+4",
        "ASMCap P(FN) at T-2",
    ]);
    for &vdd in vdds {
        let edam = SenseAmp::new(current_cam_at(vdd), VrefPolicy::Centered);
        let asmcap = SenseAmp::new(charge_cam_at(vdd), VrefPolicy::Centered);
        table.row(vec![
            format!("{vdd:.2}"),
            format!("{:.3}", asmcap_circuit::corners::discharge_gain(vdd)),
            format!(
                "{:.2e}",
                edam.match_probability(threshold + 4, n, threshold)
            ),
            format!(
                "{:.2e}",
                1.0 - edam.match_probability(threshold.saturating_sub(2), n, threshold)
            ),
            format!(
                "{:.2e}",
                asmcap.match_probability(threshold + 4, n, threshold)
            ),
            format!(
                "{:.2e}",
                1.0 - asmcap.match_probability(threshold.saturating_sub(2), n, threshold)
            ),
        ]);
    }
    table
}

/// End-to-end F1 at each corner on a Condition-A dataset (threshold sweep
/// mean), using corner-adjusted engines without strategies so the sensing
/// effect is isolated.
#[must_use]
pub fn f1_table(dataset: &EvalDataset, vdds: &[f64], seed: u64) -> Table {
    let mut table = Table::new(vec!["V_DD (V)", "EDAM F1 (%)", "ASMCap w/o F1 (%)"]);
    let thresholds = Condition::A.thresholds();
    for &vdd in vdds {
        let mut edam_params = asmcap_circuit::params::EdamParams::paper();
        edam_params.gain_error = asmcap_circuit::corners::discharge_gain(vdd);
        edam_params.sa_offset_states *= VDD_NOMINAL / vdd;
        let mut edam = EdamConfig::new()
            .circuit_params(edam_params)
            .seed(seed)
            .build();

        let mut asmcap_params = asmcap_circuit::params::AsmcapParams::paper();
        asmcap_params.sa_offset_states *= VDD_NOMINAL / vdd;
        let mut asmcap = AsmcapConfig::new(Condition::A.profile())
            .hdac(None)
            .tasr(None)
            .circuit_params(asmcap_params)
            .seed(seed ^ 1)
            .build();

        let mean = |matcher: &mut dyn asmcap::AsmMatcher| {
            thresholds
                .iter()
                .map(|&t| dataset.evaluate(matcher, t).0.f1())
                .sum::<f64>()
                / thresholds.len() as f64
        };
        let edam_f1 = mean(&mut edam);
        let asmcap_f1 = mean(&mut asmcap);
        table.row(vec![
            format!("{vdd:.2}"),
            format!("{:.1}", edam_f1 * 100.0),
            format!("{:.1}", asmcap_f1 * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misjudgment_table_covers_corners() {
        let table = misjudgment_table(&[1.2, 1.1, 1.0, 0.9], 256, 8);
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn droop_degrades_edam_more_than_asmcap() {
        // The end-to-end F1 shift is modest in Condition A (the datasets'
        // distance distribution is bimodal, so the systematic gain error
        // mostly bites near the boundary), but EDAM must move visibly more
        // than ASMCap, which is ratiometric and should barely move at all.
        // 100 reads: the droop-induced EDAM F1 shift is ~1.5-2%, while
        // ASMCap's is ~0; smaller datasets leave both inside sampling noise.
        let ds = EvalDataset::build(Condition::A, 100, 10, 128, 40_000, 3);
        let table = f1_table(&ds, &[1.2, 0.9], 1);
        let csv = table.to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').skip(1).map(|c| c.parse().unwrap()).collect())
            .collect();
        let edam_shift = (rows[0][0] - rows[1][0]).abs();
        let asmcap_shift = (rows[0][1] - rows[1][1]).abs();
        assert!(
            edam_shift > asmcap_shift + 0.2,
            "EDAM shift {edam_shift:.2} vs ASMCap shift {asmcap_shift:.2}"
        );
        assert!(asmcap_shift < 0.5, "ASMCap should be corner-immune");
    }
}
