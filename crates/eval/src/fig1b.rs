//! Fig. 1(b): the accuracy-vs-energy-efficiency landscape of ASM
//! accelerators, assembled from the measured F1 (Fig. 7 machinery, plus the
//! functional baselines) and the modelled energy efficiency (Fig. 8).

use crate::dataset::{Condition, EvalDataset};
use crate::fig7::Fig7Config;
use crate::report::Table;
use asmcap::AsmMatcher;
use asmcap_baselines::perf::PerfReport;
use asmcap_baselines::{ResmaAccelerator, SaviAccelerator, Workload};

/// One point of the scatter.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterPoint {
    /// System name.
    pub system: String,
    /// Mean F1 across both conditions' sweeps, in `[0, 1]`.
    pub f1: f64,
    /// Energy efficiency normalised to CM-CPU.
    pub energy_efficiency: f64,
}

/// Builds the scatter: CM-class (exact) systems score on their own
/// functional matchers; CAM systems reuse the Fig. 7 engines.
#[must_use]
pub fn run(config: &Fig7Config) -> Vec<ScatterPoint> {
    let mut f1 = std::collections::BTreeMap::<String, Vec<f64>>::new();
    let mut fig7_inputs = Vec::new();
    for condition in [Condition::A, Condition::B] {
        let dataset = EvalDataset::build(
            condition,
            config.reads,
            config.decoys,
            config.read_len,
            config.genome_len,
            config.seed,
        );
        let result = crate::fig7::run_on(condition, config, &dataset);
        for series in &result.series {
            f1.entry(series.system.clone())
                .or_default()
                .push(series.mean_f1());
        }
        fig7_inputs.push(result);

        // Functional baselines on the same dataset. ReSMA/CM-CPU compute
        // exact distances; scored against the bare segment they are very
        // close to the oracle (small context effects only).
        let mut resma = ResmaAccelerator::paper();
        let mut savi = SaviAccelerator::paper();
        for (name, matcher) in [
            ("ReSMA", &mut resma as &mut dyn AsmMatcher),
            ("SaVI", &mut savi as &mut dyn AsmMatcher),
        ] {
            let mut scores = Vec::new();
            for &t in &condition.thresholds() {
                let (cm, _) = dataset.evaluate(matcher, t);
                scores.push(cm.f1());
            }
            f1.entry(name.to_owned())
                .or_default()
                .push(scores.iter().sum::<f64>() / scores.len() as f64);
        }
    }

    let inputs = crate::fig8::measured_inputs(&fig7_inputs[0], &fig7_inputs[1]);
    let report = PerfReport::fig8(&Workload::paper(inputs.extra_cycles, inputs.mean_n_mis));
    let mut points = Vec::new();
    for (system, scores) in f1 {
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        let ee = report
            .row(match system.as_str() {
                "ReSMA" => "ReSMA",
                "SaVI" => "SaVI",
                "EDAM" => "EDAM",
                "ASMCap w/o H&T" => "ASMCap w/o H&T",
                _ => "ASMCap w/ H&T",
            })
            .map_or(f64::NAN, |r| r.energy_efficiency);
        points.push(ScatterPoint {
            system,
            f1: mean,
            energy_efficiency: ee,
        });
    }
    points
}

/// Renders the scatter as a table (the figure's axes as columns).
#[must_use]
pub fn table(points: &[ScatterPoint]) -> Table {
    let mut table = Table::new(vec!["system", "mean F1", "energy efficiency (vs CM-CPU)"]);
    for point in points {
        table.row(vec![
            point.system.clone(),
            format!("{:.1}%", point.f1 * 100.0),
            format!("{:.2e}", point.energy_efficiency),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_includes_all_systems() {
        let points = run(&Fig7Config::smoke());
        let names: Vec<&str> = points.iter().map(|p| p.system.as_str()).collect();
        for expected in ["EDAM", "ASMCap w/o H&T", "ASMCap w/ H&T", "ReSMA", "SaVI"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // ReSMA (exact matching) should have the best F1 of the bunch.
        let resma = points.iter().find(|p| p.system == "ReSMA").unwrap();
        let edam = points.iter().find(|p| p.system == "EDAM").unwrap();
        assert!(resma.f1 >= edam.f1);
    }
}
