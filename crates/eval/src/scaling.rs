//! Scalability analysis (§III's claim that charge-domain sensing lifts the
//! read-length ceiling): distinguishable states, sensing reliability, and
//! Eq. 1 energy as the row width `N` grows.

use crate::report::Table;
use asmcap_circuit::energy::eq1_search_energy;
use asmcap_circuit::params::AsmcapParams;
use asmcap_circuit::sense::SenseAmp;
use asmcap_circuit::{ChargeDomainCam, CurrentDomainCam, MlCam, VrefPolicy};

/// For each row width, whether each sensing domain can still resolve
/// adjacent states at the 3σ level, plus the per-search energy.
#[must_use]
pub fn width_table(widths: &[usize]) -> Table {
    let charge = ChargeDomainCam::paper();
    let current = CurrentDomainCam::paper();
    let params = AsmcapParams::paper();
    let mut table = Table::new(vec![
        "row width N",
        "ASMCap worst sigma (states)",
        "EDAM sigma @ N (states)",
        "ASMCap reliable?",
        "EDAM reliable?",
        "Eq.1 energy @ 0.42N (pJ/row-array)",
    ]);
    for &n in widths {
        let charge_sigma = charge.sigma_states(n / 2, n);
        let current_sigma = current.sigma_states(n / 2, n);
        // Reliable = adjacent states separated by >= 6 sigma at the worst
        // level (the paper's 3-sigma-per-side rule).
        let charge_ok =
            1.0 >= 6.0 * charge.sigma_states(n / 2, n) - 6.0 * charge.params().sa_offset_states;
        let current_ok = n <= current.distinguishable_states();
        let energy = eq1_search_energy(&params, 256, n, (0.42 * n as f64) as usize);
        table.row(vec![
            n.to_string(),
            format!("{charge_sigma:.3}"),
            format!("{current_sigma:.3}"),
            if charge_ok { "yes" } else { "no" }.into(),
            if current_ok { "yes" } else { "no" }.into(),
            format!("{:.1}", energy * 1e12),
        ]);
    }
    table
}

/// Misjudgment probability at a near-threshold state (`n_mis = T + 2`,
/// `T = N/32`) as the width grows — the mechanism behind EDAM's read-length
/// ceiling.
#[must_use]
pub fn misjudgment_table(widths: &[usize]) -> Table {
    let charge = SenseAmp::new(ChargeDomainCam::paper(), VrefPolicy::Centered);
    let current = SenseAmp::new(CurrentDomainCam::paper(), VrefPolicy::Centered);
    let mut table = Table::new(vec![
        "row width N",
        "threshold T",
        "ASMCap P(FP) at T+2",
        "EDAM P(FP) at T+2",
    ]);
    for &n in widths {
        let t = (n / 32).max(1);
        table.row(vec![
            n.to_string(),
            t.to_string(),
            format!("{:.2e}", charge.match_probability(t + 2, n, t)),
            format!("{:.2e}", current.match_probability(t + 2, n, t)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_all_widths() {
        let widths = [64usize, 128, 256, 512, 1024];
        assert_eq!(width_table(&widths).len(), widths.len());
        assert_eq!(misjudgment_table(&widths).len(), widths.len());
    }

    #[test]
    fn edam_becomes_unreliable_past_its_state_bound() {
        let rendered = width_table(&[64, 256, 1024]).to_string();
        // 64 <= 44 is false... EDAM is already past its 44-state bound at
        // N=64, so every row should say "no" for EDAM.
        let edam_yes = rendered.matches("| yes").count();
        // Only ASMCap rows may be reliable.
        assert!(edam_yes <= 3, "unexpected EDAM reliability:\n{rendered}");
    }
}
