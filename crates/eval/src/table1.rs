//! Table I: circuit-level comparison between ASMCap and EDAM.

use crate::report::Table;
use asmcap_circuit::params::{AsmcapParams, EdamParams};

/// Renders Table I with the published values and the ratios the paper
/// quotes (cell area 1.4×, search time 2.6×, power 8.5×).
#[must_use]
pub fn table() -> Table {
    let asmcap = AsmcapParams::paper();
    let edam = EdamParams::paper();
    let mut table = Table::new(vec!["quantity", "EDAM", "ASMCap", "ratio"]);
    table.row(vec![
        "ML-CAM mode".into(),
        "current domain".into(),
        "charge domain".into(),
        String::new(),
    ]);
    table.row(vec![
        "technology".into(),
        "65nm".into(),
        "65nm".into(),
        String::new(),
    ]);
    table.row(vec![
        "cell area (um^2)".into(),
        format!("{:.1}", edam.cell_area_um2),
        format!("{:.1}", asmcap.cell_area_um2),
        format!("{:.1}x", edam.cell_area_um2 / asmcap.cell_area_um2),
    ]);
    table.row(vec![
        "supply voltage (V)".into(),
        format!("{:.1}", edam.vdd),
        format!("{:.1}", asmcap.vdd),
        String::new(),
    ]);
    table.row(vec![
        "search time (ns)".into(),
        format!("{:.1}", edam.search_time_ns),
        format!("{:.1}", asmcap.search_time_ns),
        format!("{:.1}x", edam.search_time_ns / asmcap.search_time_ns),
    ]);
    table.row(vec![
        "avg power per cell (uW)".into(),
        format!("{:.2}", edam.avg_power_per_cell_uw),
        format!("{:.2}", asmcap.avg_power_per_cell_uw),
        format!(
            "{:.1}x",
            edam.avg_power_per_cell_uw / asmcap.avg_power_per_cell_uw
        ),
    ]);
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_contains_published_ratios() {
        let rendered = super::table().to_string();
        assert!(rendered.contains("1.4x"));
        assert!(rendered.contains("2.7x")); // 2.4/0.9 = 2.67 (paper rounds to 2.6)
        assert!(rendered.contains("8.3x")); // 1.0/0.12 = 8.33 (paper rounds to 8.5)
        assert!(rendered.contains("charge domain"));
    }
}
