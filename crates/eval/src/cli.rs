//! The `asmcap-map` command-line mapper: FASTA reference + FASTQ reads in,
//! TSV mappings out — the adoption path for running the simulated
//! accelerator on real data.

use asmcap::{MapperConfig, ReadMapper};
use asmcap_arch::DeviceBuilder;
use asmcap_genome::fastq::FastqRecord;
use asmcap_genome::{DnaSeq, ErrorProfile};
use std::fmt;

/// Mapping options (mirrors the CLI flags).
#[derive(Debug, Clone)]
pub struct MapOptions {
    /// Edit-distance threshold `T`.
    pub threshold: usize,
    /// Expected error profile (drives HDAC/TASR parameters).
    pub profile: ErrorProfile,
    /// Enable HDAC.
    pub hdac: bool,
    /// Enable TASR.
    pub tasr: bool,
    /// Reference segmentation stride (1 = every offset).
    pub stride: usize,
    /// Row width; reads shorter than this are rejected, longer reads are
    /// truncated to it (fragmented mapping is available via the library's
    /// `asmcap::fragment`).
    pub row_width: usize,
    /// Sensing seed.
    pub seed: u64,
}

impl Default for MapOptions {
    fn default() -> Self {
        Self {
            threshold: 8,
            profile: ErrorProfile::condition_a(),
            hdac: true,
            tasr: true,
            stride: 1,
            row_width: 256,
            seed: 0,
        }
    }
}

/// One output row of the mapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingRow {
    /// Read identifier from the FASTQ header.
    pub read_id: String,
    /// Candidate reference positions (ascending). Empty = unmapped.
    pub positions: Vec<usize>,
    /// Search cycles spent on this read.
    pub cycles: u64,
}

impl fmt::Display for MappingRow {
    /// TSV: `read_id <tab> n_candidates <tab> positions(;) <tab> cycles`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let positions = if self.positions.is_empty() {
            "*".to_owned()
        } else {
            self.positions
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(";")
        };
        write!(
            f,
            "{}\t{}\t{}\t{}",
            self.read_id,
            self.positions.len(),
            positions,
            self.cycles
        )
    }
}

/// Error produced by [`map_reads`].
#[derive(Debug)]
pub enum MapError {
    /// The reference is shorter than one row.
    ReferenceTooShort {
        /// Reference length in bases.
        reference: usize,
        /// Configured row width.
        row_width: usize,
    },
    /// A read is shorter than the row width.
    ReadTooShort {
        /// The offending read's id.
        read_id: String,
        /// Its length.
        len: usize,
        /// Configured row width.
        row_width: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::ReferenceTooShort { reference, row_width } => write!(
                f,
                "reference of {reference} bases is shorter than one {row_width}-base row"
            ),
            MapError::ReadTooShort { read_id, len, row_width } => write!(
                f,
                "read '{read_id}' has {len} bases, below the {row_width}-base row width"
            ),
        }
    }
}

impl std::error::Error for MapError {}

/// Maps FASTQ reads against a reference through the simulated device.
///
/// Reads longer than the row width are truncated to it (with a note in the
/// row id); shorter reads are an error.
///
/// # Errors
///
/// Returns [`MapError`] for a too-short reference or read.
pub fn map_reads(
    reference: &DnaSeq,
    reads: &[FastqRecord],
    options: &MapOptions,
) -> Result<Vec<MappingRow>, MapError> {
    let width = options.row_width;
    if reference.len() < width {
        return Err(MapError::ReferenceTooShort {
            reference: reference.len(),
            row_width: width,
        });
    }
    let rows = (reference.len() - width) / options.stride + 1;
    let mut device = DeviceBuilder::new()
        .arrays(rows.div_ceil(256))
        .rows_per_array(256)
        .row_width(width)
        .build_asmcap();
    device
        .store_reference(reference, options.stride)
        .expect("device sized for the reference");
    let config = MapperConfig {
        threshold: options.threshold,
        profile: options.profile,
        hdac: options.hdac.then(asmcap::HdacParams::paper),
        tasr: options.tasr.then(asmcap::TasrParams::paper),
    };
    let mut mapper = ReadMapper::new(device, config, options.seed);
    let mut out = Vec::with_capacity(reads.len());
    for record in reads {
        if record.seq.len() < width {
            return Err(MapError::ReadTooShort {
                read_id: record.id.clone(),
                len: record.seq.len(),
                row_width: width,
            });
        }
        let read = if record.seq.len() > width {
            record.seq.window(0..width)
        } else {
            record.seq.clone()
        };
        let mapped = mapper.map_read(&read);
        out.push(MappingRow {
            read_id: record.id.clone(),
            positions: mapped.positions,
            cycles: mapped.cycles,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::{GenomeModel, ReadSampler};

    fn fastq_reads(genome: &DnaSeq, count: usize, len: usize) -> Vec<FastqRecord> {
        let sampler = ReadSampler::new(len, ErrorProfile::condition_a());
        sampler
            .sample_many(genome, count, 5)
            .into_iter()
            .enumerate()
            .map(|(i, r)| FastqRecord {
                id: format!("read{}@{}", i, r.origin),
                quals: vec![40; r.bases.len()],
                seq: r.bases,
            })
            .collect()
    }

    #[test]
    fn maps_synthetic_fastq_against_reference() {
        let genome = GenomeModel::uniform().generate(8_000, 1);
        let reads = fastq_reads(&genome, 6, 128);
        let options = MapOptions {
            row_width: 128,
            ..MapOptions::default()
        };
        let rows = map_reads(&genome, &reads, &options).unwrap();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            let origin: usize = row.read_id.split('@').nth(1).unwrap().parse().unwrap();
            assert!(
                row.positions.contains(&origin),
                "{} missing origin {origin}: {:?}",
                row.read_id,
                row.positions
            );
            let rendered = row.to_string();
            assert!(rendered.contains('\t'));
        }
    }

    #[test]
    fn rejects_short_reference_and_reads() {
        let genome = GenomeModel::uniform().generate(100, 2);
        let err = map_reads(&genome, &[], &MapOptions::default()).unwrap_err();
        assert!(matches!(err, MapError::ReferenceTooShort { .. }));

        let genome = GenomeModel::uniform().generate(8_000, 3);
        let short = vec![FastqRecord {
            id: "tiny".into(),
            seq: genome.window(0..50),
            quals: vec![40; 50],
        }];
        let err = map_reads(&genome, &short, &MapOptions::default()).unwrap_err();
        assert!(matches!(err, MapError::ReadTooShort { .. }));
    }

    #[test]
    fn unmapped_reads_render_star() {
        let genome = GenomeModel::uniform().generate(8_000, 4);
        let foreign = GenomeModel::uniform().generate(8_000, 99);
        let reads = fastq_reads(&foreign, 2, 128);
        let options = MapOptions {
            row_width: 128,
            threshold: 4,
            ..MapOptions::default()
        };
        let rows = map_reads(&genome, &reads, &options).unwrap();
        for row in rows {
            assert!(row.positions.is_empty());
            assert!(row.to_string().contains("\t*\t"));
        }
    }
}
