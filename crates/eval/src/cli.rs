//! The `asmcap-map` command-line mapper: FASTA reference + FASTQ reads in,
//! TSV mappings out — the adoption path for running the simulated
//! accelerator on real data.
//!
//! [`map_records`] is the library entry point the binary uses: it builds an
//! [`AsmcapPipeline`] from one [`PipelineConfig`], maps the whole FASTQ
//! batch across workers, and returns per-read [`MappingRow`]s (including
//! truncated/rejected statuses — nothing is dropped silently) plus the
//! aggregated [`PipelineStats`] for the run summary.

use asmcap::{
    AsmcapPipeline, BackendKind, MapStatus, PipelineConfig, PipelineError, PipelineStats,
};
use asmcap_genome::fastq::FastqRecord;
use asmcap_genome::DnaSeq;
use std::fmt;

/// Mapping options (mirrors the CLI flags).
///
/// Deprecated: the CLI now parses straight into [`PipelineConfig`], which is
/// the single config type; this shim only remains for downstream callers of
/// [`map_reads`] and converts via [`MapOptions::pipeline_config`].
#[derive(Debug, Clone)]
#[deprecated(
    since = "0.2.0",
    note = "build a PipelineConfig and use map_records (or AsmcapPipeline directly)"
)]
pub struct MapOptions {
    /// Edit-distance threshold `T`.
    pub threshold: usize,
    /// Expected error profile (drives HDAC/TASR parameters).
    pub profile: asmcap_genome::ErrorProfile,
    /// Enable HDAC.
    pub hdac: bool,
    /// Enable TASR.
    pub tasr: bool,
    /// Reference segmentation stride (1 = every offset).
    pub stride: usize,
    /// Row width; shorter reads are rejected, longer reads truncated.
    pub row_width: usize,
    /// Sensing seed.
    pub seed: u64,
}

#[allow(deprecated)]
impl Default for MapOptions {
    /// Mirrors [`PipelineConfig::default`] — the defaults live in one place.
    fn default() -> Self {
        let config = PipelineConfig::default();
        Self {
            threshold: config.threshold,
            profile: config.profile,
            hdac: config.hdac.is_some(),
            tasr: config.tasr.is_some(),
            stride: config.stride,
            row_width: config.row_width,
            seed: config.seed,
        }
    }
}

#[allow(deprecated)]
impl MapOptions {
    /// Converts into the pipeline's config type.
    #[must_use]
    pub fn pipeline_config(&self) -> PipelineConfig {
        PipelineConfig {
            threshold: self.threshold,
            profile: self.profile,
            hdac: self.hdac.then(asmcap::HdacParams::paper),
            tasr: self.tasr.then(asmcap::TasrParams::paper),
            stride: self.stride,
            row_width: self.row_width,
            seed: self.seed,
            ..PipelineConfig::default()
        }
    }
}

/// One output row of the mapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingRow {
    /// Read identifier from the FASTQ header.
    pub read_id: String,
    /// Per-read outcome (mapped / unmapped / truncated / rejected).
    pub status: MapStatus,
    /// Candidate reference positions (ascending). Empty = no candidates.
    pub positions: Vec<usize>,
    /// Search cycles spent on this read.
    pub cycles: u64,
    /// Best candidate alignment from the extension stage (`None` when the
    /// stage is off or nothing aligned within the band).
    pub alignment: Option<asmcap::Alignment>,
}

impl fmt::Display for MappingRow {
    /// TSV: `read_id <tab> n_candidates <tab> positions(;) <tab> cycles
    /// <tab> status`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let positions = if self.positions.is_empty() {
            "*".to_owned()
        } else {
            self.positions
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(";")
        };
        write!(
            f,
            "{}\t{}\t{}\t{}\t{}",
            self.read_id,
            self.positions.len(),
            positions,
            self.cycles,
            self.status
        )
    }
}

/// The TSV header matching [`MappingRow`]'s `Display`.
pub const TSV_HEADER: &str = "#read_id\tn_candidates\tpositions\tcycles\tstatus";

/// The extended TSV header matching [`MappingRow::to_tsv`] with the
/// extension stage armed: the base columns plus the SAM-ish alignment
/// triple (`aln_pos`, `aln_score`, `cigar` — `*` when nothing aligned).
pub const TSV_HEADER_EXTENDED: &str =
    "#read_id\tn_candidates\tpositions\tcycles\tstatus\taln_pos\taln_score\tcigar";

impl MappingRow {
    /// Renders the row as TSV. With `extended` the base columns are
    /// followed by `aln_pos`, `aln_score`, and the extended CIGAR
    /// (`=`/`X`/`I`/`D` runs), or `*\t*\t*` when no alignment was
    /// produced — pair with [`TSV_HEADER_EXTENDED`].
    #[must_use]
    pub fn to_tsv(&self, extended: bool) -> String {
        if !extended {
            return self.to_string();
        }
        match &self.alignment {
            Some(alignment) => format!("{self}\t{alignment}"),
            None => format!("{self}\t*\t*\t*"),
        }
    }
}

/// A whole mapping run: per-read rows plus the aggregated statistics.
#[derive(Debug, Clone)]
pub struct MapRun {
    /// One row per input read, in input order.
    pub rows: Vec<MappingRow>,
    /// Aggregated pipeline statistics for the run.
    pub stats: PipelineStats,
}

impl MapRun {
    /// A human-readable multi-line summary (for the CLI's stderr report).
    #[must_use]
    pub fn summary(&self) -> String {
        let s = &self.stats;
        let throughput = if s.wall_s > 0.0 {
            s.reads as f64 / s.wall_s
        } else {
            0.0
        };
        let mut summary = format!(
            "reads: {} (mapped {}, unmapped {}, truncated {}, rejected {})\n\
             device: {} cycles, {} searches, {:.2} uJ\n\
             host: {:.3} s wall, {:.0} reads/s",
            s.reads,
            s.mapped,
            s.unmapped,
            s.truncated,
            s.rejected,
            s.cycles,
            s.searches,
            s.energy_j * 1e6,
            s.wall_s,
            throughput
        );
        if s.aligned > 0 {
            summary.push_str(&format!("\nextension: {} reads aligned", s.aligned));
        }
        if s.degraded > 0 || s.resensed > 0 || s.requarried > 0 {
            summary.push_str(&format!(
                "\nfaults: {} reads degraded ({} re-senses, {} quarantined-row hits)",
                s.degraded, s.resensed, s.requarried
            ));
        }
        summary
    }
}

/// Maps FASTQ reads against a reference through an [`AsmcapPipeline`].
///
/// Reads longer than the row width are truncated to it and surfaced with
/// [`MapStatus::Truncated`]; shorter reads come back [`MapStatus::Rejected`]
/// instead of aborting the run.
///
/// # Errors
///
/// Returns [`PipelineError`] when the pipeline cannot be built (e.g. a
/// reference shorter than one row).
pub fn map_records(
    reference: &DnaSeq,
    reads: &[FastqRecord],
    config: &PipelineConfig,
    backend: BackendKind,
    workers: Option<usize>,
) -> Result<MapRun, PipelineError> {
    let mut builder = AsmcapPipeline::builder()
        .reference(reference.clone())
        .config(config.clone())
        .backend(backend);
    if let Some(workers) = workers {
        builder = builder.workers(workers);
    }
    let pipeline = builder.build()?;
    let seqs: Vec<DnaSeq> = reads.iter().map(|r| r.seq.clone()).collect();
    let rows = pipeline
        .map_batch(&seqs)
        .into_iter()
        .zip(reads)
        .map(|(record, read)| MappingRow {
            read_id: read.id.clone(),
            status: record.status,
            positions: record.positions,
            cycles: record.cycles,
            alignment: record.alignment,
        })
        .collect();
    Ok(MapRun {
        rows,
        stats: pipeline.stats(),
    })
}

/// Error produced by the deprecated [`map_reads`].
#[derive(Debug)]
pub enum MapError {
    /// The reference is shorter than one row.
    ReferenceTooShort {
        /// Reference length in bases.
        reference: usize,
        /// Configured row width.
        row_width: usize,
    },
    /// A read is shorter than the row width.
    ReadTooShort {
        /// The offending read's id.
        read_id: String,
        /// Its length.
        len: usize,
        /// Configured row width.
        row_width: usize,
    },
    /// Any other pipeline construction failure.
    Pipeline(PipelineError),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::ReferenceTooShort {
                reference,
                row_width,
            } => write!(
                f,
                "reference of {reference} bases is shorter than one {row_width}-base row"
            ),
            MapError::ReadTooShort {
                read_id,
                len,
                row_width,
            } => write!(
                f,
                "read '{read_id}' has {len} bases, below the {row_width}-base row width"
            ),
            MapError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MapError {}

/// Maps FASTQ reads against a reference (deprecated compatibility shim).
///
/// Unlike [`map_records`], this preserves the historical contract of
/// aborting on the first too-short read.
///
/// # Errors
///
/// Returns [`MapError`] for a too-short reference or read.
#[allow(deprecated)]
#[deprecated(since = "0.2.0", note = "use map_records with a PipelineConfig")]
pub fn map_reads(
    reference: &DnaSeq,
    reads: &[FastqRecord],
    options: &MapOptions,
) -> Result<Vec<MappingRow>, MapError> {
    // Preserve the historical contract and its error precedence: the
    // reference is validated first, then short reads are rejected by a
    // cheap length scan before any device mapping happens.
    if reference.len() < options.row_width {
        return Err(MapError::ReferenceTooShort {
            reference: reference.len(),
            row_width: options.row_width,
        });
    }
    if let Some(short) = reads.iter().find(|r| r.seq.len() < options.row_width) {
        return Err(MapError::ReadTooShort {
            read_id: short.id.clone(),
            len: short.seq.len(),
            row_width: options.row_width,
        });
    }
    let run = map_records(
        reference,
        reads,
        &options.pipeline_config(),
        BackendKind::Device,
        None,
    )
    .map_err(|e| match e {
        PipelineError::ReferenceTooShort {
            reference,
            row_width,
        } => MapError::ReferenceTooShort {
            reference,
            row_width,
        },
        other => MapError::Pipeline(other),
    })?;
    Ok(run.rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::{ErrorProfile, GenomeModel, ReadSampler};

    fn fastq_reads(genome: &DnaSeq, count: usize, len: usize) -> Vec<FastqRecord> {
        let sampler = ReadSampler::new(len, ErrorProfile::condition_a());
        sampler
            .sample_many(genome, count, 5)
            .into_iter()
            .enumerate()
            .map(|(i, r)| FastqRecord {
                id: format!("read{}@{}", i, r.origin),
                quals: vec![40; r.bases.len()],
                seq: r.bases,
            })
            .collect()
    }

    fn config(row_width: usize, threshold: usize) -> PipelineConfig {
        PipelineConfig {
            row_width,
            threshold,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn maps_synthetic_fastq_against_reference() {
        let genome = GenomeModel::uniform().generate(8_000, 1);
        let reads = fastq_reads(&genome, 6, 128);
        let run = map_records(&genome, &reads, &config(128, 8), BackendKind::Device, None).unwrap();
        assert_eq!(run.rows.len(), 6);
        assert_eq!(run.stats.mapped, 6);
        for row in &run.rows {
            let origin: usize = row.read_id.split('@').nth(1).unwrap().parse().unwrap();
            assert!(
                row.positions.contains(&origin),
                "{} missing origin {origin}: {:?}",
                row.read_id,
                row.positions
            );
            let rendered = row.to_string();
            assert!(rendered.contains('\t'));
            assert!(rendered.ends_with("mapped"));
        }
        assert!(run.summary().contains("mapped 6"));
    }

    #[test]
    fn short_and_long_reads_get_statuses_not_errors() {
        let genome = GenomeModel::uniform().generate(8_000, 3);
        let reads = vec![
            FastqRecord {
                id: "tiny".into(),
                seq: genome.window(0..50),
                quals: vec![40; 50],
            },
            FastqRecord {
                id: "long".into(),
                seq: genome.window(100..500),
                quals: vec![40; 400],
            },
        ];
        let run = map_records(&genome, &reads, &config(256, 8), BackendKind::Device, None).unwrap();
        assert_eq!(run.rows[0].status, MapStatus::Rejected);
        assert_eq!(run.rows[1].status, MapStatus::Truncated);
        assert!(
            run.rows[1].positions.contains(&100),
            "truncated prefix maps at its origin"
        );
        assert_eq!(run.stats.truncated, 1);
        assert_eq!(run.stats.rejected, 1);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_map_reads_preserves_error_contract() {
        let genome = GenomeModel::uniform().generate(100, 2);
        let err = map_reads(&genome, &[], &MapOptions::default()).unwrap_err();
        assert!(matches!(err, MapError::ReferenceTooShort { .. }));

        let genome = GenomeModel::uniform().generate(8_000, 3);
        let short = vec![FastqRecord {
            id: "tiny".into(),
            seq: genome.window(0..50),
            quals: vec![40; 50],
        }];
        let err = map_reads(&genome, &short, &MapOptions::default()).unwrap_err();
        assert!(matches!(err, MapError::ReadTooShort { .. }));

        // The shim's defaults mirror PipelineConfig's.
        let options = MapOptions::default();
        let config = PipelineConfig::default();
        assert_eq!(options.threshold, config.threshold);
        assert_eq!(options.stride, config.stride);
        assert_eq!(options.row_width, config.row_width);
        assert_eq!(options.hdac, config.hdac.is_some());
        assert_eq!(options.tasr, config.tasr.is_some());
    }

    #[test]
    fn unmapped_reads_render_star() {
        let genome = GenomeModel::uniform().generate(8_000, 4);
        let foreign = GenomeModel::uniform().generate(8_000, 99);
        let reads = fastq_reads(&foreign, 2, 128);
        let run = map_records(&genome, &reads, &config(128, 4), BackendKind::Device, None).unwrap();
        for row in run.rows {
            assert!(row.positions.is_empty());
            assert_eq!(row.status, MapStatus::Unmapped);
            assert!(row.to_string().contains("\t*\t"));
        }
    }

    #[test]
    fn extension_rows_carry_the_alignment_triple() {
        use asmcap::ExtensionConfig;
        let genome = GenomeModel::uniform().generate(8_000, 6);
        let reads = fastq_reads(&genome, 4, 128);
        let config = PipelineConfig {
            extension: Some(ExtensionConfig::default()),
            ..config(128, 8)
        };
        let run = map_records(&genome, &reads, &config, BackendKind::Device, None).unwrap();
        assert!(run.stats.aligned > 0);
        assert!(run.summary().contains("reads aligned"));
        for row in &run.rows {
            // Base rendering is untouched; extended rendering appends the
            // SAM-ish triple.
            assert_eq!(row.to_tsv(false), row.to_string());
            let extended = row.to_tsv(true);
            assert_eq!(extended.split('\t').count(), 8);
            match &row.alignment {
                Some(alignment) => {
                    assert!(row.positions.contains(&alignment.origin));
                    assert_eq!(alignment.cigar.cost(), alignment.score);
                    assert!(extended.ends_with(&alignment.cigar.to_string()));
                }
                None => assert!(extended.ends_with("*\t*\t*")),
            }
        }
        // Off by default: the plain config never populates the field.
        let plain =
            map_records(&genome, &reads, &config_plain(), BackendKind::Device, None).unwrap();
        assert!(plain.rows.iter().all(|r| r.alignment.is_none()));
        assert_eq!(plain.stats.aligned, 0);
    }

    fn config_plain() -> PipelineConfig {
        config(128, 8)
    }

    #[test]
    fn backends_are_selectable() {
        let genome = GenomeModel::uniform().generate(2_000, 5);
        let reads = fastq_reads(&genome, 2, 128);
        for backend in [
            BackendKind::Device,
            BackendKind::Pair,
            BackendKind::Software,
        ] {
            let run = map_records(&genome, &reads, &config(128, 8), backend, Some(2)).unwrap();
            assert_eq!(run.rows.len(), 2, "{backend:?}");
            assert!(run.rows.iter().all(|r| r.status == MapStatus::Mapped));
        }
    }
}
