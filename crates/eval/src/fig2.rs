//! Fig. 2: the adopted matching method — HD vs ED\* vs ED on the paper's
//! three example pairs.

use crate::report::Table;
use asmcap_genome::DnaSeq;
use asmcap_metrics::edit::anchored_semi_global;
use asmcap_metrics::{ed_star, hamming};

/// One Fig. 2 example: the printed sequences and the paper's values.
#[derive(Debug, Clone)]
pub struct Fig2Example {
    /// First printed sequence (the read in the ED\* convention).
    pub s1: DnaSeq,
    /// Second printed sequence (the stored row).
    pub s2: DnaSeq,
    /// Context bases following the stored row (for the semi-global ED).
    pub context: DnaSeq,
    /// Paper values `(HD, ED*, ED)`.
    pub paper: (usize, usize, usize),
}

/// The three example pairs of Fig. 2.
///
/// The paper prints `(S1, S2)` with the second sequence acting as the
/// stored row (see `asmcap_metrics::edstar` for the derivation); example 3
/// needs one base of reference context for its ED of 1.
#[must_use]
pub fn examples() -> Vec<Fig2Example> {
    let parse = |s: &str| s.parse::<DnaSeq>().expect("valid example");
    vec![
        Fig2Example {
            s1: parse("AGCTGAGA"),
            s2: parse("ATCTGCGA"),
            context: DnaSeq::new(),
            paper: (2, 2, 2),
        },
        Fig2Example {
            // The read lost one base relative to the stored row, so its
            // tail runs one base past the row; the next reference base (A)
            // is the implied context that makes the paper's ED = 1.
            s1: parse("AGCTGAGA"),
            s2: parse("AGCATGAG"),
            context: parse("A"),
            paper: (5, 1, 1),
        },
        Fig2Example {
            s1: parse("AGCTGAGA"),
            s2: parse("AGTGAGAA"),
            context: parse("A"),
            paper: (5, 0, 1),
        },
    ]
}

/// Computed `(HD, ED*, ED)` for one example.
#[must_use]
pub fn measure(example: &Fig2Example) -> (usize, usize, usize) {
    let hd = hamming(example.s1.as_slice(), example.s2.as_slice());
    let star = ed_star(example.s2.as_slice(), example.s1.as_slice());
    let mut reference = example.s2.clone();
    reference.extend(example.context.iter());
    let ed = anchored_semi_global(example.s1.as_slice(), reference.as_slice());
    (hd, star, ed)
}

/// The Fig. 2 table: paper vs measured for all three examples.
#[must_use]
pub fn table() -> Table {
    let mut table = Table::new(vec![
        "pair",
        "S1 (read)",
        "S2 (stored)",
        "HD",
        "ED*",
        "ED",
        "paper (HD, ED*, ED)",
    ]);
    for (i, example) in examples().iter().enumerate() {
        let (hd, star, ed) = measure(example);
        table.row(vec![
            (i + 1).to_string(),
            example.s1.to_string(),
            example.s2.to_string(),
            hd.to_string(),
            star.to_string(),
            ed.to_string(),
            format!("{:?}", example.paper),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_examples_reproduce_paper_values() {
        for (i, example) in examples().iter().enumerate() {
            let measured = measure(example);
            assert_eq!(
                measured,
                example.paper,
                "example {} disagrees with the paper",
                i + 1
            );
        }
    }

    #[test]
    fn table_has_three_rows() {
        assert_eq!(table().len(), 3);
    }
}
