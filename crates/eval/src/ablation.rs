//! Design-space ablations for the HDAC and TASR strategies (§IV calls both
//! spaces "huge"; these sweeps regenerate the neighbourhood of the paper's
//! chosen constants).

use crate::dataset::{Condition, EvalDataset};
use crate::report::Table;
use asmcap::{AsmcapConfig, HdacParams, RotationSchedule, TasrParams};

/// Sweeps HDAC's `(α, β)` on a Condition-A dataset, reporting mean F1 over
/// the threshold sweep for each setting.
#[must_use]
pub fn hdac_sweep(dataset: &EvalDataset, alphas: &[f64], betas: &[f64], seed: u64) -> Table {
    let mut header = vec!["alpha \\ beta".to_owned()];
    header.extend(betas.iter().map(|b| format!("{b:.2}")));
    let mut table = Table::new(header.iter().map(String::as_str).collect());
    let thresholds = Condition::A.thresholds();
    for &alpha in alphas {
        let mut row = vec![format!("{alpha:.0}")];
        for &beta in betas {
            let mut engine = AsmcapConfig::new(Condition::A.profile())
                .hdac(Some(HdacParams {
                    alpha,
                    beta,
                    ..HdacParams::paper()
                }))
                .tasr(None)
                .seed(seed)
                .build();
            let mean: f64 = thresholds
                .iter()
                .map(|&t| dataset.evaluate(&mut engine, t).0.f1())
                .sum::<f64>()
                / thresholds.len() as f64;
            row.push(format!("{:.1}", mean * 100.0));
        }
        table.row(row);
    }
    table
}

/// Sweeps TASR's `(γ, N_R)` on a Condition-B dataset, with plain SR
/// (γ = 0, gate off) as the first row for contrast.
#[must_use]
pub fn tasr_sweep(
    dataset: &EvalDataset,
    gammas: &[f64],
    rotation_counts: &[usize],
    seed: u64,
) -> Table {
    let mut header = vec!["gamma \\ N_R".to_owned()];
    header.extend(rotation_counts.iter().map(ToString::to_string));
    let mut table = Table::new(header.iter().map(String::as_str).collect());
    let thresholds = Condition::B.thresholds();
    let mut sweep_row = |label: String, params_for: &dyn Fn(usize) -> TasrParams| {
        let mut row = vec![label];
        for &nr in rotation_counts {
            let mut engine = AsmcapConfig::new(Condition::B.profile())
                .hdac(None)
                .tasr(Some(params_for(nr)))
                .seed(seed)
                .build();
            let mean: f64 = thresholds
                .iter()
                .map(|&t| dataset.evaluate(&mut engine, t).0.f1())
                .sum::<f64>()
                / thresholds.len() as f64;
            row.push(format!("{:.1}", mean * 100.0));
        }
        table.row(row);
    };
    sweep_row("plain SR".to_owned(), &|nr| TasrParams::plain_sr(nr));
    for &gamma in gammas {
        sweep_row(format!("{gamma:.1e}"), &|nr| TasrParams {
            gamma,
            rotations: nr,
            schedule: RotationSchedule::Alternate,
            threshold_aware: true,
        });
    }
    table
}

/// Stress-tests TASR against indel burstiness: datasets regenerated with
/// the bursty error model at several mean run lengths (total indel mass
/// constant), comparing ASMCap without TASR and with TASR at two rotation
/// depths. The paper's Fig. 6 motivates TASR with *consecutive* indels;
/// this sweep shows both the gain and its saturation: the alternating
/// schedule with `N_R` rotations re-aligns net shifts up to
/// `±(⌈N_R/2⌉ + 1)`, so longer runs need deeper rotation.
#[must_use]
pub fn burst_sweep(
    mean_burst_lens: &[f64],
    reads: usize,
    decoys: usize,
    read_len: usize,
    genome_len: usize,
    seed: u64,
) -> Table {
    let mut table = Table::new(vec![
        "mean indel run",
        "w/o TASR F1 (%)",
        "TASR N_R=2 (%)",
        "TASR N_R=6 (%)",
        "gain (N_R=6)",
    ]);
    let profile = Condition::B.profile();
    let thresholds = Condition::B.thresholds();
    for &mean_len in mean_burst_lens {
        let model = asmcap_genome::ErrorModel::Bursty {
            profile,
            mean_burst_len: mean_len,
        };
        let dataset =
            EvalDataset::build_with_model(model, reads, decoys, read_len, genome_len, seed);
        let mean = |engine: &mut asmcap::AsmcapEngine| {
            thresholds
                .iter()
                .map(|&t| dataset.evaluate(engine, t).0.f1())
                .sum::<f64>()
                / thresholds.len() as f64
        };
        let mut without = AsmcapConfig::new(profile)
            .hdac(None)
            .tasr(None)
            .seed(seed ^ 2)
            .build();
        let mut nr2 = AsmcapConfig::new(profile)
            .hdac(None)
            .tasr(Some(TasrParams::paper()))
            .seed(seed ^ 3)
            .build();
        let mut nr6 = AsmcapConfig::new(profile)
            .hdac(None)
            .tasr(Some(TasrParams {
                rotations: 6,
                ..TasrParams::paper()
            }))
            .seed(seed ^ 4)
            .build();
        let f1_without = mean(&mut without);
        let f1_nr2 = mean(&mut nr2);
        let f1_nr6 = mean(&mut nr6);
        table.row(vec![
            format!("{mean_len:.1}"),
            format!("{:.1}", f1_without * 100.0),
            format!("{:.1}", f1_nr2 * 100.0),
            format!("{:.1}", f1_nr6 * 100.0),
            format!("{:.2}x", f1_nr6 / f1_without.max(1e-9)),
        ]);
    }
    table
}

/// Compares the three rotation schedules at the paper's TASR setting.
#[must_use]
pub fn schedule_sweep(dataset: &EvalDataset, seed: u64) -> Table {
    let mut table = Table::new(vec!["schedule", "mean F1 (%)"]);
    let thresholds = Condition::B.thresholds();
    for (name, schedule) in [
        ("alternate", RotationSchedule::Alternate),
        ("left only", RotationSchedule::LeftOnly),
        ("right only", RotationSchedule::RightOnly),
    ] {
        let mut engine = AsmcapConfig::new(Condition::B.profile())
            .hdac(None)
            .tasr(Some(TasrParams {
                schedule,
                ..TasrParams::paper()
            }))
            .seed(seed)
            .build();
        let mean: f64 = thresholds
            .iter()
            .map(|&t| dataset.evaluate(&mut engine, t).0.f1())
            .sum::<f64>()
            / thresholds.len() as f64;
        table.row(vec![name.into(), format!("{:.1}", mean * 100.0)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_render_grids() {
        let ds = EvalDataset::build(Condition::A, 20, 4, 128, 30_000, 3);
        let grid = hdac_sweep(&ds, &[100.0, 200.0], &[0.25, 0.5], 1);
        assert_eq!(grid.len(), 2);
        let ds_b = EvalDataset::build(Condition::B, 20, 4, 128, 30_000, 4);
        let grid = tasr_sweep(&ds_b, &[2e-4], &[0, 2], 2);
        assert_eq!(grid.len(), 2); // plain SR + one gamma
        let schedules = schedule_sweep(&ds_b, 5);
        assert_eq!(schedules.len(), 3);
    }

    #[test]
    fn burst_sweep_deeper_rotation_wins_on_long_runs() {
        // 120 reads: the NR=6-over-NR=2 edge on long runs is ~1% F1, so the
        // dataset must be large enough that sampling noise (~0.5% at 40
        // reads) cannot swamp it.
        let table = burst_sweep(&[1.0, 3.0], 120, 10, 256, 80_000, 7);
        assert_eq!(table.len(), 2);
        let rows: Vec<Vec<f64>> = table
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| {
                l.split(',')
                    .skip(1)
                    .map(|c| c.trim_end_matches('x').parse().unwrap())
                    .collect()
            })
            .collect();
        // Columns: w/o, NR=2, NR=6, gain. TASR always helps...
        for row in &rows {
            assert!(row[1] >= row[0] - 0.5, "NR=2 should not hurt: {row:?}");
            assert!(row[2] >= row[1] - 0.5, "NR=6 should not hurt: {row:?}");
        }
        // ...and at mean run length 3, deeper rotation must add accuracy
        // beyond NR=2 (net shifts of 3+ need rotations of 2+).
        let bursty = &rows[1];
        assert!(
            bursty[2] > bursty[1] + 0.5,
            "NR=6 should beat NR=2 on long runs: {bursty:?}"
        );
        assert!(bursty[3] > 1.05, "bursty TASR gain too small: {bursty:?}");
    }
}
