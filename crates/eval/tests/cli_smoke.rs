//! Workspace smoke test: build the `asmcap_map` CLI and run it end-to-end
//! on a tiny synthetic FASTA/FASTQ round-trip.
//!
//! This is the fastest whole-stack check the workspace has: it exercises
//! genome synthesis, FASTA/FASTQ writing *and* re-parsing (through the
//! binary), device construction, and the full mapping path — and asserts
//! the mapper recovers every read's true origin from the files on disk.

use asmcap_genome::{fasta, fastq, ErrorProfile, GenomeModel, ReadSampler};
use std::process::Command;

/// Length of the synthetic reference; small so the device stays tiny.
const GENOME_LEN: usize = 2_048;
/// CAM row width = read length for the smoke run.
const ROW_WIDTH: usize = 64;
/// How many erroneous reads to push through the binary.
const READS: usize = 4;

#[test]
#[allow(clippy::disallowed_methods)] // wall clock only names the temp dir
fn asmcap_map_runs_on_synthetic_fasta_fastq() {
    let dir = std::env::temp_dir().join(format!(
        "asmcap_cli_smoke_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let ref_path = dir.join("reference.fasta");
    let reads_path = dir.join("reads.fastq");

    // Synthesise a reference and sample erroneous reads from it.
    let genome = GenomeModel::uniform().generate(GENOME_LEN, 99);
    let sampler = ReadSampler::new(ROW_WIDTH, ErrorProfile::condition_a());
    let reads = sampler.sample_many(&genome, READS, 7);

    // FASTA/FASTQ round-trip: write with the library, let the CLI re-parse.
    let ref_record = fasta::FastaRecord {
        id: "smoke_ref".to_owned(),
        seq: genome.clone(),
    };
    let mut ref_bytes = Vec::new();
    fasta::write_fasta(&mut ref_bytes, std::slice::from_ref(&ref_record), 70)
        .expect("render FASTA");
    std::fs::write(&ref_path, &ref_bytes).expect("write FASTA");

    let records: Vec<fastq::FastqRecord> = reads
        .iter()
        .enumerate()
        .map(|(i, r)| fastq::FastqRecord {
            id: format!("read_{i}_origin_{}", r.origin),
            seq: r.bases.clone(),
            quals: vec![40; r.bases.len()],
        })
        .collect();
    let mut read_bytes = Vec::new();
    fastq::write_fastq(&mut read_bytes, &records).expect("render FASTQ");
    std::fs::write(&reads_path, &read_bytes).expect("write FASTQ");

    // Sanity-check the library half of the round-trip before involving the
    // binary, so a parser regression fails here with a clearer message.
    let reparsed = fasta::read_fasta(&ref_bytes[..]).expect("re-parse FASTA");
    assert_eq!(reparsed.len(), 1);
    assert_eq!(reparsed[0].seq, genome);
    let reparsed_reads = fastq::read_fastq(&read_bytes[..]).expect("re-parse FASTQ");
    assert_eq!(reparsed_reads.len(), READS);

    // Run the real binary the way a user would.
    let output = Command::new(env!("CARGO_BIN_EXE_asmcap_map"))
        .args([
            "--reference",
            ref_path.to_str().expect("utf-8 path"),
            "--reads",
            reads_path.to_str().expect("utf-8 path"),
            "--row-width",
            "64",
            "--threshold",
            "6",
            "--seed",
            "3",
        ])
        .output()
        .expect("spawn asmcap_map");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        output.status.success(),
        "asmcap_map failed: {stderr}\n{stdout}"
    );

    // TSV shape: header plus one row per read.
    let mut lines = stdout.lines();
    assert_eq!(
        lines.next(),
        Some("#read_id\tn_candidates\tpositions\tcycles\tstatus"),
        "unexpected header in:\n{stdout}"
    );
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), READS, "one TSV row per read in:\n{stdout}");

    // Every read must be mapped back to (at least) its true origin.
    for (row, read) in rows.iter().zip(&reads) {
        let fields: Vec<&str> = row.split('\t').collect();
        assert_eq!(fields.len(), 5, "malformed row: {row}");
        let positions: Vec<usize> = fields[2]
            .split(';')
            .map(|p| p.parse().expect("numeric position"))
            .collect();
        assert!(
            positions.contains(&read.origin),
            "origin {} missing from row: {row}",
            read.origin
        );
        assert_eq!(fields[4], "mapped", "unexpected status in row: {row}");
    }

    // The run summary (with truncation accounting) goes to stderr.
    assert!(
        stderr.contains(&format!("reads: {READS} (mapped {READS}")),
        "missing summary in stderr:\n{stderr}"
    );

    // Same run with the k-mer prefilter armed: every origin must survive
    // the shortlist (recall), through the same CLI surface.
    let output = Command::new(env!("CARGO_BIN_EXE_asmcap_map"))
        .args([
            "--reference",
            ref_path.to_str().expect("utf-8 path"),
            "--reads",
            reads_path.to_str().expect("utf-8 path"),
            "--row-width",
            "64",
            "--threshold",
            "6",
            "--seed",
            "3",
            "--prefilter",
            "--prefilter-k",
            "11",
        ])
        .output()
        .expect("spawn asmcap_map with --prefilter");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    assert!(
        output.status.success(),
        "asmcap_map --prefilter failed:\n{stdout}"
    );
    for (row, read) in stdout.lines().skip(1).zip(&reads) {
        let fields: Vec<&str> = row.split('\t').collect();
        let positions: Vec<usize> = fields[2]
            .split(';')
            .map(|p| p.parse().expect("numeric position"))
            .collect();
        assert!(
            positions.contains(&read.origin),
            "prefilter lost origin {} in row: {row}",
            read.origin
        );
    }

    // Same run with the extension stage armed: three SAM-ish columns are
    // appended, and every mapped read carries a CIGAR whose cost matches
    // its score column.
    let output = Command::new(env!("CARGO_BIN_EXE_asmcap_map"))
        .args([
            "--reference",
            ref_path.to_str().expect("utf-8 path"),
            "--reads",
            reads_path.to_str().expect("utf-8 path"),
            "--row-width",
            "64",
            "--threshold",
            "6",
            "--seed",
            "3",
            "--extension",
        ])
        .output()
        .expect("spawn asmcap_map with --extension");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        output.status.success(),
        "asmcap_map --extension failed:\n{stdout}"
    );
    let mut lines = stdout.lines();
    assert_eq!(
        lines.next(),
        Some("#read_id\tn_candidates\tpositions\tcycles\tstatus\taln_pos\taln_score\tcigar"),
        "unexpected extended header in:\n{stdout}"
    );
    for (row, read) in lines.zip(&reads) {
        let fields: Vec<&str> = row.split('\t').collect();
        assert_eq!(fields.len(), 8, "malformed extended row: {row}");
        let aln_pos: usize = fields[5].parse().expect("aligned position");
        let aln_score: usize = fields[6].parse().expect("alignment score");
        let cigar = fields[7];
        assert_eq!(
            aln_pos, read.origin,
            "alignment origin mismatch in row: {row}"
        );
        // The CIGAR's claimed edit cost (X/I/D run lengths) must equal the
        // score column — the transcript is self-consistent on the wire.
        let mut cost = 0usize;
        let mut run = 0usize;
        for c in cigar.chars() {
            if let Some(digit) = c.to_digit(10) {
                run = run * 10 + digit as usize;
            } else {
                if matches!(c, 'X' | 'I' | 'D') {
                    cost += run;
                }
                run = 0;
            }
        }
        assert_eq!(cost, aln_score, "CIGAR cost != score in row: {row}");
    }
    assert!(
        stderr.contains("reads aligned"),
        "missing alignment summary in stderr:\n{stderr}"
    );

    std::fs::remove_dir_all(&dir).expect("clean temp dir");
}
