#![deny(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic ticket counter.
pub fn ticket(c: &AtomicU64) -> u64 {
    // lint: relaxed-ok — pure counter; no memory is published through it.
    c.fetch_add(1, Ordering::Relaxed)
}
