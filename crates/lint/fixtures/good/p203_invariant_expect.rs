#![deny(unsafe_code)]

/// The `.expect` message states the invariant that makes it safe.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().expect("caller guarantees a non-empty slice")
}
