#![deny(unsafe_code)]

/// A typed error instead of `.unwrap()`.
pub fn head(xs: &[u32]) -> Result<u32, &'static str> {
    xs.first().copied().ok_or("empty input")
}
