#![deny(unsafe_code)]

use std::collections::HashMap;

/// Hash iteration is fine once the order is pinned by a sort.
pub fn ranked(votes: &HashMap<usize, usize>) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = votes // lint: order-insensitive — sorted below
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect();
    out.sort_unstable();
    out
}
