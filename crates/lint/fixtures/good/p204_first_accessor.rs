#![deny(unsafe_code)]

/// Accessors with defaults instead of literal indexing.
pub fn ends(xs: &[u32]) -> (u32, u32) {
    let first = xs.first().copied().unwrap_or(0);
    let last = xs.last().copied().unwrap_or(0);
    (first, last)
}
