#![deny(unsafe_code)]

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    /// Reads the first byte.
    ///
    /// # Safety
    ///
    /// The caller guarantees `xs` is non-empty and AVX2 is available.
    pub unsafe fn first(xs: &[u8]) -> u8 {
        // SAFETY: the caller upholds the non-empty contract.
        unsafe { *xs.as_ptr() }
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod fallback {}
