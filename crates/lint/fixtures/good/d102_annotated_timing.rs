#![deny(unsafe_code)]

use std::time::Instant;

/// Wall-clock reads are fine when they feed a stats side channel only.
pub fn measure<F: FnOnce()>(f: F) -> f64 {
    // lint: timing-ok — the duration feeds perf stats, never a decision.
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}
