#![forbid(unsafe_code)]

/// `forbid` is accepted as the stronger form of `deny`.
pub fn double(x: u32) -> u32 {
    x * 2
}
