#![deny(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared state through an atomic, not `static mut`.
pub static CALLS: AtomicU64 = AtomicU64::new(0);

/// Bumps the counter with a fully ordered access.
pub fn record() -> u64 {
    CALLS.fetch_add(1, Ordering::SeqCst)
}
