#![deny(unsafe_code)]

/// Feature-gated fast path …
#[cfg(feature = "turbo")]
pub fn speed() -> u32 {
    9000
}

/// … with the matching fallback in the same file.
#[cfg(not(feature = "turbo"))]
pub fn speed() -> u32 {
    1
}
