#![deny(unsafe_code)]

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    /// Zero, vectorised.
    ///
    /// # Safety
    ///
    /// AVX2 must be available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn zero() -> u32 {
        0
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
pub fn zero() -> u32 {
    0
}

/// The runtime-dispatch pattern: detect, then an annotated unsafe call.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub fn dispatch() -> u32 {
    if std::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support verified at runtime on the line above.
        #[allow(unsafe_code)]
        return unsafe { avx2::zero() };
    }
    0
}
