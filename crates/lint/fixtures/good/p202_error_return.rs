#![deny(unsafe_code)]

/// The failure mode is a value, not a panic.
pub fn checked_div(a: u32, b: u32) -> Option<u32> {
    a.checked_div(b)
}
