#![deny(unsafe_code)]

/// Splitmix-style generator: every stream derives from an explicit seed,
/// so runs reproduce bit-for-bit.
pub fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}
