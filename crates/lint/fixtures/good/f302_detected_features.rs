#![deny(unsafe_code)]

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    /// Popcount through hardware bits.
    ///
    /// # Safety
    ///
    /// AVX2 and POPCNT must be available (runtime-verified by the caller).
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn count() -> u32 {
        0
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
pub fn count() -> u32 {
    0
}

/// Both CPUID bits verified — the full enable list above.
pub fn vector_ready() -> bool {
    std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("popcnt")
}
