#![deny(unsafe_code)]

use std::time::SystemTime;

/// Wall-clock time on a result path.
pub fn stamp() -> SystemTime {
    SystemTime::now()
}
