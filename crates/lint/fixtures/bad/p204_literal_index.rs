#![deny(unsafe_code)]

/// Literal indexing can panic out of bounds.
pub fn pair_sum(xs: &[u32]) -> u32 {
    xs[0] + xs[1]
}
