/// A crate root with no `#![deny(unsafe_code)]` / `#![forbid(unsafe_code)]`.
pub fn identity(x: u32) -> u32 {
    x
}
