#![deny(unsafe_code)]

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    /// Properly contained, but the `unsafe` block below carries no
    /// `// SAFETY:` comment and the fn has no `# Safety` section.
    pub fn first(xs: &[u8]) -> u8 {
        unsafe { *xs.as_ptr() }
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod fallback {}
