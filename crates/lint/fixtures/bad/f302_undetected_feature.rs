#![deny(unsafe_code)]

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    /// Enables POPCNT but the detection below only verifies AVX2 — the
    /// exact bug class the dispatch gate exists to prevent.
    ///
    /// # Safety
    ///
    /// AVX2 and POPCNT must be available.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn lanes() -> u32 {
        0
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
mod fallback {}

/// Detects only AVX2; POPCNT is an independent CPUID bit.
pub fn detected() -> bool {
    std::is_x86_feature_detected!("avx2")
}
