#![deny(unsafe_code)]

/// `panic!` on a public path without a documented contract.
pub fn forbid(flag: bool) {
    if flag {
        panic!("unsupported");
    }
}
