#![deny(unsafe_code)]

/// `unsafe` outside the simd-gated module and without an
/// `#[allow(unsafe_code)]` dispatch attribute: containment violation.
pub fn peek(xs: &[u8]) -> u8 {
    // SAFETY: a comment alone does not make the site contained.
    unsafe { *xs.as_ptr() }
}
