#![deny(unsafe_code)]

/// `.expect("")` carries no invariant message.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().expect("")
}
