#![deny(unsafe_code)]

/// `static mut` is a data race waiting to happen; no annotation escape.
static mut COUNTER: u64 = 0;
