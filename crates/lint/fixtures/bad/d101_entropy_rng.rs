#![deny(unsafe_code)]

/// Entropy-seeded RNG: draws are not reproducible run-to-run.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
