#![deny(unsafe_code)]

use std::collections::HashMap;

/// Direct hash iteration: the visit order is unspecified.
pub fn total(votes: &HashMap<u32, u32>) -> u32 {
    votes.values().sum()
}
