#![deny(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

/// `Ordering::Relaxed` without a justification comment.
pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}
