#![deny(unsafe_code)]

/// Bare `.unwrap()` on a public path.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
