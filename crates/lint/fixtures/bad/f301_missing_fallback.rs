#![deny(unsafe_code)]

/// A feature-gated item with no `cfg(not(...))` fallback in the file:
/// builds without the feature silently lose the symbol.
#[cfg(feature = "turbo")]
pub fn fast_path() -> u32 {
    7
}
