//! The fixture matrix as a test: every `fixtures/bad/<rule>_*.rs` must
//! flag the rule named by its filename prefix, every `fixtures/good/*.rs`
//! must lint clean under the strict context, and every rule ID must be
//! covered by at least one fixture of each kind.

use asmcap_lint::{check_source, FileContext, RULE_IDS};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture_files(sub: &str) -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(sub);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("listing {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures under {}", dir.display());
    files
}

fn rule_prefix(path: &Path) -> String {
    path.file_stem()
        .and_then(|s| s.to_str())
        .and_then(|s| s.split('_').next())
        .map(str::to_ascii_uppercase)
        .unwrap_or_default()
}

#[test]
fn bad_fixtures_flag_their_rule() {
    let mut covered = BTreeSet::new();
    for path in fixture_files("bad") {
        let rule = rule_prefix(&path);
        assert!(
            RULE_IDS.contains(&rule.as_str()),
            "{}: prefix `{rule}` is not a rule ID",
            path.display()
        );
        let src = std::fs::read_to_string(&path).expect("fixture is readable");
        let diags = check_source(&path.display().to_string(), &src, &FileContext::strict());
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "{}: expected {rule}, got {:?}",
            path.display(),
            diags.iter().map(|d| d.rule).collect::<Vec<_>>()
        );
        covered.insert(rule);
    }
    for id in RULE_IDS {
        assert!(covered.contains(id), "no bad fixture covers {id}");
    }
}

#[test]
fn good_fixtures_lint_clean() {
    let mut covered = BTreeSet::new();
    for path in fixture_files("good") {
        let src = std::fs::read_to_string(&path).expect("fixture is readable");
        let diags = check_source(&path.display().to_string(), &src, &FileContext::strict());
        assert!(
            diags.is_empty(),
            "{}: expected clean, got {:?}",
            path.display(),
            diags
        );
        covered.insert(rule_prefix(&path));
    }
    for id in RULE_IDS {
        assert!(covered.contains(id), "no good fixture covers {id}");
    }
}
