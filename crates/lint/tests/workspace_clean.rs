//! The real workspace must lint clean against the checked-in baseline —
//! this is the same gate CI runs, wired into `cargo test` so a local
//! tier-1 run catches invariant regressions before push.

use asmcap_lint::{load_baseline, run_workspace};
use std::path::Path;

#[test]
fn workspace_lints_clean_against_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let baseline = load_baseline(&root.join("lint-baseline.toml")).expect("baseline parses");
    let report = run_workspace(&root, &baseline).expect("workspace scan succeeds");
    assert!(
        report.checked_files > 50,
        "scan looks truncated: {} files",
        report.checked_files
    );
    assert!(
        report.clean(),
        "workspace has lint violations:\n{}",
        report.to_text()
    );
}
