//! # asmcap-lint — the workspace invariant analyzer
//!
//! ASMCap's headline claim is that the capacitive-CAM matchplane computes
//! the *same* ED\*/HD decisions as the reference software path. In this
//! repository that claim rests on conventions — RNG draw-order
//! preservation in the analog sense model, byte-identical goldens across
//! the scalar/SWAR/AVX2 lanes, no iteration-order-dependent results —
//! which this crate turns from conventions into machine-checked rules.
//!
//! Five rule families (IDs and details in [`rules`]):
//!
//! 1. **Unsafe containment** (U001–U003) — `unsafe` confined to the
//!    simd-gated AVX2 module of `crates/metrics`, every site carrying a
//!    safety contract, every crate root denying `unsafe_code`.
//! 2. **Determinism** (D101–D103) — no entropy-seeded RNG, no wall
//!    clock, no hash-order-dependent iteration in result-producing
//!    crates.
//! 3. **Panic policy** (P201–P204) — no unjustified
//!    `unwrap`/`panic!`/empty-`expect`/literal indexing on the
//!    `core`/`genome` public paths.
//! 4. **Feature-gate pairing** (F301–F302) — every `cfg(feature)` item
//!    has a fallback, every `target_feature` bit is runtime-detected
//!    (the PR 5 AVX2/POPCNT bug class).
//! 5. **Concurrency hygiene** (C401–C402) — no `static mut`, every
//!    `Ordering::Relaxed` justified.
//!
//! Escape hatches are explicit and carry reasons: inline
//! `// lint: <key> — <reason>` annotations (`panic-ok`, `index-ok`,
//! `order-insensitive`, `timing-ok`, `relaxed-ok`, `cfg-fallback`) for
//! sites that are correct by argument, and `lint-baseline.toml` entries
//! for tracked debt whose count can only go down ([`baseline`]).
//!
//! The analyzer is dependency-free by design: a hand-rolled tokenizer
//! ([`lexer`]) instead of `syn`, a TOML-subset parser, and a by-hand
//! JSON emitter — the build container has no crates.io access (the PR 1
//! vendoring precedent). It is *heuristic* static analysis over tokens,
//! not a type checker: the rules are tuned so the workspace lints clean
//! with zero false positives, and anything genuinely exceptional is
//! annotated or baselined rather than silently skipped.
//!
//! Run it as `cargo run -p asmcap-lint` (text) or
//! `cargo run -p asmcap-lint -- --format json` (the CI artifact); the
//! fixture corpus under `fixtures/` is exercised by
//! `cargo run -p asmcap-lint -- --check-fixtures` and by the crate's
//! tests.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

pub use baseline::BaselineEntry;
pub use report::Report;
pub use rules::{check_source, Diagnostic, FileContext, UnsafePolicy};
pub use workspace::{context_for, find_root, load_baseline, run_workspace};

/// All rule IDs, in report order. Fixture names and baseline entries are
/// validated against this list.
pub const RULE_IDS: [&str; 14] = [
    "U001", "U002", "U003", "D101", "D102", "D103", "P201", "P202", "P203", "P204", "F301", "F302",
    "C401", "C402",
];
