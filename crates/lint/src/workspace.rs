//! Workspace driver: file discovery, per-crate rule contexts, and the
//! end-to-end run (`scan` → rules → baseline → [`Report`]).
//!
//! Scope: library sources — `src/**/*.rs` of the root package and of
//! every `crates/*` package. Integration tests, benches, examples, and
//! the vendored stand-ins under `vendor/` are out of scope (their
//! invariants are pinned dynamically by the golden/property suites), as
//! is the lint crate's own fixture corpus.

use crate::baseline::{self, BaselineEntry};
use crate::report::Report;
use crate::rules::{check_source, Diagnostic, FileContext, UnsafePolicy};
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose outputs feed mapping results: the determinism family
/// (D101/D102/D103) applies to their sources.
const RESULT_PRODUCING: [&str; 6] = [
    "crates/genome/",
    "crates/metrics/",
    "crates/arch/",
    "crates/core/",
    "crates/baselines/",
    "crates/serve/",
];

/// Crates (and files) on the public mapping path: the panic-policy family
/// (P201–P204) applies to their sources. The alignment kernel is listed
/// file-by-file because the rest of `crates/metrics` is evaluation-side
/// numeric code, but `align.rs` feeds `MapRecord`s through the extension
/// stage.
const PANIC_POLICED: [&str; 4] = [
    "crates/core/",
    "crates/genome/",
    "crates/serve/",
    "crates/metrics/src/align.rs",
];

/// The one file allowed to contain `unsafe`, confined to its
/// simd-gated `avx2` module (see [`UnsafePolicy::GatedModule`]).
const UNSAFE_ALLOWLIST: &str = "crates/metrics/src/kernels.rs";

/// The rule context a workspace file gets, derived from its path.
#[must_use]
pub fn context_for(rel: &str) -> FileContext {
    let determinism = RESULT_PRODUCING.iter().any(|p| rel.starts_with(p));
    FileContext {
        crate_root: rel == "src/lib.rs"
            || (rel.starts_with("crates/") && rel.ends_with("src/lib.rs")),
        determinism,
        panic_policy: PANIC_POLICED.iter().any(|p| rel.starts_with(p)),
        // Stats/bench-shaped files may take wall-clock timestamps without
        // per-site annotations; everything else in a result-producing
        // crate needs `// lint: timing-ok — <reason>`.
        timing_allowed: !determinism || rel.contains("/perf"),
        unsafe_policy: if rel == UNSAFE_ALLOWLIST {
            UnsafePolicy::GatedModule("avx2")
        } else {
            UnsafePolicy::Forbidden
        },
    }
}

/// Recursively lists `.rs` files under `dir`, sorted for deterministic
/// reports.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace files in scope, as `(absolute, workspace-relative)`
/// pairs.
///
/// # Errors
///
/// Propagates I/O errors from directory listing.
pub fn scan_targets(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut dirs = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path().join("src"))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        dirs.extend(members);
    }
    let mut files = Vec::new();
    for dir in dirs {
        if dir.is_dir() {
            rust_files(&dir, &mut files)?;
        }
    }
    let mut out = Vec::new();
    for abs in files {
        let rel = abs
            .strip_prefix(root)
            .unwrap_or(&abs)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((abs, rel));
    }
    Ok(out)
}

/// Runs the analyzer over the workspace at `root`, applying `entries`
/// (the parsed baseline) to the findings.
///
/// # Errors
///
/// Returns a message on I/O failure (unreadable file or directory).
pub fn run_workspace(root: &Path, entries: &[BaselineEntry]) -> Result<Report, String> {
    let targets = scan_targets(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let mut diags: Vec<Diagnostic> = Vec::new();
    for (abs, rel) in &targets {
        let src = fs::read_to_string(abs).map_err(|e| format!("reading {}: {e}", abs.display()))?;
        diags.extend(check_source(rel, &src, &context_for(rel)));
    }
    diags.sort();
    let outcome = baseline::apply(diags, entries);
    Ok(Report {
        root: root.display().to_string(),
        checked_files: targets.len(),
        fatal: outcome.fatal,
        suppressed: outcome.suppressed,
        notes: outcome.notes,
    })
}

/// Loads and parses `lint-baseline.toml` from `path`. A missing file is
/// an empty baseline (not an error): new checkouts start clean.
///
/// # Errors
///
/// Returns a message when the file exists but does not parse.
pub fn load_baseline(path: &Path) -> Result<Vec<BaselineEntry>, String> {
    match fs::read_to_string(path) {
        Ok(text) => baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Walks upward from `start` to the workspace root — the first ancestor
/// holding both a `Cargo.toml` and a `crates` directory.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_follow_the_crate_map() {
        let core = context_for("crates/core/src/pipeline.rs");
        assert!(core.determinism && core.panic_policy && !core.timing_allowed);
        assert_eq!(core.unsafe_policy, UnsafePolicy::Forbidden);

        let kernels = context_for("crates/metrics/src/kernels.rs");
        assert!(kernels.determinism && !kernels.panic_policy);
        assert_eq!(kernels.unsafe_policy, UnsafePolicy::GatedModule("avx2"));

        // The alignment kernel is the one metrics file on the mapping
        // path (via the extension stage), so it alone joins the panic
        // policy.
        let align = context_for("crates/metrics/src/align.rs");
        assert!(align.determinism && align.panic_policy);
        assert_eq!(align.unsafe_policy, UnsafePolicy::Forbidden);

        let eval = context_for("crates/eval/src/bin/asmcap_map.rs");
        assert!(!eval.determinism && !eval.panic_policy && eval.timing_allowed);

        // The serving layer produces mapping results and fronts the
        // public wire, so both rule families apply — except its perf
        // module, the crate's one timing-allowed path.
        let serve = context_for("crates/serve/src/server.rs");
        assert!(serve.determinism && serve.panic_policy && !serve.timing_allowed);
        assert!(context_for("crates/serve/src/perf.rs").timing_allowed);

        // The fault model draws every fault from seeded streams; D101
        // (no entropy-seeded RNG) and D102 (no free timing) must cover
        // it, or a stray `thread_rng` would silently break the
        // faults-on determinism pins.
        let fault = context_for("crates/arch/src/fault.rs");
        assert!(fault.determinism && !fault.timing_allowed);
        assert_eq!(fault.unsafe_policy, UnsafePolicy::Forbidden);
        // Same for the sense path the faults are injected into.
        assert!(context_for("crates/arch/src/array.rs").determinism);

        assert!(context_for("src/lib.rs").crate_root);
        assert!(context_for("crates/genome/src/lib.rs").crate_root);
        assert!(!context_for("crates/genome/src/kmer.rs").crate_root);
    }

    #[test]
    fn perf_files_may_time() {
        assert!(context_for("crates/baselines/src/perf.rs").timing_allowed);
        assert!(!context_for("crates/baselines/src/cm_cpu.rs").timing_allowed);
    }
}
