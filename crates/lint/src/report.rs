//! Report emitters: human-readable text and machine-readable JSON.
//!
//! The JSON emitter is hand-rolled (no serde in the container); output is
//! deterministic — diagnostics arrive pre-sorted by `(file, line, rule)`
//! and maps are BTree-ordered — so the CI artifact diffs cleanly between
//! runs.

use crate::rules::Diagnostic;

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Root the run scanned (display only).
    pub root: String,
    /// Number of files checked.
    pub checked_files: usize,
    /// Findings that fail the run.
    pub fatal: Vec<Diagnostic>,
    /// Findings absorbed by the baseline.
    pub suppressed: Vec<Diagnostic>,
    /// Stale/shrunk baseline notices.
    pub notes: Vec<String>,
}

impl Report {
    /// Whether the run passes (no fatal findings).
    #[must_use]
    pub fn clean(&self) -> bool {
        self.fatal.is_empty()
    }

    /// Human-readable rendering, one `file:line: RULE: message` per
    /// finding.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.fatal {
            out.push_str(&format!(
                "{}:{}: {}: {}\n",
                d.file, d.line, d.rule, d.message
            ));
        }
        for d in &self.suppressed {
            out.push_str(&format!(
                "{}:{}: {}: suppressed by baseline\n",
                d.file, d.line, d.rule
            ));
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out.push_str(&format!(
            "{} files checked, {} violation(s), {} suppressed\n",
            self.checked_files,
            self.fatal.len(),
            self.suppressed.len()
        ));
        out
    }

    /// JSON rendering (stable key order, findings pre-sorted).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"root\": {},\n", json_str(&self.root)));
        out.push_str(&format!("  \"checked_files\": {},\n", self.checked_files));
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str("  \"diagnostics\": [\n");
        out.push_str(&diag_array(&self.fatal));
        out.push_str("  ],\n");
        out.push_str("  \"suppressed\": [\n");
        out.push_str(&diag_array(&self.suppressed));
        out.push_str("  ],\n");
        out.push_str("  \"notes\": [\n");
        for (i, n) in self.notes.iter().enumerate() {
            let comma = if i + 1 < self.notes.len() { "," } else { "" };
            out.push_str(&format!("    {}{comma}\n", json_str(n)));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn diag_array(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for (i, d) in diags.iter().enumerate() {
        let comma = if i + 1 < diags.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{comma}\n",
            json_str(d.rule),
            json_str(&d.file),
            d.line,
            json_str(&d.message)
        ));
    }
    out
}

/// Escapes a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let report = Report {
            root: "/tmp/x".to_string(),
            checked_files: 2,
            fatal: vec![Diagnostic {
                rule: "P201",
                file: "a\"b.rs".to_string(),
                line: 7,
                message: "quote \" and\nnewline".to_string(),
            }],
            suppressed: Vec::new(),
            notes: vec!["note one".to_string()],
        };
        let json = report.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("quote \\\" and\\nnewline"));
        assert!(json.contains("\"checked_files\": 2"));
        assert!(report.to_text().contains("a\"b.rs:7: P201"));
    }

    #[test]
    fn empty_report_is_clean() {
        let report = Report::default();
        assert!(report.clean());
        assert!(report.to_json().contains("\"clean\": true"));
    }
}
