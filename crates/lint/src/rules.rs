//! The five rule families and the per-file checking engine.
//!
//! Every rule has a stable ID used in diagnostics, the JSON report, and
//! `lint-baseline.toml`:
//!
//! | ID   | family       | what it enforces |
//! |------|--------------|------------------|
//! | U001 | unsafe       | `unsafe` only inside the simd-gated AVX2 module (or an explicit `#[allow(unsafe_code)]` dispatch site) of the one allowlisted file |
//! | U002 | unsafe       | every `unsafe` block/fn carries a `// SAFETY:` comment or `# Safety` doc section |
//! | U003 | unsafe       | crate roots carry `#![deny(unsafe_code)]` (or `forbid`) |
//! | D101 | determinism  | no entropy-seeded RNG (`thread_rng`, `from_entropy`, `OsRng`) |
//! | D102 | determinism  | no `SystemTime`; `Instant::now` only in timing paths or `lint: timing-ok` sites |
//! | D103 | determinism  | no direct `HashMap`/`HashSet` iteration without `lint: order-insensitive` |
//! | P201 | panic policy | no `.unwrap()` without `lint: panic-ok` |
//! | P202 | panic policy | no `panic!`/`todo!`/`unimplemented!` without `lint: panic-ok` |
//! | P203 | panic policy | `.expect(…)` must carry a non-empty string-literal invariant message |
//! | P204 | panic policy | no indexing by integer literal without `lint: index-ok` |
//! | F301 | feature gate | every positive `cfg(feature = "x")` has a `cfg(not(… feature = "x" …))` fallback in the same file |
//! | F302 | feature gate | every `target_feature(enable = …)` feature appears in an `is_x86_feature_detected!` check in the same file |
//! | C401 | concurrency  | no `static mut` |
//! | C402 | concurrency  | every `Ordering::Relaxed` carries `lint: relaxed-ok` |
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` fns) is exempt from all
//! families except U003 (a crate root attribute is file-global).

use crate::lexer::TokKind;
use crate::source::{any_ident_at, ident_at, matching_delim, punct_at, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule ID (`U001`, `D103`, …).
    pub rule: &'static str,
    /// Human-readable explanation with the escape hatch named.
    pub message: String,
}

/// How `unsafe` tokens are policed in a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafePolicy {
    /// No `unsafe` at all (every file except the kernel allowlist).
    Forbidden,
    /// `unsafe` allowed inside a feature-gated `mod <name>` carrying
    /// `#[allow(unsafe_code)]`, or at sites bearing that attribute
    /// directly (the runtime-dispatch pattern).
    GatedModule(&'static str),
}

/// Which rule families apply to a file, derived from its workspace role.
#[derive(Debug, Clone, Copy)]
pub struct FileContext {
    /// Apply U003 (the file is a crate root).
    pub crate_root: bool,
    /// Apply D101/D102/D103 (the file is in a result-producing crate).
    pub determinism: bool,
    /// Apply P201–P204 (the file is on the core/genome public path).
    pub panic_policy: bool,
    /// `Instant::now` allowed without annotation (stats/bench paths).
    pub timing_allowed: bool,
    /// How `unsafe` is policed.
    pub unsafe_policy: UnsafePolicy,
}

impl FileContext {
    /// The strictest context: every family on. Used for fixtures and for
    /// linting ad-hoc files passed on the command line.
    #[must_use]
    pub fn strict() -> Self {
        FileContext {
            crate_root: true,
            determinism: true,
            panic_policy: true,
            timing_allowed: false,
            unsafe_policy: UnsafePolicy::GatedModule("avx2"),
        }
    }
}

/// Checks one file and returns its findings sorted by line.
#[must_use]
pub fn check_source(path: &str, src: &str, ctx: &FileContext) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, src);
    let mut diags = Vec::new();
    if ctx.crate_root {
        rule_u003(&file, &mut diags);
    }
    rules_unsafe(&file, ctx, &mut diags);
    if ctx.determinism {
        rule_d101(&file, &mut diags);
        rule_d102(&file, ctx, &mut diags);
        rule_d103(&file, &mut diags);
    }
    if ctx.panic_policy {
        rules_panic(&file, &mut diags);
    }
    rule_f301(&file, &mut diags);
    rule_f302(&file, &mut diags);
    rules_concurrency(&file, &mut diags);
    diags.sort();
    diags
}

fn push(
    diags: &mut Vec<Diagnostic>,
    file: &SourceFile,
    line: u32,
    rule: &'static str,
    msg: String,
) {
    diags.push(Diagnostic {
        file: file.path.clone(),
        line,
        rule,
        message: msg,
    });
}

// ---------------------------------------------------------------- U003

fn rule_u003(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let t = &file.toks;
    let found = (0..t.len()).any(|i| {
        punct_at(t, i, '#')
            && punct_at(t, i + 1, '!')
            && punct_at(t, i + 2, '[')
            && (ident_at(t, i + 3, "deny") || ident_at(t, i + 3, "forbid"))
            && punct_at(t, i + 4, '(')
            && ident_at(t, i + 5, "unsafe_code")
    });
    if !found {
        push(
            diags,
            file,
            1,
            "U003",
            "crate root lacks `#![deny(unsafe_code)]` (or `#![forbid(unsafe_code)]`)".to_string(),
        );
    }
}

// --------------------------------------------------------- U001 / U002

/// Token spans of modules named `gate` whose attribute stack carries both
/// a `cfg` mentioning the `simd` feature and `allow(unsafe_code)`.
fn gated_module_spans(file: &SourceFile, gate: &str) -> Vec<(usize, usize)> {
    let t = &file.toks;
    let mut spans = Vec::new();
    for m in 0..t.len() {
        if !ident_at(t, m, "mod") || !ident_at(t, m + 1, gate) {
            continue;
        }
        let Some(open) = (m + 2..t.len()).find(|&j| t[j].is_punct('{')) else {
            continue;
        };
        let Some(close) = matching_delim(t, open, '{', '}') else {
            continue;
        };
        if mod_attrs_gate_unsafe(file, m) {
            spans.push((open, close));
        }
    }
    spans
}

/// Walks the attribute stack directly above token `m` (a `mod` keyword)
/// looking for `allow(unsafe_code)` and a `cfg` attribute that names the
/// `simd` feature.
fn mod_attrs_gate_unsafe(file: &SourceFile, m: usize) -> bool {
    let t = &file.toks;
    let mut has_allow = false;
    let mut has_cfg_simd = false;
    let mut j = m;
    while j >= 1 && punct_at(t, j - 1, ']') {
        // Find the '[' matching this ']' by walking backwards.
        let close = j - 1;
        let mut depth = 0usize;
        let mut open = None;
        for k in (0..=close).rev() {
            if t[k].is_punct(']') {
                depth += 1;
            } else if t[k].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    open = Some(k);
                    break;
                }
            }
        }
        let Some(open) = open else { break };
        if open == 0 || !punct_at(t, open - 1, '#') {
            break;
        }
        let body = &t[open + 1..close];
        if body.first().is_some_and(|x| x.is_ident("allow"))
            && body.iter().any(|x| x.is_ident("unsafe_code"))
        {
            has_allow = true;
        }
        if body.first().is_some_and(|x| x.is_ident("cfg"))
            && body
                .iter()
                .any(|x| matches!(x.kind, TokKind::Str { .. }) && x.text == "simd")
        {
            has_cfg_simd = true;
        }
        j = open - 1;
    }
    has_allow && has_cfg_simd
}

/// Whether the tokens directly before index `i` include an
/// `#[allow(unsafe_code)]` attribute (the dispatch-site pattern
/// `#[allow(unsafe_code)] return unsafe { … }`).
fn allow_attr_before(file: &SourceFile, i: usize) -> bool {
    let t = &file.toks;
    let lo = i.saturating_sub(12);
    (lo..i).any(|j| {
        ident_at(t, j, "allow")
            && punct_at(t, j + 1, '(')
            && ident_at(t, j + 2, "unsafe_code")
            && j >= 2
            && punct_at(t, j - 1, '[')
            && punct_at(t, j - 2, '#')
    })
}

fn rules_unsafe(file: &SourceFile, ctx: &FileContext, diags: &mut Vec<Diagnostic>) {
    let t = &file.toks;
    let gated = match ctx.unsafe_policy {
        UnsafePolicy::GatedModule(gate) => gated_module_spans(file, gate),
        UnsafePolicy::Forbidden => Vec::new(),
    };
    for i in 0..t.len() {
        if !ident_at(t, i, "unsafe") || file.in_test(i) {
            continue;
        }
        let line = t[i].line;
        let in_gated = gated.iter().any(|&(lo, hi)| lo < i && i < hi);
        let contained = match ctx.unsafe_policy {
            UnsafePolicy::Forbidden => false,
            UnsafePolicy::GatedModule(_) => in_gated || allow_attr_before(file, i),
        };
        if !contained {
            push(
                diags,
                file,
                line,
                "U001",
                "`unsafe` outside the simd-gated AVX2 module (containment: keep unsafe in the \
                 allowlisted kernel module or an `#[allow(unsafe_code)]` dispatch site)"
                    .to_string(),
            );
        }
        if !file.safety_documented(line) {
            push(
                diags,
                file,
                line,
                "U002",
                "`unsafe` without a safety contract — add `// SAFETY: …` above the block or a \
                 `# Safety` doc section on the fn"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------- D101

const ENTROPY_IDENTS: [&str; 3] = ["thread_rng", "from_entropy", "OsRng"];

fn rule_d101(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for (i, t) in file.toks.iter().enumerate() {
        if t.kind == TokKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            // No escape hatch: entropy-seeded RNG breaks golden
            // reproducibility everywhere, tests included.
            let _ = i;
            push(
                diags,
                file,
                t.line,
                "D101",
                format!(
                    "entropy-seeded RNG (`{}`) — derive RNGs from an explicit seed instead",
                    t.text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- D102

fn rule_d102(file: &SourceFile, ctx: &FileContext, diags: &mut Vec<Diagnostic>) {
    let t = &file.toks;
    for i in 0..t.len() {
        if file.in_test(i) {
            continue;
        }
        if ident_at(t, i, "SystemTime") {
            push(
                diags,
                file,
                t[i].line,
                "D102",
                "`SystemTime` in a result-producing crate — wall-clock time must never reach a \
                 mapping decision"
                    .to_string(),
            );
        }
        if ident_at(t, i, "Instant")
            && punct_at(t, i + 1, ':')
            && punct_at(t, i + 2, ':')
            && ident_at(t, i + 3, "now")
            && !ctx.timing_allowed
            && !file.annotated(t[i].line, "timing-ok")
        {
            push(
                diags,
                file,
                t[i].line,
                "D102",
                "`Instant::now()` in a result-producing crate — allowed only in stats/bench \
                 paths; annotate `// lint: timing-ok — <why it cannot affect results>`"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------- D103

const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Identifiers bound to `HashMap`/`HashSet` in this file: `name: HashMap`
/// type ascriptions (lets, params, struct fields) and
/// `let name = HashMap::…` initializers.
fn hash_bound_names(file: &SourceFile) -> BTreeSet<String> {
    let t = &file.toks;
    let is_hash = |i: usize| ident_at(t, i, "HashMap") || ident_at(t, i, "HashSet");
    let mut names = BTreeSet::new();
    for i in 0..t.len() {
        // `name : [& mut std::collections::] HashMap<…>`
        if any_ident_at(t, i) && punct_at(t, i + 1, ':') && !punct_at(t, i + 2, ':') {
            let mut j = i + 2;
            let mut hops = 0;
            while hops < 8 {
                if is_hash(j) {
                    names.insert(t[i].text.clone());
                    break;
                }
                let skippable = punct_at(t, j, '&')
                    || punct_at(t, j, ':')
                    || ident_at(t, j, "mut")
                    || ident_at(t, j, "std")
                    || ident_at(t, j, "collections")
                    || t.get(j).is_some_and(|x| x.kind == TokKind::Lifetime);
                if !skippable {
                    break;
                }
                j += 1;
                hops += 1;
            }
        }
        // `let [mut] name = [std::collections::] HashMap::new/default/with_capacity`
        if ident_at(t, i, "let") {
            let mut j = i + 1;
            if ident_at(t, j, "mut") {
                j += 1;
            }
            if any_ident_at(t, j) && punct_at(t, j + 1, '=') {
                let mut k = j + 2;
                let mut hops = 0;
                while hops < 6 && !is_hash(k) {
                    let skippable = punct_at(t, k, ':')
                        || ident_at(t, k, "std")
                        || ident_at(t, k, "collections");
                    if !skippable {
                        break;
                    }
                    k += 1;
                    hops += 1;
                }
                if is_hash(k) {
                    names.insert(t[j].text.clone());
                }
            }
        }
    }
    names
}

fn rule_d103(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let names = hash_bound_names(file);
    if names.is_empty() {
        return;
    }
    let t = &file.toks;
    let flag = |file: &SourceFile, line: u32, what: &str, diags: &mut Vec<Diagnostic>| {
        if !file.annotated(line, "order-insensitive") {
            push(
                diags,
                file,
                line,
                "D103",
                format!(
                    "direct iteration over hash collection `{what}` — iteration order is \
                     unspecified; sort first, use a BTree collection, or annotate \
                     `// lint: order-insensitive — <why order cannot change the result>`"
                ),
            );
        }
    };
    for i in 0..t.len() {
        if file.in_test(i) {
            continue;
        }
        // `name.iter()` / `name.keys()` / …
        if any_ident_at(t, i)
            && names.contains(&t[i].text)
            && punct_at(t, i + 1, '.')
            && t.get(i + 2).is_some_and(|x| {
                x.kind == TokKind::Ident && HASH_ITER_METHODS.contains(&x.text.as_str())
            })
            && punct_at(t, i + 3, '(')
        {
            flag(file, t[i].line, &t[i].text, diags);
        }
        // `for pat in [&[mut]] name {`
        if ident_at(t, i, "for") {
            let limit = (i + 1..t.len().min(i + 14)).find(|&j| ident_at(t, j, "in"));
            if let Some(j) = limit {
                let mut k = j + 1;
                while punct_at(t, k, '&') || ident_at(t, k, "mut") {
                    k += 1;
                }
                if any_ident_at(t, k) && names.contains(&t[k].text) && punct_at(t, k + 1, '{') {
                    flag(file, t[k].line, &t[k].text, diags);
                }
            }
        }
    }
}

// --------------------------------------------------------- P201 – P204

const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

fn rules_panic(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let t = &file.toks;
    for i in 0..t.len() {
        if file.in_test(i) {
            continue;
        }
        let line = t.get(i).map_or(0, |x| x.line);
        // P201: `.unwrap()`
        if punct_at(t, i, '.')
            && ident_at(t, i + 1, "unwrap")
            && punct_at(t, i + 2, '(')
            && punct_at(t, i + 3, ')')
            && !file.annotated(t[i + 1].line, "panic-ok")
        {
            push(
                diags,
                file,
                t[i + 1].line,
                "P201",
                "`.unwrap()` on a public path — return a typed error, use a justified \
                 `.expect(\"invariant …\")`, or annotate `// lint: panic-ok — <reason>`"
                    .to_string(),
            );
        }
        // P202: panic!/todo!/unimplemented!
        if t.get(i)
            .is_some_and(|x| x.kind == TokKind::Ident && PANIC_MACROS.contains(&x.text.as_str()))
            && punct_at(t, i + 1, '!')
            && !file.annotated(line, "panic-ok")
        {
            push(
                diags,
                file,
                line,
                "P202",
                format!(
                    "`{}!` on a public path — return a typed error or annotate \
                     `// lint: panic-ok — <documented contract>`",
                    t[i].text
                ),
            );
        }
        // P203: `.expect(` must take a non-empty string literal.
        if punct_at(t, i, '.') && ident_at(t, i + 1, "expect") && punct_at(t, i + 2, '(') {
            let arg_ok = t
                .get(i + 3)
                .is_some_and(|x| matches!(x.kind, TokKind::Str { empty: false }));
            if !arg_ok && !file.annotated(t[i + 1].line, "panic-ok") {
                push(
                    diags,
                    file,
                    t[i + 1].line,
                    "P203",
                    "`.expect(…)` without a non-empty string-literal invariant message".to_string(),
                );
            }
        }
        // P204: indexing by integer literal, `expr[0]`.
        if punct_at(t, i, '[')
            && t.get(i + 1).is_some_and(|x| x.kind == TokKind::Int)
            && punct_at(t, i + 2, ']')
            && i >= 1
            && (any_ident_at(t, i - 1) || punct_at(t, i - 1, ')') || punct_at(t, i - 1, ']'))
            && !file.annotated(t[i + 1].line, "index-ok")
        {
            push(
                diags,
                file,
                t[i + 1].line,
                "P204",
                format!(
                    "indexing by literal `[{}]` — prefer `.first()`/`.get({})` or annotate \
                     `// lint: index-ok — <why it cannot be out of bounds>`",
                    t[i + 1].text,
                    t[i + 1].text
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- F301

/// `(feature-name, negated, line)` occurrences in `cfg` attributes.
fn cfg_feature_occurrences(file: &SourceFile) -> Vec<(String, bool, u32, usize)> {
    let t = &file.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if punct_at(t, i, '#') {
            let open = i + 1 + usize::from(punct_at(t, i + 1, '!'));
            if punct_at(t, open, '[') {
                if let Some(close) = matching_delim(t, open, '[', ']') {
                    let body = &t[open + 1..close];
                    // `cfg(...)` only — `cfg_attr` carries its own fallback
                    // semantics and the serde hooks legitimately have none.
                    if body.first().is_some_and(|x| x.is_ident("cfg"))
                        && !body.iter().any(|x| x.is_ident("test"))
                    {
                        let mut paren_not: Vec<bool> = Vec::new();
                        let mut prev_not = false;
                        for (bi, b) in body.iter().enumerate() {
                            if b.is_punct('(') {
                                paren_not.push(prev_not);
                            } else if b.is_punct(')') {
                                paren_not.pop();
                            } else if b.is_ident("feature")
                                && body.get(bi + 1).is_some_and(|x| x.is_punct('='))
                            {
                                if let Some(name) = body.get(bi + 2) {
                                    if matches!(name.kind, TokKind::Str { .. }) {
                                        let negated = paren_not.iter().any(|&n| n);
                                        out.push((name.text.clone(), negated, b.line, i));
                                    }
                                }
                            }
                            prev_not = b.is_ident("not");
                        }
                    }
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

fn rule_f301(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let occ = cfg_feature_occurrences(file);
    let negatives: BTreeSet<&str> = occ
        .iter()
        .filter(|(_, neg, _, _)| *neg)
        .map(|(f, _, _, _)| f.as_str())
        .collect();
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for (feature, negated, line, tok_idx) in &occ {
        if *negated || negatives.contains(feature.as_str()) || reported.contains(feature.as_str()) {
            continue;
        }
        if file.in_test(*tok_idx) || file.annotated(*line, "cfg-fallback") {
            continue;
        }
        reported.insert(feature.as_str());
        push(
            diags,
            file,
            *line,
            "F301",
            format!(
                "`cfg(feature = \"{feature}\")` has no `cfg(not(… feature = \"{feature}\" …))` \
                 fallback in this file — gated items need a reachable non-feature path, or \
                 annotate `// lint: cfg-fallback — <where the fallback lives>`"
            ),
        );
    }
}

// ---------------------------------------------------------------- F302

fn rule_f302(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let t = &file.toks;
    let mut detected: BTreeSet<String> = BTreeSet::new();
    for i in 0..t.len() {
        if ident_at(t, i, "is_x86_feature_detected") && punct_at(t, i + 1, '!') {
            if let Some(s) = t.get(i + 3) {
                if matches!(s.kind, TokKind::Str { .. }) {
                    detected.insert(s.text.clone());
                }
            }
        }
    }
    for i in 0..t.len() {
        if ident_at(t, i, "target_feature")
            && punct_at(t, i + 1, '(')
            && ident_at(t, i + 2, "enable")
            && punct_at(t, i + 3, '=')
        {
            if let Some(list) = t.get(i + 4) {
                if matches!(list.kind, TokKind::Str { .. }) {
                    for feature in list
                        .text
                        .split(',')
                        .map(str::trim)
                        .filter(|f| !f.is_empty())
                    {
                        if !detected.contains(feature) {
                            push(
                                diags,
                                file,
                                list.line,
                                "F302",
                                format!(
                                    "`target_feature(enable = \"…{feature}…\")` but no \
                                     `is_x86_feature_detected!(\"{feature}\")` in this file — \
                                     every enabled feature bit must be runtime-verified \
                                     (independent CPUID bits; the PR 5 AVX2/POPCNT bug class)"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

// --------------------------------------------------------- C401 / C402

fn rules_concurrency(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let t = &file.toks;
    for i in 0..t.len() {
        if file.in_test(i) {
            continue;
        }
        if ident_at(t, i, "static") && ident_at(t, i + 1, "mut") {
            push(
                diags,
                file,
                t[i].line,
                "C401",
                "`static mut` — use an atomic or a lock; there is no annotation escape".to_string(),
            );
        }
        if ident_at(t, i, "Relaxed")
            && i >= 1
            && punct_at(t, i - 1, ':')
            && !file.annotated(t[i].line, "relaxed-ok")
        {
            push(
                diags,
                file,
                t[i].line,
                "C402",
                "`Ordering::Relaxed` without justification — annotate \
                 `// lint: relaxed-ok — <why no ordering is needed>` or use a stronger ordering"
                    .to_string(),
            );
        }
    }
}

/// Groups diagnostics by `(rule, file)` — the granularity baseline
/// entries suppress at.
#[must_use]
pub fn group_counts(diags: &[Diagnostic]) -> BTreeMap<(String, String), usize> {
    let mut map = BTreeMap::new();
    for d in diags {
        *map.entry((d.rule.to_string(), d.file.clone())).or_insert(0) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strict(src: &str) -> Vec<Diagnostic> {
        check_source("fixture.rs", src, &FileContext::strict())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    const ROOT: &str = "#![deny(unsafe_code)]\n";

    #[test]
    fn u003_missing_and_present() {
        assert!(rules_of(&strict("pub fn f() {}")).contains(&"U003"));
        assert!(!rules_of(&strict("#![forbid(unsafe_code)]\npub fn f() {}")).contains(&"U003"));
    }

    #[test]
    fn unwrap_flagged_unless_annotated_or_test() {
        let bad = format!("{ROOT}pub fn f(x: Option<u32>) -> u32 {{ x.unwrap() }}");
        assert!(rules_of(&strict(&bad)).contains(&"P201"));
        let annotated = format!(
            "{ROOT}pub fn f(x: Option<u32>) -> u32 {{\n    // lint: panic-ok — validated by caller.\n    x.unwrap()\n}}"
        );
        assert!(!rules_of(&strict(&annotated)).contains(&"P201"));
        let test = format!("{ROOT}#[cfg(test)]\nmod tests {{\n    fn f() {{ x.unwrap(); }}\n}}");
        assert!(!rules_of(&strict(&test)).contains(&"P201"));
    }

    #[test]
    fn expect_needs_a_message() {
        let bad = format!("{ROOT}pub fn f(x: Option<u32>) -> u32 {{ x.expect(\"\") }}");
        assert!(rules_of(&strict(&bad)).contains(&"P203"));
        let good = format!("{ROOT}pub fn f(x: Option<u32>) -> u32 {{ x.expect(\"set above\") }}");
        assert!(!rules_of(&strict(&good)).contains(&"P203"));
    }

    #[test]
    fn literal_index_vs_vec_macro_and_array_literal() {
        let bad = format!("{ROOT}pub fn f(xs: &[u32]) -> u32 {{ xs[0] }}");
        assert!(rules_of(&strict(&bad)).contains(&"P204"));
        let fine = format!("{ROOT}pub fn f() -> Vec<u32> {{ vec![0] }}");
        assert!(!rules_of(&strict(&fine)).contains(&"P204"));
        let arr = format!("{ROOT}pub fn f() -> [u64; 2] {{ [0, 1] }}");
        assert!(!rules_of(&strict(&arr)).contains(&"P204"));
    }

    #[test]
    fn hash_iteration_tracked_through_bindings() {
        let bad = format!(
            "{ROOT}use std::collections::HashMap;\npub fn f(votes: &HashMap<u32, u32>) -> u32 {{\n    votes.values().sum()\n}}"
        );
        assert!(rules_of(&strict(&bad)).contains(&"D103"));
        let bad_for = format!(
            "{ROOT}use std::collections::HashMap;\npub fn f() {{\n    let m = HashMap::new();\n    for (k, v) in &m {{ }}\n}}"
        );
        assert!(rules_of(&strict(&bad_for)).contains(&"D103"));
        // Lookup (not iteration) is fine; Vec iteration is fine.
        let fine = format!(
            "{ROOT}use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>, xs: &[u32]) -> u32 {{\n    xs.iter().sum::<u32>() + m.get(&0).copied().unwrap_or(0)\n}}"
        );
        assert!(!rules_of(&strict(&fine)).contains(&"D103"));
    }

    #[test]
    fn relaxed_needs_annotation() {
        let bad = format!("{ROOT}pub fn f(c: &AtomicU64) {{ c.fetch_add(1, Ordering::Relaxed); }}");
        assert!(rules_of(&strict(&bad)).contains(&"C402"));
        let good = format!(
            "{ROOT}pub fn f(c: &AtomicU64) {{ c.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok — pure counter\n}}"
        );
        assert!(!rules_of(&strict(&good)).contains(&"C402"));
    }

    #[test]
    fn target_feature_must_match_detection() {
        let bad = format!(
            "{ROOT}#[cfg(all(feature = \"simd\", target_arch = \"x86_64\"))]\n#[allow(unsafe_code)]\nmod avx2 {{\n    /// # Safety\n    /// AVX2 verified.\n    #[target_feature(enable = \"avx2,popcnt\")]\n    pub unsafe fn f() {{}}\n}}\n#[cfg(not(all(feature = \"simd\", target_arch = \"x86_64\")))]\npub fn f() {{}}\nfn ok() -> bool {{ is_x86_feature_detected!(\"avx2\") }}"
        );
        let rules = rules_of(&strict(&bad));
        assert!(rules.contains(&"F302"), "{rules:?}");
        assert!(!rules.contains(&"U001"), "{rules:?}");
    }

    #[test]
    fn cfg_feature_without_fallback_flagged_once() {
        let bad = format!(
            "{ROOT}#[cfg(feature = \"turbo\")]\npub fn fast() {{}}\n#[cfg(feature = \"turbo\")]\npub fn fast2() {{}}"
        );
        let rules = rules_of(&strict(&bad));
        assert_eq!(rules.iter().filter(|r| **r == "F301").count(), 1);
        let good = format!(
            "{ROOT}#[cfg(feature = \"turbo\")]\npub fn fast() {{}}\n#[cfg(not(feature = \"turbo\"))]\npub fn fast() {{}}"
        );
        assert!(!rules_of(&strict(&good)).contains(&"F301"));
    }

    #[test]
    fn entropy_rng_and_wall_clock_flagged() {
        let rng = format!("{ROOT}pub fn f() {{ let mut r = rand::thread_rng(); }}");
        assert!(rules_of(&strict(&rng)).contains(&"D101"));
        let clock = format!("{ROOT}pub fn f() {{ let t = std::time::SystemTime::now(); }}");
        assert!(rules_of(&strict(&clock)).contains(&"D102"));
        let instant = format!(
            "{ROOT}pub fn f() {{ let t = Instant::now(); // lint: timing-ok — stats only\n}}"
        );
        assert!(!rules_of(&strict(&instant)).contains(&"D102"));
    }
}
