//! CLI for the workspace invariant analyzer.
//!
//! ```text
//! cargo run -p asmcap-lint                        # lint the workspace, text output
//! cargo run -p asmcap-lint -- --format json      # machine-readable report (CI artifact)
//! cargo run -p asmcap-lint -- --out report.json --format json
//! cargo run -p asmcap-lint -- --check-fixtures   # bad fixtures must flag, good must pass
//! cargo run -p asmcap-lint -- path/to/file.rs    # strict-context lint of ad-hoc files
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or fixture mismatch), 2 usage/IO
//! error.

#![deny(unsafe_code)]

use asmcap_lint::{
    check_source, find_root, load_baseline, run_workspace, FileContext, Report, RULE_IDS,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    format_json: bool,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    out: Option<PathBuf>,
    check_fixtures: bool,
    list_rules: bool,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: asmcap-lint [--root DIR] [--format text|json] [--baseline PATH | --no-baseline]\n\
     \x20                 [--out PATH] [--check-fixtures] [--list-rules] [FILE.rs ...]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format_json: false,
        baseline: None,
        no_baseline: false,
        out: None,
        check_fixtures: false,
        list_rules: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = Some(PathBuf::from(it.next().ok_or("--root needs a DIR")?)),
            "--format" => match it.next().as_deref() {
                Some("json") => args.format_json = true,
                Some("text") => args.format_json = false,
                _ => return Err("--format needs `text` or `json`".to_string()),
            },
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a PATH")?));
            }
            "--no-baseline" => args.no_baseline = true,
            "--out" => args.out = Some(PathBuf::from(it.next().ok_or("--out needs a PATH")?)),
            "--check-fixtures" => args.check_fixtures = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for id in RULE_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if args.check_fixtures {
        return check_fixtures();
    }
    if !args.files.is_empty() {
        return lint_files(&args.files);
    }
    lint_workspace(&args)
}

fn resolve_root(args: &Args) -> Result<PathBuf, String> {
    if let Some(root) = &args.root {
        return Ok(root.clone());
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    find_root(&cwd)
        .or_else(|| {
            // Fallback for runs outside the tree: the compile-time
            // manifest location (crates/lint → two levels up).
            let baked = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
            baked.canonicalize().ok()
        })
        .ok_or_else(|| "cannot locate the workspace root; pass --root".to_string())
}

fn lint_workspace(args: &Args) -> ExitCode {
    let run = || -> Result<Report, String> {
        let root = resolve_root(args)?;
        let entries = if args.no_baseline {
            Vec::new()
        } else {
            let path = args
                .baseline
                .clone()
                .unwrap_or_else(|| root.join("lint-baseline.toml"));
            load_baseline(&path)?
        };
        run_workspace(&root, &entries)
    };
    match run() {
        Ok(report) => {
            let rendered = if args.format_json {
                report.to_json()
            } else {
                report.to_text()
            };
            if let Some(out) = &args.out {
                if let Err(e) = std::fs::write(out, &rendered) {
                    eprintln!("writing {}: {e}", out.display());
                    return ExitCode::from(2);
                }
            }
            print!("{rendered}");
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

/// Lints ad-hoc files under the strict (fixture) context: every rule
/// family on, no baseline.
fn lint_files(files: &[PathBuf]) -> ExitCode {
    let mut any = false;
    for path in files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        for d in check_source(&path.display().to_string(), &src, &FileContext::strict()) {
            println!("{}:{}: {}: {}", d.file, d.line, d.rule, d.message);
            any = true;
        }
    }
    if any {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs the fixture matrix: every `fixtures/bad/<rule>_*.rs` must flag
/// its rule (named by the filename prefix), every `fixtures/good/*.rs`
/// must lint clean.
fn check_fixtures() -> ExitCode {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut failures = 0usize;
    let mut checked = 0usize;
    for (sub, want_bad) in [("bad", true), ("good", false)] {
        let sub_dir = dir.join(sub);
        let mut entries: Vec<PathBuf> = match std::fs::read_dir(&sub_dir) {
            Ok(rd) => rd.filter_map(Result::ok).map(|e| e.path()).collect(),
            Err(e) => {
                eprintln!("listing {}: {e}", sub_dir.display());
                return ExitCode::from(2);
            }
        };
        entries.sort();
        for path in entries {
            if path.extension().is_none_or(|e| e != "rs") {
                continue;
            }
            checked += 1;
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().to_string())
                .unwrap_or_default();
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("reading {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let diags = check_source(&name, &src, &FileContext::strict());
            if want_bad {
                let rule = name
                    .split('_')
                    .next()
                    .unwrap_or_default()
                    .to_ascii_uppercase();
                if !RULE_IDS.contains(&rule.as_str()) {
                    eprintln!("FAIL {sub}/{name}: prefix `{rule}` is not a rule ID");
                    failures += 1;
                } else if diags.iter().any(|d| d.rule == rule) {
                    println!("ok   {sub}/{name} flags {rule}");
                } else {
                    eprintln!(
                        "FAIL {sub}/{name}: expected {rule}, got {:?}",
                        diags.iter().map(|d| d.rule).collect::<Vec<_>>()
                    );
                    failures += 1;
                }
            } else if diags.is_empty() {
                println!("ok   {sub}/{name} is clean");
            } else {
                eprintln!("FAIL {sub}/{name}: expected clean, got:");
                for d in &diags {
                    eprintln!("  {}:{}: {}: {}", d.file, d.line, d.rule, d.message);
                }
                failures += 1;
            }
        }
    }
    println!("{checked} fixtures checked, {failures} failure(s)");
    if failures == 0 && checked > 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
