//! Per-file source model the rules run against.
//!
//! Wraps the raw token stream with the structure every rule needs:
//! which token ranges are test code (`#[cfg(test)]` modules, `#[test]`
//! functions), which lines carry comments, and whether a site carries a
//! `// lint: <key> — <reason>` annotation (the documented escape
//! hatches; see the crate docs for the key table).

use crate::lexer::{lex, Comment, Tok, TokKind};
use std::collections::BTreeMap;

/// A lexed source file plus the derived structure rules query.
pub struct SourceFile {
    /// Workspace-relative path (forward slashes), used in diagnostics.
    pub path: String,
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// Token index ranges (inclusive) covering test-only code.
    test_spans: Vec<(usize, usize)>,
    /// Lines that contain at least one code token.
    code_lines: BTreeMap<u32, FirstTok>,
}

/// What the first code token on a line is (attribute detection).
#[derive(Clone, Copy)]
struct FirstTok {
    is_hash: bool,
}

impl SourceFile {
    /// Lexes `src` and computes the derived structure.
    #[must_use]
    pub fn parse(path: &str, src: &str) -> Self {
        let lexed = lex(src);
        let mut code_lines: BTreeMap<u32, FirstTok> = BTreeMap::new();
        for t in &lexed.toks {
            code_lines.entry(t.line).or_insert(FirstTok {
                is_hash: t.is_punct('#'),
            });
        }
        let test_spans = compute_test_spans(&lexed.toks);
        SourceFile {
            path: path.to_string(),
            toks: lexed.toks,
            comments: lexed.comments,
            test_spans,
            code_lines,
        }
    }

    /// Whether token `i` lies inside test-only code.
    #[must_use]
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(lo, hi)| lo <= i && i <= hi)
    }

    /// All comment text overlapping `line`, concatenated.
    #[must_use]
    pub fn comment_on(&self, line: u32) -> Option<String> {
        let mut joined = String::new();
        for c in &self.comments {
            if c.line <= line && line <= c.end_line {
                joined.push_str(&c.text);
                joined.push('\n');
            }
        }
        if joined.is_empty() {
            None
        } else {
            Some(joined)
        }
    }

    fn line_has_code(&self, line: u32) -> bool {
        self.code_lines.contains_key(&line)
    }

    fn line_is_attr(&self, line: u32) -> bool {
        self.code_lines.get(&line).is_some_and(|f| f.is_hash)
    }

    /// Whether the site at `line` carries a `lint: <key>` annotation with a
    /// non-empty reason — on the same line, or on the contiguous block of
    /// comment/attribute lines directly above it.
    #[must_use]
    pub fn annotated(&self, line: u32, key: &str) -> bool {
        if self
            .comment_on(line)
            .is_some_and(|t| annotation_with_reason(&t, key))
        {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let comment = self.comment_on(l);
            if let Some(text) = &comment {
                if annotation_with_reason(text, key) {
                    return true;
                }
            }
            let continues = (comment.is_some() && !self.line_has_code(l)) || self.line_is_attr(l);
            if !continues {
                return false;
            }
        }
        false
    }

    /// Whether the contiguous doc/attribute/comment block ending directly
    /// above `line` (or `line` itself) mentions a safety contract —
    /// `// SAFETY:` before an `unsafe` block, or a `# Safety` doc section
    /// on an `unsafe fn`.
    #[must_use]
    pub fn safety_documented(&self, line: u32) -> bool {
        let mentions = |t: &str| t.contains("SAFETY") || t.contains("Safety");
        if self.comment_on(line).is_some_and(|t| mentions(&t)) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let comment = self.comment_on(l);
            if let Some(text) = &comment {
                if mentions(text) {
                    return true;
                }
            }
            let continues = (comment.is_some() && !self.line_has_code(l)) || self.line_is_attr(l);
            if !continues {
                return false;
            }
        }
        false
    }
}

/// `lint: <key>` with at least one alphanumeric character of reason after
/// the key — an annotation without a why does not count.
fn annotation_with_reason(text: &str, key: &str) -> bool {
    let mut rest = text;
    while let Some(pos) = rest.find("lint:") {
        let after = rest[pos + 5..].trim_start();
        if let Some(tail) = after.strip_prefix(key) {
            // The next char must end the key (so `panic-ok` does not match
            // a hypothetical `panic-okay` key), then a reason must follow.
            let sep_ok = tail
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '-');
            if sep_ok && tail.chars().any(char::is_alphanumeric) {
                return true;
            }
        }
        rest = &rest[pos + 5..];
    }
    false
}

/// Finds `#[cfg(test)]`- and `#[test]`-marked items and returns the token
/// ranges their bodies cover (through the matching close brace, or the
/// terminating semicolon for braceless items).
fn compute_test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            if let Some(close) = matching(toks, i + 1, '[', ']') {
                if attr_marks_test(&toks[i + 2..close]) {
                    if let Some(end) = item_end(toks, close + 1) {
                        spans.push((i, end));
                        i = end + 1;
                        continue;
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Whether an attribute body (tokens between `[` and `]`) marks test-only
/// code: `test` / `bench` alone, or `cfg(...)` containing `test` outside
/// any `not(...)`.
fn attr_marks_test(attr: &[Tok]) -> bool {
    match attr.first() {
        Some(t) if t.is_ident("test") || t.is_ident("bench") => true,
        Some(t) if t.is_ident("cfg") => {
            let mut not_depth = 0usize;
            let mut paren_not: Vec<bool> = Vec::new();
            let mut prev_ident_not = false;
            for t in &attr[1..] {
                if t.is_punct('(') {
                    paren_not.push(prev_ident_not);
                    if prev_ident_not {
                        not_depth += 1;
                    }
                } else if t.is_punct(')') {
                    if paren_not.pop() == Some(true) {
                        not_depth -= 1;
                    }
                } else if t.is_ident("test") && not_depth == 0 {
                    return true;
                }
                prev_ident_not = t.is_ident("not");
            }
            false
        }
        _ => false,
    }
}

/// Token index of the end of the item starting at `start`: skips further
/// attributes, then runs to the matching `}` of the first `{` (or to the
/// first `;` met before any `{`).
fn item_end(toks: &[Tok], start: usize) -> Option<usize> {
    let mut i = start;
    // Skip stacked attributes between the test marker and the item.
    while i < toks.len() && toks[i].is_punct('#') {
        let open = i + usize::from(toks.get(i + 1).is_some_and(|t| t.is_punct('!')));
        i = matching(toks, open + 1, '[', ']')? + 1;
    }
    while i < toks.len() {
        if toks[i].is_punct(';') {
            return Some(i);
        }
        if toks[i].is_punct('{') {
            return matching(toks, i, '{', '}');
        }
        i += 1;
    }
    None
}

/// Index of the delimiter matching `toks[open]` (which must be `open_c`).
fn matching(toks: &[Tok], open: usize, open_c: char, close_c: char) -> Option<usize> {
    if !toks.get(open)?.is_punct(open_c) {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Public wrapper for the rules: index of the matching close delimiter.
#[must_use]
pub fn matching_delim(toks: &[Tok], open: usize, open_c: char, close_c: char) -> Option<usize> {
    matching(toks, open, open_c, close_c)
}

/// Convenience: whether `toks[i]` exists and is a given ident.
#[must_use]
pub fn ident_at(toks: &[Tok], i: usize, name: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_ident(name))
}

/// Convenience: whether `toks[i]` exists and is a given punct.
#[must_use]
pub fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

/// Convenience: whether `toks[i]` is any identifier.
#[must_use]
pub fn any_ident_at(toks: &[Tok], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_a_test_span() {
        let src = "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}";
        let f = SourceFile::parse("x.rs", src);
        let helper = f
            .toks
            .iter()
            .position(|t| t.is_ident("helper"))
            .expect("helper token");
        let real = f
            .toks
            .iter()
            .position(|t| t.is_ident("real"))
            .expect("real token");
        assert!(f.in_test(helper));
        assert!(!f.in_test(real));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(not(test))]\nfn shipped() {}";
        let f = SourceFile::parse("x.rs", src);
        let i = f
            .toks
            .iter()
            .position(|t| t.is_ident("shipped"))
            .expect("token");
        assert!(!f.in_test(i));
    }

    #[test]
    fn test_attr_with_stacked_attrs_spans_the_fn() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn blows() { inner(); }";
        let f = SourceFile::parse("x.rs", src);
        let i = f
            .toks
            .iter()
            .position(|t| t.is_ident("inner"))
            .expect("token");
        assert!(f.in_test(i));
    }

    #[test]
    fn annotations_need_a_reason() {
        let with = SourceFile::parse("x.rs", "let x = 1; // lint: relaxed-ok — pure counter\n");
        assert!(with.annotated(1, "relaxed-ok"));
        let without = SourceFile::parse("x.rs", "let x = 1; // lint: relaxed-ok\n");
        assert!(!without.annotated(1, "relaxed-ok"));
        let wrong_key = SourceFile::parse("x.rs", "let x = 1; // lint: panic-ok — reason\n");
        assert!(!wrong_key.annotated(1, "relaxed-ok"));
    }

    #[test]
    fn annotation_found_through_comment_block_above() {
        let src = "// lint: order-insensitive — summation is commutative.\n// more words.\nlet t: u64 = m.values().sum();";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.annotated(3, "order-insensitive"));
    }

    #[test]
    fn annotation_blocked_by_intervening_code() {
        let src = "// lint: panic-ok — reason\nlet a = 1;\nlet b = x.unwrap();";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.annotated(3, "panic-ok"));
    }

    #[test]
    fn safety_seen_through_attributes_and_docs() {
        let src = "/// Reads a word.\n///\n/// # Safety\n///\n/// Caller checked AVX2.\n#[inline]\n#[target_feature(enable = \"avx2\")]\nunsafe fn loadu() {}";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.safety_documented(8));
    }
}
