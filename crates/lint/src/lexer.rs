//! A small hand-rolled Rust tokenizer.
//!
//! Produces exactly what the invariant rules need and nothing more: a
//! stream of code tokens (identifiers, literals, single-character
//! punctuation) with 1-based line numbers, plus a side list of comments
//! (the rules read `// SAFETY:` and `// lint: <key> — <reason>`
//! annotations out of them). String/char literals are consumed whole so
//! their contents can never masquerade as code — `"thread_rng"` inside a
//! diagnostic message does not trip the RNG rule.
//!
//! It is *not* a general-purpose lexer: floats may split into several
//! tokens and multi-character operators arrive as single punctuation
//! characters. The rules only ever match short token sequences, so that
//! coarseness is harmless.

/// What kind of code token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `fn`, …).
    Ident,
    /// Integer-ish literal (`0`, `0x55`, `4u64`; float parts may split).
    Int,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str {
        /// Whether the literal's content is empty (`""`).
        empty: bool,
    },
    /// Character or byte-character literal (`'a'`, `b'>'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// One punctuation character (`.`, `#`, `[`, `:`, …).
    Punct,
}

/// One code token with its source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// Token text. For [`TokKind::Str`] this is the literal's *content*
    /// (delimiters and raw-string hashes stripped); for punctuation it is
    /// the single character.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment (line or block), with the line span it covers.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based first line of the comment.
    pub line: u32,
    /// 1-based last line (equals `line` for `//` comments).
    pub end_line: u32,
    /// Comment text including its delimiters.
    pub text: String,
}

/// Tokenizer output: code tokens plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Never fails: unrecognized bytes become punctuation,
/// and unterminated literals run to end of file (the rules degrade
/// gracefully on such input, and rustc rejects it anyway).
#[must_use]
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit(line);
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(line),
                '\'' => self.quote(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if c == '_' || c.is_alphabetic() => self.ident(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// Whether the cursor sits on `r"…"`, `r#"…"#`, or `br#"…"#`.
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1;
        if self.peek(0) == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
        });
    }

    /// Consumes a `"…"` string (cursor on the opening quote).
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(escaped) = self.bump() {
                        content.push(escaped);
                    }
                }
                '"' => break,
                _ => content.push(c),
            }
        }
        let empty = content.is_empty();
        self.push(TokKind::Str { empty }, content, line);
    }

    /// Consumes `r#"…"#` / `br##"…"##` (cursor on the `r` or `b`).
    fn raw_string(&mut self, line: u32) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let closer: String = std::iter::once('"')
            .chain((0..hashes).map(|_| '#'))
            .collect();
        let mut content = String::new();
        while self.peek(0).is_some() {
            if self.rest_starts_with(&closer) {
                for _ in 0..closer.len() {
                    self.bump();
                }
                break;
            }
            if let Some(c) = self.bump() {
                content.push(c);
            }
        }
        let empty = content.is_empty();
        self.push(TokKind::Str { empty }, content, line);
    }

    fn rest_starts_with(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
    }

    /// Consumes `'a'`-style char literals (cursor on the quote).
    fn char_lit(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(escaped) = self.bump() {
                        content.push(escaped);
                    }
                }
                '\'' => break,
                _ => content.push(c),
            }
        }
        self.push(TokKind::Char, content, line);
    }

    /// Disambiguates `'x'` (char literal) from `'label` (lifetime).
    fn quote(&mut self, line: u32) {
        match (self.peek(1), self.peek(2)) {
            // 'x' — any single char closed by a quote.
            (Some(_), Some('\'')) => self.char_lit(line),
            // '\n', '\u{…}' — escape means char literal.
            (Some('\\'), _) => self.char_lit(line),
            // 'ident — a lifetime.
            (Some(c), _) if c == '_' || c.is_alphabetic() => {
                self.bump(); // quote
                let mut name = String::from("'");
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, name, line);
            }
            _ => self.char_lit(line),
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Int, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_do_not_leak_code_tokens() {
        let src = r#"let msg = "call thread_rng() now"; let re = r"unsafe \d+";"#;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert_eq!(ids, ["let", "msg", "let", "re"]);
    }

    #[test]
    fn raw_and_byte_literals_are_single_tokens() {
        let lexed = lex(r###"let a = r#"quote " inside"#; let b = b">"; let c = b'>';"###);
        let strs: Vec<&Tok> = lexed
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Str { .. } | TokKind::Char))
            .collect();
        assert_eq!(strs.len(), 3);
        assert_eq!(strs[0].text, "quote \" inside");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<&Tok> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn comments_carry_lines_and_nesting() {
        let src = "// SAFETY: ok\nlet x = 1; /* outer /* inner */ still */\nlet y = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("SAFETY"));
        assert!(lexed.comments[1].text.contains("inner"));
        assert_eq!(lexed.toks.iter().filter(|t| t.is_ident("let")).count(), 2);
    }

    #[test]
    fn empty_string_literal_is_marked_empty() {
        let lexed = lex(r#"x.expect(""); y.expect("msg");"#);
        let empties: Vec<bool> = lexed
            .toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Str { empty } => Some(empty),
                _ => None,
            })
            .collect();
        assert_eq!(empties, [true, false]);
    }

    #[test]
    fn lines_are_one_based_and_advance() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 3]);
    }
}
