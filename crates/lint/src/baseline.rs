//! The checked-in debt ledger: `lint-baseline.toml`.
//!
//! Pre-existing findings are not grandfathered invisibly — each lives in
//! an explicit `[[suppress]]` entry with a rule ID, file, count, and
//! reason. The count is a ceiling: findings beyond it fail the run, and
//! a count higher than what the workspace actually produces is reported
//! as a stale entry so the ledger can only shrink.
//!
//! The parser covers exactly the TOML subset the file uses (`[[suppress]]`
//! tables with string/integer keys) — hand-rolled because the container
//! has no crates.io access.

use crate::rules::{group_counts, Diagnostic};
use std::collections::BTreeMap;

/// One suppression: up to `count` findings of `rule` in `file` are known
/// debt and do not fail the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule ID (`P204`, …).
    pub rule: String,
    /// Workspace-relative file the debt lives in.
    pub file: String,
    /// Maximum findings covered — the debt ceiling.
    pub count: usize,
    /// Why the debt is tolerated (required).
    pub reason: String,
}

/// Parses the `[[suppress]]` entries of a baseline file.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input or on
/// entries missing `rule`/`file`/`count`/`reason`.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries: Vec<BTreeMap<String, String>> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[suppress]]" {
            entries.push(BTreeMap::new());
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {}: unsupported table `{line}` (only [[suppress]])",
                idx + 1
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`", idx + 1));
        };
        let Some(entry) = entries.last_mut() else {
            return Err(format!("line {}: key before any [[suppress]]", idx + 1));
        };
        entry.insert(key.trim().to_string(), parse_value(value.trim(), idx + 1)?);
    }
    entries
        .into_iter()
        .enumerate()
        .map(|(n, map)| {
            let get = |k: &str| {
                map.get(k)
                    .cloned()
                    .ok_or_else(|| format!("[[suppress]] entry {}: missing `{k}`", n + 1))
            };
            let count: usize = get("count")?
                .parse()
                .map_err(|_| format!("[[suppress]] entry {}: `count` is not an integer", n + 1))?;
            let reason = get("reason")?;
            if reason.trim().is_empty() {
                return Err(format!("[[suppress]] entry {}: empty `reason`", n + 1));
            }
            Ok(BaselineEntry {
                rule: get("rule")?,
                file: get("file")?,
                count,
                reason,
            })
        })
        .collect()
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str, line_no: usize) -> Result<String, String> {
    if let Some(stripped) = v.strip_prefix('"') {
        stripped
            .strip_suffix('"')
            .map(str::to_string)
            .ok_or_else(|| format!("line {line_no}: unterminated string"))
    } else if v.chars().all(|c| c.is_ascii_digit()) && !v.is_empty() {
        Ok(v.to_string())
    } else {
        Err(format!("line {line_no}: unsupported value `{v}`"))
    }
}

/// Result of filtering findings through the baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings not covered by any entry — these fail the run.
    pub fatal: Vec<Diagnostic>,
    /// Findings absorbed by entries, still listed for the report.
    pub suppressed: Vec<Diagnostic>,
    /// Stale-entry and shrunk-debt notices (non-fatal, but actionable).
    pub notes: Vec<String>,
}

/// Applies the baseline: findings within an entry's count are suppressed;
/// everything else is fatal. Entries covering fewer findings than their
/// count (or none at all) produce notes so the ledger gets tightened.
#[must_use]
pub fn apply(diags: Vec<Diagnostic>, entries: &[BaselineEntry]) -> BaselineOutcome {
    let counts = group_counts(&diags);
    let mut out = BaselineOutcome::default();
    for entry in entries {
        let observed = counts
            .get(&(entry.rule.clone(), entry.file.clone()))
            .copied()
            .unwrap_or(0);
        if observed == 0 {
            out.notes.push(format!(
                "stale baseline entry: {} in {} has no findings — delete it",
                entry.rule, entry.file
            ));
        } else if observed < entry.count {
            out.notes.push(format!(
                "baseline debt shrank: {} in {} is down to {observed} (ceiling {}) — lower the count",
                entry.rule, entry.file, entry.count
            ));
        }
    }
    for d in diags {
        let covered = entries.iter().any(|e| e.rule == d.rule && e.file == d.file);
        let within = covered
            && counts
                .get(&(d.rule.to_string(), d.file.clone()))
                .is_some_and(|&n| {
                    let ceiling = entries
                        .iter()
                        .filter(|e| e.rule == d.rule && e.file == d.file)
                        .map(|e| e.count)
                        .max()
                        .unwrap_or(0);
                    n <= ceiling
                });
        if within {
            out.suppressed.push(d);
        } else {
            out.fatal.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message: String::new(),
        }
    }

    const SAMPLE: &str = r#"
# Debt ledger.
[[suppress]]
rule = "P204"
file = "crates/core/src/mapper.rs"
count = 3
reason = "deprecated shim"  # trailing comment
"#;

    #[test]
    fn parses_entries_with_comments() {
        let entries = parse(SAMPLE).expect("parses");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "P204");
        assert_eq!(entries[0].count, 3);
        assert_eq!(entries[0].reason, "deprecated shim");
    }

    #[test]
    fn rejects_missing_reason_and_bad_lines() {
        assert!(parse("[[suppress]]\nrule = \"X\"\nfile = \"f\"\ncount = 1\n").is_err());
        assert!(parse("rule = \"X\"\n").is_err());
        assert!(parse("[[suppress]]\ncount = x\n").is_err());
    }

    #[test]
    fn within_ceiling_suppresses_beyond_fails() {
        let entries = parse(SAMPLE).expect("parses");
        let two = vec![
            diag("P204", "crates/core/src/mapper.rs", 10),
            diag("P204", "crates/core/src/mapper.rs", 20),
        ];
        let out = apply(two, &entries);
        assert!(out.fatal.is_empty());
        assert_eq!(out.suppressed.len(), 2);
        assert!(out.notes.iter().any(|n| n.contains("down to 2")));

        let four: Vec<Diagnostic> = (0..4)
            .map(|i| diag("P204", "crates/core/src/mapper.rs", i))
            .collect();
        let out = apply(four, &entries);
        assert_eq!(out.fatal.len(), 4, "exceeding the ceiling fails them all");
    }

    #[test]
    fn uncovered_rule_is_fatal_and_unused_entry_noted() {
        let entries = parse(SAMPLE).expect("parses");
        let out = apply(vec![diag("D103", "other.rs", 1)], &entries);
        assert_eq!(out.fatal.len(), 1);
        assert!(out.notes.iter().any(|n| n.contains("stale")));
    }
}
