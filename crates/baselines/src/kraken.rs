//! A Kraken2-style exact-matching classifier (paper §V-A).
//!
//! The paper normalises every F1 score by "the popular tool Kraken2 … as a
//! baseline" and later notes it is "Kraken with exact matching". Two modes
//! are provided:
//!
//! * [`KrakenMode::Exact`] — the whole read must match the segment exactly,
//!   which is the only interpretation consistent with the magnitude of the
//!   paper's normalised-F1 axis (ASMCap lands 4.5–7.7× above Kraken2);
//! * [`KrakenMode::KmerHit`] — Kraken2's actual mechanism (exact 35-mer
//!   hits with a confidence cutoff), provided for completeness and for the
//!   ablation benches.

use asmcap::{AsmMatcher, MatchOutcome};
use asmcap_genome::{Base, PackedSeq};
use std::collections::HashSet;

/// Decision rule of the classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KrakenMode {
    /// Read equals segment, base for base.
    Exact,
    /// At least `min_fraction` of the read's `k`-mers occur in the segment.
    KmerHit {
        /// `k`-mer length (Kraken2 default: 35).
        k: usize,
        /// Minimum hit fraction in `[0, 1]` (Kraken2 confidence; 0 means a
        /// single hit classifies).
        min_fraction: f64,
    },
}

impl KrakenMode {
    /// Kraken2's defaults for the k-mer mode: `k = 35`, confidence 0.
    #[must_use]
    pub fn kraken2_defaults() -> Self {
        KrakenMode::KmerHit {
            k: 35,
            min_fraction: 0.0,
        }
    }
}

/// The exact-matching classifier.
///
/// Note the threshold `T` plays no role in the decision — exact matching
/// has no notion of distance — which is exactly why its F1 collapses as `T`
/// grows and the ground-truth positive set widens.
///
/// # Examples
///
/// ```
/// use asmcap::AsmMatcher;
/// use asmcap_baselines::{KrakenClassifier, KrakenMode};
/// use asmcap_genome::DnaSeq;
///
/// let mut kraken = KrakenClassifier::new(KrakenMode::Exact);
/// let s: DnaSeq = "ACGTACGT".parse()?;
/// let r: DnaSeq = "ACGTACGA".parse()?;
/// assert!(kraken.matches(s.as_slice(), s.as_slice(), 0).matched);
/// assert!(!kraken.matches(s.as_slice(), r.as_slice(), 8).matched);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KrakenClassifier {
    mode: KrakenMode,
}

impl KrakenClassifier {
    /// Creates a classifier in the given mode.
    #[must_use]
    pub fn new(mode: KrakenMode) -> Self {
        Self { mode }
    }

    /// The active mode.
    #[must_use]
    pub fn mode(&self) -> KrakenMode {
        self.mode
    }

    fn kmer_hit_fraction(k: usize, segment: &[Base], read: &[Base]) -> f64 {
        if read.len() < k || segment.len() < k {
            return 0.0;
        }
        let segment_kmers: HashSet<&[Base]> = segment.windows(k).collect();
        let total = read.len() - k + 1;
        let hits = read
            .windows(k)
            .filter(|w| segment_kmers.contains(w))
            .count();
        hits as f64 / total as f64
    }
}

impl AsmMatcher for KrakenClassifier {
    fn matches(&mut self, segment: &[Base], read: &[Base], _threshold: usize) -> MatchOutcome {
        let matched = match self.mode {
            KrakenMode::Exact => segment == read,
            KrakenMode::KmerHit { k, min_fraction } => {
                let fraction = Self::kmer_hit_fraction(k, segment, read);
                if min_fraction == 0.0 {
                    fraction > 0.0
                } else {
                    fraction >= min_fraction
                }
            }
        };
        MatchOutcome::plain(matched)
    }

    fn matches_packed(
        &mut self,
        segment: &PackedSeq,
        read: &PackedSeq,
        threshold: usize,
    ) -> MatchOutcome {
        match self.mode {
            // Exact identity is a word compare on the packings — 32 bases
            // per comparison, no unpack.
            KrakenMode::Exact => MatchOutcome::plain(segment == read),
            // Kraken2's real k = 35 exceeds the 32-base packed-code limit,
            // so the k-mer mode keeps the byte-windowed scan.
            KrakenMode::KmerHit { .. } => self.matches(
                segment.to_seq().as_slice(),
                read.to_seq().as_slice(),
                threshold,
            ),
        }
    }

    fn name(&self) -> &str {
        match self.mode {
            KrakenMode::Exact => "Kraken2 (exact)",
            KrakenMode::KmerHit { .. } => "Kraken2 (k-mer)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, ReadSampler};

    #[test]
    fn exact_mode_requires_identity() {
        let mut kraken = KrakenClassifier::new(KrakenMode::Exact);
        let s = GenomeModel::uniform().generate(256, 1);
        assert!(kraken.matches(s.as_slice(), s.as_slice(), 0).matched);
        let mut bases = s.clone().into_bases();
        bases[0] = bases[0].substituted(0);
        let r = DnaSeq::from_bases(bases);
        assert!(!kraken.matches(s.as_slice(), r.as_slice(), 16).matched);
    }

    #[test]
    fn exact_mode_sensitivity_matches_error_free_probability() {
        // P(read error-free) in Condition A = (1 - 1.1%)^256 ≈ 5.9%; the
        // exact classifier can only accept those.
        let genome = GenomeModel::uniform().generate(100_000, 2);
        let sampler = ReadSampler::new(256, ErrorProfile::condition_a());
        let reads = sampler.sample_many(&genome, 800, 3);
        let mut kraken = KrakenClassifier::new(KrakenMode::Exact);
        let accepted = reads
            .iter()
            .filter(|r| {
                let segment = r.aligned_segment(&genome);
                kraken
                    .matches(segment.as_slice(), r.bases.as_slice(), 8)
                    .matched
            })
            .count();
        let rate = accepted as f64 / reads.len() as f64;
        let expected = (1.0f64 - 0.011).powi(256);
        assert!(
            (rate - expected).abs() < 0.03,
            "accept rate {rate} vs theoretical {expected}"
        );
    }

    #[test]
    fn kmer_mode_tolerates_sparse_errors() {
        let genome = GenomeModel::uniform().generate(1_000, 4);
        let segment = genome.window(0..256);
        let mut bases = segment.clone().into_bases();
        bases[128] = bases[128].substituted(0); // one substitution
        let read = DnaSeq::from_bases(bases);
        let mut kraken = KrakenClassifier::new(KrakenMode::kraken2_defaults());
        assert!(
            kraken
                .matches(segment.as_slice(), read.as_slice(), 0)
                .matched
        );
        let mut exact = KrakenClassifier::new(KrakenMode::Exact);
        assert!(
            !exact
                .matches(segment.as_slice(), read.as_slice(), 0)
                .matched
        );
    }

    #[test]
    fn packed_matcher_agrees_with_slice_matcher() {
        let genome = GenomeModel::uniform().generate(1_000, 8);
        let segment = genome.window(0..256);
        let mut bases = segment.clone().into_bases();
        bases[100] = bases[100].substituted(2);
        let near = DnaSeq::from_bases(bases);
        for mode in [KrakenMode::Exact, KrakenMode::kraken2_defaults()] {
            let mut kraken = KrakenClassifier::new(mode);
            for read in [&segment, &near] {
                assert_eq!(
                    kraken.matches(segment.as_slice(), read.as_slice(), 0),
                    kraken.matches_packed(
                        &asmcap_genome::PackedSeq::from_seq(&segment),
                        &asmcap_genome::PackedSeq::from_seq(read),
                        0,
                    ),
                    "{mode:?}"
                );
            }
        }
    }

    #[test]
    fn kmer_mode_rejects_decoys() {
        let a = GenomeModel::uniform().generate(256, 5);
        let b = GenomeModel::uniform().generate(256, 6);
        let mut kraken = KrakenClassifier::new(KrakenMode::kraken2_defaults());
        assert!(!kraken.matches(a.as_slice(), b.as_slice(), 16).matched);
    }

    #[test]
    fn confidence_threshold_raises_the_bar() {
        let genome = GenomeModel::uniform().generate(1_000, 7);
        let segment = genome.window(0..256);
        let mut bases = segment.clone().into_bases();
        for i in [40usize, 80, 120, 160, 200] {
            bases[i] = bases[i].substituted(0);
        }
        let read = DnaSeq::from_bases(bases);
        let mut loose = KrakenClassifier::new(KrakenMode::kraken2_defaults());
        let mut strict = KrakenClassifier::new(KrakenMode::KmerHit {
            k: 35,
            min_fraction: 0.8,
        });
        assert!(
            loose
                .matches(segment.as_slice(), read.as_slice(), 0)
                .matched
        );
        assert!(
            !strict
                .matches(segment.as_slice(), read.as_slice(), 0)
                .matched
        );
    }
}
