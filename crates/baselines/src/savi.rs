//! SaVI (ICCAD 2020): the TCAM-based seed-and-vote baseline.
//!
//! The seed-and-vote strategy (Subread/Liao et al.) splits the read into
//! `k`-mers, looks each up in the reference by exact match, and lets every
//! hit vote for the alignment offset it implies; the read maps where the
//! votes pile up. SaVI executes the exact-match lookups on TCAMs.
//!
//! For the pair-decision task the vote rule is: a pair matches at threshold
//! `T` iff the largest group of offset-consistent votes (offsets within
//! `±T`, since each indel shifts downstream seeds by one) loses at most
//! `T` of the read's seeds — each edit can corrupt at most one
//! non-overlapping seed. This reproduces seed-and-vote's characteristic
//! accuracy loss (the paper quotes ~93.8 % on average) without any analog
//! modelling: the losses are algorithmic.

use asmcap::{AsmMatcher, MatchOutcome};
use asmcap_genome::kmer::{pack_kmer, packed_kmers, KmerIndex};
use asmcap_genome::{Base, PackedSeq, PackedWords};
use std::collections::HashMap;

/// The SaVI functional model.
///
/// # Examples
///
/// ```
/// use asmcap::AsmMatcher;
/// use asmcap_baselines::SaviAccelerator;
/// use asmcap_genome::GenomeModel;
///
/// let genome = GenomeModel::uniform().generate(300, 1);
/// let segment = genome.window(0..128);
/// let mut savi = SaviAccelerator::paper();
/// assert!(savi.matches(segment.as_slice(), segment.as_slice(), 0).matched);
/// let decoy = genome.window(150..278);
/// assert!(!savi.matches(decoy.as_slice(), segment.as_slice(), 4).matched);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SaviAccelerator {
    seed_len: usize,
}

impl SaviAccelerator {
    /// The configuration used in the comparison: 16-base seeds.
    #[must_use]
    pub fn paper() -> Self {
        Self { seed_len: 16 }
    }

    /// Custom seed length.
    ///
    /// # Panics
    ///
    /// Panics if `seed_len` is zero or greater than 32 (seeds are packed
    /// k-mer codes).
    #[must_use]
    pub fn with_seed_len(seed_len: usize) -> Self {
        assert!(
            asmcap_genome::kmer::check_k(seed_len).is_ok(),
            "seed length must be in 1..=32"
        );
        Self { seed_len }
    }

    /// The configured seed length.
    #[must_use]
    pub fn seed_len(&self) -> usize {
        self.seed_len
    }

    /// Number of non-overlapping seeds a read of `len` bases contributes.
    #[must_use]
    pub fn seed_count(&self, len: usize) -> usize {
        len / self.seed_len
    }

    /// The vote profile of a pair: for every non-overlapping read seed that
    /// occurs exactly in the segment, the alignment offsets it votes for.
    /// Returns the vote count of the best `±tolerance` offset window.
    #[must_use]
    pub fn best_vote_count(&self, segment: &[Base], read: &[Base], tolerance: usize) -> usize {
        let k = self.seed_len;
        if read.len() < k || segment.len() < k {
            return 0;
        }
        let index = KmerIndex::build(segment, k).expect("seed length validated at construction");
        // One vote per (seed, supported offset); a repeated seed votes for
        // each hit (the TCAM reports all matching rows).
        let mut votes: HashMap<isize, usize> = HashMap::new();
        for seed_idx in 0..self.seed_count(read.len()) {
            let read_pos = seed_idx * k;
            let seed = pack_kmer(&read[read_pos..read_pos + k]);
            for &segment_pos in index.positions_of_code(seed) {
                let offset = segment_pos as isize - read_pos as isize;
                *votes.entry(offset).or_insert(0) += 1;
            }
        }
        // Best window of offsets within ±tolerance.
        Self::best_window(&votes, tolerance)
    }

    /// [`SaviAccelerator::best_vote_count`] over 2-bit packed operands: the
    /// segment is indexed through the packed k-mer roller and the read's
    /// non-overlapping seeds are packed codes read straight out of the
    /// words — identical votes, no byte-per-base walk.
    #[must_use]
    pub fn best_vote_count_packed<S: PackedWords, R: PackedWords>(
        &self,
        segment: &S,
        read: &R,
        tolerance: usize,
    ) -> usize {
        let k = self.seed_len;
        if read.len() < k || segment.len() < k {
            return 0;
        }
        let index =
            KmerIndex::build_packed(segment, k).expect("seed length validated at construction");
        let mut votes: HashMap<isize, usize> = HashMap::new();
        // Non-overlapping seeds sit at read positions 0, k, 2k, …: keep
        // exactly those codes from the rolling packed scan.
        for (read_pos, seed) in packed_kmers(read, k).filter(|(pos, _)| pos % k == 0) {
            for &segment_pos in index.positions_of_code(seed) {
                let offset = segment_pos as isize - read_pos as isize;
                *votes.entry(offset).or_insert(0) += 1;
            }
        }
        Self::best_window(&votes, tolerance)
    }

    /// Vote count of the best `±tolerance` offset window.
    fn best_window(votes: &HashMap<isize, usize>, tolerance: usize) -> usize {
        let mut best = 0usize;
        // lint: order-insensitive — max over every center; visiting order
        // cannot change which window wins.
        for &center in votes.keys() {
            let total: usize = votes // lint: order-insensitive — commutative sum
                .iter()
                .filter(|(&o, _)| (o - center).unsigned_abs() <= tolerance)
                .map(|(_, &c)| c)
                .sum();
            best = best.max(total);
        }
        best
    }
}

impl AsmMatcher for SaviAccelerator {
    fn matches(&mut self, segment: &[Base], read: &[Base], threshold: usize) -> MatchOutcome {
        let seeds = self.seed_count(read.len());
        let required = seeds.saturating_sub(threshold).max(1);
        let votes = self.best_vote_count(segment, read, threshold);
        MatchOutcome {
            matched: votes >= required,
            // One TCAM lookup cycle per seed plus one voting cycle.
            cycles: seeds as u32 + 1,
            used_hd: false,
            rotations: 0,
        }
    }

    fn matches_packed(
        &mut self,
        segment: &PackedSeq,
        read: &PackedSeq,
        threshold: usize,
    ) -> MatchOutcome {
        let seeds = self.seed_count(read.len());
        let required = seeds.saturating_sub(threshold).max(1);
        let votes = self.best_vote_count_packed(segment, read, threshold);
        MatchOutcome {
            matched: votes >= required,
            cycles: seeds as u32 + 1,
            used_hd: false,
            rotations: 0,
        }
    }

    fn name(&self) -> &str {
        "SaVI"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::{DnaSeq, ErrorProfile, GenomeModel, ReadSampler};

    #[test]
    fn identical_pair_gets_all_votes() {
        let savi = SaviAccelerator::paper();
        let s = GenomeModel::uniform().generate(256, 1);
        assert_eq!(savi.best_vote_count(s.as_slice(), s.as_slice(), 0), 16);
    }

    #[test]
    fn substitutions_corrupt_bounded_seeds() {
        let savi = SaviAccelerator::paper();
        let s = GenomeModel::uniform().generate(256, 2);
        let mut bases = s.clone().into_bases();
        bases[10] = bases[10].substituted(0); // seed 0
        bases[100] = bases[100].substituted(1); // seed 6
        let read = DnaSeq::from_bases(bases);
        let votes = savi.best_vote_count(s.as_slice(), read.as_slice(), 2);
        assert_eq!(votes, 14); // exactly two seeds lost
    }

    #[test]
    fn indel_shifts_split_votes_but_window_recovers() {
        let genome = GenomeModel::uniform().generate(400, 3);
        let segment = genome.window(0..256);
        // Read with one deletion at base 50: downstream seeds vote offset +1.
        let mut bases = segment.clone().into_bases();
        bases.remove(50);
        bases.push(genome.as_slice()[256]);
        let read = DnaSeq::from_bases(bases);
        let savi = SaviAccelerator::paper();
        let strict = savi.best_vote_count(segment.as_slice(), read.as_slice(), 0);
        let tolerant = savi.best_vote_count(segment.as_slice(), read.as_slice(), 1);
        assert!(tolerant > strict, "offset window should merge split votes");
        assert!(tolerant >= 14);
    }

    #[test]
    fn matcher_accepts_condition_a_reads_at_loose_threshold() {
        let genome = GenomeModel::uniform().generate(20_000, 4);
        let sampler = ReadSampler::new(256, ErrorProfile::condition_a());
        let mut savi = SaviAccelerator::paper();
        let reads = sampler.sample_many(&genome, 30, 5);
        let accepted = reads
            .iter()
            .filter(|r| {
                let segment = r.aligned_segment(&genome);
                savi.matches(segment.as_slice(), r.bases.as_slice(), 8)
                    .matched
            })
            .count();
        assert!(
            accepted >= 27,
            "SaVI accepted only {accepted}/30 true reads"
        );
    }

    #[test]
    fn matcher_rejects_decoys() {
        let mut savi = SaviAccelerator::paper();
        let a = GenomeModel::uniform().generate(256, 6);
        let b = GenomeModel::uniform().generate(256, 7);
        for t in [0usize, 4, 8, 16] {
            assert!(!savi.matches(a.as_slice(), b.as_slice(), t).matched);
        }
    }

    #[test]
    fn packed_matcher_agrees_with_slice_matcher() {
        let genome = GenomeModel::uniform().generate(20_000, 9);
        let sampler = ReadSampler::new(256, ErrorProfile::condition_a());
        let mut savi = SaviAccelerator::paper();
        for (i, read) in sampler.sample_many(&genome, 12, 10).into_iter().enumerate() {
            let segment = read.aligned_segment(&genome);
            let decoy = genome.window(5_000 + i * 300..5_256 + i * 300);
            for (seg, r) in [(&segment, &read.bases), (&decoy, &read.bases)] {
                for t in [0usize, 4, 8] {
                    let scalar = savi.matches(seg.as_slice(), r.as_slice(), t);
                    let packed = savi.matches_packed(
                        &asmcap_genome::PackedSeq::from_seq(seg),
                        &asmcap_genome::PackedSeq::from_seq(r),
                        t,
                    );
                    assert_eq!(scalar, packed, "pair {i} diverged at T={t}");
                }
            }
        }
    }

    #[test]
    fn cycle_model_counts_seed_lookups() {
        let mut savi = SaviAccelerator::paper();
        let s = GenomeModel::uniform().generate(256, 8);
        let outcome = savi.matches(s.as_slice(), s.as_slice(), 0);
        assert_eq!(outcome.cycles, 17); // 16 lookups + 1 vote
    }
}
