//! The CM-CPU baseline: comparison-matrix edit distance in software.
//!
//! The paper's software baseline computes the comparison matrix `M[i,j]` on
//! an i9-10980XE. Functionally that is exact edit distance — 100 % accuracy
//! by construction — implemented here with the threshold-banded DP from
//! `asmcap-metrics`. The throughput model for Fig. 8 lives in
//! [`crate::perf`]; [`CmCpuAligner::measured_cell_rate`] measures the *host*
//! machine's actual DP cell rate for the honesty section of
//! `EXPERIMENTS.md`.

use asmcap::{AsmMatcher, MatchOutcome};
use asmcap_genome::{Base, PackedSeq};
use asmcap_metrics::{edit_distance_banded, edit_distance_banded_packed, edit_distance_myers};
use std::time::Instant;

/// The software comparison-matrix aligner.
///
/// # Examples
///
/// ```
/// use asmcap::AsmMatcher;
/// use asmcap_baselines::CmCpuAligner;
/// use asmcap_genome::DnaSeq;
///
/// let mut cpu = CmCpuAligner::new();
/// let a: DnaSeq = "ACGTACGT".parse()?;
/// let b: DnaSeq = "ACGAACGT".parse()?;
/// assert!(cpu.matches(a.as_slice(), b.as_slice(), 1).matched);
/// assert!(!cpu.matches(a.as_slice(), b.as_slice(), 0).matched);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CmCpuAligner {
    _private: (),
}

impl CmCpuAligner {
    /// Creates the aligner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Exact edit distance if it does not exceed `limit` (banded DP).
    #[must_use]
    pub fn distance_within(&self, a: &[Base], b: &[Base], limit: usize) -> Option<usize> {
        edit_distance_banded(a, b, limit)
    }

    /// Measures this host's DP throughput in cells per second by timing the
    /// bit-parallel kernel over `iterations` full `len×len` matrices.
    ///
    /// This is *our* machine, not the paper's i9; the number goes into the
    /// paper-vs-measured table, not into the Fig. 8 model (which uses the
    /// calibrated constant in [`crate::perf::calib`]).
    ///
    /// # Panics
    ///
    /// Panics if `len` or `iterations` is zero.
    #[must_use]
    pub fn measured_cell_rate(&self, len: usize, iterations: usize) -> f64 {
        assert!(len > 0 && iterations > 0, "need work to measure");
        let a = asmcap_genome::GenomeModel::uniform().generate(len, 0xC0FFEE);
        let b = asmcap_genome::GenomeModel::uniform().generate(len, 0xBEEF);
        // lint: timing-ok — measures kernel throughput; the rate is perf
        // metadata and never feeds a mapping decision.
        let start = Instant::now();
        let mut sink = 0usize;
        for _ in 0..iterations {
            sink = sink.wrapping_add(edit_distance_myers(a.as_slice(), b.as_slice()));
        }
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        (len * len * iterations) as f64 / elapsed
    }
}

impl AsmMatcher for CmCpuAligner {
    fn matches(&mut self, segment: &[Base], read: &[Base], threshold: usize) -> MatchOutcome {
        MatchOutcome::plain(edit_distance_banded(segment, read, threshold).is_some())
    }

    fn matches_packed(
        &mut self,
        segment: &PackedSeq,
        read: &PackedSeq,
        threshold: usize,
    ) -> MatchOutcome {
        MatchOutcome::plain(edit_distance_banded_packed(segment, read, threshold).is_some())
    }

    fn name(&self) -> &str {
        "CM-CPU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::GenomeModel;

    #[test]
    fn cm_cpu_is_exact() {
        let genome = GenomeModel::uniform().generate(600, 1);
        let a = genome.window(0..128);
        let mut bases = a.clone().into_bases();
        bases[5] = bases[5].substituted(1);
        bases[64] = bases[64].substituted(2);
        let b = asmcap_genome::DnaSeq::from_bases(bases);
        let mut cpu = CmCpuAligner::new();
        assert!(!cpu.matches(a.as_slice(), b.as_slice(), 1).matched);
        assert!(cpu.matches(a.as_slice(), b.as_slice(), 2).matched);
    }

    #[test]
    fn packed_matcher_agrees_with_slice_matcher() {
        let genome = GenomeModel::uniform().generate(600, 3);
        let a = genome.window(0..128);
        let mut bases = a.clone().into_bases();
        bases.remove(40);
        bases.push(asmcap_genome::Base::G);
        let b = asmcap_genome::DnaSeq::from_bases(bases);
        let mut cpu = CmCpuAligner::new();
        for t in [0usize, 1, 2, 8] {
            assert_eq!(
                cpu.matches(a.as_slice(), b.as_slice(), t),
                cpu.matches_packed(
                    &asmcap_genome::PackedSeq::from_seq(&a),
                    &asmcap_genome::PackedSeq::from_seq(&b),
                    t,
                ),
                "T={t}"
            );
        }
    }

    #[test]
    fn measured_rate_is_positive_and_fast() {
        let rate = CmCpuAligner::new().measured_cell_rate(256, 20);
        // Any modern machine should push the bit-parallel kernel well past
        // 10 MCell/s even in debug builds.
        assert!(rate > 1e7, "measured {rate} cells/s");
    }
}
