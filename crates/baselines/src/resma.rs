//! ReSMA (DAC 2022): RRAM-based comparison-matrix acceleration.
//!
//! ReSMA couples two ReRAM structures: CAMs that *filter* candidate
//! (read, segment) pairs by exact substring match, and crossbars that
//! compute the comparison matrix along anti-diagonal wavefronts for the
//! survivors. This module re-implements both stages functionally:
//!
//! * the filter passes a pair iff the read and segment share at least one
//!   exact `k`-mer at an alignment offset compatible with the threshold
//!   (|offset difference| ≤ T);
//! * the wavefront stage evaluates the DP matrix anti-diagonal by
//!   anti-diagonal — the exact computation a crossbar performs in
//!   `2m − 1` steps — restricted to the Ukkonen band.
//!
//! The per-step latency/energy model for Fig. 8 lives in [`crate::perf`].

use asmcap::{AsmMatcher, MatchOutcome};
use asmcap_genome::kmer::{kmers, packed_kmers, KmerIndex};
use asmcap_genome::{Base, PackedSeq, PackedWords};

/// The ReSMA functional model.
///
/// # Examples
///
/// ```
/// use asmcap::AsmMatcher;
/// use asmcap_baselines::ResmaAccelerator;
/// use asmcap_genome::GenomeModel;
///
/// let genome = GenomeModel::uniform().generate(300, 1);
/// let segment = genome.window(0..128);
/// let mut resma = ResmaAccelerator::paper();
/// let outcome = resma.matches(segment.as_slice(), segment.as_slice(), 0);
/// assert!(outcome.matched);
/// // Filter hit + full wavefront over the 2·128 non-trivial anti-diagonals.
/// assert_eq!(outcome.cycles, 1 + 2 * 128);
/// ```
#[derive(Debug, Clone)]
pub struct ResmaAccelerator {
    filter_k: usize,
}

impl ResmaAccelerator {
    /// The configuration used in the comparison: 16-base filter CAM words.
    #[must_use]
    pub fn paper() -> Self {
        Self { filter_k: 16 }
    }

    /// Custom filter `k`-mer length.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or greater than 32 (the filter compares
    /// packed k-mer codes).
    #[must_use]
    pub fn with_filter_k(filter_k: usize) -> Self {
        assert!(
            asmcap_genome::kmer::check_k(filter_k).is_ok(),
            "filter k-mer length must be in 1..=32"
        );
        Self { filter_k }
    }

    /// The CAM filter: do read and segment share an exact `k`-mer whose
    /// alignment offsets differ by at most `threshold`?
    #[must_use]
    pub fn filter_passes(&self, segment: &[Base], read: &[Base], threshold: usize) -> bool {
        let k = self.filter_k;
        if read.len() < k || segment.len() < k {
            // Degenerate rows: fall through to the exact stage.
            return true;
        }
        let index = KmerIndex::build(segment, k).expect("filter k validated at construction");
        kmers(read, k).any(|(read_pos, code)| {
            index
                .positions_of_code(code)
                .iter()
                .any(|&p| p.abs_diff(read_pos) <= threshold)
        })
    }

    /// [`ResmaAccelerator::filter_passes`] over 2-bit packed operands: the
    /// CAM words are rolled straight out of the packed words on both sides,
    /// so the filter — which rejects the overwhelming majority of decoy
    /// pairs — never unpacks anything.
    #[must_use]
    pub fn filter_passes_packed<S: PackedWords, R: PackedWords>(
        &self,
        segment: &S,
        read: &R,
        threshold: usize,
    ) -> bool {
        let k = self.filter_k;
        if read.len() < k || segment.len() < k {
            // Degenerate rows: fall through to the exact stage.
            return true;
        }
        let index =
            KmerIndex::build_packed(segment, k).expect("filter k validated at construction");
        packed_kmers(read, k).any(|(read_pos, code)| {
            index
                .positions_of_code(code)
                .iter()
                .any(|&p| p.abs_diff(read_pos) <= threshold)
        })
    }

    /// The crossbar wavefront: evaluates the banded comparison matrix
    /// anti-diagonal by anti-diagonal, returning `(distance ≤ threshold,
    /// wavefront steps executed)`.
    ///
    /// Each anti-diagonal `d` holds the cells `M[i][j]` with `i + j = d`;
    /// all of them depend only on diagonals `d−1` and `d−2`, which is the
    /// parallelism the RRAM crossbar exploits. Early exit fires when every
    /// in-band cell of a diagonal exceeds the threshold.
    #[must_use]
    pub fn wavefront_within(
        &self,
        segment: &[Base],
        read: &[Base],
        threshold: usize,
    ) -> (bool, u32) {
        let m = read.len();
        let n = segment.len();
        if m.abs_diff(n) > threshold {
            return (false, 0);
        }
        const INF: usize = usize::MAX / 2;
        // rows i: read, cols j: segment; M[i][0] = i, M[0][j] = j.
        let mut prev2: Vec<usize> = Vec::new(); // diagonal d-2, indexed by i
        let mut prev1: Vec<usize> = vec![0]; // diagonal d = 0: M[0][0] = 0
        let mut prev_best = 0usize; // best in-band value of diagonal d-1
        let mut steps = 0u32;
        if m == 0 || n == 0 {
            let d = m.max(n);
            return (d <= threshold, 0);
        }
        for d in 1..=(m + n) {
            steps += 1;
            let i_lo = d.saturating_sub(n);
            let i_hi = d.min(m);
            let mut current = vec![INF; i_hi - i_lo + 1];
            let mut best = INF;
            for (idx, i) in (i_lo..=i_hi).enumerate() {
                let j = d - i;
                if i.abs_diff(j) > threshold {
                    continue;
                }
                let mut value = INF;
                if i == 0 {
                    value = j;
                } else if j == 0 {
                    value = i;
                } else {
                    // Deletion: M[i-1][j] on diagonal d-1 at row i-1.
                    let d1_lo = (d - 1).saturating_sub(n);
                    if let Some(&v) = prev1.get((i - 1).wrapping_sub(d1_lo)) {
                        value = value.min(v.saturating_add(1));
                    }
                    // Insertion: M[i][j-1] on diagonal d-1 at row i.
                    if let Some(&v) = prev1.get(i.wrapping_sub(d1_lo)) {
                        value = value.min(v.saturating_add(1));
                    }
                    // Substitution/match: M[i-1][j-1] on diagonal d-2.
                    let d2_lo = (d - 2).saturating_sub(n);
                    if let Some(&v) = prev2.get((i - 1).wrapping_sub(d2_lo)) {
                        let cost = usize::from(read[i - 1] != segment[j - 1]);
                        value = value.min(v.saturating_add(cost));
                    }
                }
                current[idx] = value;
                best = best.min(value);
            }
            if d == m + n {
                let final_value = current[0]; // only cell: i = m, j = n
                return (final_value <= threshold, steps);
            }
            // Sound early exit: diagonal d+1 depends only on d and d−1, so
            // once both hold no in-band cell at or below the threshold, no
            // later cell can either. (A single diagonal is not enough: with
            // a tight band, odd diagonals can be legitimately empty.)
            if best > threshold && prev_best > threshold {
                return (false, steps);
            }
            prev_best = best;
            prev2 = prev1;
            prev1 = current;
        }
        unreachable!("loop returns at d = m + n");
    }
}

impl AsmMatcher for ResmaAccelerator {
    fn matches(&mut self, segment: &[Base], read: &[Base], threshold: usize) -> MatchOutcome {
        // Stage 1: one CAM filter cycle.
        let mut cycles = 1u32;
        if !self.filter_passes(segment, read, threshold) {
            return MatchOutcome {
                matched: false,
                cycles,
                used_hd: false,
                rotations: 0,
            };
        }
        // Stage 2: crossbar wavefront.
        let (matched, steps) = self.wavefront_within(segment, read, threshold);
        cycles += steps;
        MatchOutcome {
            matched,
            cycles,
            used_hd: false,
            rotations: 0,
        }
    }

    fn matches_packed(
        &mut self,
        segment: &PackedSeq,
        read: &PackedSeq,
        threshold: usize,
    ) -> MatchOutcome {
        // Stage 1 runs fully packed; only filter survivors (true pairs and
        // near-misses, a small minority of a decoy-heavy sweep) pay the
        // unpack for the base-indexed wavefront DP.
        let mut cycles = 1u32;
        if !self.filter_passes_packed(segment, read, threshold) {
            return MatchOutcome {
                matched: false,
                cycles,
                used_hd: false,
                rotations: 0,
            };
        }
        let (matched, steps) = self.wavefront_within(
            segment.to_seq().as_slice(),
            read.to_seq().as_slice(),
            threshold,
        );
        cycles += steps;
        MatchOutcome {
            matched,
            cycles,
            used_hd: false,
            rotations: 0,
        }
    }

    fn name(&self) -> &str {
        "ReSMA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::{DnaSeq, GenomeModel};
    use asmcap_metrics::edit_distance;
    use proptest::prelude::*;

    #[test]
    fn wavefront_agrees_with_edit_distance() {
        let genome = GenomeModel::uniform().generate(600, 2);
        let resma = ResmaAccelerator::paper();
        let a = genome.window(0..100);
        for (start, t) in [(0usize, 0usize), (5, 3), (200, 8), (300, 16)] {
            let b = genome.window(start..start + 100);
            let ed = edit_distance(b.as_slice(), a.as_slice());
            let (within, _) = resma.wavefront_within(a.as_slice(), b.as_slice(), t);
            assert_eq!(within, ed <= t, "start={start} t={t} ed={ed}");
        }
    }

    #[test]
    fn filter_passes_identical_and_blocks_random() {
        let resma = ResmaAccelerator::paper();
        let a = GenomeModel::uniform().generate(128, 3);
        let b = GenomeModel::uniform().generate(128, 4);
        assert!(resma.filter_passes(a.as_slice(), a.as_slice(), 0));
        assert!(!resma.filter_passes(a.as_slice(), b.as_slice(), 8));
    }

    #[test]
    fn filter_tolerates_scattered_edits() {
        // A read with a couple of substitutions still shares error-free
        // 16-mers with its segment.
        let genome = GenomeModel::uniform().generate(400, 5);
        let segment = genome.window(0..128);
        let mut bases = segment.clone().into_bases();
        bases[20] = bases[20].substituted(0);
        bases[90] = bases[90].substituted(1);
        let read = DnaSeq::from_bases(bases);
        assert!(ResmaAccelerator::paper().filter_passes(segment.as_slice(), read.as_slice(), 2));
    }

    #[test]
    fn early_exit_reduces_wavefront_steps() {
        let resma = ResmaAccelerator::paper();
        let a = GenomeModel::uniform().generate(128, 6);
        let b = GenomeModel::uniform().generate(128, 7);
        let (matched, steps) = resma.wavefront_within(a.as_slice(), b.as_slice(), 2);
        assert!(!matched);
        assert!(steps < 50, "expected early exit, took {steps} steps");
        let (matched, steps) = resma.wavefront_within(a.as_slice(), a.as_slice(), 2);
        assert!(matched);
        assert_eq!(steps, 256); // all 2m non-trivial anti-diagonals
    }

    #[test]
    fn matcher_is_exact_when_filter_passes() {
        let genome = GenomeModel::uniform().generate(400, 8);
        let segment = genome.window(50..178);
        let mut bases = segment.clone().into_bases();
        bases.remove(60);
        bases.push(asmcap_genome::Base::A);
        let read = DnaSeq::from_bases(bases);
        let ed = edit_distance(segment.as_slice(), read.as_slice());
        let mut resma = ResmaAccelerator::paper();
        assert!(
            resma
                .matches(segment.as_slice(), read.as_slice(), ed)
                .matched
        );
        assert!(
            !resma
                .matches(segment.as_slice(), read.as_slice(), ed - 1)
                .matched
        );
    }

    #[test]
    fn packed_matcher_agrees_with_slice_matcher() {
        let genome = GenomeModel::uniform().generate(2_000, 11);
        let mut resma = ResmaAccelerator::paper();
        let segment = genome.window(100..356);
        let mut bases = segment.clone().into_bases();
        bases.remove(30);
        bases.push(asmcap_genome::Base::C);
        bases[200] = bases[200].substituted(1);
        let near = DnaSeq::from_bases(bases);
        let decoy = GenomeModel::uniform().generate(256, 12);
        for read in [&segment, &near, &decoy] {
            for t in [0usize, 2, 8] {
                let scalar = resma.matches(segment.as_slice(), read.as_slice(), t);
                let packed = resma.matches_packed(
                    &asmcap_genome::PackedSeq::from_seq(&segment),
                    &asmcap_genome::PackedSeq::from_seq(read),
                    t,
                );
                assert_eq!(scalar, packed, "T={t}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_wavefront_matches_dp(
            seed in 0u64..1000,
            edits in 0usize..6,
            t in 0usize..8
        ) {
            let genome = GenomeModel::uniform().generate(200, seed);
            let a = genome.window(0..80);
            let mut bases = a.clone().into_bases();
            let mut rng_state = seed;
            for _ in 0..edits {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let pos = (rng_state >> 33) as usize % bases.len();
                bases[pos] = bases[pos].substituted((rng_state >> 7) as u8);
            }
            let b = DnaSeq::from_bases(bases);
            let ed = edit_distance(a.as_slice(), b.as_slice());
            let (within, _) = ResmaAccelerator::paper().wavefront_within(a.as_slice(), b.as_slice(), t);
            prop_assert_eq!(within, ed <= t);
        }
    }
}
