//! Baseline ASM systems the paper compares against (§II-B, §V-E).
//!
//! Every comparator in the paper's Fig. 7/Fig. 8 is re-implemented here,
//! functionally (so its accuracy can be measured on the same datasets) and
//! as a performance model (so Fig. 8's speedup/energy-efficiency chart can
//! be regenerated):
//!
//! * [`cm_cpu`] — the comparison-matrix software baseline: exact banded
//!   edit distance on a general-purpose CPU;
//! * [`resma`] — ReSMA (DAC 2022): RRAM-CAM pre-filtering plus an
//!   anti-diagonal wavefront comparison matrix on RRAM crossbars;
//! * [`savi`] — SaVI (ICCAD 2020): the TCAM seed-and-vote strategy;
//! * [`kraken`] — a Kraken2-style exact-matching classifier, the paper's
//!   accuracy normalisation baseline;
//! * [`perf`] — the Fig. 8 latency/energy models with every calibrated
//!   constant documented in one place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cm_cpu;
pub mod kraken;
pub mod perf;
pub mod resma;
pub mod savi;

pub use cm_cpu::CmCpuAligner;
pub use kraken::{KrakenClassifier, KrakenMode};
pub use perf::{PerfModel, PerfReport, Workload};
pub use resma::ResmaAccelerator;
pub use savi::SaviAccelerator;
