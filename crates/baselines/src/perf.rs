//! Fig. 8 performance models: latency and energy per mapped read.
//!
//! The paper's Fig. 8 compares six systems matching 256-base reads against
//! a 64 Mb stored reference (512 arrays × 256 rows). Each model here is
//! mechanistic — cycles come from the functional simulators, per-operation
//! latency/energy from each system's published numbers — with the handful
//! of constants the comparators never published calibrated once, in
//! [`calib`], against the ratios the paper reports. `EXPERIMENTS.md`
//! records model-vs-paper for every bar of the figure.

use asmcap_circuit::energy::{asmcap_array_search_energy, edam_array_search_energy};
use asmcap_circuit::params::{AsmcapParams, EdamParams};
use std::fmt;

/// Calibrated constants with their provenance.
pub mod calib {
    /// CM-CPU: number of candidate segments the software baseline aligns
    /// per read (post-seeding). Chosen with [`CM_CPU_CELL_RATE`] so the
    /// CM-CPU latency reproduces the paper's 9.7e4× ASMCap-w/o speedup:
    /// 256² cells × 16 candidates / 1.2e10 cells/s = 87.4 µs/read.
    pub const CM_CPU_CANDIDATES: usize = 16;
    /// CM-CPU: banded-DP throughput of the paper's i9-10980XE in DP cells
    /// per second (calibrated; an 18-core AVX-512 machine running a
    /// bit-parallel kernel is in the 1e10 range).
    pub const CM_CPU_CELL_RATE: f64 = 1.2e10;
    /// CM-CPU: i9-10980XE package power (TDP), watts.
    pub const CM_CPU_POWER_W: f64 = 165.0;

    /// ReSMA: latency of one crossbar wavefront step, seconds. Calibrated
    /// so ReSMA lands at the paper's 362× below ASMCap w/o:
    /// 2·256 steps × 0.64 ns ≈ 328 ns/read.
    pub const RESMA_STEP_TIME_S: f64 = 0.64e-9;
    /// ReSMA: energy of one wavefront step, joules (calibrated to the
    /// paper's 2.3e4× energy-efficiency gap to ASMCap w/o).
    pub const RESMA_STEP_ENERGY_J: f64 = 127e-9;
    /// ReSMA: average candidates surviving the CAM filter per read.
    pub const RESMA_CANDIDATES: f64 = 1.0;

    /// SaVI: latency of one TCAM seed lookup (and of the voting step),
    /// seconds. Calibrated to the paper's 126× gap to ASMCap w/o:
    /// (16 seeds + 1 vote) × 6.65 ns ≈ 113 ns/read.
    pub const SAVI_LOOKUP_TIME_S: f64 = 6.65e-9;
    /// SaVI: energy per lookup/vote step, joules (calibrated to the
    /// paper's 2.4e3× energy-efficiency gap to ASMCap w/o).
    pub const SAVI_LOOKUP_ENERGY_J: f64 = 400e-9;
}

/// The workload Fig. 8 is evaluated on.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Workload {
    /// Read length in bases (paper: 256).
    pub read_len: usize,
    /// Number of CAM arrays (paper: 512).
    pub arrays: usize,
    /// Rows per array (paper: 256).
    pub rows_per_array: usize,
    /// Mean strategy overhead in extra search cycles per read (0 for plain
    /// ED\*; ~1 with HDAC/TASR averaged over the paper's conditions). Taken
    /// from the measured cycle counts of the accuracy runs.
    pub extra_cycles: f64,
    /// Mean per-row mismatch count, for the Eq. 1 energy (measured from the
    /// simulated workload; ~0.42·N for reads against a random reference).
    pub mean_n_mis: f64,
}

impl Workload {
    /// The paper's Fig. 8 configuration with a given strategy overhead and
    /// measured mismatch level.
    #[must_use]
    pub fn paper(extra_cycles: f64, mean_n_mis: f64) -> Self {
        Self {
            read_len: 256,
            arrays: asmcap_circuit::params::ARRAY_COUNT,
            rows_per_array: asmcap_circuit::params::ARRAY_ROWS,
            extra_cycles,
            mean_n_mis,
        }
    }
}

/// A per-read latency/energy model of one ASM system.
pub trait PerfModel {
    /// Display name (Fig. 8 x-axis label).
    fn name(&self) -> &'static str;
    /// Seconds to match one read against the whole stored reference.
    fn latency_per_read_s(&self, workload: &Workload) -> f64;
    /// Joules to match one read against the whole stored reference.
    fn energy_per_read_j(&self, workload: &Workload) -> f64;
}

/// CM-CPU: banded DP over `CM_CPU_CANDIDATES` candidate segments.
#[derive(Debug, Clone, Copy, Default)]
pub struct CmCpuPerf;

impl PerfModel for CmCpuPerf {
    fn name(&self) -> &'static str {
        "CM-CPU"
    }

    fn latency_per_read_s(&self, w: &Workload) -> f64 {
        let cells = (w.read_len * w.read_len * calib::CM_CPU_CANDIDATES) as f64;
        cells / calib::CM_CPU_CELL_RATE
    }

    fn energy_per_read_j(&self, w: &Workload) -> f64 {
        self.latency_per_read_s(w) * calib::CM_CPU_POWER_W
    }
}

/// ReSMA: CAM filter + `2m` crossbar wavefront steps per candidate.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResmaPerf;

impl PerfModel for ResmaPerf {
    fn name(&self) -> &'static str {
        "ReSMA"
    }

    fn latency_per_read_s(&self, w: &Workload) -> f64 {
        let steps = 2.0 * w.read_len as f64 * calib::RESMA_CANDIDATES;
        steps * calib::RESMA_STEP_TIME_S
    }

    fn energy_per_read_j(&self, w: &Workload) -> f64 {
        let steps = 2.0 * w.read_len as f64 * calib::RESMA_CANDIDATES;
        steps * calib::RESMA_STEP_ENERGY_J
    }
}

/// SaVI: one TCAM lookup per non-overlapping 16-base seed plus a vote step.
#[derive(Debug, Clone, Copy, Default)]
pub struct SaviPerf;

impl SaviPerf {
    fn steps(w: &Workload) -> f64 {
        (w.read_len / 16 + 1) as f64
    }
}

impl PerfModel for SaviPerf {
    fn name(&self) -> &'static str {
        "SaVI"
    }

    fn latency_per_read_s(&self, w: &Workload) -> f64 {
        Self::steps(w) * calib::SAVI_LOOKUP_TIME_S
    }

    fn energy_per_read_j(&self, w: &Workload) -> f64 {
        Self::steps(w) * calib::SAVI_LOOKUP_ENERGY_J
    }
}

/// EDAM: one current-domain search over all arrays (Table I numbers).
#[derive(Debug, Clone)]
pub struct EdamPerf {
    params: EdamParams,
}

impl EdamPerf {
    /// With the paper's published EDAM parameters.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            params: EdamParams::paper(),
        }
    }
}

impl Default for EdamPerf {
    fn default() -> Self {
        Self::paper()
    }
}

impl PerfModel for EdamPerf {
    fn name(&self) -> &'static str {
        "EDAM"
    }

    fn latency_per_read_s(&self, _w: &Workload) -> f64 {
        self.params.search_time_s()
    }

    fn energy_per_read_j(&self, w: &Workload) -> f64 {
        w.arrays as f64 * edam_array_search_energy(&self.params, w.rows_per_array, w.read_len)
    }
}

/// ASMCap: `(1 + extra_cycles)` charge-domain searches over all arrays.
#[derive(Debug, Clone)]
pub struct AsmcapPerf {
    params: AsmcapParams,
    with_strategies: bool,
}

impl AsmcapPerf {
    /// Without the correction strategies (`extra_cycles` ignored).
    #[must_use]
    pub fn plain() -> Self {
        Self {
            params: AsmcapParams::paper(),
            with_strategies: false,
        }
    }

    /// With strategies: the workload's `extra_cycles` are charged.
    #[must_use]
    pub fn with_strategies() -> Self {
        Self {
            params: AsmcapParams::paper(),
            with_strategies: true,
        }
    }

    fn cycles(&self, w: &Workload) -> f64 {
        if self.with_strategies {
            1.0 + w.extra_cycles
        } else {
            1.0
        }
    }
}

impl PerfModel for AsmcapPerf {
    fn name(&self) -> &'static str {
        if self.with_strategies {
            "ASMCap w/ H&T"
        } else {
            "ASMCap w/o H&T"
        }
    }

    fn latency_per_read_s(&self, w: &Workload) -> f64 {
        self.cycles(w) * self.params.search_time_s()
    }

    fn energy_per_read_j(&self, w: &Workload) -> f64 {
        let per_search = w.arrays as f64
            * asmcap_array_search_energy(&self.params, w.rows_per_array, w.read_len, w.mean_n_mis);
        self.cycles(w) * per_search
    }
}

/// One row of the Fig. 8 report.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRow {
    /// System name.
    pub name: &'static str,
    /// Latency per read, seconds.
    pub latency_s: f64,
    /// Energy per read, joules.
    pub energy_j: f64,
    /// Throughput speedup over CM-CPU.
    pub speedup: f64,
    /// Energy-efficiency (reads/J) ratio over CM-CPU.
    pub energy_efficiency: f64,
}

/// The full Fig. 8 comparison, normalised to CM-CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Rows in the paper's x-axis order.
    pub rows: Vec<PerfRow>,
}

impl PerfReport {
    /// Builds the six-system report for a workload (the workload's
    /// `extra_cycles` apply to the "ASMCap w/ H&T" row only).
    #[must_use]
    pub fn fig8(workload: &Workload) -> Self {
        let models: Vec<Box<dyn PerfModel>> = vec![
            Box::new(CmCpuPerf),
            Box::new(ResmaPerf),
            Box::new(SaviPerf),
            Box::new(EdamPerf::paper()),
            Box::new(AsmcapPerf::plain()),
            Box::new(AsmcapPerf::with_strategies()),
        ];
        let base_latency = models[0].latency_per_read_s(workload);
        let base_energy = models[0].energy_per_read_j(workload);
        let rows = models
            .iter()
            .map(|m| {
                let latency_s = m.latency_per_read_s(workload);
                let energy_j = m.energy_per_read_j(workload);
                PerfRow {
                    name: m.name(),
                    latency_s,
                    energy_j,
                    speedup: base_latency / latency_s,
                    energy_efficiency: base_energy / energy_j,
                }
            })
            .collect();
        Self { rows }
    }

    /// Looks a row up by name.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&PerfRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>12} {:>12} {:>10} {:>10}",
            "system", "latency", "energy", "speedup", "energy-eff"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<16} {:>10.3}ns {:>10.3}nJ {:>10.3e} {:>10.3e}",
                row.name,
                row.latency_s * 1e9,
                row.energy_j * 1e9,
                row.speedup,
                row.energy_efficiency
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_workload() -> Workload {
        // extra_cycles ~1 (HDAC in A, TASR in B averaged), n_mis ~0.42 N.
        Workload::paper(1.07, 0.42 * 256.0)
    }

    #[test]
    fn speedups_match_paper_order_of_magnitude() {
        let report = PerfReport::fig8(&paper_workload());
        let s = |name: &str| report.row(name).unwrap().speedup;
        // Paper: 9.7e4 (w/o), 4.7e4 (w/), 3.46e4 (EDAM), 770 (SaVI),
        // 268 (ReSMA), 1.0 (CM-CPU).
        assert!((s("ASMCap w/o H&T") / 9.7e4 - 1.0).abs() < 0.1);
        assert!((s("ASMCap w/ H&T") / 4.7e4 - 1.0).abs() < 0.15);
        assert!((s("EDAM") / 3.46e4 - 1.0).abs() < 0.1);
        assert!((s("SaVI") / 770.0 - 1.0).abs() < 0.1);
        assert!((s("ReSMA") / 268.0 - 1.0).abs() < 0.1);
        assert_eq!(s("CM-CPU"), 1.0);
    }

    #[test]
    fn energy_efficiency_ordering_matches_fig8() {
        let report = PerfReport::fig8(&paper_workload());
        let e = |name: &str| report.row(name).unwrap().energy_efficiency;
        assert!(e("ASMCap w/o H&T") > e("ASMCap w/ H&T"));
        assert!(e("ASMCap w/ H&T") > e("EDAM"));
        assert!(e("EDAM") > e("SaVI"));
        assert!(e("SaVI") > e("ReSMA"));
        assert!(e("ReSMA") > e("CM-CPU"));
        assert_eq!(e("CM-CPU"), 1.0);
    }

    #[test]
    fn asmcap_vs_edam_ratios_near_paper() {
        let report = PerfReport::fig8(&paper_workload());
        let without = report.row("ASMCap w/o H&T").unwrap();
        let edam = report.row("EDAM").unwrap();
        let speed_ratio = without.speedup / edam.speedup;
        let energy_ratio = without.energy_efficiency / edam.energy_efficiency;
        // Paper: 2.8x speedup, 28x energy efficiency over EDAM.
        assert!(
            (2.0..3.5).contains(&speed_ratio),
            "speed ratio {speed_ratio}"
        );
        assert!(
            (18.0..40.0).contains(&energy_ratio),
            "energy ratio {energy_ratio}"
        );
    }

    #[test]
    fn strategies_cost_roughly_their_cycles() {
        let report = PerfReport::fig8(&paper_workload());
        let plain = report.row("ASMCap w/o H&T").unwrap();
        let full = report.row("ASMCap w/ H&T").unwrap();
        let ratio = plain.speedup / full.speedup;
        assert!((ratio - 2.07).abs() < 0.01, "cycle ratio {ratio}");
    }

    #[test]
    fn cm_cpu_absolute_latency_is_calibrated() {
        let w = paper_workload();
        let latency = CmCpuPerf.latency_per_read_s(&w);
        assert!((latency - 87.4e-6).abs() < 1e-6, "CM-CPU latency {latency}");
        let energy = CmCpuPerf.energy_per_read_j(&w);
        assert!((energy - 14.4e-3).abs() < 0.3e-3, "CM-CPU energy {energy}");
    }

    #[test]
    fn display_renders_all_rows() {
        let rendered = PerfReport::fig8(&paper_workload()).to_string();
        for name in [
            "CM-CPU",
            "ReSMA",
            "SaVI",
            "EDAM",
            "ASMCap w/o H&T",
            "ASMCap w/ H&T",
        ] {
            assert!(rendered.contains(name), "missing {name} in report");
        }
    }
}
