//! Genome sequence substrate for the ASMCap reproduction.
//!
//! This crate provides everything the ASMCap evaluation (DAC 2023) needs from
//! the genomics side, built from scratch:
//!
//! * [`Base`] and [`DnaSeq`] — the four-letter DNA alphabet and owned
//!   sequences over it;
//! * [`PackedSeq`] — a 2-bit packed encoding mirroring the two 6T SRAM cells
//!   that store one base in an ASMCap cell, with the [`PackedWords`] word
//!   access the word-parallel matching kernels run on;
//! * [`PackedRef`] / [`SegmentView`] — a reference packed once serving
//!   zero-copy `(offset, width)` segment views;
//! * [`fasta`] — a minimal FASTA reader/writer;
//! * [`synth`] — seeded synthetic genome generators (the reproduction's
//!   substitute for the NCBI human genome; see `DESIGN.md` §2);
//! * [`errors`] — the sequencing-error model with the paper's Condition A
//!   (substitution-dominant) and Condition B (indel-dominant) profiles;
//! * [`reads`] — read sampling from a reference genome;
//! * [`dataset`] — (read, reference-segment) pair datasets with exact
//!   edit-distance ground truth, the unit of the Fig. 7 accuracy evaluation.
//!
//! # Examples
//!
//! Generate a genome, sample an erroneous read, and inspect the edits:
//!
//! ```
//! use asmcap_genome::{synth::GenomeModel, errors::ErrorProfile, reads::ReadSampler};
//!
//! let genome = GenomeModel::uniform().generate(10_000, 7);
//! let sampler = ReadSampler::new(256, ErrorProfile::condition_a());
//! let read = sampler.sample(&genome, 42);
//! assert_eq!(read.bases.len(), 256);
//! // Condition A injects ~1% substitutions, so a few edits are expected.
//! assert!(read.edits.total() < 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod dataset;
pub mod errors;
pub mod fasta;
pub mod fastq;
pub mod kmer;
pub mod packed;
pub mod packedref;
pub mod prefilter;
pub mod reads;
pub mod seq;
pub mod synth;

pub use base::Base;
pub use dataset::{PairDataset, ReadPair};
pub use errors::{EditKind, EditLog, ErrorModel, ErrorProfile};
pub use kmer::{KmerError, KmerIndex};
pub use packed::{PackedSeq, PackedWords};
pub use packedref::{PackedRef, SegmentView};
pub use prefilter::{PrefilterConfig, PrefilterError, PrefilterIndex, Shortlist};
pub use reads::{ReadSampler, SampledRead};
pub use seq::DnaSeq;
pub use synth::GenomeModel;

/// Deterministic RNG used across the workspace.
///
/// `rand::rngs::StdRng` is documented as non-portable across `rand` versions,
/// so experiments seed a ChaCha8 stream instead: the same seed reproduces the
/// same dataset and the same Monte-Carlo draws on any toolchain.
pub type Rng = rand_chacha::ChaCha8Rng;

/// Creates the workspace-standard deterministic RNG from a `u64` seed.
///
/// # Examples
///
/// ```
/// use rand::Rng as _;
/// let mut a = asmcap_genome::rng(1);
/// let mut b = asmcap_genome::rng(1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn rng(seed: u64) -> Rng {
    use rand::SeedableRng;
    Rng::seed_from_u64(seed)
}
