//! Synthetic reference genomes.
//!
//! The paper evaluates on reads extracted from the NCBI human genome. This
//! reproduction has no access to that data, so references are synthesised
//! instead (see `DESIGN.md` §2): the matching statistics that drive every
//! reported number depend only on base composition and local repeat
//! structure, both of which the models below control explicitly.

use crate::base::BASES;
use crate::seq::DnaSeq;
use crate::Rng;
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng as _;

/// A generative model for reference genomes.
///
/// Construct one with [`GenomeModel::uniform`], [`GenomeModel::gc_biased`],
/// or [`GenomeModel::markov`], optionally layer repeat families on top with
/// [`GenomeModel::with_repeats`], then call [`GenomeModel::generate`].
///
/// # Examples
///
/// ```
/// use asmcap_genome::GenomeModel;
///
/// let genome = GenomeModel::gc_biased(0.41) // human-like GC content
///     .with_repeats(4, 300, 0.05)
///     .generate(50_000, 1);
/// assert_eq!(genome.len(), 50_000);
/// let gc = genome.gc_content();
/// assert!((gc - 0.41).abs() < 0.05, "gc content {gc} too far from target");
/// ```
#[derive(Debug, Clone)]
pub struct GenomeModel {
    composition: Composition,
    repeats: Option<RepeatFamilies>,
}

#[derive(Debug, Clone)]
enum Composition {
    /// Independent draws with the given per-base weights (A, C, G, T).
    Iid([f64; 4]),
    /// Order-1 Markov chain with a 4x4 transition matrix (rows sum to 1).
    Markov([[f64; 4]; 4]),
}

#[derive(Debug, Clone)]
struct RepeatFamilies {
    families: usize,
    unit_len: usize,
    fraction: f64,
}

impl GenomeModel {
    /// A genome with independent, uniformly distributed bases.
    #[must_use]
    pub fn uniform() -> Self {
        Self {
            composition: Composition::Iid([0.25; 4]),
            repeats: None,
        }
    }

    /// A genome with independent bases at the given GC fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < gc < 1.0`.
    #[must_use]
    pub fn gc_biased(gc: f64) -> Self {
        assert!(gc > 0.0 && gc < 1.0, "gc fraction must lie in (0, 1)");
        let at = (1.0 - gc) / 2.0;
        let gc_half = gc / 2.0;
        Self {
            composition: Composition::Iid([at, gc_half, gc_half, at]),
            repeats: None,
        }
    }

    /// A genome following an order-1 Markov chain over bases.
    ///
    /// `transition[i][j]` is the probability of base `j` following base `i`
    /// (indexed by [`crate::Base::code`]); each row must sum to
    /// approximately 1.
    ///
    /// # Panics
    ///
    /// Panics if a row's weights do not sum to within 1e-6 of 1, or if any
    /// weight is negative.
    #[must_use]
    pub fn markov(transition: [[f64; 4]; 4]) -> Self {
        for row in &transition {
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "markov row must sum to 1, got {sum}"
            );
            assert!(
                row.iter().all(|&w| w >= 0.0),
                "weights must be non-negative"
            );
        }
        Self {
            composition: Composition::Markov(transition),
            repeats: None,
        }
    }

    /// A mildly auto-correlated Markov model that mimics the dinucleotide
    /// skew of mammalian genomes (CpG depletion, AT richness).
    #[must_use]
    pub fn human_like() -> Self {
        // Rows/cols in A, C, G, T order. CpG (C followed by G) is depleted.
        Self::markov([
            [0.33, 0.18, 0.26, 0.23],
            [0.31, 0.27, 0.06, 0.36],
            [0.27, 0.23, 0.26, 0.24],
            [0.22, 0.20, 0.27, 0.31],
        ])
    }

    /// Layers `families` repeat families of `unit_len`-base units covering
    /// roughly `fraction` of the genome (e.g. Alu-like interspersed repeats).
    ///
    /// Repeats make decoy segments partially correlated with true segments,
    /// which stresses the matchers the way real genomes do.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1)` or `unit_len` is zero when
    /// `fraction > 0`.
    #[must_use]
    pub fn with_repeats(mut self, families: usize, unit_len: usize, fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
        if fraction > 0.0 {
            assert!(unit_len > 0, "repeat unit length must be positive");
            assert!(families > 0, "at least one repeat family is required");
        }
        self.repeats = Some(RepeatFamilies {
            families,
            unit_len,
            fraction,
        });
        self
    }

    /// Generates a genome of `len` bases from the model, deterministically
    /// for a given `seed`.
    #[must_use]
    pub fn generate(&self, len: usize, seed: u64) -> DnaSeq {
        let mut rng = crate::rng(seed);
        let mut genome = self.generate_background(len, &mut rng);
        if let Some(repeats) = &self.repeats {
            if repeats.fraction > 0.0 && len > 0 {
                Self::plant_repeats(&mut genome, repeats, &mut rng);
            }
        }
        genome
    }

    fn generate_background(&self, len: usize, rng: &mut Rng) -> DnaSeq {
        match &self.composition {
            Composition::Iid(weights) => {
                let dist = WeightedIndex::new(weights).expect("validated weights");
                (0..len).map(|_| BASES[dist.sample(rng)]).collect()
            }
            Composition::Markov(transition) => {
                let mut out = DnaSeq::with_capacity(len);
                if len == 0 {
                    return out;
                }
                let rows: Vec<WeightedIndex<f64>> = transition
                    .iter()
                    .map(|row| WeightedIndex::new(row).expect("validated weights"))
                    .collect();
                let mut current = BASES[rng.gen_range(0..4)];
                out.push(current);
                for _ in 1..len {
                    current = BASES[rows[current.code() as usize].sample(rng)];
                    out.push(current);
                }
                out
            }
        }
    }

    fn plant_repeats(genome: &mut DnaSeq, repeats: &RepeatFamilies, rng: &mut Rng) {
        let len = genome.len();
        let units: Vec<DnaSeq> = (0..repeats.families)
            .map(|_| {
                (0..repeats.unit_len)
                    .map(|_| BASES[rng.gen_range(0..4)])
                    .collect()
            })
            .collect();
        let target_bases = (len as f64 * repeats.fraction) as usize;
        let mut planted = 0usize;
        let mut bases = std::mem::take(genome).into_bases();
        while planted < target_bases {
            let unit = &units[rng.gen_range(0..units.len())];
            if unit.len() >= len {
                break;
            }
            let start = rng.gen_range(0..len - unit.len());
            for (offset, base) in unit.iter().enumerate() {
                // Copy with light divergence so repeat copies are imperfect,
                // as in real genomes.
                bases[start + offset] = if rng.gen_bool(0.05) {
                    base.substituted(rng.gen_range(0..3))
                } else {
                    base
                };
            }
            planted += unit.len();
        }
        *genome = DnaSeq::from_bases(bases);
    }
}

/// Generates a coronavirus-scale genome (SARS-CoV-2 is ~29.9 kb).
///
/// The paper's Fig. 8 configuration notes that 512 ASMCap arrays (64 Mb)
/// "can entirely store some small virus sequences (e.g., SARS-CoV-2)". This
/// helper produces a genome of that scale for the virus-screening example.
///
/// # Examples
///
/// ```
/// let virus = asmcap_genome::synth::sars_cov_2_like(3);
/// assert_eq!(virus.len(), 29_903);
/// ```
#[must_use]
pub fn sars_cov_2_like(seed: u64) -> DnaSeq {
    // SARS-CoV-2 reference NC_045512.2 length and approximate GC content.
    GenomeModel::gc_biased(0.38).generate(29_903, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Base;

    #[test]
    fn uniform_generation_is_deterministic_per_seed() {
        let model = GenomeModel::uniform();
        assert_eq!(model.generate(1000, 1), model.generate(1000, 1));
        assert_ne!(model.generate(1000, 1), model.generate(1000, 2));
    }

    #[test]
    fn uniform_composition_is_balanced() {
        let genome = GenomeModel::uniform().generate(40_000, 11);
        for count in genome.base_counts() {
            let frac = count as f64 / genome.len() as f64;
            assert!((frac - 0.25).abs() < 0.02, "fraction {frac} off balance");
        }
    }

    #[test]
    fn gc_bias_hits_target() {
        let genome = GenomeModel::gc_biased(0.6).generate(40_000, 5);
        assert!((genome.gc_content() - 0.6).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "gc fraction")]
    fn gc_bias_rejects_degenerate_fraction() {
        let _ = GenomeModel::gc_biased(1.0);
    }

    #[test]
    fn markov_rows_must_sum_to_one() {
        let bad = [[0.5, 0.5, 0.5, 0.5]; 4];
        let result = std::panic::catch_unwind(|| GenomeModel::markov(bad));
        assert!(result.is_err());
    }

    #[test]
    fn human_like_depletes_cpg() {
        let genome = GenomeModel::human_like().generate(60_000, 9);
        let bases = genome.as_slice();
        let mut cg = 0usize;
        let mut c_total = 0usize;
        for pair in bases.windows(2) {
            if pair[0] == Base::C {
                c_total += 1;
                if pair[1] == Base::G {
                    cg += 1;
                }
            }
        }
        let cpg_rate = cg as f64 / c_total as f64;
        assert!(
            cpg_rate < 0.12,
            "expected CpG depletion, got rate {cpg_rate}"
        );
    }

    #[test]
    fn repeats_create_self_similarity() {
        let plain = GenomeModel::uniform().generate(20_000, 3);
        let repetitive = GenomeModel::uniform()
            .with_repeats(2, 500, 0.3)
            .generate(20_000, 3);
        // Count 16-mers that appear more than once; repeats should inflate it.
        let dup = |g: &DnaSeq| {
            let mut seen = std::collections::HashMap::new();
            for w in g.as_slice().windows(16) {
                *seen.entry(w.to_vec()).or_insert(0usize) += 1;
            }
            seen.values().filter(|&&c| c > 1).count()
        };
        assert!(dup(&repetitive) > dup(&plain) * 5 + 10);
    }

    #[test]
    fn zero_length_genome_is_empty() {
        assert!(GenomeModel::uniform().generate(0, 1).is_empty());
        assert!(GenomeModel::human_like().generate(0, 1).is_empty());
    }

    #[test]
    fn sars_cov_2_like_scale_and_composition() {
        let virus = sars_cov_2_like(1);
        assert_eq!(virus.len(), 29_903);
        assert!((virus.gc_content() - 0.38).abs() < 0.02);
    }
}
