//! k-mer extraction and indexing.
//!
//! Several systems in the reproduction are built on exact k-mer lookup: the
//! SaVI seed-and-vote baseline, ReSMA's CAM pre-filter, the Kraken2-style
//! classifier, and the long-read fragment voter. They share this index.
//!
//! k-mers are packed into a `u64` (2 bits/base, `k ≤ 32`) so lookups hash an
//! integer instead of a slice.

use crate::base::Base;
use crate::packed::{PackedWords, BASES_PER_WORD};
use std::collections::HashMap;
use std::fmt;

/// A 2-bit-packed k-mer code. Only meaningful together with its length.
pub type KmerCode = u64;

/// A k-mer length outside the supported `1..=32` range (codes are packed
/// into a `u64` at 2 bits per base, so 32 is the hard ceiling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmerError {
    /// The rejected k-mer length.
    pub k: usize,
}

impl fmt::Display for KmerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k-mer length {} is unsupported (k must be in 1..=32)",
            self.k
        )
    }
}

impl std::error::Error for KmerError {}

/// Validates a k-mer length.
///
/// # Errors
///
/// Returns [`KmerError`] unless `k` is in `1..=32`.
pub fn check_k(k: usize) -> Result<(), KmerError> {
    if (1..=32).contains(&k) {
        Ok(())
    } else {
        Err(KmerError { k })
    }
}

/// Packs `bases` (length ≤ 32) into a [`KmerCode`].
///
/// # Panics
///
/// Panics if `bases` is longer than 32.
#[must_use]
pub fn pack_kmer(bases: &[Base]) -> KmerCode {
    assert!(bases.len() <= 32, "k-mers are limited to 32 bases");
    bases
        .iter()
        .fold(0u64, |acc, &b| (acc << 2) | u64::from(b.code()))
}

/// Iterates the packed codes of every overlapping k-mer of `seq`, paired
/// with its start position.
///
/// Rolling implementation: each step shifts in one base, so the whole scan
/// is `O(len)` regardless of `k`.
///
/// # Panics
///
/// Panics if `k` is zero or greater than 32.
pub fn kmers(seq: &[Base], k: usize) -> impl Iterator<Item = (usize, KmerCode)> + '_ {
    assert!(k > 0 && k <= 32, "k must be in 1..=32");
    let mask: u64 = if k == 32 {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    };
    let mut code: u64 = 0;
    let mut filled = 0usize;
    seq.iter().enumerate().filter_map(move |(i, &b)| {
        code = ((code << 2) | u64::from(b.code())) & mask;
        filled += 1;
        if filled >= k {
            Some((i + 1 - k, code))
        } else {
            None
        }
    })
}

/// [`kmers`] over a 2-bit packed sequence: the same rolling scan, but each
/// base lane is read straight out of the packed words (one word fetch per
/// 32 bases) — no byte-per-base unpacking anywhere.
///
/// Yields exactly what `kmers(seq.to_packed().to_seq().as_slice(), k)`
/// would, pinned by property tests in `tests/properties.rs`.
///
/// # Panics
///
/// Panics if `k` is zero or greater than 32 (use [`check_k`] to validate
/// first when the length is untrusted).
pub fn packed_kmers<S: PackedWords + ?Sized>(
    seq: &S,
    k: usize,
) -> impl Iterator<Item = (usize, KmerCode)> + '_ {
    assert!(check_k(k).is_ok(), "k must be in 1..=32");
    let mask: u64 = if k == 32 {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    };
    let mut code: u64 = 0;
    let mut word: u64 = 0;
    (0..seq.len()).filter_map(move |i| {
        let lane = i % BASES_PER_WORD;
        if lane == 0 {
            word = seq.word(i / BASES_PER_WORD);
        }
        code = ((code << 2) | ((word >> (2 * lane)) & 0b11)) & mask;
        if i + 1 >= k {
            Some((i + 1 - k, code))
        } else {
            None
        }
    })
}

/// An exact-match k-mer index over one sequence.
///
/// # Examples
///
/// ```
/// use asmcap_genome::{kmer::KmerIndex, DnaSeq};
/// let reference: DnaSeq = "ACGTACGTAC".parse()?;
/// let index = KmerIndex::build(reference.as_slice(), 4)?;
/// let query: DnaSeq = "GTAC".parse()?;
/// assert_eq!(index.positions_of(query.as_slice()), &[2, 6]);
/// assert!(index.contains(query.as_slice()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct KmerIndex {
    k: usize,
    positions: HashMap<KmerCode, Vec<usize>>,
    total_kmers: usize,
}

impl KmerIndex {
    /// Indexes every overlapping k-mer of `seq`.
    ///
    /// # Errors
    ///
    /// Returns [`KmerError`] if `k` is zero or greater than 32 (it used to
    /// panic; the pipeline's prefilter takes `k` from user configuration,
    /// so the failure must be reportable).
    pub fn build(seq: &[Base], k: usize) -> Result<Self, KmerError> {
        check_k(k)?;
        let mut index = Self::empty(k);
        index.extend(kmers(seq, k));
        Ok(index)
    }

    /// [`KmerIndex::build`] over a 2-bit packed sequence, extracting every
    /// k-mer through [`packed_kmers`] — the zero-unpack path the mapping
    /// prefilter uses to index a [`crate::PackedRef`].
    ///
    /// # Errors
    ///
    /// Returns [`KmerError`] if `k` is zero or greater than 32.
    pub fn build_packed<S: PackedWords + ?Sized>(seq: &S, k: usize) -> Result<Self, KmerError> {
        check_k(k)?;
        let mut index = Self::empty(k);
        index.extend(packed_kmers(seq, k));
        Ok(index)
    }

    fn empty(k: usize) -> Self {
        Self {
            k,
            positions: HashMap::new(),
            total_kmers: 0,
        }
    }

    fn extend(&mut self, codes: impl Iterator<Item = (usize, KmerCode)>) {
        for (pos, code) in codes {
            self.positions.entry(code).or_default().push(pos);
            self.total_kmers += 1;
        }
    }

    /// The indexed k-mer length.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of k-mers indexed (with multiplicity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.total_kmers
    }

    /// Whether the index is empty (sequence shorter than `k`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_kmers == 0
    }

    /// Number of *distinct* k-mers.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.positions.len()
    }

    /// All start positions of an exact k-mer, empty if absent.
    ///
    /// # Panics
    ///
    /// Panics if `kmer.len() != k`.
    #[must_use]
    pub fn positions_of(&self, kmer: &[Base]) -> &[usize] {
        assert_eq!(kmer.len(), self.k, "query length must equal the indexed k");
        self.positions_of_code(pack_kmer(kmer))
    }

    /// All start positions of a packed k-mer code.
    #[must_use]
    pub fn positions_of_code(&self, code: KmerCode) -> &[usize] {
        self.positions.get(&code).map_or(&[], Vec::as_slice)
    }

    /// Whether the exact k-mer occurs at least once.
    ///
    /// # Panics
    ///
    /// Panics if `kmer.len() != k`.
    #[must_use]
    pub fn contains(&self, kmer: &[Base]) -> bool {
        !self.positions_of(kmer).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::DnaSeq;
    use crate::synth::GenomeModel;
    use proptest::prelude::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    #[test]
    fn pack_is_injective_for_fixed_k() {
        let a = pack_kmer(seq("ACGT").as_slice());
        let b = pack_kmer(seq("ACGA").as_slice());
        let c = pack_kmer(seq("ACGT").as_slice());
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn kmers_yield_all_windows() {
        let s = seq("ACGTA");
        let collected: Vec<(usize, KmerCode)> = kmers(s.as_slice(), 3).collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[0], (0, pack_kmer(seq("ACG").as_slice())));
        assert_eq!(collected[2], (2, pack_kmer(seq("GTA").as_slice())));
    }

    #[test]
    fn kmers_shorter_than_k_yield_nothing() {
        let s = seq("AC");
        assert_eq!(kmers(s.as_slice(), 3).count(), 0);
        let index = KmerIndex::build(s.as_slice(), 3).unwrap();
        assert!(index.is_empty());
    }

    #[test]
    fn index_reports_positions_in_order() {
        let s = seq("ACGTACGTAC");
        let index = KmerIndex::build(s.as_slice(), 4).unwrap();
        assert_eq!(index.positions_of(seq("ACGT").as_slice()), &[0, 4]);
        assert_eq!(index.positions_of(seq("GTAC").as_slice()), &[2, 6]);
        assert!(!index.contains(seq("TTTT").as_slice()));
        assert_eq!(index.len(), 7);
    }

    #[test]
    fn k32_boundary_works() {
        let genome = GenomeModel::uniform().generate(100, 1);
        let index = KmerIndex::build(genome.as_slice(), 32).unwrap();
        let window = &genome.as_slice()[10..42];
        assert!(index.positions_of(window).contains(&10));
        // The packed builder agrees at the boundary too.
        let packed = crate::PackedSeq::from_seq(&genome);
        let via_packed = KmerIndex::build_packed(&packed, 32).unwrap();
        assert!(via_packed.positions_of(window).contains(&10));
        assert_eq!(via_packed.len(), index.len());
    }

    #[test]
    fn bad_k_is_a_typed_error_not_a_panic() {
        let genome = GenomeModel::uniform().generate(100, 2);
        for k in [0usize, 33, 64] {
            assert_eq!(
                KmerIndex::build(genome.as_slice(), k).unwrap_err(),
                KmerError { k }
            );
            let packed = crate::PackedSeq::from_seq(&genome);
            assert_eq!(
                KmerIndex::build_packed(&packed, k).unwrap_err(),
                KmerError { k }
            );
        }
        assert!(KmerError { k: 33 }.to_string().contains("1..=32"));
        assert!(check_k(32).is_ok());
        assert!(check_k(1).is_ok());
    }

    proptest! {
        #[test]
        fn prop_rolling_matches_naive_pack(
            codes in proptest::collection::vec(0u8..4, 1..80),
            k in 1usize..=16
        ) {
            let s: DnaSeq = codes.into_iter().map(Base::from_code).collect();
            if s.len() >= k {
                let rolled: Vec<(usize, KmerCode)> = kmers(s.as_slice(), k).collect();
                for (pos, code) in &rolled {
                    prop_assert_eq!(*code, pack_kmer(&s.as_slice()[*pos..*pos + k]));
                }
                prop_assert_eq!(rolled.len(), s.len() - k + 1);
            }
        }

        #[test]
        fn prop_every_indexed_kmer_is_found(
            codes in proptest::collection::vec(0u8..4, 8..60),
            k in 2usize..=8
        ) {
            let s: DnaSeq = codes.into_iter().map(Base::from_code).collect();
            let index = KmerIndex::build(s.as_slice(), k).unwrap();
            for start in 0..=(s.len() - k) {
                let window = &s.as_slice()[start..start + k];
                prop_assert!(index.positions_of(window).contains(&start));
            }
        }
    }
}
