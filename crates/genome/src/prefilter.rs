//! Seed-and-extend k-mer prefilter: shortlist candidate segment offsets
//! before the packed matching kernels run.
//!
//! The packed matchplane made each segment/read comparison cheap (~15 ns at
//! width 128), so the cost of mapping one read is dominated by *how many*
//! segments get compared: every backend scanned the full segment list,
//! `O(reference)` per read. The paper's CaCAM array is only economical
//! because the controller narrows which rows a search touches; software ASM
//! accelerators make the same move (GenASM's pre-kernel filter, FindeR's
//! index-then-verify shortlist). This module is that move for the
//! reproduction: a [`PrefilterIndex`] built **once** over a [`PackedRef`]
//! answers, per read, "which segment offsets could plausibly match" — and
//! only those offsets reach the ED\*/HD kernels (or, on the device, only
//! those rows are sensed).
//!
//! # How a shortlist is produced
//!
//! 1. **Index**: every overlapping k-mer of the reference is indexed by
//!    [`KmerIndex::build_packed`] — codes roll straight out of the packed
//!    words, no byte-per-base rescan.
//! 2. **Seed**: the read is sparsified to its *minimizers* (the
//!    minimum-hash k-mer of each window of [`PrefilterConfig::window`]
//!    consecutive k-mers), and each minimizer is looked up exactly.
//! 3. **Diagonal binning**: a hit at reference position `r` for read
//!    position `p` implies an alignment start near the diagonal `r - p`;
//!    every stored segment start within [`PrefilterConfig::diag_slack`]
//!    bases of that diagonal receives one vote (the slack absorbs the
//!    positional drift that indels — and TASR's rotations — introduce).
//! 4. **Rank**: starts with at least [`PrefilterConfig::min_seed_hits`]
//!    votes are ranked (votes descending, then offset ascending) and capped
//!    at [`PrefilterConfig::max_candidates`].
//!
//! A read whose shortlist comes up empty falls back to a full scan when
//! [`PrefilterConfig::full_scan_fallback`] is set (the default) — the
//! explicit escape hatch that lets recall be pinned rather than hoped for.
//! Correctness of the prefilter is *statistical* (recall), not
//! byte-identical; `tests/prefilter_equivalence.rs` pins both regimes.

use crate::kmer::{packed_kmers, KmerCode, KmerError, KmerIndex};
use crate::packed::PackedWords;
use crate::packedref::PackedRef;
use std::collections::HashMap;
use std::fmt;

/// Why a [`PrefilterIndex`] could not be built: every way a
/// [`PrefilterConfig`] can be degenerate, as a typed error (the pipeline
/// surfaces it as `PipelineError::BadPrefilter`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefilterError {
    /// The seed k-mer length is outside `1..=32`.
    BadK(KmerError),
    /// The minimizer window is zero (no seeds could ever be picked).
    ZeroWindow,
    /// The shortlist cap is zero (no candidate could ever survive).
    ZeroCandidateCap,
}

impl fmt::Display for PrefilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefilterError::BadK(e) => write!(f, "{e}"),
            PrefilterError::ZeroWindow => write!(f, "minimizer window must be positive"),
            PrefilterError::ZeroCandidateCap => write!(f, "candidate cap must be positive"),
        }
    }
}

impl std::error::Error for PrefilterError {}

impl From<KmerError> for PrefilterError {
    fn from(e: KmerError) -> Self {
        PrefilterError::BadK(e)
    }
}

/// Tuning knobs of the seed-and-extend prefilter.
///
/// The defaults trade a little index size for recall: small-ish `k` (12)
/// so condition-B indel reads still carry exact seeds, a dense minimizer
/// window (8), and a 2-hit floor so one chance k-mer collision cannot
/// shortlist a random offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefilterConfig {
    /// Seed k-mer length (`1..=32`).
    pub k: usize,
    /// Minimizer window in k-mers: one seed is kept per `window`
    /// consecutive read k-mers (1 = every k-mer is a seed).
    pub window: usize,
    /// Minimum seed votes a segment offset needs to enter the shortlist.
    pub min_seed_hits: usize,
    /// Shortlist cap: at most this many ranked candidates per read.
    pub max_candidates: usize,
    /// Diagonal tolerance in bases: a hit on diagonal `d` votes for every
    /// stored segment start within `diag_slack` of `d` (absorbs indel
    /// drift and TASR rotations).
    pub diag_slack: usize,
    /// When no offset reaches the vote floor, scan the full segment list
    /// instead of returning an empty shortlist.
    pub full_scan_fallback: bool,
}

impl Default for PrefilterConfig {
    fn default() -> Self {
        Self {
            k: 12,
            window: 8,
            min_seed_hits: 2,
            max_candidates: 64,
            diag_slack: 8,
            full_scan_fallback: true,
        }
    }
}

/// The per-read verdict of the prefilter.
///
/// Either a ranked shortlist of candidate segment starts, or the explicit
/// instruction to scan everything (the fallback escape hatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shortlist {
    ranked: Vec<(usize, usize)>,
    full_scan: bool,
}

impl Shortlist {
    /// Whether the caller must scan the full segment list (no seeds, or no
    /// offset reached the vote floor, with the fallback enabled).
    #[must_use]
    pub fn is_full_scan(&self) -> bool {
        self.full_scan
    }

    /// Candidates as `(segment start, seed votes)`, best first (votes
    /// descending, then start ascending). Empty when
    /// [`Shortlist::is_full_scan`] is set — or when the fallback is
    /// disabled and nothing reached the floor.
    #[must_use]
    pub fn ranked(&self) -> &[(usize, usize)] {
        &self.ranked
    }

    /// Candidate segment starts in ascending offset order — the shape the
    /// mapping backends consume (they preserve their full-scan iteration
    /// order over the shortlist).
    #[must_use]
    pub fn starts_ascending(&self) -> Vec<usize> {
        let mut starts: Vec<usize> = self.ranked.iter().map(|&(start, _)| start).collect();
        starts.sort_unstable();
        starts
    }

    /// Number of shortlisted candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// Whether no candidate made the shortlist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }
}

/// A seed-and-extend prefilter over one segmented, packed reference.
///
/// Built once per pipeline (like the reference packing itself); each
/// [`PrefilterIndex::shortlist`] call is `O(read minimizers × hits)` instead
/// of the full scan's `O(segments)`.
///
/// # Examples
///
/// ```
/// use asmcap_genome::{GenomeModel, PackedRef, PackedSeq, PrefilterConfig, PrefilterIndex};
///
/// let genome = GenomeModel::uniform().generate(4_096, 7);
/// let reference = PackedRef::new(&genome);
/// // Segments of width 128 at every offset (stride 1).
/// let prefilter = PrefilterIndex::new(&reference, 128, 1, PrefilterConfig::default())?;
///
/// // A read taken verbatim from offset 900 shortlists its own origin.
/// let read = PackedSeq::from_seq(&genome.window(900..1_028));
/// let shortlist = prefilter.shortlist(&read);
/// assert!(!shortlist.is_full_scan());
/// assert!(shortlist.starts_ascending().contains(&900));
/// assert!(shortlist.len() < 100); // a shortlist, not a scan
/// # Ok::<(), asmcap_genome::prefilter::PrefilterError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PrefilterIndex {
    index: KmerIndex,
    config: PrefilterConfig,
    stride: usize,
    last_start: usize,
}

impl PrefilterIndex {
    /// Indexes `reference` for segments of `width` bases every `stride`
    /// bases — the same segmentation rule the mapping backends share — so
    /// every shortlisted offset is a stored segment start.
    ///
    /// # Errors
    ///
    /// Returns [`PrefilterError`] for any degenerate configuration: a
    /// k-mer length outside `1..=32`, a zero minimizer window, or a zero
    /// candidate cap.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or the reference is shorter than one
    /// `width`-base segment (geometry the pipeline validates first).
    pub fn new(
        reference: &PackedRef,
        width: usize,
        stride: usize,
        config: PrefilterConfig,
    ) -> Result<Self, PrefilterError> {
        assert!(stride > 0, "stride must be positive");
        assert!(
            reference.len() >= width,
            "reference shorter than one segment"
        );
        if config.window == 0 {
            return Err(PrefilterError::ZeroWindow);
        }
        if config.max_candidates == 0 {
            return Err(PrefilterError::ZeroCandidateCap);
        }
        let index = KmerIndex::build_packed(reference.as_packed(), config.k)?;
        let last_start = (reference.len() - width) / stride * stride;
        Ok(Self {
            index,
            config,
            stride,
            last_start,
        })
    }

    /// The seed k-mer length.
    #[must_use]
    pub fn k(&self) -> usize {
        self.config.k
    }

    /// The configuration the index was built with.
    #[must_use]
    pub fn config(&self) -> &PrefilterConfig {
        &self.config
    }

    /// The underlying exact k-mer index (for inspection).
    #[must_use]
    pub fn kmer_index(&self) -> &KmerIndex {
        &self.index
    }

    /// The read's minimizer seeds as `(read position, k-mer code)`: the
    /// minimum-hash k-mer of each window of [`PrefilterConfig::window`]
    /// consecutive k-mers, deduplicated.
    #[must_use]
    pub fn minimizers<S: PackedWords + ?Sized>(&self, read: &S) -> Vec<(usize, KmerCode)> {
        let codes: Vec<(usize, KmerCode)> = packed_kmers(read, self.config.k).collect();
        if codes.is_empty() {
            return Vec::new();
        }
        let w = self.config.window.min(codes.len());
        let mut picked = Vec::new();
        let mut last: Option<usize> = None;
        for window in codes.windows(w) {
            let best = window
                .iter()
                .min_by_key(|&&(pos, code)| (seed_hash(code), pos))
                .expect("window is non-empty");
            if last != Some(best.0) {
                picked.push(*best);
                last = Some(best.0);
            }
        }
        picked
    }

    /// Seed votes per segment start for one read, ascending by start —
    /// the full (uncapped, unfloored) support map [`PrefilterIndex::shortlist`]
    /// ranks. Exposed so tests can pin the recall property against the
    /// exact vote counts.
    #[must_use]
    pub fn votes<S: PackedWords + ?Sized>(&self, read: &S) -> Vec<(usize, usize)> {
        let mut votes: HashMap<usize, usize> = HashMap::new();
        let slack = self.config.diag_slack as isize;
        for (p, code) in self.minimizers(read) {
            for &r in self.index.positions_of_code(code) {
                let diag = r as isize - p as isize;
                let lo = (diag - slack).max(0);
                let hi = (diag + slack).min(self.last_start as isize);
                if lo > hi {
                    continue;
                }
                // First stride-grid start at or above `lo`.
                let mut s = (lo as usize).div_ceil(self.stride) * self.stride;
                while s as isize <= hi {
                    *votes.entry(s).or_insert(0) += 1;
                    s += self.stride;
                }
            }
        }
        // lint: order-insensitive — drained into a Vec and sorted on the
        // next line before anything reads it.
        let mut votes: Vec<(usize, usize)> = votes.into_iter().collect();
        votes.sort_unstable();
        votes
    }

    /// Seed votes supporting one specific segment start (0 if none) —
    /// the quantity [`PrefilterConfig::min_seed_hits`] thresholds.
    #[must_use]
    pub fn support<S: PackedWords + ?Sized>(&self, read: &S, start: usize) -> usize {
        let votes = self.votes(read);
        votes
            .binary_search_by_key(&start, |&(s, _)| s)
            .map_or(0, |i| votes[i].1)
    }

    /// The ranked candidate shortlist for one read (see the
    /// [module docs](self) for the full recipe).
    #[must_use]
    pub fn shortlist<S: PackedWords + ?Sized>(&self, read: &S) -> Shortlist {
        let mut ranked: Vec<(usize, usize)> = self
            .votes(read)
            .into_iter()
            .filter(|&(_, votes)| votes >= self.config.min_seed_hits)
            .collect();
        if ranked.is_empty() {
            return Shortlist {
                ranked: Vec::new(),
                full_scan: self.config.full_scan_fallback,
            };
        }
        // Votes descending, then start ascending: deterministic rank order.
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(self.config.max_candidates);
        Shortlist {
            ranked,
            full_scan: false,
        }
    }
}

/// SplitMix64-style mixer ordering k-mer codes for minimizer selection
/// (a fixed, seedless permutation: the same read always picks the same
/// seeds, which the pipeline's determinism rule relies on).
fn seed_hash(code: KmerCode) -> u64 {
    let mut z = code.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::PackedSeq;
    use crate::synth::GenomeModel;

    fn index_on(
        genome_len: usize,
        seed: u64,
        width: usize,
        stride: usize,
        config: PrefilterConfig,
    ) -> (PrefilterIndex, crate::DnaSeq) {
        let genome = GenomeModel::uniform().generate(genome_len, seed);
        let reference = PackedRef::new(&genome);
        let index = PrefilterIndex::new(&reference, width, stride, config).unwrap();
        (index, genome)
    }

    #[test]
    fn exact_read_shortlists_its_origin_first() {
        let (index, genome) = index_on(8_192, 3, 128, 1, PrefilterConfig::default());
        let read = PackedSeq::from_seq(&genome.window(2_000..2_128));
        let shortlist = index.shortlist(&read);
        assert!(!shortlist.is_full_scan());
        // Every start within diag_slack of the true diagonal collects the
        // same votes (stride 1), so the top rank is the origin up to slack.
        let top = shortlist.ranked()[0].0;
        assert!(
            top.abs_diff(2_000) <= index.config().diag_slack,
            "top candidate {top} too far from the origin"
        );
        assert!(shortlist.starts_ascending().contains(&2_000));
        assert!(shortlist.len() <= index.config().max_candidates);
    }

    #[test]
    fn shortlist_respects_the_stride_grid() {
        let stride = 8;
        let (index, genome) = index_on(8_192, 4, 128, stride, PrefilterConfig::default());
        let read = PackedSeq::from_seq(&genome.window(1_016..1_144)); // on-grid origin
        let shortlist = index.shortlist(&read);
        assert!(!shortlist.is_full_scan());
        for &(start, _) in shortlist.ranked() {
            assert_eq!(start % stride, 0, "off-grid candidate {start}");
            assert!(start <= 8_192 - 128);
        }
        assert!(shortlist.starts_ascending().contains(&1_016));
    }

    #[test]
    fn foreign_read_falls_back_or_comes_up_empty() {
        let (index, _) = index_on(4_096, 5, 128, 1, PrefilterConfig::default());
        let foreign = GenomeModel::uniform().generate(128, 999);
        let shortlist = index.shortlist(&PackedSeq::from_seq(&foreign));
        // A random 128-mer against a 4k reference: either nothing reaches
        // the 2-vote floor (fallback fires) or a couple of chance
        // collisions make a short shortlist — never a wide one.
        assert!(shortlist.is_full_scan() || shortlist.len() < 16);

        let no_fallback = PrefilterConfig {
            full_scan_fallback: false,
            min_seed_hits: 1_000, // unreachable floor
            ..PrefilterConfig::default()
        };
        let (index, genome) = index_on(4_096, 5, 128, 1, no_fallback);
        let read = PackedSeq::from_seq(&genome.window(0..128));
        let shortlist = index.shortlist(&read);
        assert!(!shortlist.is_full_scan(), "escape hatch explicitly closed");
        assert!(shortlist.is_empty());
    }

    #[test]
    fn support_matches_votes() {
        let (index, genome) = index_on(4_096, 6, 128, 1, PrefilterConfig::default());
        let read = PackedSeq::from_seq(&genome.window(512..640));
        let votes = index.votes(&read);
        assert!(!votes.is_empty());
        for &(start, n) in &votes {
            assert_eq!(index.support(&read, start), n);
        }
        assert_eq!(index.support(&read, 4_096 - 128), 0);
        assert!(index.support(&read, 512) >= index.config().min_seed_hits);
    }

    #[test]
    fn minimizers_are_sparse_and_deterministic() {
        let (index, genome) = index_on(4_096, 7, 128, 1, PrefilterConfig::default());
        let read = PackedSeq::from_seq(&genome.window(100..228));
        let a = index.minimizers(&read);
        let b = index.minimizers(&read);
        assert_eq!(a, b);
        let total_kmers = 128 - index.k() + 1;
        assert!(a.len() < total_kmers, "minimizers must sparsify");
        assert!(!a.is_empty());
        // Too-short reads yield no seeds at all.
        let tiny = PackedSeq::from_seq(&genome.window(0..index.k() - 1));
        assert!(index.minimizers(&tiny).is_empty());
        assert!(index.shortlist(&tiny).is_full_scan());
    }

    #[test]
    fn degenerate_configs_surface_typed_errors() {
        let genome = GenomeModel::uniform().generate(1_024, 8);
        let reference = PackedRef::new(&genome);
        let build = |config: PrefilterConfig| PrefilterIndex::new(&reference, 128, 1, config);
        assert_eq!(
            build(PrefilterConfig {
                k: 33,
                ..PrefilterConfig::default()
            })
            .unwrap_err(),
            PrefilterError::BadK(KmerError { k: 33 })
        );
        assert_eq!(
            build(PrefilterConfig {
                window: 0,
                ..PrefilterConfig::default()
            })
            .unwrap_err(),
            PrefilterError::ZeroWindow
        );
        assert_eq!(
            build(PrefilterConfig {
                max_candidates: 0,
                ..PrefilterConfig::default()
            })
            .unwrap_err(),
            PrefilterError::ZeroCandidateCap
        );
        assert!(PrefilterError::from(KmerError { k: 0 })
            .to_string()
            .contains("1..=32"));
    }
}
