//! Sequencing-error model: substitutions, insertions, and deletions.
//!
//! The paper evaluates two mixed error profiles on 256-base reads (§V-A):
//!
//! * **Condition A** — substitution-dominant: `e_s = 1%`, `e_i = e_d = 0.05%`;
//! * **Condition B** — indel-dominant: `e_s = 0.1%`, `e_i = e_d = 0.5%`.
//!
//! Both are available as constructors on [`ErrorProfile`]. The injector
//! produces an explicit [`EditLog`] (an alignment script), so tests can
//! verify that replaying the log against the reference reproduces the read
//! exactly.

use crate::base::{Base, BASES};
use crate::seq::DnaSeq;
use crate::Rng;
use rand::Rng as _;
use std::fmt;

/// Per-base error rates for read generation.
///
/// # Examples
///
/// ```
/// use asmcap_genome::ErrorProfile;
/// let a = ErrorProfile::condition_a();
/// assert_eq!(a.substitution, 0.01);
/// assert_eq!(a.indel_rate(), 0.001);
/// let b = ErrorProfile::condition_b();
/// assert!(b.indel_rate() > b.substitution);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ErrorProfile {
    /// Substitution rate `e_s` per emitted base.
    pub substitution: f64,
    /// Insertion rate `e_i` per emitted base.
    pub insertion: f64,
    /// Deletion rate `e_d` per emitted base.
    pub deletion: f64,
}

impl ErrorProfile {
    /// Builds a profile from the three rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or the rates sum to 1 or more.
    #[must_use]
    pub fn new(substitution: f64, insertion: f64, deletion: f64) -> Self {
        assert!(
            substitution >= 0.0 && insertion >= 0.0 && deletion >= 0.0,
            "error rates must be non-negative"
        );
        assert!(
            substitution + insertion + deletion < 1.0,
            "error rates must sum to less than 1"
        );
        Self {
            substitution,
            insertion,
            deletion,
        }
    }

    /// The paper's Condition A: `e_s = 1%`, `e_i = e_d = 0.05%`.
    #[must_use]
    pub fn condition_a() -> Self {
        Self::new(0.01, 0.0005, 0.0005)
    }

    /// The paper's Condition B: `e_s = 0.1%`, `e_i = e_d = 0.5%`.
    #[must_use]
    pub fn condition_b() -> Self {
        Self::new(0.001, 0.005, 0.005)
    }

    /// An error-free profile; reads are exact copies of the reference.
    #[must_use]
    pub fn error_free() -> Self {
        Self::new(0.0, 0.0, 0.0)
    }

    /// Combined indel rate `e_id = e_i + e_d`, the quantity the HDAC and
    /// TASR strategies are parameterised on.
    #[must_use]
    pub fn indel_rate(&self) -> f64 {
        self.insertion + self.deletion
    }

    /// Total per-base edit rate.
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.substitution + self.insertion + self.deletion
    }

    /// Expected number of edits in a read of `len` bases.
    #[must_use]
    pub fn expected_edits(&self, len: usize) -> f64 {
        self.total_rate() * len as f64
    }
}

impl Default for ErrorProfile {
    fn default() -> Self {
        Self::error_free()
    }
}

impl fmt::Display for ErrorProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "es={:.4}% ei={:.4}% ed={:.4}%",
            self.substitution * 100.0,
            self.insertion * 100.0,
            self.deletion * 100.0
        )
    }
}

/// The kind of a single edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EditKind {
    /// A base emitted differently from the reference.
    Substitution,
    /// A base emitted without consuming a reference base.
    Insertion,
    /// A reference base skipped without emitting.
    Deletion,
}

/// One operation in the alignment script relating a read to its reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EditOp {
    /// Emit the reference base unchanged.
    Match,
    /// Emit `0` in place of the consumed reference base.
    Substitute(Base),
    /// Emit `0` without consuming a reference base.
    Insert(Base),
    /// Consume a reference base without emitting.
    Delete,
}

/// The ordered alignment script produced by error injection.
///
/// Replaying the log against the consumed reference window reproduces the
/// read exactly ([`EditLog::apply`]), which pins down the injector's
/// semantics in tests.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EditLog {
    ops: Vec<EditOp>,
}

impl EditLog {
    /// Creates an empty log (an error-free read).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows the ordered operations.
    #[must_use]
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Appends an operation.
    pub fn push(&mut self, op: EditOp) {
        self.ops.push(op);
    }

    /// Number of substitutions.
    #[must_use]
    pub fn substitutions(&self) -> usize {
        self.count(|op| matches!(op, EditOp::Substitute(_)))
    }

    /// Number of insertions.
    #[must_use]
    pub fn insertions(&self) -> usize {
        self.count(|op| matches!(op, EditOp::Insert(_)))
    }

    /// Number of deletions.
    #[must_use]
    pub fn deletions(&self) -> usize {
        self.count(|op| matches!(op, EditOp::Delete))
    }

    /// Total number of edits (everything except matches).
    #[must_use]
    pub fn total(&self) -> usize {
        self.count(|op| !matches!(op, EditOp::Match))
    }

    /// Net alignment shift of the read tail relative to the reference:
    /// insertions − deletions.
    ///
    /// A read whose `|net_shift()| ≥ 2` defeats the ±1-base tolerance of
    /// ED\* matching — exactly the misjudgment the TASR strategy corrects
    /// (paper §IV-B).
    #[must_use]
    pub fn net_shift(&self) -> isize {
        self.insertions() as isize - self.deletions() as isize
    }

    /// Length of the longest run of consecutive insertions or deletions.
    #[must_use]
    pub fn longest_indel_run(&self) -> usize {
        let mut best = 0usize;
        let mut run = 0usize;
        for op in &self.ops {
            match op {
                EditOp::Insert(_) | EditOp::Delete => {
                    run += 1;
                    best = best.max(run);
                }
                _ => run = 0,
            }
        }
        best
    }

    /// Number of reference bases this script consumes.
    #[must_use]
    pub fn reference_span(&self) -> usize {
        self.count(|op| !matches!(op, EditOp::Insert(_)))
    }

    /// Number of read bases this script emits.
    #[must_use]
    pub fn read_len(&self) -> usize {
        self.count(|op| !matches!(op, EditOp::Delete))
    }

    /// Replays the script against `reference`, returning the read it encodes.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is shorter than [`EditLog::reference_span`].
    #[must_use]
    pub fn apply(&self, reference: &[Base]) -> DnaSeq {
        let mut read = DnaSeq::with_capacity(self.read_len());
        let mut cursor = 0usize;
        for op in &self.ops {
            match op {
                EditOp::Match => {
                    read.push(reference[cursor]);
                    cursor += 1;
                }
                EditOp::Substitute(base) => {
                    read.push(*base);
                    cursor += 1;
                }
                EditOp::Insert(base) => read.push(*base),
                EditOp::Delete => cursor += 1,
            }
        }
        read
    }

    fn count(&self, pred: impl Fn(&EditOp) -> bool) -> usize {
        self.ops.iter().filter(|op| pred(op)).count()
    }
}

impl fmt::Display for EditLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} subs, {} ins, {} del",
            self.substitutions(),
            self.insertions(),
            self.deletions()
        )
    }
}

/// How errors are distributed along a read.
///
/// The paper's datasets inject edits "randomly" (i.i.d. per base), but its
/// TASR strategy (§IV-B) specifically targets **consecutive** indels, which
/// real sequencers produce in homopolymer runs. [`ErrorModel::Bursty`]
/// stretches each indel event into a geometrically distributed run while
/// keeping the *expected number of edited bases* equal to the i.i.d. model,
/// so accuracy results remain comparable across burstiness levels.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ErrorModel {
    /// Independent per-base events (the paper's dataset construction).
    Iid(ErrorProfile),
    /// Indel events extend into runs with the given mean length (≥ 1);
    /// event rates are divided by the mean so the per-base indel rate is
    /// unchanged. Substitutions stay i.i.d.
    Bursty {
        /// Per-base error rates, interpreted as in the i.i.d. model.
        profile: ErrorProfile,
        /// Mean indel-run length; `1.0` degenerates to i.i.d.
        mean_burst_len: f64,
    },
}

impl ErrorModel {
    /// The underlying per-base error profile.
    #[must_use]
    pub fn profile(&self) -> &ErrorProfile {
        match self {
            ErrorModel::Iid(profile) | ErrorModel::Bursty { profile, .. } => profile,
        }
    }

    /// Generates a read of exactly `len` bases starting at
    /// `reference[start]` under this model.
    ///
    /// # Panics
    ///
    /// Panics if the reference window is too short (see [`inject_errors`])
    /// or a bursty model has `mean_burst_len < 1`.
    #[must_use]
    pub fn inject(
        &self,
        reference: &[Base],
        start: usize,
        len: usize,
        rng: &mut Rng,
    ) -> (DnaSeq, EditLog) {
        match *self {
            ErrorModel::Iid(ref profile) => inject_errors(reference, start, len, profile, rng),
            ErrorModel::Bursty {
                ref profile,
                mean_burst_len,
            } => inject_errors_bursty(reference, start, len, profile, mean_burst_len, rng),
        }
    }
}

/// Like [`inject_errors`] but indel events extend into geometric runs of
/// mean length `mean_burst_len`; event rates are scaled down by the mean so
/// the expected indel bases per read are unchanged.
///
/// # Panics
///
/// Panics if `mean_burst_len < 1` or the reference window is too short.
#[must_use]
pub fn inject_errors_bursty(
    reference: &[Base],
    start: usize,
    len: usize,
    profile: &ErrorProfile,
    mean_burst_len: f64,
    rng: &mut Rng,
) -> (DnaSeq, EditLog) {
    assert!(
        mean_burst_len >= 1.0,
        "mean burst length must be at least 1"
    );
    let continue_p = 1.0 - 1.0 / mean_burst_len;
    let ins_event = profile.insertion / mean_burst_len;
    let del_event = profile.deletion / mean_burst_len;
    let mut log = EditLog::new();
    let mut read = DnaSeq::with_capacity(len);
    let mut cursor = start;
    while read.len() < len {
        let u: f64 = rng.gen();
        if u < ins_event {
            // Insertion burst: at least one inserted base, geometric tail.
            loop {
                let base = BASES[rng.gen_range(0..4)];
                log.push(EditOp::Insert(base));
                read.push(base);
                if read.len() >= len || rng.gen::<f64>() >= continue_p {
                    break;
                }
            }
        } else if u < ins_event + del_event {
            loop {
                assert!(
                    cursor < reference.len(),
                    "reference exhausted at {cursor} while injecting errors"
                );
                log.push(EditOp::Delete);
                cursor += 1;
                if rng.gen::<f64>() >= continue_p {
                    break;
                }
            }
        } else {
            assert!(
                cursor < reference.len(),
                "reference exhausted at {cursor} while injecting errors"
            );
            let original = reference[cursor];
            cursor += 1;
            if rng.gen::<f64>() < profile.substitution {
                let substituted = original.substituted(rng.gen_range(0..3));
                log.push(EditOp::Substitute(substituted));
                read.push(substituted);
            } else {
                log.push(EditOp::Match);
                read.push(original);
            }
        }
    }
    (read, log)
}

/// Generates a read of exactly `len` bases starting at `reference[start]`,
/// injecting errors according to `profile`, and returns the read together
/// with its [`EditLog`].
///
/// At each emitted position the injector draws one event: insertion with
/// probability `e_i`, deletion with probability `e_d` (retrying the
/// emission), otherwise a reference copy that is substituted with
/// probability `e_s`. Substituted bases are always different from the
/// original, per the paper's definition of an edit.
///
/// # Panics
///
/// Panics if the reference window starting at `start` is too short to supply
/// `len` bases after deletions. Callers should leave headroom of a few bases
/// beyond `start + len` (see [`crate::reads::ReadSampler`]).
#[must_use]
pub fn inject_errors(
    reference: &[Base],
    start: usize,
    len: usize,
    profile: &ErrorProfile,
    rng: &mut Rng,
) -> (DnaSeq, EditLog) {
    let mut log = EditLog::new();
    let mut read = DnaSeq::with_capacity(len);
    let mut cursor = start;
    while read.len() < len {
        let u: f64 = rng.gen();
        if u < profile.insertion {
            let base = BASES[rng.gen_range(0..4)];
            log.push(EditOp::Insert(base));
            read.push(base);
        } else if u < profile.insertion + profile.deletion {
            assert!(
                cursor < reference.len(),
                "reference exhausted at {cursor} while injecting errors"
            );
            log.push(EditOp::Delete);
            cursor += 1;
        } else {
            assert!(
                cursor < reference.len(),
                "reference exhausted at {cursor} while injecting errors"
            );
            let original = reference[cursor];
            cursor += 1;
            if rng.gen::<f64>() < profile.substitution {
                let substituted = original.substituted(rng.gen_range(0..3));
                log.push(EditOp::Substitute(substituted));
                read.push(substituted);
            } else {
                log.push(EditOp::Match);
                read.push(original);
            }
        }
    }
    (read, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::GenomeModel;
    use proptest::prelude::*;

    #[test]
    fn condition_constants_match_paper() {
        let a = ErrorProfile::condition_a();
        assert_eq!(
            (a.substitution, a.insertion, a.deletion),
            (0.01, 0.0005, 0.0005)
        );
        let b = ErrorProfile::condition_b();
        assert_eq!(
            (b.substitution, b.insertion, b.deletion),
            (0.001, 0.005, 0.005)
        );
    }

    #[test]
    #[should_panic(expected = "less than 1")]
    fn profile_rejects_rates_summing_to_one() {
        let _ = ErrorProfile::new(0.5, 0.3, 0.2);
    }

    #[test]
    fn error_free_reads_copy_reference() {
        let genome = GenomeModel::uniform().generate(1000, 1);
        let mut rng = crate::rng(2);
        let (read, log) = inject_errors(
            genome.as_slice(),
            100,
            256,
            &ErrorProfile::error_free(),
            &mut rng,
        );
        assert_eq!(read, genome.window(100..356));
        assert_eq!(log.total(), 0);
        assert_eq!(log.reference_span(), 256);
    }

    #[test]
    fn injection_rates_are_statistically_plausible() {
        let genome = GenomeModel::uniform().generate(400_000, 3);
        let mut rng = crate::rng(4);
        let profile = ErrorProfile::condition_b();
        let mut subs = 0usize;
        let mut ins = 0usize;
        let mut del = 0usize;
        let reads = 500usize;
        let len = 256usize;
        for i in 0..reads {
            let (_, log) = inject_errors(genome.as_slice(), i * 700, len, &profile, &mut rng);
            subs += log.substitutions();
            ins += log.insertions();
            del += log.deletions();
        }
        let per_base = (reads * len) as f64;
        let sub_rate = subs as f64 / per_base;
        let ins_rate = ins as f64 / per_base;
        let del_rate = del as f64 / per_base;
        assert!((sub_rate - 0.001).abs() < 0.0006, "sub rate {sub_rate}");
        assert!((ins_rate - 0.005).abs() < 0.0015, "ins rate {ins_rate}");
        assert!((del_rate - 0.005).abs() < 0.0015, "del rate {del_rate}");
    }

    #[test]
    fn log_replay_reconstructs_read() {
        let genome = GenomeModel::human_like().generate(10_000, 5);
        let mut rng = crate::rng(6);
        for start in [0usize, 512, 4096] {
            let (read, log) = inject_errors(
                genome.as_slice(),
                start,
                256,
                &ErrorProfile::condition_b(),
                &mut rng,
            );
            let span = log.reference_span();
            let replayed = log.apply(&genome.as_slice()[start..start + span]);
            assert_eq!(replayed, read);
            assert_eq!(log.read_len(), 256);
        }
    }

    #[test]
    fn net_shift_tracks_indel_imbalance() {
        let mut log = EditLog::new();
        log.push(EditOp::Insert(Base::A));
        log.push(EditOp::Insert(Base::C));
        log.push(EditOp::Delete);
        assert_eq!(log.net_shift(), 1);
        assert_eq!(log.longest_indel_run(), 3);
        log.push(EditOp::Match);
        log.push(EditOp::Delete);
        assert_eq!(log.net_shift(), 0);
        assert_eq!(log.longest_indel_run(), 3);
    }

    #[test]
    fn bursty_model_produces_longer_runs() {
        let genome = GenomeModel::uniform().generate(600_000, 8);
        let profile = ErrorProfile::condition_b();
        let mut rng_iid = crate::rng(9);
        let mut rng_burst = crate::rng(9);
        let reads = 400usize;
        let mut iid_runs = Vec::new();
        let mut burst_runs = Vec::new();
        let mut iid_indels = 0usize;
        let mut burst_indels = 0usize;
        for i in 0..reads {
            let start = i * 1200;
            let (_, log) = inject_errors(genome.as_slice(), start, 256, &profile, &mut rng_iid);
            iid_runs.push(log.longest_indel_run());
            iid_indels += log.insertions() + log.deletions();
            let (_, log) =
                inject_errors_bursty(genome.as_slice(), start, 256, &profile, 3.0, &mut rng_burst);
            burst_runs.push(log.longest_indel_run());
            burst_indels += log.insertions() + log.deletions();
        }
        let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
        assert!(
            mean(&burst_runs) > mean(&iid_runs) + 0.3,
            "bursty runs {:.2} vs iid {:.2}",
            mean(&burst_runs),
            mean(&iid_runs)
        );
        // Total indel mass stays comparable (within 35%).
        let ratio = burst_indels as f64 / iid_indels as f64;
        assert!((0.65..1.35).contains(&ratio), "indel mass ratio {ratio}");
    }

    #[test]
    fn bursty_replay_reconstructs_read() {
        let genome = GenomeModel::uniform().generate(5_000, 10);
        let model = ErrorModel::Bursty {
            profile: ErrorProfile::condition_b(),
            mean_burst_len: 2.5,
        };
        let mut rng = crate::rng(11);
        let (read, log) = model.inject(genome.as_slice(), 50, 256, &mut rng);
        let span = log.reference_span();
        assert_eq!(log.apply(&genome.as_slice()[50..50 + span]), read);
        assert_eq!(read.len(), 256);
    }

    #[test]
    fn bursty_with_unit_mean_behaves_like_iid_statistically() {
        let genome = GenomeModel::uniform().generate(300_000, 12);
        let profile = ErrorProfile::condition_b();
        let mut rng = crate::rng(13);
        let mut indels = 0usize;
        let reads = 300usize;
        for i in 0..reads {
            let (_, log) =
                inject_errors_bursty(genome.as_slice(), i * 900, 256, &profile, 1.0, &mut rng);
            indels += log.insertions() + log.deletions();
        }
        let rate = indels as f64 / (reads * 256) as f64;
        assert!((rate - 0.01).abs() < 0.003, "indel rate {rate}");
    }

    proptest! {
        #[test]
        fn prop_replay_matches_read(seed in 0u64..500) {
            let genome = GenomeModel::uniform().generate(2_000, seed);
            let mut rng = crate::rng(seed.wrapping_mul(7919));
            let (read, log) = inject_errors(
                genome.as_slice(),
                10,
                128,
                &ErrorProfile::condition_b(),
                &mut rng,
            );
            let span = log.reference_span();
            prop_assert_eq!(log.apply(&genome.as_slice()[10..10 + span]), read);
            prop_assert_eq!(log.read_len(), 128);
            // substitutions + matches + deletions consume the span
            prop_assert_eq!(
                log.reference_span(),
                log.substitutions() + log.deletions()
                    + (log.ops().len() - log.total())
            );
        }
    }
}
