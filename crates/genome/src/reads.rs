//! Read sampling from a reference genome.

use crate::errors::{EditLog, ErrorModel, ErrorProfile};
use crate::seq::DnaSeq;
use crate::Rng;
use rand::Rng as _;

/// A read sampled from a reference, together with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SampledRead {
    /// The (possibly erroneous) read bases.
    pub bases: DnaSeq,
    /// Start position of the read's origin in the reference.
    pub origin: usize,
    /// The alignment script relating the read to the reference.
    pub edits: EditLog,
}

impl SampledRead {
    /// The reference segment of the same length as the read, aligned at the
    /// read's origin — the row an ASMCap array would store for this
    /// position.
    ///
    /// # Panics
    ///
    /// Panics if the reference is shorter than `origin + read length`.
    #[must_use]
    pub fn aligned_segment(&self, reference: &DnaSeq) -> DnaSeq {
        reference.window(self.origin..self.origin + self.bases.len())
    }
}

/// Samples fixed-length reads from random reference positions, injecting
/// errors according to an [`ErrorProfile`].
///
/// This reproduces the paper's dataset construction (§V-A): "The reads are
/// set to 256-base length … and extracted from random positions in human DNA
/// sequences. Then, edits are randomly injected."
///
/// # Examples
///
/// ```
/// use asmcap_genome::{GenomeModel, ErrorProfile, ReadSampler};
/// let genome = GenomeModel::uniform().generate(10_000, 1);
/// let sampler = ReadSampler::new(256, ErrorProfile::condition_b());
/// let reads = sampler.sample_many(&genome, 10, 99);
/// assert_eq!(reads.len(), 10);
/// assert!(reads.iter().all(|r| r.bases.len() == 256));
/// ```
#[derive(Debug, Clone)]
pub struct ReadSampler {
    read_len: usize,
    model: ErrorModel,
    headroom: usize,
}

impl ReadSampler {
    /// Creates a sampler for `read_len`-base reads with i.i.d. errors.
    ///
    /// # Panics
    ///
    /// Panics if `read_len` is zero.
    #[must_use]
    pub fn new(read_len: usize, profile: ErrorProfile) -> Self {
        Self::with_model(read_len, ErrorModel::Iid(profile))
    }

    /// Creates a sampler with an explicit [`ErrorModel`] (e.g. bursty
    /// indels).
    ///
    /// # Panics
    ///
    /// Panics if `read_len` is zero.
    #[must_use]
    pub fn with_model(read_len: usize, model: ErrorModel) -> Self {
        assert!(read_len > 0, "read length must be positive");
        // Headroom past `origin + read_len` absorbs deletions: the expected
        // number is e_d * read_len; 8 sigma (inflated by burst clustering)
        // plus a constant is effectively always enough and is checked by an
        // assertion in the injector.
        let burst = match model {
            ErrorModel::Iid(_) => 1.0,
            ErrorModel::Bursty { mean_burst_len, .. } => mean_burst_len,
        };
        let expected_del = model.profile().deletion * read_len as f64;
        let headroom = (expected_del + 8.0 * (expected_del * burst).sqrt()).ceil() as usize
            + 16
            + burst as usize;
        Self {
            read_len,
            model,
            headroom,
        }
    }

    /// The configured read length.
    #[must_use]
    pub fn read_len(&self) -> usize {
        self.read_len
    }

    /// The configured error profile.
    #[must_use]
    pub fn profile(&self) -> &ErrorProfile {
        self.model.profile()
    }

    /// The configured error model.
    #[must_use]
    pub fn model(&self) -> &ErrorModel {
        &self.model
    }

    /// Largest valid origin for the given reference length, or `None` if the
    /// reference is too short to sample from at all.
    #[must_use]
    pub fn max_origin(&self, reference_len: usize) -> Option<usize> {
        reference_len.checked_sub(self.read_len + self.headroom)
    }

    /// Samples one read from a random origin.
    ///
    /// # Panics
    ///
    /// Panics if the reference is shorter than read length plus headroom.
    #[must_use]
    pub fn sample(&self, reference: &DnaSeq, seed: u64) -> SampledRead {
        let mut rng = crate::rng(seed);
        self.sample_with(reference, &mut rng)
    }

    /// Samples one read using the caller's RNG.
    ///
    /// # Panics
    ///
    /// Panics if the reference is shorter than read length plus headroom.
    #[must_use]
    pub fn sample_with(&self, reference: &DnaSeq, rng: &mut Rng) -> SampledRead {
        let max_origin = self.max_origin(reference.len()).unwrap_or_else(|| {
            // lint: panic-ok — the documented `# Panics` contract above
            panic!(
                "reference of {} bases is too short for {}-base reads (+{} headroom)",
                reference.len(),
                self.read_len,
                self.headroom
            )
        });
        let origin = rng.gen_range(0..=max_origin);
        self.sample_at(reference, origin, rng)
    }

    /// Samples one read anchored at a specific origin.
    ///
    /// # Panics
    ///
    /// Panics if `origin` exceeds [`ReadSampler::max_origin`].
    #[must_use]
    pub fn sample_at(&self, reference: &DnaSeq, origin: usize, rng: &mut Rng) -> SampledRead {
        let (bases, edits) = self
            .model
            .inject(reference.as_slice(), origin, self.read_len, rng);
        SampledRead {
            bases,
            origin,
            edits,
        }
    }

    /// Samples `count` reads deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is shorter than read length plus headroom.
    #[must_use]
    pub fn sample_many(&self, reference: &DnaSeq, count: usize, seed: u64) -> Vec<SampledRead> {
        let mut rng = crate::rng(seed);
        (0..count)
            .map(|_| self.sample_with(reference, &mut rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::GenomeModel;

    #[test]
    fn sampled_reads_have_requested_length() {
        let genome = GenomeModel::uniform().generate(5_000, 1);
        let sampler = ReadSampler::new(128, ErrorProfile::condition_a());
        for read in sampler.sample_many(&genome, 20, 7) {
            assert_eq!(read.bases.len(), 128);
            assert!(read.origin <= sampler.max_origin(genome.len()).unwrap());
        }
    }

    #[test]
    fn error_free_read_equals_aligned_segment() {
        let genome = GenomeModel::uniform().generate(5_000, 2);
        let sampler = ReadSampler::new(256, ErrorProfile::error_free());
        let read = sampler.sample(&genome, 3);
        assert_eq!(read.bases, read.aligned_segment(&genome));
        assert_eq!(read.edits.total(), 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let genome = GenomeModel::uniform().generate(5_000, 4);
        let sampler = ReadSampler::new(256, ErrorProfile::condition_b());
        assert_eq!(
            sampler.sample_many(&genome, 5, 10),
            sampler.sample_many(&genome, 5, 10)
        );
    }

    #[test]
    fn edit_log_is_consistent_with_reference() {
        let genome = GenomeModel::human_like().generate(8_000, 5);
        let sampler = ReadSampler::new(256, ErrorProfile::condition_b());
        for read in sampler.sample_many(&genome, 30, 11) {
            let span = read.edits.reference_span();
            let window = &genome.as_slice()[read.origin..read.origin + span];
            assert_eq!(read.edits.apply(window), read.bases);
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_reference_panics() {
        let genome = GenomeModel::uniform().generate(100, 1);
        let sampler = ReadSampler::new(256, ErrorProfile::condition_a());
        let _ = sampler.sample(&genome, 1);
    }

    #[test]
    fn max_origin_accounts_for_headroom() {
        let sampler = ReadSampler::new(256, ErrorProfile::condition_a());
        assert!(sampler.max_origin(200).is_none());
        let genome_len = 1000;
        let max = sampler.max_origin(genome_len).unwrap();
        assert!(max < genome_len - 256);
    }
}
