//! Minimal FASTA reading and writing.
//!
//! The evaluation datasets are synthetic, but a downstream user will want to
//! run ASMCap on real references and reads, so the crate ships a small,
//! dependency-free FASTA codec. Records with ambiguity codes (`N`, …) are
//! rejected rather than silently mangled; callers that need to tolerate them
//! can pre-filter with [`sanitize`].

use crate::base::Base;
use crate::seq::DnaSeq;
use std::fmt;
use std::io::{self, BufRead, Write};

/// One FASTA record: a header line (without `>`) and its sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FastaRecord {
    /// Header text following `>` (identifier and free-form description).
    pub id: String,
    /// The record's sequence.
    pub seq: DnaSeq,
}

/// Error produced while parsing FASTA input.
#[derive(Debug)]
pub enum ParseFastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence data appeared before any `>` header.
    MissingHeader {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A sequence line contained a byte outside `ACGTacgt`.
    InvalidBase {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
}

impl fmt::Display for ParseFastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseFastaError::Io(e) => write!(f, "i/o error reading fasta: {e}"),
            ParseFastaError::MissingHeader { line } => {
                write!(f, "sequence data before any '>' header at line {line}")
            }
            ParseFastaError::InvalidBase { line, byte } => {
                write!(f, "invalid base byte 0x{byte:02x} at line {line}")
            }
        }
    }
}

impl std::error::Error for ParseFastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseFastaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseFastaError {
    fn from(e: io::Error) -> Self {
        ParseFastaError::Io(e)
    }
}

/// Reads all records from FASTA-formatted input.
///
/// A mutable reference to a reader can be passed as well (`&mut r`), since
/// `BufRead` is implemented for mutable references.
///
/// # Errors
///
/// Returns [`ParseFastaError`] on I/O failure, on sequence data appearing
/// before any header, or on bytes outside the `ACGT` alphabet.
///
/// # Examples
///
/// ```
/// let input = b">chr1 test\nACGT\nacgt\n>chr2\nTTTT\n";
/// let records = asmcap_genome::fasta::read_fasta(&input[..])?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].id, "chr1 test");
/// assert_eq!(records[0].seq.to_string(), "ACGTACGT");
/// # Ok::<(), asmcap_genome::fasta::ParseFastaError>(())
/// ```
pub fn read_fasta<R: BufRead>(reader: R) -> Result<Vec<FastaRecord>, ParseFastaError> {
    let mut records = Vec::new();
    let mut current: Option<FastaRecord> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('>') {
            if let Some(done) = current.take() {
                records.push(done);
            }
            current = Some(FastaRecord {
                id: header.trim().to_owned(),
                seq: DnaSeq::new(),
            });
        } else {
            let record = current
                .as_mut()
                .ok_or(ParseFastaError::MissingHeader { line: line_no })?;
            for &byte in trimmed.as_bytes() {
                let base = Base::try_from(byte).map_err(|e| ParseFastaError::InvalidBase {
                    line: line_no,
                    byte: e.byte(),
                })?;
                record.seq.push(base);
            }
        }
    }
    if let Some(done) = current.take() {
        records.push(done);
    }
    Ok(records)
}

/// Error produced while writing FASTA output.
#[derive(Debug)]
pub enum WriteFastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A record id contains a line break (`\n` or `\r`), which would emit a
    /// corrupt stream: `read_fasta` would parse the remainder of the id as
    /// sequence data or as a forged extra record.
    IdWithLineBreak {
        /// The offending id, verbatim.
        id: String,
    },
}

impl fmt::Display for WriteFastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteFastaError::Io(e) => write!(f, "i/o error writing fasta: {e}"),
            WriteFastaError::IdWithLineBreak { id } => {
                write!(f, "record id {id:?} contains a line break")
            }
        }
    }
}

impl std::error::Error for WriteFastaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WriteFastaError::Io(e) => Some(e),
            WriteFastaError::IdWithLineBreak { .. } => None,
        }
    }
}

impl From<io::Error> for WriteFastaError {
    fn from(e: io::Error) -> Self {
        WriteFastaError::Io(e)
    }
}

/// Writes records in FASTA format with `width`-column sequence lines.
///
/// # Errors
///
/// Returns [`WriteFastaError::IdWithLineBreak`] — before anything is
/// written — if any record id contains `\n` or `\r`: such an id would
/// produce a stream that [`read_fasta`] parses back differently (an id of
/// `"evil\n>fake"` reads back as *two* records). I/O failures from the
/// writer are propagated as [`WriteFastaError::Io`].
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn write_fasta<W: Write>(
    mut writer: W,
    records: &[FastaRecord],
    width: usize,
) -> Result<(), WriteFastaError> {
    assert!(width > 0, "line width must be positive");
    // Validate every id up front so a bad record cannot leave a partial,
    // corrupt stream behind.
    if let Some(bad) = records
        .iter()
        .find(|r| r.id.contains('\n') || r.id.contains('\r'))
    {
        return Err(WriteFastaError::IdWithLineBreak { id: bad.id.clone() });
    }
    for record in records {
        writeln!(writer, ">{}", record.id)?;
        let rendered = record.seq.to_string();
        for chunk in rendered.as_bytes().chunks(width) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Replaces every byte outside `ACGTacgt` with a deterministic base derived
/// from its position, so real-world references containing `N` runs can still
/// be loaded. Equivalent to [`sanitize_at`] with offset 0 — only correct
/// for a **whole** record; when sanitizing a record line by line, pass each
/// line's running record offset to [`sanitize_at`] instead, or the
/// replacement bases diverge from the whole-record result.
///
/// The replacement cycles `A,C,G,T` by position, which keeps composition
/// roughly uniform without pulling randomness into the parsing path.
///
/// # Examples
///
/// ```
/// let clean = asmcap_genome::fasta::sanitize(b"ACNNGT");
/// assert_eq!(&clean, b"ACGTGT");
/// ```
#[must_use]
pub fn sanitize(bytes: &[u8]) -> Vec<u8> {
    sanitize_at(bytes, 0)
}

/// [`sanitize`] for a slice that starts `offset` bases into its record:
/// replacement bases are derived from the **record** position
/// `offset + i`, not the slice position, so chunked sanitizing (line by
/// line, with a running offset) produces byte-identical output to
/// sanitizing the whole record at once.
///
/// # Examples
///
/// ```
/// use asmcap_genome::fasta::{sanitize, sanitize_at};
/// let record = b"NNACNNGT";
/// let whole = sanitize(record);
/// let mut chunked = sanitize_at(&record[..3], 0);
/// chunked.extend_from_slice(&sanitize_at(&record[3..], 3));
/// assert_eq!(chunked, whole);
/// ```
#[must_use]
pub fn sanitize_at(bytes: &[u8], offset: usize) -> Vec<u8> {
    const CYCLE: [u8; 4] = [b'A', b'C', b'G', b'T'];
    bytes
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            if Base::try_from(b).is_ok() {
                b
            } else {
                CYCLE[(offset + i) % 4]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_writer_and_reader() {
        let records = vec![
            FastaRecord {
                id: "r1 first".to_owned(),
                seq: "ACGTACGTACGT".parse().unwrap(),
            },
            FastaRecord {
                id: "r2".to_owned(),
                seq: "TTTT".parse().unwrap(),
            },
        ];
        let mut buffer = Vec::new();
        write_fasta(&mut buffer, &records, 5).unwrap();
        let parsed = read_fasta(&buffer[..]).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn read_skips_blank_lines_and_joins_wrapped_sequence() {
        let input = b">x\nAC\n\nGT\n";
        let records = read_fasta(&input[..]).unwrap();
        assert_eq!(records[0].seq.to_string(), "ACGT");
    }

    #[test]
    fn read_rejects_headerless_sequence() {
        let err = read_fasta(&b"ACGT\n"[..]).unwrap_err();
        assert!(matches!(err, ParseFastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn read_rejects_invalid_base_with_position() {
        let err = read_fasta(&b">x\nACNT\n"[..]).unwrap_err();
        match err {
            ParseFastaError::InvalidBase { line, byte } => {
                assert_eq!(line, 2);
                assert_eq!(byte, b'N');
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(read_fasta(&b""[..]).unwrap().is_empty());
    }

    #[test]
    fn header_only_record_is_allowed() {
        let records = read_fasta(&b">empty\n"[..]).unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].seq.is_empty());
    }

    #[test]
    fn sanitize_preserves_valid_bases() {
        let input = b"ACGTNRYacgt";
        let clean = sanitize(input);
        assert_eq!(clean.len(), input.len());
        assert!(
            read_fasta(format!(">s\n{}\n", String::from_utf8(clean).unwrap()).as_bytes()).is_ok()
        );
    }

    #[test]
    #[should_panic(expected = "line width")]
    fn zero_width_panics() {
        let _ = write_fasta(Vec::new(), &[], 0);
    }

    /// Regression: an id with an embedded newline used to emit a corrupt
    /// stream that read back as *two* records. It is now a typed error and
    /// nothing is written at all.
    #[test]
    fn write_rejects_ids_with_line_breaks() {
        for evil in ["evil\n>fake", "evil\rfake", "evil\r\n>fake"] {
            let records = vec![
                FastaRecord {
                    id: "good".to_owned(),
                    seq: "ACGT".parse().unwrap(),
                },
                FastaRecord {
                    id: evil.to_owned(),
                    seq: "TTTT".parse().unwrap(),
                },
            ];
            let mut buffer = Vec::new();
            let err = write_fasta(&mut buffer, &records, 60).unwrap_err();
            match err {
                WriteFastaError::IdWithLineBreak { id } => assert_eq!(id, evil),
                other => panic!("unexpected error {other:?}"),
            }
            assert!(buffer.is_empty(), "nothing may be written on a bad id");
        }
        // The clean subset still roundtrips.
        let clean = vec![FastaRecord {
            id: "good".to_owned(),
            seq: "ACGT".parse().unwrap(),
        }];
        let mut buffer = Vec::new();
        write_fasta(&mut buffer, &clean, 60).unwrap();
        assert_eq!(read_fasta(&buffer[..]).unwrap(), clean);
    }

    /// Regression: `sanitize` derived replacements from the slice offset,
    /// so line-by-line sanitizing diverged from whole-record sanitizing.
    /// `sanitize_at` with a running offset closes the gap.
    #[test]
    fn chunked_sanitize_at_matches_whole_record() {
        let record = b"NNACGNNTNNNNACGTNN";
        let whole = sanitize(record);
        for split in 0..record.len() {
            let mut chunked = sanitize_at(&record[..split], 0);
            chunked.extend_from_slice(&sanitize_at(&record[split..], split));
            assert_eq!(chunked, whole, "diverged at split {split}");
        }
        // The old bug, pinned: plain `sanitize` per chunk is NOT equivalent
        // unless the chunk starts at a multiple of the cycle length.
        let mut naive = sanitize(&record[..3]);
        naive.extend_from_slice(&sanitize(&record[3..]));
        assert_ne!(
            naive, whole,
            "offset-less chunking must stay observably wrong"
        );
    }
}
