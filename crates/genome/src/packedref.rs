//! Zero-copy packed reference segments.
//!
//! The mapping pipeline stores one reference and compares thousands of
//! reads against millions of overlapping windows of it. Re-slicing (or
//! worse, re-packing) the reference per window would dominate the packed
//! kernels it feeds, so this module packs the reference **once** into a
//! [`PackedRef`] and hands out [`SegmentView`]s — `(offset, width)` views
//! whose words are produced on demand by a word-aligned bit-shift across
//! word boundaries. A view never allocates; extracting word `i` of a view
//! costs two shifts and an OR.
//!
//! Views implement [`PackedWords`], so the `asmcap-metrics` kernels
//! (`ed_star_packed`, `hamming_packed`) consume them directly: comparing a
//! packed read against any reference window is word-parallel end to end.

use crate::packed::{extract, shifted_word, tail_mask, PackedSeq, PackedWords, BASES_PER_WORD};
use crate::seq::DnaSeq;

/// A reference sequence packed once at 2 bits per base, serving zero-copy
/// segment views.
///
/// # Examples
///
/// ```
/// use asmcap_genome::{DnaSeq, PackedRef, PackedWords as _};
/// let reference: DnaSeq = "ACGTACGTACGT".parse()?;
/// let packed = PackedRef::new(&reference);
/// let view = packed.segment(3, 6);
/// assert_eq!(view.len(), 6);
/// assert_eq!(view.to_packed().to_seq(), reference.window(3..9));
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedRef {
    packed: PackedSeq,
}

impl PackedRef {
    /// Packs a reference sequence.
    #[must_use]
    pub fn new(reference: &DnaSeq) -> Self {
        Self {
            packed: PackedSeq::from_seq(reference),
        }
    }

    /// Wraps an already packed sequence.
    #[must_use]
    pub fn from_packed(packed: PackedSeq) -> Self {
        Self { packed }
    }

    /// Reference length in bases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// Whether the reference is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// The underlying packing.
    #[must_use]
    pub fn as_packed(&self) -> &PackedSeq {
        &self.packed
    }

    /// A zero-copy view of the `width`-base segment starting at `offset` —
    /// the packed equivalent of `&reference[offset..offset + width]`.
    ///
    /// # Panics
    ///
    /// Panics if the segment runs past the reference end.
    #[must_use]
    pub fn segment(&self, offset: usize, width: usize) -> SegmentView<'_> {
        assert!(
            offset
                .checked_add(width)
                .is_some_and(|end| end <= self.len()),
            "segment {offset}+{width} out of reference of {} bases",
            self.len()
        );
        SegmentView {
            words: self.packed.as_words(),
            first_word: offset / BASES_PER_WORD,
            shift: (2 * (offset % BASES_PER_WORD)) as u32,
            offset,
            width,
        }
    }
}

impl From<&DnaSeq> for PackedRef {
    fn from(reference: &DnaSeq) -> Self {
        Self::new(reference)
    }
}

/// A borrowed `(offset, width)` window of a [`PackedRef`].
///
/// [`PackedWords::word`] assembles each output word from at most two
/// underlying reference words (a shift pair), masking the tail so the
/// zero-lanes invariant holds — which is what lets the matching kernels run
/// on views and owned sequences interchangeably.
#[derive(Debug, Clone, Copy)]
pub struct SegmentView<'a> {
    words: &'a [u64],
    first_word: usize,
    shift: u32,
    offset: usize,
    width: usize,
}

impl SegmentView<'_> {
    /// Start offset of the view within the reference.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The base at `index` within the view, or `None` past the end.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<crate::Base> {
        if index >= self.width {
            return None;
        }
        let word = self.word(index / BASES_PER_WORD);
        let shift = 2 * (index % BASES_PER_WORD);
        Some(crate::Base::from_code((word >> shift) as u8))
    }

    /// Unpacks the view into an owned [`DnaSeq`].
    #[must_use]
    pub fn to_seq(&self) -> DnaSeq {
        self.to_packed().to_seq()
    }
}

impl PackedWords for SegmentView<'_> {
    fn len(&self) -> usize {
        self.width
    }

    fn word(&self, i: usize) -> u64 {
        let word = shifted_word(self.words, self.first_word, self.shift, i);
        let remaining = self.width - i * BASES_PER_WORD;
        if remaining >= BASES_PER_WORD {
            word
        } else {
            word & tail_mask(remaining)
        }
    }

    fn as_word_slice(&self) -> Option<&[u64]> {
        // A view is a contiguous subslice of the reference words only when
        // it starts on a word boundary AND fills its last word completely
        // (otherwise that word's tail lanes hold live reference bases, which
        // would violate the zero-tail contract).
        if self.shift == 0 && self.width.is_multiple_of(BASES_PER_WORD) {
            let n_words = self.width / BASES_PER_WORD;
            Some(&self.words[self.first_word..self.first_word + n_words])
        } else {
            None
        }
    }

    fn to_packed(&self) -> PackedSeq {
        extract(self.words, self.offset, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Base;
    use proptest::prelude::*;

    fn test_seq(len: usize) -> DnaSeq {
        (0..len)
            .map(|i| Base::from_code(((i * 5 + i / 11) % 4) as u8))
            .collect()
    }

    #[test]
    fn views_agree_with_slices_across_word_boundaries() {
        let reference = test_seq(300);
        let packed = PackedRef::new(&reference);
        for (offset, width) in [
            (0, 64),
            (1, 64),
            (31, 33),
            (32, 32),
            (33, 100),
            (63, 65),
            (299, 1),
            (0, 300),
        ] {
            let view = packed.segment(offset, width);
            assert_eq!(
                view.to_seq(),
                reference.window(offset..offset + width),
                "segment({offset}, {width})"
            );
            assert_eq!(view.len(), width);
            assert_eq!(view.offset(), offset);
        }
    }

    #[test]
    fn view_words_keep_the_tail_invariant() {
        let reference = test_seq(200);
        let packed = PackedRef::new(&reference);
        let view = packed.segment(17, 40); // last view word holds 8 bases
        let last = view.word(view.n_words() - 1);
        assert_eq!(last >> 16, 0, "tail lanes must be zero");
        assert_eq!(
            view.to_packed(),
            PackedSeq::from_seq(&reference.window(17..57))
        );
    }

    #[test]
    fn get_indexes_within_the_view() {
        let reference = test_seq(100);
        let packed = PackedRef::new(&reference);
        let view = packed.segment(30, 40);
        for i in 0..40 {
            assert_eq!(view.get(i), Some(reference[30 + i]));
        }
        assert_eq!(view.get(40), None);
    }

    #[test]
    #[should_panic(expected = "out of reference")]
    fn oversized_segment_panics() {
        let packed = PackedRef::new(&test_seq(64));
        let _ = packed.segment(60, 8);
    }

    proptest! {
        #[test]
        fn prop_view_equals_window(
            codes in proptest::collection::vec(0u8..4, 1..300),
            offset_frac in 0.0f64..1.0,
            width_frac in 0.0f64..1.0
        ) {
            let reference: DnaSeq = codes.into_iter().map(Base::from_code).collect();
            let offset = ((reference.len() as f64) * offset_frac) as usize;
            let width = (((reference.len() - offset) as f64) * width_frac) as usize;
            let packed = PackedRef::new(&reference);
            let view = packed.segment(offset, width);
            prop_assert_eq!(view.to_seq(), reference.window(offset..offset + width));
            prop_assert_eq!(view.to_packed(), PackedSeq::from_seq(&reference.window(offset..offset + width)));
        }
    }
}
