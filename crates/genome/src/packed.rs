//! 2-bit packed sequence encoding.
//!
//! One DNA base occupies two bits, exactly as in the two 6T SRAM cells of an
//! ASMCap cell (paper Fig. 4c). Packing 32 bases per `u64` word also enables
//! the XOR/popcount Hamming-distance kernel in `asmcap-metrics`.

use crate::base::Base;
use crate::seq::DnaSeq;
use std::fmt;

const BASES_PER_WORD: usize = 32;

/// A DNA sequence packed at 2 bits per base, 32 bases per `u64` word.
///
/// Bases are stored little-endian within each word: base `i` occupies bits
/// `2*(i % 32) ..= 2*(i % 32) + 1` of word `i / 32`. Unused high bits of the
/// final word are zero — an invariant relied on by the word-level kernels.
///
/// # Examples
///
/// ```
/// use asmcap_genome::{DnaSeq, PackedSeq};
/// let seq: DnaSeq = "ACGTACGT".parse()?;
/// let packed = PackedSeq::from_seq(&seq);
/// assert_eq!(packed.len(), 8);
/// assert_eq!(packed.to_seq(), seq);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PackedSeq {
    words: Vec<u64>,
    len: usize,
}

impl PackedSeq {
    /// Packs a [`DnaSeq`].
    #[must_use]
    pub fn from_seq(seq: &DnaSeq) -> Self {
        Self::from_bases(seq.as_slice())
    }

    /// Packs a base slice.
    #[must_use]
    pub fn from_bases(bases: &[Base]) -> Self {
        let mut words = vec![0u64; bases.len().div_ceil(BASES_PER_WORD)];
        for (i, base) in bases.iter().enumerate() {
            let word = i / BASES_PER_WORD;
            let shift = 2 * (i % BASES_PER_WORD);
            words[word] |= u64::from(base.code()) << shift;
        }
        Self {
            words,
            len: bases.len(),
        }
    }

    /// Number of bases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the base at `index`, or `None` past the end.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Base> {
        if index >= self.len {
            return None;
        }
        let word = self.words[index / BASES_PER_WORD];
        let shift = 2 * (index % BASES_PER_WORD);
        Some(Base::from_code((word >> shift) as u8))
    }

    /// Borrows the packed words.
    ///
    /// Unused high bits of the last word are guaranteed zero.
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Unpacks into a [`DnaSeq`].
    #[must_use]
    pub fn to_seq(&self) -> DnaSeq {
        (0..self.len)
            .map(|i| self.get(i).expect("index within length"))
            .collect()
    }

    /// Counts positions where `self` and `other` hold different bases.
    ///
    /// This is the word-parallel Hamming kernel: XOR the 2-bit lanes, then
    /// OR the two bits of each lane together and popcount.
    ///
    /// # Panics
    ///
    /// Panics if the sequences have different lengths.
    #[must_use]
    pub fn hamming_distance(&self, other: &PackedSeq) -> usize {
        assert_eq!(
            self.len, other.len,
            "hamming distance requires equal-length sequences"
        );
        const LOW_BITS: u64 = 0x5555_5555_5555_5555;
        let mut distance = 0usize;
        for (a, b) in self.words.iter().zip(&other.words) {
            let diff = a ^ b;
            // A lane differs iff either of its two bits differs.
            let lane_mismatch = (diff | (diff >> 1)) & LOW_BITS;
            distance += lane_mismatch.count_ones() as usize;
        }
        distance
    }
}

impl From<&DnaSeq> for PackedSeq {
    fn from(seq: &DnaSeq) -> Self {
        Self::from_seq(seq)
    }
}

impl From<&PackedSeq> for DnaSeq {
    fn from(packed: &PackedSeq) -> Self {
        packed.to_seq()
    }
}

impl fmt::Display for PackedSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_seq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    #[test]
    fn roundtrip_short() {
        let s = seq("ACGTACGTA");
        assert_eq!(PackedSeq::from_seq(&s).to_seq(), s);
    }

    #[test]
    fn roundtrip_word_boundaries() {
        for len in [0, 1, 31, 32, 33, 63, 64, 65, 256] {
            let bases: Vec<Base> = (0..len).map(|i| Base::from_code(i as u8)).collect();
            let s = DnaSeq::from_bases(bases);
            let packed = PackedSeq::from_seq(&s);
            assert_eq!(packed.len(), len);
            assert_eq!(packed.to_seq(), s);
        }
    }

    #[test]
    fn get_past_end_is_none() {
        let packed = PackedSeq::from_seq(&seq("ACG"));
        assert_eq!(packed.get(2), Some(Base::G));
        assert_eq!(packed.get(3), None);
    }

    #[test]
    fn hamming_simple() {
        let a = PackedSeq::from_seq(&seq("ACGT"));
        let b = PackedSeq::from_seq(&seq("ACGA"));
        assert_eq!(a.hamming_distance(&b), 1);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn hamming_length_mismatch_panics() {
        let a = PackedSeq::from_seq(&seq("ACGT"));
        let b = PackedSeq::from_seq(&seq("ACG"));
        let _ = a.hamming_distance(&b);
    }

    #[test]
    fn unused_bits_are_zero() {
        let packed = PackedSeq::from_seq(&seq("TTT"));
        // 3 bases -> 6 bits used; rest must be zero.
        assert_eq!(packed.as_words()[0] >> 6, 0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(codes in proptest::collection::vec(0u8..4, 0..300)) {
            let s = DnaSeq::from_bases(codes.iter().map(|&c| Base::from_code(c)).collect());
            prop_assert_eq!(PackedSeq::from_seq(&s).to_seq(), s);
        }

        #[test]
        fn prop_hamming_matches_naive(
            pairs in proptest::collection::vec((0u8..4, 0u8..4), 0..300)
        ) {
            let a = DnaSeq::from_bases(pairs.iter().map(|&(x, _)| Base::from_code(x)).collect());
            let b = DnaSeq::from_bases(pairs.iter().map(|&(_, y)| Base::from_code(y)).collect());
            let naive = a
                .iter()
                .zip(b.iter())
                .filter(|(x, y)| x != y)
                .count();
            let packed = PackedSeq::from_seq(&a).hamming_distance(&PackedSeq::from_seq(&b));
            prop_assert_eq!(packed, naive);
        }
    }
}
