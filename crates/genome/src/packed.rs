//! 2-bit packed sequence encoding.
//!
//! One DNA base occupies two bits, exactly as in the two 6T SRAM cells of an
//! ASMCap cell (paper Fig. 4c). Packing 32 bases per `u64` word enables the
//! word-parallel matching kernels in `asmcap-metrics`
//! (`ed_star_packed` / `hamming_packed`): XOR the 2-bit lanes, OR the odd and
//! even bitplanes, popcount — 32 cell comparisons per instruction instead of
//! one.
//!
//! [`PackedWords`] is the word-access abstraction those kernels run on. Both
//! owned sequences ([`PackedSeq`]) and zero-copy reference segments
//! ([`crate::packedref::SegmentView`]) implement it, so a kernel can compare
//! a read against a reference window without materialising the window.

use crate::base::Base;
use crate::seq::DnaSeq;
use std::fmt;
use std::ops::Range;

/// Bases per `u64` word at 2 bits per base.
pub const BASES_PER_WORD: usize = 32;

/// Word-level access to a 2-bit packed base sequence.
///
/// Word `i` holds bases `32*i .. 32*i + 32` little-endian (base `j` in bits
/// `2*(j % 32) ..= 2*(j % 32) + 1`). Implementations must keep every lane at
/// index `>= len()` zero — the kernels in `asmcap-metrics` rely on clean
/// tails to skip masking in their inner loops.
pub trait PackedWords {
    /// Number of bases.
    fn len(&self) -> usize;

    /// Word `i` of the packing. Must be callable for `i < n_words()`;
    /// lanes beyond [`PackedWords::len`] are zero.
    fn word(&self, i: usize) -> u64;

    /// Whether the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The packing's words as one contiguous slice, when such a slice
    /// exists — `None` for views whose words are assembled on demand.
    ///
    /// The slice must satisfy the same contract as [`PackedWords::word`]
    /// (little-endian lanes, zero tail lanes beyond [`PackedWords::len`]),
    /// so callers like the `asmcap-metrics` lane kernels can run their
    /// multi-word inner loops directly on it instead of fetching one word
    /// at a time through the trait.
    fn as_word_slice(&self) -> Option<&[u64]> {
        None
    }

    /// Number of words covering [`PackedWords::len`] bases.
    fn n_words(&self) -> usize {
        self.len().div_ceil(BASES_PER_WORD)
    }

    /// Materialises the words into an owned [`PackedSeq`].
    fn to_packed(&self) -> PackedSeq {
        PackedSeq {
            words: (0..self.n_words()).map(|i| self.word(i)).collect(),
            len: self.len(),
        }
    }
}

/// Mask keeping the `2 * len_in_word` low bits of a word: the lanes a
/// partially filled final word actually uses.
pub(crate) fn tail_mask(len_in_word: usize) -> u64 {
    debug_assert!(len_in_word <= BASES_PER_WORD);
    if len_in_word == BASES_PER_WORD {
        u64::MAX
    } else {
        (1u64 << (2 * len_in_word)) - 1
    }
}

/// A DNA sequence packed at 2 bits per base, 32 bases per `u64` word.
///
/// Bases are stored little-endian within each word: base `i` occupies bits
/// `2*(i % 32) ..= 2*(i % 32) + 1` of word `i / 32`. Unused high bits of the
/// final word are zero — an invariant relied on by the word-parallel
/// matching kernels (`asmcap-metrics`' `ed_star_packed` and
/// `hamming_packed`), which consume this type through the [`PackedWords`]
/// trait.
///
/// # Examples
///
/// ```
/// use asmcap_genome::{DnaSeq, PackedSeq};
/// let seq: DnaSeq = "ACGTACGT".parse()?;
/// let packed = PackedSeq::from_seq(&seq);
/// assert_eq!(packed.len(), 8);
/// assert_eq!(packed.to_seq(), seq);
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PackedSeq {
    words: Vec<u64>,
    len: usize,
}

impl PackedSeq {
    /// Packs a [`DnaSeq`].
    #[must_use]
    pub fn from_seq(seq: &DnaSeq) -> Self {
        Self::from_bases(seq.as_slice())
    }

    /// Packs a base slice.
    #[must_use]
    pub fn from_bases(bases: &[Base]) -> Self {
        let mut words = vec![0u64; bases.len().div_ceil(BASES_PER_WORD)];
        for (i, base) in bases.iter().enumerate() {
            let word = i / BASES_PER_WORD;
            let shift = 2 * (i % BASES_PER_WORD);
            words[word] |= u64::from(base.code()) << shift;
        }
        Self {
            words,
            len: bases.len(),
        }
    }

    /// Number of bases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the base at `index`, or `None` past the end.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Base> {
        if index >= self.len {
            return None;
        }
        let word = self.words[index / BASES_PER_WORD];
        let shift = 2 * (index % BASES_PER_WORD);
        Some(Base::from_code((word >> shift) as u8))
    }

    /// Borrows the packed words.
    ///
    /// Unused high bits of the last word are guaranteed zero.
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Wraps pre-packed words covering `len` bases.
    ///
    /// # Panics
    ///
    /// Panics if the word count does not cover `len` or the unused tail
    /// lanes are non-zero (the invariant every kernel relies on).
    #[must_use]
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(BASES_PER_WORD),
            "word count must cover len"
        );
        if let Some(&last) = words.last() {
            let used = len - (words.len() - 1) * BASES_PER_WORD;
            assert_eq!(last & !tail_mask(used), 0, "unused tail lanes must be zero");
        }
        Self { words, len }
    }

    /// Copies the half-open base window `range` into a new packed sequence
    /// (word-aligned extraction: two shifts per output word).
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    #[must_use]
    pub fn window(&self, range: Range<usize>) -> PackedSeq {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "window out of bounds"
        );
        extract(&self.words, range.start, range.end - range.start)
    }

    /// Returns a copy rotated left by `amount` bases (wrapping):
    /// `out[i] = self[(i + amount) % len]`, matching
    /// [`crate::DnaSeq::rotated_left`] and the array's shift-register file.
    #[must_use]
    pub fn rotated_left(&self, amount: usize) -> PackedSeq {
        if self.len == 0 {
            return self.clone();
        }
        let amount = amount % self.len;
        if amount == 0 {
            return self.clone();
        }
        let mut words = vec![0u64; self.words.len()];
        write_packed(&mut words, 0, &self.window(amount..self.len));
        write_packed(&mut words, self.len - amount, &self.window(0..amount));
        Self {
            words,
            len: self.len,
        }
    }

    /// Returns a copy rotated right by `amount` bases (wrapping), matching
    /// [`crate::DnaSeq::rotated_right`].
    #[must_use]
    pub fn rotated_right(&self, amount: usize) -> PackedSeq {
        if self.len == 0 {
            return self.clone();
        }
        let amount = amount % self.len;
        self.rotated_left(self.len - amount)
    }

    /// Unpacks into a [`DnaSeq`].
    #[must_use]
    pub fn to_seq(&self) -> DnaSeq {
        (0..self.len)
            .map(|i| self.get(i).expect("index within length"))
            .collect()
    }

    /// Counts positions where `self` and `other` hold different bases.
    ///
    /// This is the word-parallel Hamming kernel: XOR the 2-bit lanes, then
    /// OR the two bits of each lane together and popcount. The generalised
    /// kernels (over [`PackedWords`], including zero-copy segment views, and
    /// with the ED\* neighbour windows) live in `asmcap-metrics` as
    /// `hamming_packed` and `ed_star_packed`; this convenience method exists
    /// because `asmcap-genome` sits below `asmcap-metrics` in the dependency
    /// order. Both copies are property-tested against the same naive
    /// position-wise count, which is what keeps them in agreement.
    ///
    /// # Panics
    ///
    /// Panics if the sequences have different lengths.
    #[must_use]
    pub fn hamming_distance(&self, other: &PackedSeq) -> usize {
        assert_eq!(
            self.len, other.len,
            "hamming distance requires equal-length sequences"
        );
        const LOW_BITS: u64 = 0x5555_5555_5555_5555;
        let mut distance = 0usize;
        for (a, b) in self.words.iter().zip(&other.words) {
            let diff = a ^ b;
            // A lane differs iff either of its two bits differs.
            let lane_mismatch = (diff | (diff >> 1)) & LOW_BITS;
            distance += lane_mismatch.count_ones() as usize;
        }
        distance
    }
}

impl PackedWords for PackedSeq {
    fn len(&self) -> usize {
        self.len
    }

    fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    fn as_word_slice(&self) -> Option<&[u64]> {
        Some(&self.words)
    }

    fn to_packed(&self) -> PackedSeq {
        self.clone()
    }
}

/// Output word `i` of a view starting `shift` bits into `words[first]`: the
/// shift pair assembling each extracted word from at most two source words.
/// The single home of the word-boundary extraction logic, shared by
/// [`extract`] and [`crate::packedref::SegmentView`]. The caller masks the
/// tail of the final word.
#[inline]
pub(crate) fn shifted_word(words: &[u64], first: usize, shift: u32, i: usize) -> u64 {
    let lo = words[first + i] >> shift;
    let hi = if shift == 0 {
        0
    } else {
        words.get(first + i + 1).map_or(0, |&w| w << (64 - shift))
    };
    lo | hi
}

/// Extracts `count` bases starting at base `start` from `words` into an
/// owned packing — the word-aligned bit-shift extraction shared by
/// [`PackedSeq::window`] and [`crate::packedref::SegmentView`].
pub(crate) fn extract(words: &[u64], start: usize, count: usize) -> PackedSeq {
    let n_words = count.div_ceil(BASES_PER_WORD);
    let mut out = vec![0u64; n_words];
    let first = start / BASES_PER_WORD;
    let shift = (2 * (start % BASES_PER_WORD)) as u32;
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = shifted_word(words, first, shift, i);
    }
    if let Some(last) = out.last_mut() {
        *last &= tail_mask(count - (n_words - 1) * BASES_PER_WORD);
    }
    PackedSeq {
        words: out,
        len: count,
    }
}

/// ORs `src` into `dst` starting at base `dst_base`. `dst` must be zero in
/// the target range (regions are written disjointly).
pub(crate) fn write_packed(dst: &mut [u64], dst_base: usize, src: &impl PackedWords) {
    for k in 0..src.n_words() {
        let w = src.word(k);
        let bit = 2 * dst_base + 64 * k;
        let word = bit / 64;
        let sh = bit % 64;
        dst[word] |= w << sh;
        if sh != 0 && word + 1 < dst.len() {
            dst[word + 1] |= w >> (64 - sh);
        }
    }
}

impl From<&DnaSeq> for PackedSeq {
    fn from(seq: &DnaSeq) -> Self {
        Self::from_seq(seq)
    }
}

impl From<&PackedSeq> for DnaSeq {
    fn from(packed: &PackedSeq) -> Self {
        packed.to_seq()
    }
}

impl fmt::Display for PackedSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_seq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    #[test]
    fn roundtrip_short() {
        let s = seq("ACGTACGTA");
        assert_eq!(PackedSeq::from_seq(&s).to_seq(), s);
    }

    #[test]
    fn roundtrip_word_boundaries() {
        for len in [0, 1, 31, 32, 33, 63, 64, 65, 256] {
            let bases: Vec<Base> = (0..len).map(|i| Base::from_code(i as u8)).collect();
            let s = DnaSeq::from_bases(bases);
            let packed = PackedSeq::from_seq(&s);
            assert_eq!(packed.len(), len);
            assert_eq!(packed.to_seq(), s);
        }
    }

    #[test]
    fn get_past_end_is_none() {
        let packed = PackedSeq::from_seq(&seq("ACG"));
        assert_eq!(packed.get(2), Some(Base::G));
        assert_eq!(packed.get(3), None);
    }

    #[test]
    fn hamming_simple() {
        let a = PackedSeq::from_seq(&seq("ACGT"));
        let b = PackedSeq::from_seq(&seq("ACGA"));
        assert_eq!(a.hamming_distance(&b), 1);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn hamming_length_mismatch_panics() {
        let a = PackedSeq::from_seq(&seq("ACGT"));
        let b = PackedSeq::from_seq(&seq("ACG"));
        let _ = a.hamming_distance(&b);
    }

    #[test]
    fn unused_bits_are_zero() {
        let packed = PackedSeq::from_seq(&seq("TTT"));
        // 3 bases -> 6 bits used; rest must be zero.
        assert_eq!(packed.as_words()[0] >> 6, 0);
    }

    #[test]
    fn window_matches_seq_window() {
        let bases: Vec<Base> = (0..150)
            .map(|i| Base::from_code((i % 4) as u8 ^ ((i / 7) as u8 % 4)))
            .collect();
        let s = DnaSeq::from_bases(bases);
        let packed = PackedSeq::from_seq(&s);
        for (start, end) in [
            (0, 0),
            (0, 150),
            (1, 33),
            (31, 97),
            (32, 64),
            (63, 150),
            (64, 96),
            (149, 150),
        ] {
            assert_eq!(
                packed.window(start..end).to_seq(),
                s.window(start..end),
                "window {start}..{end}"
            );
        }
    }

    #[test]
    fn rotations_match_dnaseq_rotations() {
        let s = GenomeModelFree::generate(77);
        let packed = PackedSeq::from_seq(&s);
        for amount in [0usize, 1, 2, 31, 32, 33, 76, 77, 100] {
            assert_eq!(
                packed.rotated_left(amount).to_seq(),
                s.rotated_left(amount),
                "left {amount}"
            );
            assert_eq!(
                packed.rotated_right(amount).to_seq(),
                s.rotated_right(amount),
                "right {amount}"
            );
        }
        assert!(PackedSeq::default().rotated_left(3).is_empty());
    }

    /// Tiny deterministic sequence generator for the rotation tests.
    struct GenomeModelFree;
    impl GenomeModelFree {
        fn generate(len: usize) -> DnaSeq {
            (0..len)
                .map(|i| Base::from_code(((i * 7 + i / 3) % 4) as u8))
                .collect()
        }
    }

    #[test]
    fn from_words_validates_the_tail_invariant() {
        let packed = PackedSeq::from_seq(&seq("ACGTACGTA"));
        let rebuilt = PackedSeq::from_words(packed.as_words().to_vec(), packed.len());
        assert_eq!(rebuilt, packed);
        let dirty = vec![u64::MAX];
        assert!(std::panic::catch_unwind(|| PackedSeq::from_words(dirty, 3)).is_err());
    }

    proptest! {
        #[test]
        fn prop_window_matches_seq(
            codes in proptest::collection::vec(0u8..4, 1..200),
            start_frac in 0.0f64..1.0,
            len_frac in 0.0f64..1.0
        ) {
            let s = DnaSeq::from_bases(codes.iter().map(|&c| Base::from_code(c)).collect());
            let start = ((s.len() as f64) * start_frac) as usize;
            let count = (((s.len() - start) as f64) * len_frac) as usize;
            let packed = PackedSeq::from_seq(&s);
            prop_assert_eq!(packed.window(start..start + count).to_seq(), s.window(start..start + count));
        }

        #[test]
        fn prop_roundtrip(codes in proptest::collection::vec(0u8..4, 0..300)) {
            let s = DnaSeq::from_bases(codes.iter().map(|&c| Base::from_code(c)).collect());
            prop_assert_eq!(PackedSeq::from_seq(&s).to_seq(), s);
        }

        #[test]
        fn prop_hamming_matches_naive(
            pairs in proptest::collection::vec((0u8..4, 0u8..4), 0..300)
        ) {
            let a = DnaSeq::from_bases(pairs.iter().map(|&(x, _)| Base::from_code(x)).collect());
            let b = DnaSeq::from_bases(pairs.iter().map(|&(_, y)| Base::from_code(y)).collect());
            let naive = a
                .iter()
                .zip(b.iter())
                .filter(|(x, y)| x != y)
                .count();
            let packed = PackedSeq::from_seq(&a).hamming_distance(&PackedSeq::from_seq(&b));
            prop_assert_eq!(packed, naive);
        }
    }
}
