//! Owned DNA sequences.

use crate::base::{Base, ParseBaseError};
use std::fmt;
use std::ops::{Index, Range};
use std::str::FromStr;

/// An owned DNA sequence: a thin, validated wrapper around `Vec<Base>`.
///
/// `DnaSeq` is the common currency between the genome generators, the error
/// injector, the distance metrics, and the array simulators. It derefs to
/// `&[Base]` via [`DnaSeq::as_slice`] and implements the usual collection
/// traits.
///
/// # Examples
///
/// ```
/// use asmcap_genome::DnaSeq;
/// let seq: DnaSeq = "GATTACA".parse()?;
/// assert_eq!(seq.len(), 7);
/// assert_eq!(seq.to_string(), "GATTACA");
/// assert_eq!(seq.reverse_complement().to_string(), "TGTAATC");
/// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DnaSeq {
    bases: Vec<Base>,
}

impl DnaSeq {
    /// Creates an empty sequence.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sequence with room for `capacity` bases.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            bases: Vec::with_capacity(capacity),
        }
    }

    /// Wraps an existing base vector.
    #[must_use]
    pub fn from_bases(bases: Vec<Base>) -> Self {
        Self { bases }
    }

    /// Parses a byte string of `ACGTacgt` characters.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBaseError`] on the first byte outside the alphabet.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParseBaseError> {
        bytes
            .iter()
            .map(|&b| Base::try_from(b))
            .collect::<Result<Vec<_>, _>>()
            .map(Self::from_bases)
    }

    /// Number of bases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Borrows the bases as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Base] {
        &self.bases
    }

    /// Consumes the sequence and returns the underlying vector.
    #[must_use]
    pub fn into_bases(self) -> Vec<Base> {
        self.bases
    }

    /// Appends one base.
    pub fn push(&mut self, base: Base) {
        self.bases.push(base);
    }

    /// Returns the base at `index`, or `None` past the end.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Base> {
        self.bases.get(index).copied()
    }

    /// Copies the half-open window `range` into a new sequence.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    #[must_use]
    pub fn window(&self, range: Range<usize>) -> DnaSeq {
        DnaSeq::from_bases(self.bases[range].to_vec())
    }

    /// Iterates over the bases.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Base>> {
        self.bases.iter().copied()
    }

    /// Returns the reverse complement of the sequence.
    ///
    /// # Examples
    ///
    /// ```
    /// use asmcap_genome::DnaSeq;
    /// let seq: DnaSeq = "ACGT".parse()?;
    /// assert_eq!(seq.reverse_complement(), seq); // ACGT is its own RC
    /// # Ok::<(), asmcap_genome::base::ParseBaseError>(())
    /// ```
    #[must_use]
    pub fn reverse_complement(&self) -> DnaSeq {
        DnaSeq::from_bases(self.bases.iter().rev().map(|b| b.complement()).collect())
    }

    /// Rotates the sequence left by `amount` bases (wrapping), in place.
    ///
    /// This mirrors the shift registers with enable signal in the ASMCap
    /// array (paper Fig. 4b) that implement the TASR strategy.
    pub fn rotate_left(&mut self, amount: usize) {
        if !self.bases.is_empty() {
            let amount = amount % self.bases.len();
            self.bases.rotate_left(amount);
        }
    }

    /// Rotates the sequence right by `amount` bases (wrapping), in place.
    pub fn rotate_right(&mut self, amount: usize) {
        if !self.bases.is_empty() {
            let amount = amount % self.bases.len();
            self.bases.rotate_right(amount);
        }
    }

    /// Returns a copy rotated left by `amount` bases.
    #[must_use]
    pub fn rotated_left(&self, amount: usize) -> DnaSeq {
        let mut out = self.clone();
        out.rotate_left(amount);
        out
    }

    /// Returns a copy rotated right by `amount` bases.
    #[must_use]
    pub fn rotated_right(&self, amount: usize) -> DnaSeq {
        let mut out = self.clone();
        out.rotate_right(amount);
        out
    }

    /// Fraction of G/C bases, in `[0, 1]`; `0` for the empty sequence.
    #[must_use]
    pub fn gc_content(&self) -> f64 {
        if self.bases.is_empty() {
            return 0.0;
        }
        let gc = self
            .bases
            .iter()
            .filter(|b| matches!(b, Base::G | Base::C))
            .count();
        gc as f64 / self.bases.len() as f64
    }

    /// Counts occurrences of each base, indexed by [`Base::code`].
    #[must_use]
    pub fn base_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for base in &self.bases {
            counts[base.code() as usize] += 1;
        }
        counts
    }
}

impl Index<usize> for DnaSeq {
    type Output = Base;

    fn index(&self, index: usize) -> &Base {
        &self.bases[index]
    }
}

impl AsRef<[Base]> for DnaSeq {
    fn as_ref(&self) -> &[Base] {
        &self.bases
    }
}

impl FromIterator<Base> for DnaSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        Self::from_bases(iter.into_iter().collect())
    }
}

impl Extend<Base> for DnaSeq {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        self.bases.extend(iter);
    }
}

impl IntoIterator for DnaSeq {
    type Item = Base;
    type IntoIter = std::vec::IntoIter<Base>;

    fn into_iter(self) -> Self::IntoIter {
        self.bases.into_iter()
    }
}

impl<'a> IntoIterator for &'a DnaSeq {
    type Item = &'a Base;
    type IntoIter = std::slice::Iter<'a, Base>;

    fn into_iter(self) -> Self::IntoIter {
        self.bases.iter()
    }
}

impl FromStr for DnaSeq {
    type Err = ParseBaseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::from_bytes(s.as_bytes())
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for base in &self.bases {
            write!(f, "{base}")?;
        }
        Ok(())
    }
}

impl From<Vec<Base>> for DnaSeq {
    fn from(bases: Vec<Base>) -> Self {
        Self::from_bases(bases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().expect("valid test sequence")
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let s = "ACGTACGTTTAGC";
        assert_eq!(seq(s).to_string(), s);
    }

    #[test]
    fn parse_rejects_invalid() {
        assert!("ACGN".parse::<DnaSeq>().is_err());
        assert!("AC GT".parse::<DnaSeq>().is_err());
    }

    #[test]
    fn window_extracts_subrange() {
        let s = seq("ACGTACGT");
        assert_eq!(s.window(2..6).to_string(), "GTAC");
        assert_eq!(s.window(0..0).len(), 0);
    }

    #[test]
    fn rotate_left_then_right_is_identity() {
        let s = seq("ACGTTGCA");
        let mut r = s.clone();
        r.rotate_left(3);
        r.rotate_right(3);
        assert_eq!(r, s);
    }

    #[test]
    fn rotate_wraps_bases() {
        assert_eq!(seq("ACGT").rotated_left(1).to_string(), "CGTA");
        assert_eq!(seq("ACGT").rotated_right(1).to_string(), "TACG");
        assert_eq!(seq("ACGT").rotated_left(4), seq("ACGT"));
        assert_eq!(seq("ACGT").rotated_left(5), seq("ACGT").rotated_left(1));
    }

    #[test]
    fn rotate_empty_is_noop() {
        let mut empty = DnaSeq::new();
        empty.rotate_left(10);
        empty.rotate_right(10);
        assert!(empty.is_empty());
    }

    #[test]
    fn reverse_complement_is_involution() {
        let s = seq("AACGTTGGCAT");
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn gc_content_counts_g_and_c() {
        assert_eq!(seq("GGCC").gc_content(), 1.0);
        assert_eq!(seq("AATT").gc_content(), 0.0);
        assert_eq!(seq("ACGT").gc_content(), 0.5);
        assert_eq!(DnaSeq::new().gc_content(), 0.0);
    }

    #[test]
    fn base_counts_sum_to_len() {
        let s = seq("ACGTACGGG");
        let counts = s.base_counts();
        assert_eq!(counts.iter().sum::<usize>(), s.len());
        assert_eq!(counts[Base::G.code() as usize], 4);
    }

    #[test]
    fn collects_from_iterator() {
        let s: DnaSeq = [Base::A, Base::C].into_iter().collect();
        assert_eq!(s.to_string(), "AC");
        let mut t = s;
        t.extend([Base::G, Base::T]);
        assert_eq!(t.to_string(), "ACGT");
    }
}
