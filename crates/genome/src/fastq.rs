//! Minimal FASTQ reading and writing.
//!
//! Sequencers emit FASTQ (sequence + per-base Phred qualities), so a
//! downstream user feeding real reads into the accelerator needs this
//! alongside [`crate::fasta`]. The parser is strict: four lines per record,
//! `ACGT` alphabet, quality string as long as the sequence.

use crate::base::Base;
use crate::seq::DnaSeq;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Phred+33 quality offset used by modern FASTQ.
const PHRED_OFFSET: u8 = 33;

/// One FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FastqRecord {
    /// Identifier following `@` (may contain a description).
    pub id: String,
    /// The read bases.
    pub seq: DnaSeq,
    /// Phred quality scores, one per base (already offset-decoded).
    pub quals: Vec<u8>,
}

impl FastqRecord {
    /// Mean per-base error probability implied by the Phred scores
    /// (`P = 10^(-Q/10)`), or 0 for an empty record.
    #[must_use]
    pub fn mean_error_probability(&self) -> f64 {
        if self.quals.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .quals
            .iter()
            .map(|&q| 10f64.powf(-f64::from(q) / 10.0))
            .sum();
        total / self.quals.len() as f64
    }
}

/// Error produced while parsing FASTQ input.
#[derive(Debug)]
pub enum ParseFastqError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A record did not follow the `@`/seq/`+`/qual structure.
    Structure {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        message: &'static str,
    },
    /// A sequence byte outside `ACGTacgt`.
    InvalidBase {
        /// 1-based line number.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
}

impl fmt::Display for ParseFastqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseFastqError::Io(e) => write!(f, "i/o error reading fastq: {e}"),
            ParseFastqError::Structure { line, message } => {
                write!(f, "malformed fastq at line {line}: {message}")
            }
            ParseFastqError::InvalidBase { line, byte } => {
                write!(f, "invalid base byte 0x{byte:02x} at line {line}")
            }
        }
    }
}

impl std::error::Error for ParseFastqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseFastqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseFastqError {
    fn from(e: io::Error) -> Self {
        ParseFastqError::Io(e)
    }
}

/// Reads all records from FASTQ input.
///
/// # Errors
///
/// Returns [`ParseFastqError`] on I/O failure, structural violations, bases
/// outside `ACGT`, or quality strings of the wrong length.
///
/// # Examples
///
/// ```
/// let input = b"@r1\nACGT\n+\nIIII\n";
/// let records = asmcap_genome::fastq::read_fastq(&input[..])?;
/// assert_eq!(records.len(), 1);
/// assert_eq!(records[0].seq.to_string(), "ACGT");
/// assert_eq!(records[0].quals, vec![40; 4]); // 'I' = Q40
/// # Ok::<(), asmcap_genome::fastq::ParseFastqError>(())
/// ```
pub fn read_fastq<R: BufRead>(reader: R) -> Result<Vec<FastqRecord>, ParseFastqError> {
    let mut records = Vec::new();
    let mut lines = reader.lines().enumerate();
    while let Some((idx, header)) = lines.next() {
        let header = header?;
        let line_no = idx + 1;
        if header.trim().is_empty() {
            continue;
        }
        let id = header
            .strip_prefix('@')
            .ok_or(ParseFastqError::Structure {
                line: line_no,
                message: "expected '@' header",
            })?
            .trim()
            .to_owned();
        let (seq_idx, seq_line) = lines.next().ok_or(ParseFastqError::Structure {
            line: line_no,
            message: "missing sequence line",
        })?;
        let seq_line = seq_line?;
        let mut seq = DnaSeq::with_capacity(seq_line.len());
        for &byte in seq_line.trim_end().as_bytes() {
            let base = Base::try_from(byte).map_err(|e| ParseFastqError::InvalidBase {
                line: seq_idx + 1,
                byte: e.byte(),
            })?;
            seq.push(base);
        }
        let (plus_idx, plus_line) = lines.next().ok_or(ParseFastqError::Structure {
            line: seq_idx + 1,
            message: "missing '+' separator",
        })?;
        if !plus_line?.starts_with('+') {
            return Err(ParseFastqError::Structure {
                line: plus_idx + 1,
                message: "expected '+' separator",
            });
        }
        let (qual_idx, qual_line) = lines.next().ok_or(ParseFastqError::Structure {
            line: plus_idx + 1,
            message: "missing quality line",
        })?;
        let qual_line = qual_line?;
        let quals: Vec<u8> = qual_line
            .trim_end()
            .bytes()
            .map(|b| b.saturating_sub(PHRED_OFFSET))
            .collect();
        if quals.len() != seq.len() {
            return Err(ParseFastqError::Structure {
                line: qual_idx + 1,
                message: "quality length differs from sequence length",
            });
        }
        records.push(FastqRecord { id, seq, quals });
    }
    Ok(records)
}

/// Writes records in FASTQ format (Phred+33).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if a record's quality length differs from its sequence length or
/// a quality exceeds 93 (the Phred+33 printable range).
pub fn write_fastq<W: Write>(mut writer: W, records: &[FastqRecord]) -> io::Result<()> {
    for record in records {
        assert_eq!(
            record.quals.len(),
            record.seq.len(),
            "quality length must equal sequence length"
        );
        writeln!(writer, "@{}", record.id)?;
        writeln!(writer, "{}", record.seq)?;
        writeln!(writer, "+")?;
        let encoded: Vec<u8> = record
            .quals
            .iter()
            .map(|&q| {
                assert!(q <= 93, "quality {q} outside Phred+33 printable range");
                q + PHRED_OFFSET
            })
            .collect();
        writer.write_all(&encoded)?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let records = vec![FastqRecord {
            id: "read1 sample".to_owned(),
            seq: "ACGTACGT".parse().unwrap(),
            quals: vec![30, 32, 40, 40, 12, 2, 38, 41],
        }];
        let mut buffer = Vec::new();
        write_fastq(&mut buffer, &records).unwrap();
        let parsed = read_fastq(&buffer[..]).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn rejects_quality_length_mismatch() {
        let err = read_fastq(&b"@x\nACGT\n+\nII\n"[..]).unwrap_err();
        assert!(matches!(err, ParseFastqError::Structure { line: 4, .. }));
    }

    #[test]
    fn rejects_missing_plus() {
        let err = read_fastq(&b"@x\nACGT\nIIII\nIIII\n"[..]).unwrap_err();
        assert!(matches!(
            err,
            ParseFastqError::Structure {
                message: "expected '+' separator",
                ..
            }
        ));
    }

    #[test]
    fn rejects_invalid_base_with_line() {
        let err = read_fastq(&b"@x\nACNT\n+\nIIII\n"[..]).unwrap_err();
        match err {
            ParseFastqError::InvalidBase { line, byte } => {
                assert_eq!(line, 2);
                assert_eq!(byte, b'N');
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mean_error_probability_tracks_quality() {
        let good = FastqRecord {
            id: "good".into(),
            seq: "ACGT".parse().unwrap(),
            quals: vec![40; 4], // 1e-4 each
        };
        let bad = FastqRecord {
            id: "bad".into(),
            seq: "ACGT".parse().unwrap(),
            quals: vec![10; 4], // 1e-1 each
        };
        assert!((good.mean_error_probability() - 1e-4).abs() < 1e-9);
        assert!((bad.mean_error_probability() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn blank_lines_between_records_are_tolerated() {
        let records = read_fastq(&b"@a\nAC\n+\nII\n\n@b\nGT\n+\nII\n"[..]).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].id, "b");
    }
}
