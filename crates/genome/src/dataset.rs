//! Evaluation datasets of (read, reference-segment) pairs.
//!
//! The accuracy experiments (paper Fig. 7) reduce to a binary decision per
//! pair: does this read match this stored reference segment at threshold
//! `T`? A [`PairDataset`] bundles, for every sampled read, its truly aligned
//! segment plus a configurable number of decoy segments drawn from other
//! genome positions. Ground truth is *defined* by exact edit distance
//! (`ED(read, segment) ≤ T`), which `asmcap-metrics` computes; this crate
//! only stores the pairs.

use crate::errors::{ErrorModel, ErrorProfile};
use crate::reads::{ReadSampler, SampledRead};
use crate::seq::DnaSeq;
use crate::Rng;
use rand::Rng as _;

/// One evaluation unit: a read paired with a stored reference segment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReadPair {
    /// Index of the read in [`PairDataset::reads`].
    pub read_index: usize,
    /// The stored reference segment this read is compared against.
    pub segment: DnaSeq,
    /// Start position of the segment in the reference genome.
    pub segment_origin: usize,
    /// Whether this segment is the read's true origin (as opposed to a
    /// decoy). Note this is provenance, not ground truth: ground truth for a
    /// threshold `T` is `ED(read, segment) ≤ T`.
    pub is_aligned: bool,
}

/// A full evaluation dataset: reads plus aligned/decoy pairs.
///
/// # Examples
///
/// ```
/// use asmcap_genome::{GenomeModel, ErrorProfile, PairDataset};
/// let genome = GenomeModel::uniform().generate(50_000, 1);
/// let ds = PairDataset::build(&genome, 256, ErrorProfile::condition_a(), 20, 5, 42);
/// assert_eq!(ds.reads().len(), 20);
/// assert_eq!(ds.pairs().len(), 20 * 6); // aligned + 5 decoys each
/// ```
#[derive(Debug, Clone)]
pub struct PairDataset {
    reads: Vec<SampledRead>,
    pairs: Vec<ReadPair>,
    profile: ErrorProfile,
    read_len: usize,
}

impl PairDataset {
    /// Builds a dataset of `num_reads` reads of `read_len` bases each, with
    /// one aligned pair and `decoys_per_read` decoy pairs per read.
    ///
    /// Decoy segments are sampled from positions at least one read length
    /// away from the read's origin so that provenance labels are meaningful
    /// even on repetitive genomes.
    ///
    /// # Panics
    ///
    /// Panics if the reference is too short for the requested read length
    /// (see [`ReadSampler`]) or `num_reads` is zero.
    #[must_use]
    pub fn build(
        reference: &DnaSeq,
        read_len: usize,
        profile: ErrorProfile,
        num_reads: usize,
        decoys_per_read: usize,
        seed: u64,
    ) -> Self {
        Self::build_with_model(
            reference,
            read_len,
            ErrorModel::Iid(profile),
            num_reads,
            decoys_per_read,
            seed,
        )
    }

    /// Like [`PairDataset::build`] but with an explicit [`ErrorModel`]
    /// (e.g. bursty indels for the TASR stress ablation).
    ///
    /// # Panics
    ///
    /// Same conditions as [`PairDataset::build`].
    #[must_use]
    pub fn build_with_model(
        reference: &DnaSeq,
        read_len: usize,
        model: ErrorModel,
        num_reads: usize,
        decoys_per_read: usize,
        seed: u64,
    ) -> Self {
        assert!(num_reads > 0, "dataset needs at least one read");
        let profile = *model.profile();
        let sampler = ReadSampler::with_model(read_len, model);
        let mut rng = crate::rng(seed);
        let reads: Vec<SampledRead> = (0..num_reads)
            .map(|_| sampler.sample_with(reference, &mut rng))
            .collect();
        let max_segment_origin = reference.len() - read_len;
        let mut pairs = Vec::with_capacity(num_reads * (decoys_per_read + 1));
        for (read_index, read) in reads.iter().enumerate() {
            pairs.push(ReadPair {
                read_index,
                segment: read.aligned_segment(reference),
                segment_origin: read.origin,
                is_aligned: true,
            });
            for _ in 0..decoys_per_read {
                let origin =
                    Self::decoy_origin(read.origin, read_len, max_segment_origin, &mut rng);
                pairs.push(ReadPair {
                    read_index,
                    segment: reference.window(origin..origin + read_len),
                    segment_origin: origin,
                    is_aligned: false,
                });
            }
        }
        Self {
            reads,
            pairs,
            profile,
            read_len,
        }
    }

    fn decoy_origin(
        read_origin: usize,
        read_len: usize,
        max_segment_origin: usize,
        rng: &mut Rng,
    ) -> usize {
        loop {
            let origin = rng.gen_range(0..=max_segment_origin);
            if origin.abs_diff(read_origin) >= read_len {
                return origin;
            }
        }
    }

    /// The sampled reads.
    #[must_use]
    pub fn reads(&self) -> &[SampledRead] {
        &self.reads
    }

    /// All (read, segment) pairs, aligned first within each read group.
    #[must_use]
    pub fn pairs(&self) -> &[ReadPair] {
        &self.pairs
    }

    /// The error profile the reads were generated with.
    #[must_use]
    pub fn profile(&self) -> &ErrorProfile {
        &self.profile
    }

    /// The read length in bases.
    #[must_use]
    pub fn read_len(&self) -> usize {
        self.read_len
    }

    /// Convenience accessor: the read belonging to a pair.
    #[must_use]
    pub fn read_for(&self, pair: &ReadPair) -> &SampledRead {
        &self.reads[pair.read_index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::GenomeModel;

    fn genome() -> DnaSeq {
        GenomeModel::uniform().generate(30_000, 17)
    }

    #[test]
    fn build_produces_expected_counts() {
        let ds = PairDataset::build(&genome(), 128, ErrorProfile::condition_a(), 10, 3, 1);
        assert_eq!(ds.reads().len(), 10);
        assert_eq!(ds.pairs().len(), 40);
        assert_eq!(ds.pairs().iter().filter(|p| p.is_aligned).count(), 10);
        assert_eq!(ds.read_len(), 128);
    }

    #[test]
    fn aligned_pairs_reference_true_origin() {
        let g = genome();
        let ds = PairDataset::build(&g, 128, ErrorProfile::error_free(), 5, 2, 2);
        for pair in ds.pairs().iter().filter(|p| p.is_aligned) {
            let read = ds.read_for(pair);
            assert_eq!(pair.segment_origin, read.origin);
            assert_eq!(pair.segment, read.bases); // error-free
        }
    }

    #[test]
    fn decoys_are_far_from_origin() {
        let ds = PairDataset::build(&genome(), 128, ErrorProfile::condition_b(), 10, 5, 3);
        for pair in ds.pairs().iter().filter(|p| !p.is_aligned) {
            let read = ds.read_for(pair);
            assert!(pair.segment_origin.abs_diff(read.origin) >= 128);
            assert_eq!(pair.segment.len(), 128);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let g = genome();
        let a = PairDataset::build(&g, 128, ErrorProfile::condition_a(), 8, 2, 9);
        let b = PairDataset::build(&g, 128, ErrorProfile::condition_a(), 8, 2, 9);
        assert_eq!(a.pairs(), b.pairs());
    }

    #[test]
    fn zero_decoys_is_allowed() {
        let ds = PairDataset::build(&genome(), 64, ErrorProfile::condition_a(), 4, 0, 5);
        assert_eq!(ds.pairs().len(), 4);
        assert!(ds.pairs().iter().all(|p| p.is_aligned));
    }
}
