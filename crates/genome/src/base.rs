//! The four-letter DNA alphabet.

use std::fmt;

/// A single DNA base: Adenine, Cytosine, Guanine, or Thymine.
///
/// The discriminant is the 2-bit code stored in the two 6T SRAM cells of an
/// ASMCap cell (paper Fig. 4c), so `Base as u8` is also the hardware
/// encoding.
///
/// # Examples
///
/// ```
/// use asmcap_genome::Base;
/// assert_eq!(Base::A.complement(), Base::T);
/// assert_eq!(Base::try_from(b'g').unwrap(), Base::G);
/// assert_eq!(Base::C.to_char(), 'C');
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0b00,
    /// Cytosine.
    C = 0b01,
    /// Guanine.
    G = 0b10,
    /// Thymine.
    T = 0b11,
}

/// All four bases in encoding order; handy for iteration and sampling.
pub const BASES: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

impl Base {
    /// Returns the Watson-Crick complement (A↔T, C↔G).
    ///
    /// # Examples
    ///
    /// ```
    /// use asmcap_genome::Base;
    /// assert_eq!(Base::G.complement(), Base::C);
    /// ```
    #[must_use]
    pub const fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
        }
    }

    /// Returns the 2-bit hardware code for this base.
    ///
    /// # Examples
    ///
    /// ```
    /// use asmcap_genome::Base;
    /// assert_eq!(Base::T.code(), 0b11);
    /// ```
    #[must_use]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a 2-bit code produced by [`Base::code`].
    ///
    /// Only the low two bits are inspected, mirroring the SRAM cell pair that
    /// physically cannot hold anything wider.
    ///
    /// # Examples
    ///
    /// ```
    /// use asmcap_genome::Base;
    /// assert_eq!(Base::from_code(0b10), Base::G);
    /// assert_eq!(Base::from_code(0b110), Base::G); // high bits ignored
    /// ```
    #[must_use]
    pub const fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0b00 => Base::A,
            0b01 => Base::C,
            0b10 => Base::G,
            _ => Base::T,
        }
    }

    /// Returns the upper-case ASCII character for this base.
    #[must_use]
    pub const fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::T => 'T',
        }
    }

    /// Picks one of the three bases different from `self`, selected by
    /// `choice % 3`.
    ///
    /// This is how the error injector realises a substitution: a substituted
    /// base is always different from the original, matching the paper's edit
    /// definition.
    ///
    /// # Examples
    ///
    /// ```
    /// use asmcap_genome::Base;
    /// for choice in 0..6 {
    ///     assert_ne!(Base::A.substituted(choice), Base::A);
    /// }
    /// ```
    #[must_use]
    pub const fn substituted(self, choice: u8) -> Base {
        let offset = (choice % 3) + 1;
        Base::from_code(self.code().wrapping_add(offset))
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Error returned when a byte is not one of `ACGTacgt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBaseError {
    byte: u8,
}

impl ParseBaseError {
    /// The offending byte.
    #[must_use]
    pub fn byte(&self) -> u8 {
        self.byte
    }
}

impl fmt::Display for ParseBaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DNA base byte 0x{:02x}", self.byte)
    }
}

impl std::error::Error for ParseBaseError {}

impl TryFrom<u8> for Base {
    type Error = ParseBaseError;

    fn try_from(byte: u8) -> Result<Self, Self::Error> {
        match byte {
            b'A' | b'a' => Ok(Base::A),
            b'C' | b'c' => Ok(Base::C),
            b'G' | b'g' => Ok(Base::G),
            b'T' | b't' => Ok(Base::T),
            _ => Err(ParseBaseError { byte }),
        }
    }
}

impl TryFrom<char> for Base {
    type Error = ParseBaseError;

    fn try_from(c: char) -> Result<Self, Self::Error> {
        u8::try_from(c)
            .map_err(|_| ParseBaseError { byte: b'?' })
            .and_then(Base::try_from)
    }
}

impl From<Base> for char {
    fn from(base: Base) -> char {
        base.to_char()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for base in BASES {
            assert_eq!(Base::from_code(base.code()), base);
        }
    }

    #[test]
    fn complement_is_involution() {
        for base in BASES {
            assert_eq!(base.complement().complement(), base);
        }
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::T.complement(), Base::A);
        assert_eq!(Base::C.complement(), Base::G);
        assert_eq!(Base::G.complement(), Base::C);
    }

    #[test]
    fn parse_accepts_both_cases() {
        assert_eq!(Base::try_from(b'a').unwrap(), Base::A);
        assert_eq!(Base::try_from(b'T').unwrap(), Base::T);
        assert_eq!(Base::try_from('c').unwrap(), Base::C);
    }

    #[test]
    fn parse_rejects_ambiguity_codes() {
        assert!(Base::try_from(b'N').is_err());
        assert!(Base::try_from(b'-').is_err());
        let err = Base::try_from(b'N').unwrap_err();
        assert_eq!(err.byte(), b'N');
        assert!(err.to_string().contains("0x4e"));
    }

    #[test]
    fn substituted_never_returns_self() {
        for base in BASES {
            for choice in 0..12 {
                assert_ne!(base.substituted(choice), base);
            }
        }
    }

    #[test]
    fn substituted_covers_all_other_bases() {
        for base in BASES {
            let mut seen = std::collections::BTreeSet::new();
            for choice in 0..3 {
                seen.insert(base.substituted(choice));
            }
            assert_eq!(seen.len(), 3);
        }
    }

    #[test]
    fn display_matches_char() {
        for base in BASES {
            assert_eq!(base.to_string(), base.to_char().to_string());
        }
    }
}
