//! Hamming-Distance Aid Correction (paper §IV-A, Algorithm 1).
//!
//! When edits are mostly substitutions, ED\* hides a large fraction of them
//! (a substituted base often still matches a neighbor by coincidence), so
//! ED\* understates the distance and the matcher produces false positives
//! whenever `ED* ≤ T < ED`. HDAC runs a second, HD-mode search (the `S = 0`
//! MUX setting) and, when the two results disagree, adopts the HD result
//! with probability
//!
//! ```text
//! p = e_s/(e_s + e_id) · exp(−(α·e_id + β·T))
//! ```
//!
//! The three factors implement the paper's design intent: favour HD when
//! substitutions dominate, back off exponentially as indels grow (HD
//! over-counts indels badly), and back off with larger `T` (at large `T`
//! indel-inflated HD causes false negatives instead). The strategy is
//! disabled entirely — saving its extra cycle — when `p` falls below a
//! cutoff (the paper suggests 1 %).

use crate::Rng;
use rand::Rng as _;

/// Tunable constants of the HDAC probability function.
///
/// # Examples
///
/// ```
/// use asmcap::HdacParams;
/// use asmcap_genome::ErrorProfile;
///
/// let params = HdacParams::paper();
/// let a = ErrorProfile::condition_a();
/// // Substitution-dominant: HDAC is active at small T...
/// assert!(params.probability(&a, 1) > 0.4);
/// // ...and backs off at large T.
/// assert!(params.probability(&a, 8) < 0.02);
/// // Indel-dominant Condition B disables HDAC outright.
/// let b = ErrorProfile::condition_b();
/// assert!(!params.enabled(&b, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HdacParams {
    /// Indel back-off constant `α` (paper: 200).
    pub alpha: f64,
    /// Threshold back-off constant `β` (paper: 0.5).
    pub beta: f64,
    /// Probability below which the strategy is disabled and its extra cycle
    /// skipped (paper: 1 %).
    pub min_probability: f64,
}

impl HdacParams {
    /// The paper's constants: `α = 200`, `β = 0.5`, 1 % disable cutoff.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            alpha: 200.0,
            beta: 0.5,
            min_probability: 0.01,
        }
    }

    /// The selection probability `p = e_s/(e_s+e_id) · e^(−(α·e_id + β·T))`.
    ///
    /// Returns 0 when the profile has no edits at all (nothing to correct).
    /// The paper notes `p` "can be pre-processed off-line": it depends only
    /// on the error profile and threshold, not on the data.
    #[must_use]
    pub fn probability(&self, profile: &asmcap_genome::ErrorProfile, threshold: usize) -> f64 {
        let es = profile.substitution;
        let eid = profile.indel_rate();
        if es + eid == 0.0 {
            return 0.0;
        }
        es / (es + eid) * (-(self.alpha * eid + self.beta * threshold as f64)).exp()
    }

    /// Whether HDAC should run (and spend its extra cycle) at all.
    #[must_use]
    pub fn enabled(&self, profile: &asmcap_genome::ErrorProfile, threshold: usize) -> bool {
        self.probability(profile, threshold) >= self.min_probability
    }
}

impl Default for HdacParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// The HDAC decision stage (Algorithm 1), bound to an error profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hdac {
    params: HdacParams,
    profile: asmcap_genome::ErrorProfile,
}

impl Hdac {
    /// Creates the stage for a known (or profiled) error model.
    #[must_use]
    pub fn new(params: HdacParams, profile: asmcap_genome::ErrorProfile) -> Self {
        Self { params, profile }
    }

    /// The configured parameters.
    #[must_use]
    pub fn params(&self) -> &HdacParams {
        &self.params
    }

    /// Whether the stage will issue an HD search at this threshold.
    #[must_use]
    pub fn active(&self, threshold: usize) -> bool {
        self.params.enabled(&self.profile, threshold)
    }

    /// Algorithm 1: combines the two matching results. `o_hd`/`o_ed_star`
    /// are the HD-mode and ED\*-mode sense-amplifier outputs.
    ///
    /// Only meaningful when [`Hdac::active`]; callers skip the HD search —
    /// and this call — otherwise.
    #[must_use]
    pub fn select(&self, o_hd: bool, o_ed_star: bool, threshold: usize, rng: &mut Rng) -> bool {
        if o_hd == o_ed_star {
            return o_ed_star;
        }
        let p = self.params.probability(&self.profile, threshold);
        let x: f64 = rng.gen();
        if x < p {
            o_hd
        } else {
            o_ed_star
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asmcap_genome::ErrorProfile;

    #[test]
    fn paper_constants() {
        let p = HdacParams::paper();
        assert_eq!(p.alpha, 200.0);
        assert_eq!(p.beta, 0.5);
        assert_eq!(p.min_probability, 0.01);
    }

    #[test]
    fn probability_values_condition_a() {
        // Condition A: es=1%, eid=0.1% -> p(T) = 0.909 * e^-0.2 * e^-0.5T.
        let params = HdacParams::paper();
        let a = ErrorProfile::condition_a();
        let expected_t1 = 0.01 / 0.011 * (-0.2f64 - 0.5).exp();
        assert!((params.probability(&a, 1) - expected_t1).abs() < 1e-12);
        // Monotonically decreasing in T.
        for t in 1..8 {
            assert!(params.probability(&a, t + 1) < params.probability(&a, t));
        }
    }

    #[test]
    fn condition_b_is_disabled_everywhere() {
        // Condition B: es=0.1%, eid=1% -> the e^-α·eid = e^-2 factor and the
        // small substitution share push p below 1% for every threshold in
        // the paper's sweep (T = 2..16; at T=0, outside the sweep, p is a
        // hair above the cutoff).
        let params = HdacParams::paper();
        let b = ErrorProfile::condition_b();
        for t in 1..=16 {
            assert!(!params.enabled(&b, t), "HDAC unexpectedly enabled at T={t}");
        }
    }

    #[test]
    fn condition_a_enabled_at_small_t() {
        let params = HdacParams::paper();
        let a = ErrorProfile::condition_a();
        assert!(params.enabled(&a, 1));
        assert!(params.enabled(&a, 4));
        // p(8) = 0.744 * e^-4 = 0.0136 — still above the 1% cutoff.
        assert!(params.enabled(&a, 8));
        assert!(!params.enabled(&a, 12));
    }

    #[test]
    fn error_free_profile_yields_zero_probability() {
        let params = HdacParams::paper();
        assert_eq!(params.probability(&ErrorProfile::error_free(), 1), 0.0);
    }

    #[test]
    fn select_agreement_passes_through() {
        let hdac = Hdac::new(HdacParams::paper(), ErrorProfile::condition_a());
        let mut rng = crate::rng(1);
        assert!(hdac.select(true, true, 1, &mut rng));
        assert!(!hdac.select(false, false, 1, &mut rng));
    }

    #[test]
    fn select_disagreement_follows_probability() {
        let profile = ErrorProfile::condition_a();
        let hdac = Hdac::new(HdacParams::paper(), profile);
        let mut rng = crate::rng(2);
        let trials = 20_000usize;
        let t = 1usize;
        let hd_chosen = (0..trials)
            .filter(|_| hdac.select(true, false, t, &mut rng))
            .count();
        let empirical = hd_chosen as f64 / trials as f64;
        let expected = HdacParams::paper().probability(&profile, t);
        assert!(
            (empirical - expected).abs() < 0.01,
            "empirical {empirical} vs expected {expected}"
        );
    }
}
